"""Tests for the compact (2-D/3-D) molecule generators."""

import numpy as np
import pytest

from repro.chem import TilingVariant, alkane, build_abcd_problem
from repro.chem.clusters3d import alkane_sheet, water_cluster
from repro.chem.molecule import bonds
from repro.chem.basis import ao_count
from repro.chem.orbitals import occupied_count


class TestWaterCluster:
    def test_formula_and_counts(self):
        m = water_cluster(8, seed=0)
        assert m.count("O") == 8 and m.count("H") == 16
        assert ao_count(m) == 8 * (14 + 2 * 5)

    def test_two_bonds_per_molecule(self):
        m = water_cluster(6, seed=1)
        assert len(bonds(m)) == 12
        assert occupied_count(m) == 12

    def test_compact_geometry(self):
        m = water_cluster(27, seed=2)
        pos = m.positions()
        spread = pos.max(axis=0) - pos.min(axis=0)
        # Near-isotropic: no dimension dominates by more than ~2x.
        assert spread.max() < 2.5 * spread.min()

    def test_deterministic(self):
        m1 = water_cluster(5, seed=3)
        m2 = water_cluster(5, seed=3)
        assert np.allclose(m1.positions(), m2.positions())

    def test_oh_bond_lengths(self):
        m = water_cluster(4, seed=4)
        pos = m.positions()
        syms = m.symbols()
        for i, j in bonds(m):
            assert {syms[i], syms[j]} == {"O", "H"}
            assert np.linalg.norm(pos[i] - pos[j]) == pytest.approx(0.9572, abs=1e-6)

    def test_invalid(self):
        with pytest.raises(ValueError):
            water_cluster(0)


class TestAlkaneSheet:
    def test_atom_count(self):
        m = alkane_sheet(10, 4)
        assert m.natoms == 4 * alkane(10).natoms

    def test_planar_spread(self):
        m = alkane_sheet(20, 5)
        pos = m.positions()
        spread = pos.max(axis=0) - pos.min(axis=0)
        # Extended in x (chain) and y (stacking), thin in z.
        assert spread[0] > 4 * spread[2]
        assert spread[1] > 4 * spread[2]

    def test_bonds_per_chain_preserved(self):
        # Chains are spaced beyond bonding distance.
        m = alkane_sheet(6, 3)
        assert len(bonds(m)) == 3 * (3 * 6 + 1)


class TestDensityRegimes:
    def test_compact_system_is_denser(self):
        """The paper's conclusion: compact molecules yield denser tensors."""
        chain = build_abcd_problem(
            alkane(27), TilingVariant("1d", 4, 16), seed=0
        )
        drop = build_abcd_problem(
            water_cluster(27, seed=0), TilingVariant("3d", 4, 16), seed=0
        )
        assert drop.v_shape.element_density > 2 * chain.v_shape.element_density
        assert drop.t_shape.element_density > chain.t_shape.element_density

    def test_sheet_between_chain_and_droplet(self):
        chain = build_abcd_problem(alkane(24), TilingVariant("1d", 4, 12), seed=0)
        sheet = build_abcd_problem(
            alkane_sheet(8, 3), TilingVariant("2d", 4, 12), seed=0
        )
        assert sheet.v_shape.element_density > chain.v_shape.element_density
