"""Property-based invariants of the planner across random machines.

The inspector must produce valid, complete, budget-respecting plans for
*any* machine geometry (GPU memory, GPUs per node, node counts, memory
fractions) — not just the Summit defaults.  These tests fuzz that space.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PlanOptions, inspect
from repro.core.analytic import simulate
from repro.core.block_partition import InfeasiblePartitionError
from repro.machine.spec import GpuSpec, MachineSpec, NodeSpec
from repro.sparse import gemm_flops, gemm_task_count, random_shape_with_density
from repro.tiling import random_tiling

MIB = 2**20


@st.composite
def machines(draw):
    gpu_mem = draw(st.sampled_from([8 * MIB, 32 * MIB, 256 * MIB, 16 * 1024 * MIB]))
    ngpus = draw(st.integers(min_value=1, max_value=6))
    nnodes = draw(st.integers(min_value=1, max_value=4))
    return MachineSpec(
        nnodes=nnodes,
        node=NodeSpec(ngpus=ngpus),
        gpu=GpuSpec(memory_bytes=gpu_mem),
    )


@st.composite
def instances(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    density = draw(st.floats(min_value=0.1, max_value=1.0))
    rng = np.random.default_rng(seed)
    rows = random_tiling(int(rng.integers(200, 700)), 30, 120, seed=rng)
    inner = random_tiling(int(rng.integers(800, 2500)), 30, 120, seed=rng)
    a = random_shape_with_density(rows, inner, density, seed=rng)
    b = random_shape_with_density(inner, inner, density, seed=rng)
    return a, b


class TestPlannerProperties:
    @settings(max_examples=25, deadline=None)
    @given(instances(), machines(), st.integers(min_value=1, max_value=3))
    def test_plan_complete_and_budgeted(self, inst, machine, p):
        a, b = inst
        p = min(p, a.ntile_rows, machine.nnodes * 1)
        try:
            plan = inspect(a, b, machine, p=p)
        except InfeasiblePartitionError:
            # Legitimate only when a single column cannot fit the GPU.
            col_max = int(
                np.max(
                    np.asarray(b.tile_bytes().sum(axis=0)).ravel()
                )
            )
            assert col_max > machine.gpu.memory_bytes * 0.4
            return
        except ValueError as e:
            assert "exceeds" in str(e)  # p larger than the process count
            return
        plan.validate()
        assert plan.total_tasks == gemm_task_count(a, b)
        assert plan.total_flops == pytest.approx(gemm_flops(a, b))

    @settings(max_examples=10, deadline=None)
    @given(instances(), machines())
    def test_simulation_finite_and_positive(self, inst, machine):
        a, b = inst
        try:
            plan = inspect(a, b, machine, p=1)
        except InfeasiblePartitionError:
            return
        rep = simulate(plan, machine)
        assert np.isfinite(rep.makespan) and rep.makespan > 0
        assert rep.perf > 0

    @settings(max_examples=10, deadline=None)
    @given(instances(), st.floats(min_value=0.2, max_value=0.9))
    def test_block_fraction_respected(self, inst, frac):
        a, b = inst
        machine = MachineSpec(nnodes=1, node=NodeSpec(), gpu=GpuSpec(memory_bytes=64 * MIB))
        opts = PlanOptions(block_fraction=frac, chunk_fraction=min(0.25, (1 - frac) / 2))
        try:
            plan = inspect(a, b, machine, options=opts)
        except InfeasiblePartitionError:
            return
        budget = machine.gpu.memory_bytes * frac
        for proc in plan.procs:
            for blk in proc.blocks:
                assert blk.b_bytes + blk.c_bytes <= budget or len(blk.columns) == 1

    @settings(max_examples=8, deadline=None)
    @given(instances())
    def test_numeric_exact_on_tiny_gpus(self, inst):
        """Even with absurdly small GPUs (many blocks/chunks), the plan
        computes the exact product."""
        from repro.runtime.numeric import execute_plan
        from repro.sparse.construct import from_shape

        a_shape, b_shape = inst
        machine = MachineSpec(nnodes=1, node=NodeSpec(ngpus=2), gpu=GpuSpec(memory_bytes=8 * MIB))
        try:
            plan = inspect(a_shape, b_shape, machine)
        except InfeasiblePartitionError:
            return
        a = from_shape(a_shape, seed=1)
        b = from_shape(b_shape, seed=2)
        c, stats = execute_plan(plan, a, b)
        from repro.sparse.gemm_ref import block_gemm_reference

        assert c.allclose(block_gemm_reference(a, b))
        assert stats.gpu_peak_bytes <= machine.gpu.memory_bytes
