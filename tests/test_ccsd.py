"""Tests for the mock CCSD amplitude iterations."""

import numpy as np
import pytest

from repro.chem.ccsd import CcsdTrace, scale_coupling, solve_amplitudes
from repro.machine import summit
from repro.sparse import random_block_sparse
from repro.tiling import random_tiling


def operands(seed=0, m=200, k=800):
    rows = random_tiling(m, 25, 80, seed=seed)
    inner = random_tiling(k, 25, 80, seed=seed + 1)
    t0 = random_block_sparse(rows, inner, 0.4, seed=seed + 2)
    v = random_block_sparse(inner, inner, 0.4, seed=seed + 3)
    return t0, scale_coupling(v, 0.5)


class TestScaleCoupling:
    def test_norm_target(self):
        _, vs = operands()
        assert vs.norm_fro() == pytest.approx(0.5)

    def test_rejects_bad_target(self):
        _, vs = operands()
        with pytest.raises(ValueError):
            scale_coupling(vs, 1.5)
        with pytest.raises(ValueError):
            scale_coupling(vs, 0.0)

    def test_original_unchanged(self):
        rows = random_tiling(100, 20, 50, seed=9)
        v = random_block_sparse(rows, rows, 0.5, seed=10)
        before = v.norm_fro()
        scale_coupling(v)
        assert v.norm_fro() == pytest.approx(before)


class TestSolveAmplitudes:
    def test_converges_and_residual_decreases(self):
        t0, vs = operands(seed=1)
        trace = solve_amplitudes(t0, vs, max_iter=40, tol=1e-10)
        assert trace.converged
        r = trace.residual_norms
        assert all(b < a for a, b in zip(r, r[1:]))
        # Paper: "typically 10-20 iterations" at this contraction factor.
        assert trace.iterations <= 40

    def test_fixed_point_satisfied(self):
        t0, vs = operands(seed=2)
        trace = solve_amplitudes(t0, vs, max_iter=60, tol=1e-12)
        t_star = trace.t.to_dense()
        lhs = t_star
        rhs = t0.to_dense() + t_star @ vs.to_dense()
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_matches_direct_solve(self):
        t0, vs = operands(seed=3, m=120, k=300)
        trace = solve_amplitudes(t0, vs, max_iter=80, tol=1e-13)
        n = vs.rows.extent
        direct = t0.to_dense() @ np.linalg.inv(np.eye(n) - vs.to_dense())
        assert np.allclose(trace.t.to_dense(), direct, atol=1e-8)

    def test_distributed_contraction_agrees_with_serial(self):
        t0, vs = operands(seed=4, m=150, k=400)
        serial = solve_amplitudes(t0, vs, max_iter=10, tol=0)
        dist = solve_amplitudes(
            t0, vs, max_iter=10, tol=0, machine=summit(2), p=2
        )
        assert serial.t.allclose(dist.t)
        assert np.allclose(serial.residual_norms, dist.residual_norms)

    def test_damped_iteration_still_converges(self):
        t0, vs = operands(seed=5)
        trace = solve_amplitudes(t0, vs, max_iter=120, tol=1e-9, mixing=0.5)
        assert trace.converged

    def test_pruning_keeps_solution_close(self):
        t0, vs = operands(seed=6)
        exact = solve_amplitudes(t0, vs, max_iter=60, tol=1e-12)
        pruned = solve_amplitudes(t0, vs, max_iter=60, tol=1e-12, prune_tol=1e-6)
        diff = exact.t.copy().axpy(-1.0, pruned.t).norm_fro()
        assert diff < 1e-3 * exact.t.norm_fro()
        assert pruned.nnz_history[-1] <= exact.nnz_history[-1]

    def test_budget_exhaustion_not_converged(self):
        t0, vs = operands(seed=7)
        trace = solve_amplitudes(t0, vs, max_iter=2, tol=1e-14)
        assert not trace.converged
        assert trace.iterations == 2

    def test_nonconforming(self):
        t0, _ = operands(seed=8)
        bad_v, _ = operands(seed=9, k=500)
        with pytest.raises(ValueError):
            solve_amplitudes(t0, bad_v)

    def test_trace_type(self):
        t0, vs = operands(seed=10)
        assert isinstance(solve_amplitudes(t0, vs, max_iter=1, tol=0), CcsdTrace)


class TestPlanReuse:
    def test_plans_built_less_than_iterations(self):
        t0, vs = operands(seed=11, m=150, k=400)
        trace = solve_amplitudes(
            t0, vs, max_iter=12, tol=0, machine=summit(1), p=1
        )
        assert trace.iterations == 12
        # T's occupancy stabilizes after the first few sweeps.
        assert 1 <= trace.plans_built < trace.iterations

    def test_reused_plan_result_identical_to_serial(self):
        t0, vs = operands(seed=12, m=150, k=400)
        dist = solve_amplitudes(t0, vs, max_iter=8, tol=0, machine=summit(1))
        serial = solve_amplitudes(t0, vs, max_iter=8, tol=0)
        assert dist.t.allclose(serial.t)

    def test_serial_path_builds_no_plans(self):
        t0, vs = operands(seed=13)
        trace = solve_amplitudes(t0, vs, max_iter=3, tol=0)
        assert trace.plans_built == 0
