"""Tests for the electronic-structure problem generator."""

import numpy as np
import pytest

from repro.chem import (
    C65H132_VARIANTS,
    ScreeningModel,
    TilingVariant,
    alkane,
    ao_centers,
    ao_count,
    bond_orbitals,
    build_abcd_problem,
    compute_traits,
    make_tilings,
    occupied_count,
)
from repro.chem.molecule import bonds
from repro.sparse.shape_algebra import product_shape


class TestMolecule:
    def test_c65h132_counts(self):
        m = alkane(65)
        assert m.formula() == "C65H132"
        assert m.natoms == 197
        assert m.count("C") == 65 and m.count("H") == 132

    def test_small_alkanes(self):
        assert alkane(1).formula() == "CH4"
        assert alkane(2).formula() == "C2H6"
        assert alkane(4).formula() == "C4H10"

    def test_quasi_1d_geometry(self):
        m = alkane(30)
        pos = m.positions()
        spread = pos.max(axis=0) - pos.min(axis=0)
        assert spread[0] > 10 * spread[1]
        assert spread[0] > 10 * spread[2]

    def test_bond_detection(self):
        # C_n H_{2n+2}: n-1 C-C bonds + 2n+2 C-H bonds = 3n+1 bonds.
        for n in (1, 2, 5, 10):
            m = alkane(n)
            assert len(bonds(m)) == 3 * n + 1

    def test_bond_lengths_physical(self):
        m = alkane(8)
        pos = m.positions()
        syms = m.symbols()
        for i, j in bonds(m):
            d = np.linalg.norm(pos[i] - pos[j])
            if syms[i] == syms[j] == "C":
                assert d == pytest.approx(1.526, abs=0.01)
            else:
                assert d == pytest.approx(1.094, abs=0.01)


class TestBasisAndOrbitals:
    def test_paper_dimensions(self):
        m = alkane(65)
        assert ao_count(m) == 1570  # the paper's U
        assert occupied_count(m) == 196  # the paper's O

    def test_ao_centers_shape(self):
        m = alkane(3)
        centers = ao_centers(m)
        assert centers.shape == (ao_count(m), 3)

    def test_bond_orbitals_ordered_along_chain(self):
        m = alkane(20)
        orbs = bond_orbitals(m)
        assert orbs.shape == (occupied_count(m), 3)
        assert np.all(np.diff(orbs[:, 0]) >= -1e-12)

    def test_unknown_element_rejected(self):
        from repro.chem.molecule import Atom, Molecule

        bad = Molecule((Atom("Xx", (0, 0, 0)),))
        with pytest.raises(ValueError):
            ao_count(bad)


class TestTilings:
    def test_v1_grid_matches_paper_fig5(self):
        t = make_tilings(alkane(65), C65H132_VARIANTS["v1"], seed=0)
        assert t.occ_pair.fused.ntiles == 64  # 8^2 rows in Fig. 5
        assert t.ao_pair.fused.ntiles == 4225  # 65^2 columns in Fig. 5
        assert t.occ_pair.fused.tiling.extent == 196**2
        assert t.ao_pair.fused.tiling.extent == 1570**2

    def test_pair_geometry_consistent(self):
        t = make_tilings(alkane(20), TilingVariant("t", 4, 10), seed=1)
        g = t.ao_pair
        assert g.centers.shape == (100, 3)
        assert g.separations.shape == (100,)
        # Diagonal pairs have zero separation.
        for c in range(10):
            assert g.separations[c * 10 + c] == pytest.approx(0.0)

    def test_variant_granularity_ordering(self):
        m = alkane(65)
        n1 = make_tilings(m, C65H132_VARIANTS["v1"], seed=0).ao_pair.fused.ntiles
        n3 = make_tilings(m, C65H132_VARIANTS["v3"], seed=0).ao_pair.fused.ntiles
        assert n1 > n3


class TestScreening:
    def test_v_shape_is_kron_of_proximity(self):
        t = make_tilings(alkane(10), TilingVariant("t", 3, 8), seed=2)
        sm = ScreeningModel()
        v = sm.v_shape(t)
        n1 = sm.proximity(t.ao, t.ao, sm.v_cutoff).toarray() > 0
        expect = np.kron(n1, n1)
        assert np.array_equal(v.pattern().toarray() > 0, expect)

    def test_v_shape_symmetric_pattern(self):
        t = make_tilings(alkane(12), TilingVariant("t", 3, 8), seed=3)
        v = sm = ScreeningModel().v_shape(t)
        pat = v.pattern()
        assert (pat != pat.T).nnz == 0

    def test_t_shape_rows_restricted_to_kept_pairs(self):
        t = make_tilings(alkane(30), TilingVariant("t", 6, 15), seed=4)
        sm = ScreeningModel(occ_pair_cutoff=10.0)
        ts = sm.t_shape(t)
        kept = sm.kept_pair_values(t) > 0
        row_has = np.asarray(ts.pattern().sum(axis=1)).ravel() > 0
        assert not np.any(row_has & ~kept)

    def test_cutoffs_monotone(self):
        t = make_tilings(alkane(30), TilingVariant("t", 6, 15), seed=5)
        loose = ScreeningModel(v_cutoff=10.0).v_shape(t).nnz_tiles
        tight = ScreeningModel(v_cutoff=4.0).v_shape(t).nnz_tiles
        assert loose > tight

    def test_norms_decay_with_distance(self):
        t = make_tilings(alkane(40), TilingVariant("t", 6, 20), seed=6)
        sm = ScreeningModel()
        n1 = sm.proximity(t.ao, t.ao, sm.v_cutoff)
        dense = n1.toarray()
        # Self-pairs have the largest norms.
        offdiag = dense.copy()
        np.fill_diagonal(offdiag, 0)
        assert dense.diagonal().min() >= offdiag.max() - 1e-12

    def test_kept_pair_elements_bounded(self):
        t = make_tilings(alkane(65), C65H132_VARIANTS["v1"], seed=0)
        sm = ScreeningModel()
        kept = sm.kept_pair_elements(t)
        assert 0 < kept <= 196**2


class TestAbcdProblem:
    def test_shapes_conform(self):
        prob = build_abcd_problem(alkane(15), TilingVariant("t", 4, 10), seed=7)
        assert prob.t_shape.cols == prob.v_shape.rows
        assert prob.r_shape == product_shape(prob.t_shape, prob.v_shape)
        assert prob.M == prob.O**2
        assert prob.N == prob.K == prob.U**2

    def test_named_variant_lookup(self):
        prob = build_abcd_problem(variant="v3", seed=0)
        assert prob.variant.name == "v3"

    def test_describe(self):
        prob = build_abcd_problem(alkane(10), TilingVariant("t", 3, 6), seed=8)
        d = prob.describe()
        assert "density" in d and "C10H22" in d

    def test_deterministic_given_seed(self):
        p1 = build_abcd_problem(alkane(12), TilingVariant("t", 3, 8), seed=9)
        p2 = build_abcd_problem(alkane(12), TilingVariant("t", 3, 8), seed=9)
        assert p1.t_shape == p2.t_shape
        assert p1.v_shape == p2.v_shape


class TestTraits:
    def test_traits_sanity_small_molecule(self):
        prob = build_abcd_problem(alkane(20), TilingVariant("t", 5, 12), seed=10)
        tr = compute_traits(prob)
        assert tr.tasks >= tr.tasks_opt > 0
        assert tr.flops >= tr.flops_opt > 0
        assert 0 < tr.density_v <= 1
        assert 0 < tr.density_t <= 1
        assert tr.density_r >= tr.density_r_opt

    def test_rows_formatting(self):
        prob = build_abcd_problem(alkane(10), TilingVariant("t", 3, 6), seed=11)
        rows = compute_traits(prob).rows()
        labels = [r[0] for r in rows]
        assert "#GEMM tasks" in labels and "Density of V" in labels
