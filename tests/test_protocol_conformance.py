"""Conformance pass: the declared protocol model is pinned to the code."""

import textwrap
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis.protocol import (
    COORDINATOR_ROLE,
    DATA_CHANNEL,
    WORKER_ROLE,
    MsgSpec,
    build_protocol_model,
    check_protocol_conformance,
)


@pytest.fixture(scope="module")
def model():
    return build_protocol_model()


def _check(model, tmp_path, source):
    f = tmp_path / "fixture.py"
    f.write_text(textwrap.dedent(source))
    return check_protocol_conformance(model, paths=[f])


class TestRealTree:
    def test_dist_tree_conforms_to_model(self, model):
        """Every send/recv site in repro.dist is annotated and modeled."""
        report = check_protocol_conformance(model)
        assert report.ok, report.render()
        assert report.files_scanned >= 5  # the whole dist package was read

    def test_model_with_phantom_message_drifts(self, model):
        """A message the code never implements is flagged (M411)."""
        phantom = MsgSpec("phantom", WORKER_ROLE, COORDINATOR_ROLE,
                          DATA_CHANNEL, 64)
        drifted = replace(model, messages=model.messages + (phantom,))
        report = check_protocol_conformance(drifted)
        assert report.rules_fired() == {"M411"}
        assert all("phantom" in f.message for f in report.findings)


class TestAnnotationChecks:
    def test_annotated_site_is_clean(self, model, tmp_path):
        report = _check(model, tmp_path, '''
            def worker_main(endpoint):
                """Run one rank.

                Protocol:
                    recv scatter: coordinator -> worker [data]
                    send done: worker -> coordinator [data]
                """
                msg = endpoint.recv()
                endpoint.send(-1, ("done", 0, msg))
        ''')
        assert not report.by_rule("M410")
        assert not report.by_rule("M412")

    def test_unannotated_send_fires_m412(self, model, tmp_path):
        report = _check(model, tmp_path, '''
            def worker_main(endpoint):
                endpoint.send(-1, ("done", 0, None))
        ''')
        assert report.rules_fired() >= {"M412"}
        f = report.by_rule("M412")[0]
        assert f.location.line == 3
        assert f.location.obj == "worker_main"

    def test_unknown_message_annotation_fires_m410(self, model, tmp_path):
        report = _check(model, tmp_path, '''
            def worker_main(endpoint):
                """Protocol:
                    send goodbye: worker -> coordinator [data]
                """
                endpoint.send(-1, None)
        ''')
        assert "M410" in report.rules_fired()
        assert "goodbye" in report.by_rule("M410")[0].message

    def test_wrong_roles_fire_m410(self, model, tmp_path):
        report = _check(model, tmp_path, '''
            def worker_main(endpoint):
                """Protocol:
                    send done: coordinator -> worker [data]
                """
                endpoint.send(-1, None)
        ''')
        assert "M410" in report.rules_fired()
        assert "model declares" in report.by_rule("M410")[0].message

    def test_channel_mismatch_leaves_site_uncovered(self, model, tmp_path):
        """A data-channel annotation cannot cover a telemetry send."""
        report = _check(model, tmp_path, '''
            def beat(endpoint):
                """Protocol:
                    send done: worker -> coordinator [data]
                """
                endpoint.send_telemetry(None)
        ''')
        assert "M412" in report.rules_fired()

    def test_module_docstring_covers_nested_sites(self, model, tmp_path):
        report = _check(model, tmp_path, '''
            """Fixture module.

            Protocol:
                send heartbeat: worker -> coordinator [telemetry]
            """

            class Beater:
                def loop(self, endpoint):
                    endpoint.send_telemetry(None)
        ''')
        assert not report.by_rule("M412")

    def test_unparsable_file_reports_l300(self, model, tmp_path):
        f = tmp_path / "broken.py"
        f.write_text("def f(:\n")
        report = check_protocol_conformance(model, paths=[f])
        assert "L300" in report.rules_fired()
