"""Tests for clustered low-rank (CLR) tile compression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import random_block_sparse
from repro.sparse.lowrank import (
    ClrMatrix,
    LowRankTile,
    clr_flops,
    clr_gemm,
    compress_tile,
)
from repro.tiling import Tiling, random_tiling


def decaying_matrix(m, n, decay=0.5, seed=0):
    """A matrix with geometric singular-value decay (compressible)."""
    rng = np.random.default_rng(seed)
    r = min(m, n)
    u, _ = np.linalg.qr(rng.standard_normal((m, r)))
    v, _ = np.linalg.qr(rng.standard_normal((n, r)))
    s = decay ** np.arange(r)
    return (u * s) @ v.T


class TestCompressTile:
    def test_error_within_tolerance(self):
        data = decaying_matrix(40, 30)
        for tol in (1e-1, 1e-3, 1e-6):
            t = compress_tile(data, tol, only_if_smaller=False)
            assert isinstance(t, LowRankTile)
            assert np.linalg.norm(data - t.to_dense()) <= tol * 1.0001

    def test_rank_grows_as_tol_shrinks(self):
        data = decaying_matrix(40, 30)
        ranks = []
        for tol in (1e-1, 1e-4, 1e-8):
            t = compress_tile(data, tol, only_if_smaller=False)
            ranks.append(t.rank)
        assert ranks[0] < ranks[1] < ranks[2]

    def test_incompressible_tile_stays_dense(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((20, 20))  # flat spectrum
        t = compress_tile(data, 1e-12)
        assert isinstance(t, np.ndarray)

    def test_zero_tolerance_exact(self):
        data = decaying_matrix(10, 8)
        t = compress_tile(data, 0.0, only_if_smaller=False)
        dense = t.to_dense() if isinstance(t, LowRankTile) else t
        assert np.allclose(dense, data)

    def test_rank_zero_tile(self):
        data = 1e-12 * np.ones((5, 7))
        t = compress_tile(data, 1e-3, only_if_smaller=False)
        assert isinstance(t, LowRankTile) and t.rank == 0
        assert t.to_dense().shape == (5, 7)
        assert np.all(t.to_dense() == 0)

    def test_negative_tol_rejected(self):
        with pytest.raises(ValueError):
            compress_tile(np.ones((2, 2)), -1.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000), st.floats(min_value=1e-6, max_value=1.0))
    def test_property_error_bound(self, seed, tol):
        data = decaying_matrix(15, 12, seed=seed)
        t = compress_tile(data, tol, only_if_smaller=False)
        dense = t.to_dense() if isinstance(t, LowRankTile) else t
        assert np.linalg.norm(data - dense) <= tol * 1.0001


class TestClrMatrix:
    def _compressible(self, seed=0, decay=0.3, tile=60):
        rows = Tiling.uniform(4 * tile, tile)
        cols = Tiling.uniform(4 * tile, tile)
        from repro.sparse import BlockSparseMatrix

        m = BlockSparseMatrix(rows, cols)
        rng = np.random.default_rng(seed)
        for i in range(rows.ntiles):
            for j in range(cols.ntiles):
                if rng.uniform() < 0.6:
                    m.set_tile(i, j, decaying_matrix(tile, tile, decay=decay, seed=seed + i * 7 + j))
        return m

    def test_compression_saves_memory(self):
        m = self._compressible()
        clr = ClrMatrix.compress(m, tol=1e-6)
        assert clr.nbytes < m.nbytes
        assert clr.compression_ratio() > 1.5
        assert clr.average_rank() < 30

    def test_roundtrip_within_tol(self):
        m = self._compressible(seed=3)
        tol = 1e-6
        clr = ClrMatrix.compress(m, tol)
        back = clr.to_block_sparse()
        for key, tile in m.items():
            assert np.linalg.norm(tile - back.get_tile(*key)) <= tol * 1.0001

    def test_gemm_matches_dense_reference(self):
        a = self._compressible(seed=5)
        b = self._compressible(seed=6)
        tol = 1e-9
        clr_a = ClrMatrix.compress(a, tol)
        clr_b = ClrMatrix.compress(b, tol)
        c = clr_gemm(clr_a, clr_b)
        ref = a.to_dense() @ b.to_dense()
        assert np.allclose(c.to_dense(), ref, atol=1e-5)

    def test_gemm_mixed_dense_and_lowrank(self):
        # Incompressible A (dense tiles) against compressible B.
        rows = random_tiling(90, 20, 40, seed=1)
        a = random_block_sparse(rows, rows, 0.7, seed=2)  # flat spectra
        b_plain = random_block_sparse(rows, rows, 0.7, seed=3)
        clr_a = ClrMatrix.compress(a, tol=1e-12)  # mostly dense tiles
        clr_b = ClrMatrix.compress(b_plain, tol=1e-9)
        c = clr_gemm(clr_a, clr_b)
        ref = a.to_dense() @ b_plain.to_dense()
        assert np.allclose(c.to_dense(), ref, atol=1e-5)

    def test_clr_flops_below_dense_flops(self):
        a = self._compressible(seed=7)
        clr = ClrMatrix.compress(a, tol=1e-6)
        dense_flops = sum(
            2.0 * 60 * 60 * 60
            for (i, k) in clr.tiles
            for (k2, j) in clr.tiles
            if k2 == k
        )
        assert clr_flops(clr, clr) < dense_flops

    def test_gemm_nonconforming(self):
        a = ClrMatrix(Tiling.single(3), Tiling.single(4))
        b = ClrMatrix(Tiling.single(5), Tiling.single(6))
        with pytest.raises(ValueError):
            clr_gemm(a, b)
