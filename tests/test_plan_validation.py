"""Mutation tests: the plan validator must catch corrupted plans.

`ExecutionPlan.validate()` guards the invariants every executor relies
on; these tests tamper with healthy plans and assert the validator
actually trips — a validator that never fires is no validator.
"""

import numpy as np
import pytest

from repro.core import inspect
from repro.machine import summit
from repro.sparse import random_shape_with_density
from repro.tiling import random_tiling


@pytest.fixture()
def plan():
    rows = random_tiling(600, 40, 160, seed=0)
    inner = random_tiling(3000, 40, 160, seed=1)
    a = random_shape_with_density(rows, inner, 0.5, seed=2)
    b = random_shape_with_density(inner, inner, 0.5, seed=3)
    return inspect(a, b, summit(2), p=2, gpus_per_proc=3)


class TestValidatorTrips:
    def test_healthy_plan_passes(self, plan):
        plan.validate()

    def test_detects_missing_column(self, plan):
        proc = next(p for p in plan.procs if p.columns.size > 0)
        proc.columns = proc.columns[1:]
        with pytest.raises(AssertionError, match="partitioned"):
            plan.validate()

    def test_detects_duplicated_column(self, plan):
        proc = next(p for p in plan.procs if p.columns.size > 0)
        proc.columns = np.concatenate((proc.columns, proc.columns[:1]))
        with pytest.raises(AssertionError, match="partitioned"):
            plan.validate()

    def test_detects_block_over_budget(self, plan):
        blk = next(
            b for p in plan.procs for b in p.blocks if len(b.columns) > 1
        )
        blk.b_bytes = int(plan.gpu_memory_bytes * 0.96)
        with pytest.raises(AssertionError):
            plan.validate()

    def test_detects_oversized_chunk(self, plan):
        ch = next(
            c
            for p in plan.procs
            for b in p.blocks
            for c in b.chunks
            if c.ntiles > 1
        )
        ch.a_bytes = int(plan.gpu_memory_bytes * 0.9)
        with pytest.raises(AssertionError):
            plan.validate()


class TestPlanAccessors:
    def test_gpu_blocks_partition_blocks(self, plan):
        for proc in plan.procs:
            seen = []
            for g in range(plan.grid.gpus_per_proc):
                seen.extend(id(b) for b in proc.gpu_blocks(g))
            assert sorted(seen) == sorted(id(b) for b in proc.blocks)

    def test_block_a_bytes_sums_chunks(self, plan):
        for proc in plan.procs:
            for blk in proc.blocks:
                assert blk.a_bytes == sum(c.a_bytes for c in blk.chunks)

    def test_proc_totals_sum_blocks(self, plan):
        for proc in plan.procs:
            assert proc.ntasks == sum(b.ntasks for b in proc.blocks)
            assert proc.flops == pytest.approx(sum(b.flops for b in proc.blocks))
