"""Tests for the inspector: plans must be complete, budgeted, and exact.

The critical invariant: whatever the grid and memory parameters, the plan
executes *exactly* the task set of the block-sparse product — the same
task count and flop count the shape algebra computes directly.
"""

import numpy as np
import pytest

from repro.core import inspect, PlanOptions
from repro.core.comm_model import exact_within_worst_case
from repro.machine import summit
from repro.sparse import (
    gemm_flops,
    gemm_task_count,
    random_shape_with_density,
    screened_product,
)
from repro.sparse.construct import from_shape
from repro.tiling import random_tiling


def small_instance(density=0.5, seed=0, m=900, nk=4000):
    rows = random_tiling(m, 50, 200, seed=seed)
    inner = random_tiling(nk, 50, 200, seed=seed + 1)
    a = random_shape_with_density(rows, inner, density, seed=seed + 2)
    b = random_shape_with_density(inner, inner, density, seed=seed + 3)
    return a, b


class TestInspectorTotals:
    @pytest.mark.parametrize("p,gpp", [(1, 6), (2, 6), (1, 3), (4, 2)])
    def test_task_and_flop_totals_match_shape_algebra(self, p, gpp):
        a, b = small_instance()
        plan = inspect(a, b, summit(4), p=p, gpus_per_proc=gpp)
        assert plan.total_tasks == gemm_task_count(a, b)
        assert plan.total_flops == pytest.approx(gemm_flops(a, b))

    @pytest.mark.parametrize("density", [1.0, 0.5, 0.1])
    def test_totals_across_densities(self, density):
        a, b = small_instance(density=density, seed=7)
        plan = inspect(a, b, summit(2), p=1)
        assert plan.total_tasks == gemm_task_count(a, b)
        assert plan.total_flops == pytest.approx(gemm_flops(a, b))

    def test_validate_passes(self):
        a, b = small_instance(seed=11)
        plan = inspect(a, b, summit(2), p=2, gpus_per_proc=3)
        plan.validate()

    def test_comm_within_worst_case(self):
        a, b = small_instance(seed=13)
        plan = inspect(a, b, summit(4), p=2)
        assert exact_within_worst_case(plan)

    def test_a_traffic_counts_each_needed_tile_once_per_proc(self):
        a, b = small_instance(seed=17)
        plan = inspect(a, b, summit(2), p=1)
        for proc in plan.procs:
            keys = proc.a_needed_rows * a.ntile_cols + proc.a_needed_cols
            assert np.unique(keys).size == keys.size

    def test_b_generation_partitioned_within_grid_row(self):
        a, b = small_instance(seed=19)
        plan = inspect(a, b, summit(4), p=1)
        # With p = 1, the grid row partitions B's columns, so the summed
        # generation bytes equal B's nonzero bytes exactly... except tiles
        # whose column was assigned but pruned; compare against per-column
        # sums of the shape.
        total_gen = sum(pp.b_gen_bytes for pp in plan.procs)
        assert total_gen == b.nbytes

    def test_b_generation_replicated_across_grid_rows(self):
        a, b = small_instance(seed=23)
        plan1 = inspect(a, b, summit(4), p=1)
        plan2 = inspect(a, b, summit(4), p=2)
        g1 = sum(pp.b_gen_bytes for pp in plan1.procs)
        g2 = sum(pp.b_gen_bytes for pp in plan2.procs)
        assert g2 == 2 * g1  # p copies of every column

    def test_more_grid_rows_reduce_a_traffic(self):
        a, b = small_instance(seed=29)
        vol = []
        for p in (1, 2, 4):
            plan = inspect(a, b, summit(4), p=p)
            vol.append(sum(pp.a_recv_bytes for pp in plan.procs))
        assert vol[0] > vol[1] > vol[2]

    def test_screened_plan_matches_screened_product(self):
        a_mat = from_shape(small_instance(seed=31)[0], seed=1)
        rows = a_mat.rows
        inner = a_mat.cols
        b_shape = random_shape_with_density(inner, inner, 0.5, seed=33)
        b_mat = from_shape(b_shape, seed=2)
        a = a_mat.sparse_shape(with_norms=True)
        b = b_mat.sparse_shape(with_norms=True)
        tau = float(np.median(a.csr.data) * np.median(b.csr.data))
        plan = inspect(a, b, summit(2), p=1, options=PlanOptions(screen_threshold=tau))
        ref = screened_product(a, b, tau)
        assert plan.total_tasks == ref.task_count
        assert plan.total_flops == pytest.approx(ref.flops)

    def test_screened_plan_loads_fewer_a_tiles(self):
        a, b = small_instance(seed=37)
        rng = np.random.default_rng(0)
        an = a.csr.copy(); an.data = rng.uniform(0.01, 1, an.nnz)
        bn = b.csr.copy(); bn.data = rng.uniform(0.01, 1, bn.nnz)
        a2, b2 = a.with_norms(an), b.with_norms(bn)
        plain = inspect(a2, b2, summit(2), p=1)
        screened = inspect(
            a2, b2, summit(2), p=1, options=PlanOptions(screen_threshold=0.35)
        )
        assert screened.total_tasks < plain.total_tasks
        tiles = lambda pl: sum(p.a_needed_rows.size for p in pl.procs)  # noqa: E731
        assert tiles(screened) <= tiles(plain)

    def test_nonconforming_raises(self):
        a, _ = small_instance()
        _, b = small_instance(seed=100, nk=5000)
        with pytest.raises(ValueError):
            inspect(a, b, summit(1))


class TestPlanStructure:
    def test_columns_partitioned_per_grid_row(self):
        a, b = small_instance(seed=41)
        plan = inspect(a, b, summit(4), p=2)
        for r in range(2):
            cols = np.concatenate([p.columns for p in plan.procs if p.row == r])
            assert sorted(cols.tolist()) == list(range(b.ntile_cols))

    def test_blocks_on_valid_gpus(self):
        a, b = small_instance(seed=43)
        plan = inspect(a, b, summit(2), gpus_per_proc=3)
        for proc in plan.procs:
            for blk in proc.blocks:
                assert 0 <= blk.gpu < 3

    def test_chunk_tiles_lie_in_slice_and_k_support(self):
        a, b = small_instance(seed=47)
        plan = inspect(a, b, summit(2), p=2)
        for proc in plan.procs:
            slice_set = set(proc.a_slice_rows.tolist())
            for blk in proc.blocks:
                ks = set(blk.k_tiles.tolist())
                for ch in blk.chunks:
                    assert set(ch.a_rows.tolist()) <= slice_set
                    assert set(ch.a_cols.tolist()) <= ks

    def test_chunk_device_seconds_positive(self):
        a, b = small_instance(seed=53)
        plan = inspect(a, b, summit(1))
        for proc in plan.procs:
            for blk in proc.blocks:
                for ch in blk.chunks:
                    assert ch.device_seconds > 0
                    assert ch.ntasks > 0
                    assert ch.flops > 0

    def test_summary_mentions_tasks(self):
        a, b = small_instance(seed=59)
        plan = inspect(a, b, summit(1))
        assert "GEMM tasks" in plan.summary()
