"""SARIF 2.1.0 export: structure, severity mapping, validation, round-trip."""

import json

import pytest

from repro.analysis import (
    AnalysisReport,
    SarifValidationError,
    to_sarif,
    validate_sarif,
    validate_sarif_file,
    write_sarif,
)


def _report():
    r = AnalysisReport()
    r.add("L306", "wall clock in dist", file="src/repro/dist/x.py", line=12)
    r.add("L301", "leaked segment", file="src/repro/dist/y.py", line=3)
    r.add("P103", "C tile owned twice", obj="rank 1 / block 0")
    r.add("M401", "protocol deadlock", obj="protocol scenario ranks=2")
    return r


class TestStructure:
    def test_document_shape(self):
        doc = to_sarif(_report())
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        assert len(run["results"]) == 4

    def test_rules_array_lists_only_fired_rules_once(self):
        run = to_sarif(_report())["runs"][0]
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert ids == sorted({"L301", "L306", "M401", "P103"})
        for res in run["results"]:
            assert ids[res["ruleIndex"]] == res["ruleId"]

    def test_severity_maps_to_sarif_levels(self):
        r = AnalysisReport()
        r.add("M401", "deadlock")  # registry severity: error
        r.add("L301", "leak")      # registry severity: warning
        levels = {x["ruleId"]: x["level"]
                  for x in to_sarif(r)["runs"][0]["results"]}
        assert levels == {"M401": "error", "L301": "warning"}

    def test_locations_physical_and_logical(self):
        results = to_sarif(_report())["runs"][0]["results"]
        phys = results[0]["locations"][0]["physicalLocation"]
        assert phys["artifactLocation"]["uri"] == "src/repro/dist/x.py"
        assert phys["region"]["startLine"] == 12
        logical = results[2]["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"] == "rank 1 / block 0"

    def test_empty_report_is_valid_sarif(self):
        doc = to_sarif(AnalysisReport())
        validate_sarif(doc)
        assert doc["runs"][0]["results"] == []


class TestValidation:
    def test_generated_documents_validate(self):
        validate_sarif(to_sarif(_report()))

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda d: d.update(version="2.0.0"), "version"),
        (lambda d: d.update(runs=[]), "runs"),
        (lambda d: d["runs"][0]["tool"]["driver"].pop("name"), "name"),
        (lambda d: d["runs"][0]["results"][0].update(level="fatal"), "level"),
        (lambda d: d["runs"][0]["results"][0].pop("message"), "message"),
        (lambda d: d["runs"][0]["results"][0].update(ruleIndex=99),
         "ruleIndex"),
    ])
    def test_broken_documents_rejected(self, mutate, fragment):
        doc = to_sarif(_report())
        mutate(doc)
        with pytest.raises(SarifValidationError, match=fragment):
            validate_sarif(doc)

    def test_rule_index_must_point_at_its_rule(self):
        doc = to_sarif(_report())
        doc["runs"][0]["results"][0]["ruleIndex"] = 0
        doc["runs"][0]["results"][0]["ruleId"] = "P103"
        with pytest.raises(SarifValidationError, match="ruleIndex"):
            validate_sarif(doc)


class TestRoundTrip:
    def test_write_read_validate(self, tmp_path):
        path = write_sarif(_report(), tmp_path / "deep" / "out.sarif")
        doc = validate_sarif_file(path)
        assert len(doc["runs"][0]["results"]) == 4
        # the file is plain UTF-8 JSON with a trailing newline
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == doc

    def test_custom_tool_name(self, tmp_path):
        path = write_sarif(AnalysisReport(), tmp_path / "l.sarif",
                           tool_name="repro-lint")
        doc = validate_sarif_file(path)
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"
