"""Unit tests for live run health (:mod:`repro.dist.health`).

Everything here drives :class:`RunHealth` with a synthetic clock — no
processes, no sleeping — so the stall window, startup grace, straggler
median and the state machine are checked deterministically.  The event
log and the ``replay_health`` reconstruction (what ``repro monitor``
attaches through) round-trip through a real file.
"""

import json

import pytest

from repro.dist import (
    EventLog,
    HeartbeatMsg,
    RunHealth,
    read_events,
    replay_health,
)
from repro.dist.health import STARTUP_GRACE_SECONDS


def _health(**kwargs):
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("stall_after_beats", 4)
    return RunHealth(**kwargs)


def _beat(health, rank, seq, tasks_done, now, attempt=0):
    return health.on_heartbeat(
        HeartbeatMsg(rank=rank, attempt=attempt, seq=seq, tasks_done=tasks_done),
        now=now,
    )


class TestStateMachine:
    def test_scatter_then_beats_walk_states(self):
        h = _health()
        h.on_scatter(0, tasks_total=10, attempt=0, now=0.0)
        assert h.ranks[0].state == "scattered"
        assert _beat(h, 0, seq=0, tasks_done=0, now=0.05)
        assert h.ranks[0].state == "up"
        assert _beat(h, 0, seq=1, tasks_done=3, now=0.15)
        assert h.ranks[0].state == "running"
        assert h.ranks[0].progress == pytest.approx(0.3)
        assert h.heartbeats == 2

    def test_stale_attempt_beat_discarded(self):
        h = _health()
        h.on_scatter(0, tasks_total=10, attempt=1, now=0.0)
        assert not _beat(h, 0, seq=5, tasks_done=9, now=0.1, attempt=0)
        assert h.ranks[0].beats == 0

    def test_unknown_rank_beat_discarded(self):
        h = _health()
        assert not _beat(h, 7, seq=0, tasks_done=0, now=0.0)

    def test_terminal_state_beat_discarded(self):
        # Regression: a heartbeat drained *after* the rank's final report
        # must not resurrect the rank to "up" (it briefly did, which also
        # let a stale near-empty snapshot clobber the final metrics).
        h = _health()
        h.on_scatter(0, tasks_total=10, attempt=0, now=0.0)
        _beat(h, 0, seq=0, tasks_done=0, now=0.05)
        h.mark(0, "done")
        assert not _beat(h, 0, seq=1, tasks_done=10, now=0.1)
        assert h.ranks[0].state == "done"
        for terminal in ("reassigned", "failed"):
            h.mark(0, terminal)
            assert not _beat(h, 0, seq=2, tasks_done=10, now=0.2)

    def test_rescatter_resets_attempt_but_keeps_stall_count(self):
        h = _health()
        h.on_scatter(1, tasks_total=8, attempt=0, now=0.0)
        _beat(h, 1, seq=0, tasks_done=2, now=0.1)
        h.mark(1, "stalled")
        assert h.ranks[1].stalls == 1
        h.on_scatter(1, tasks_total=8, attempt=1, now=1.0)
        rh = h.ranks[1]
        assert rh.attempt == 1
        assert rh.state == "scattered"
        assert rh.beats == 0 and rh.tasks_done == 0
        assert rh.stalls == 1  # the run-level stall history survives

    def test_progress_with_zero_planned_tasks(self):
        h = _health()
        h.on_scatter(0, tasks_total=0, attempt=0, now=0.0)
        assert h.ranks[0].progress == 0.0
        h.mark(0, "done")
        assert h.ranks[0].progress == 1.0

    def test_rate_is_tasks_per_second_since_first_beat(self):
        h = _health()
        h.on_scatter(0, tasks_total=100, attempt=0, now=0.0)
        assert h.ranks[0].rate(5.0) == 0.0  # no beat yet
        _beat(h, 0, seq=0, tasks_done=0, now=1.0)
        _beat(h, 0, seq=1, tasks_done=20, now=3.0)
        assert h.ranks[0].rate(3.0) == pytest.approx(10.0)
        assert h.ranks[0].rate(1.0) == 0.0  # degenerate elapsed <= 0


class TestStallDetection:
    def test_silence_past_window_flags_rank(self):
        h = _health()  # window = 4 * 0.1 = 0.4 s
        h.on_scatter(0, tasks_total=10, attempt=0, now=0.0)
        _beat(h, 0, seq=0, tasks_done=1, now=0.1)
        assert h.stalled_ranks(now=0.4, pending=[0]) == []
        assert h.stalled_ranks(now=0.51, pending=[0]) == [0]

    def test_startup_grace_widens_window_before_first_beat(self):
        h = _health()
        h.on_scatter(0, tasks_total=10, attempt=0, now=0.0)
        # No beat yet: the plain window must NOT flag (spawn takes time)...
        assert h.stalled_ranks(now=0.5, pending=[0]) == []
        # ...but silence beyond window + grace does.
        assert h.stalled_ranks(now=0.4 + STARTUP_GRACE_SECONDS + 0.01,
                               pending=[0]) == [0]

    def test_only_pending_ranks_checked(self):
        h = _health()
        for r in (0, 1):
            h.on_scatter(r, tasks_total=10, attempt=0, now=0.0)
        assert h.stalled_ranks(now=100.0, pending=[1]) == [1]

    def test_terminal_ranks_never_stall(self):
        h = _health()
        h.on_scatter(0, tasks_total=10, attempt=0, now=0.0)
        h.mark(0, "done")
        assert h.stalled_ranks(now=100.0, pending=[0]) == []

    def test_disabled_without_heartbeats(self):
        h = RunHealth(heartbeat_interval=0.0)
        assert not h.enabled
        h.on_scatter(0, tasks_total=10, attempt=0, now=0.0)
        assert h.stalled_ranks(now=1e9, pending=[0]) == []


class TestStragglerDetection:
    def _three_ranks(self, rates, now=10.0):
        h = _health(straggler_fraction=0.25)
        for r, tasks in enumerate(rates):
            h.on_scatter(r, tasks_total=100, attempt=0, now=0.0)
            _beat(h, r, seq=0, tasks_done=0, now=0.0)
            _beat(h, r, seq=1, tasks_done=tasks, now=now)
        return h

    def test_slow_rank_flagged_against_median(self):
        # Rates 10, 10, 1 tasks/s: median 10, threshold 2.5 -> rank 2 lags.
        h = self._three_ranks([100, 100, 10])
        assert h.straggler_ranks(now=10.0) == [2]

    def test_needs_three_active_ranks(self):
        h = self._three_ranks([100, 1])
        assert h.straggler_ranks(now=10.0) == []

    def test_done_ranks_anchor_median(self):
        # A finished fast rank keeps contributing its final rate to the
        # median, so the slow rank stays flagged after the field thins —
        # exactly when the rebalancer has an idle helper to offer.
        h = self._three_ranks([100, 100, 10])
        h.mark(0, "done")
        assert h.straggler_ranks(now=10.0) == [2]

    def test_all_done_flags_nothing(self):
        h = self._three_ranks([100, 100, 10])
        for r in range(3):
            h.mark(r, "done")
        assert h.straggler_ranks(now=10.0) == []

    def test_zero_median_is_noise(self):
        h = self._three_ranks([0, 0, 0])
        assert h.straggler_ranks(now=10.0) == []

    def test_windowed_rate_decays_for_fast_then_hung_rank(self):
        # Rank 2 races through 90 tasks, then hangs on a huge block while
        # still heartbeating.  Its lifetime average would coast above the
        # threshold; the windowed rate collapses within rate_window beats.
        h = _health(straggler_fraction=0.25)
        h.rate_window_beats = 4
        for r in range(3):
            h.on_scatter(r, tasks_total=100, attempt=0, now=0.0)
            h.ranks[r].rate_window = 4
        for beat in range(1, 21):
            now = float(beat)
            for r in (0, 1):
                _beat(h, r, seq=beat, tasks_done=5 * beat, now=now)
            _beat(h, 2, seq=beat, tasks_done=min(90, 9 * beat), now=now)
        # Lifetime average of rank 2 is 90/20 = 4.5 > 0.25 * 5; the
        # 4-beat window has seen no progress at all.
        assert h.ranks[2].rate(20.0) == 0.0
        assert h.straggler_ranks(now=20.0) == [2]

    def test_flagged_straggler_does_not_flicker_back_on_a_beat(self):
        h = self._three_ranks([100, 100, 10])
        assert h.straggler_ranks(now=10.0) == [2]
        h.mark(2, "straggler")
        _beat(h, 2, seq=2, tasks_done=11, now=10.5)
        assert h.ranks[2].state == "straggler"  # still below threshold
        h.mark(2, "running")  # the detector's recovery path clears it
        assert h.ranks[2].state == "running"

    def test_rate_window_is_trimmed(self):
        h = _health()
        h.on_scatter(0, tasks_total=100, attempt=0, now=0.0)
        h.ranks[0].rate_window = 3
        for beat in range(10):
            _beat(h, 0, seq=beat, tasks_done=beat, now=float(beat))
        assert len(h.ranks[0].samples) == 3
        assert h.ranks[0].samples[0] == (7.0, 7)

    def test_beatless_done_ranks_still_anchor_median(self):
        # Regression: ranks 0 and 1 finish before their first heartbeat
        # ever fires.  Without the synthesized baseline in on_done their
        # rate was 0.0 (one sample, zero elapsed), the median collapsed,
        # and the genuinely slow rank 2 was never flagged — exactly the
        # moment two idle helpers were available to take its blocks.
        h = _health(straggler_fraction=0.25)
        for r in range(3):
            h.on_scatter(r, tasks_total=100, attempt=0, now=0.0)
        h.on_done(0, now=1.0)
        h.on_done(1, now=1.0)
        _beat(h, 2, seq=0, tasks_done=0, now=0.0)
        _beat(h, 2, seq=1, tasks_done=10, now=10.0)
        # the anchor is the done rank's *final* rate, frozen at its
        # last signal: 100 tasks in 1s
        assert h.ranks[0].rate(h.ranks[0].last_signal) == pytest.approx(100.0)
        assert h.straggler_ranks(now=10.0) == [2]

    def test_flag_recover_reflag_lifecycle(self):
        # A rank that recovers (coordinator clears the flag and marks it
        # running) must be flaggable *again* if it slows back down — the
        # old set-once bookkeeping silenced every later excursion.
        h = _health(straggler_fraction=0.25)
        for r in range(3):
            h.on_scatter(r, tasks_total=100, attempt=0, now=0.0)
            h.ranks[r].rate_window = 3

        def tick(beat, slow_tasks):
            now = float(beat)
            for r in (0, 1):
                _beat(h, r, seq=beat, tasks_done=10 * beat, now=now)
            _beat(h, 2, seq=beat, tasks_done=slow_tasks, now=now)
            return now

        # slow phase: 1 task/beat against the field's 10 -> flagged
        for beat in range(1, 5):
            now = tick(beat, slow_tasks=beat)
        assert h.straggler_ranks(now=now) == [2]
        h.mark(2, "straggler")
        # recovery: three fast beats push the 3-beat window to 10/s
        for beat, tasks in ((5, 14), (6, 24), (7, 34)):
            now = tick(beat, slow_tasks=tasks)
        assert h.straggler_ranks(now=now) == []
        h.mark(2, "running")  # the coordinator's recovery path
        # relapse: the window decays again and the re-flag fires
        for beat, tasks in ((8, 35), (9, 36), (10, 37)):
            now = tick(beat, slow_tasks=tasks)
        assert h.straggler_ranks(now=now) == [2]

    def test_rescatter_clears_straggler_state(self):
        # A flagged rank that is retried gets a fresh RankHealth: the new
        # attempt starts from "scattered", not from the stale flag.
        h = self._three_ranks([100, 100, 10])
        h.mark(2, "straggler")
        h.on_scatter(2, tasks_total=100, attempt=1, now=10.0)
        assert h.ranks[2].state == "scattered"
        assert h.straggler_ranks(now=10.0) == []


class TestTable:
    def test_renders_every_rank(self):
        h = _health()
        for r in (0, 1):
            h.on_scatter(r, tasks_total=5, attempt=0, now=0.0)
        _beat(h, 0, seq=0, tasks_done=2, now=0.2)
        text = h.table(now=1.0)
        lines = text.splitlines()
        assert len(lines) == 3  # header + two ranks
        assert "rank" in lines[0] and "state" in lines[0]
        assert "up" in lines[1] or "running" in lines[1]
        assert "scattered" in lines[2]

    def test_empty_health(self):
        assert RunHealth().table() == "(no ranks)"


class TestEventLog:
    def test_none_path_disables(self):
        log = EventLog(None)
        log.emit("heartbeat", rank=0)
        assert log.count == 0
        log.close()

    def test_emit_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "run-events.jsonl")
        log = EventLog(path)
        log.emit("plan_accepted", nranks=2)
        log.emit("heartbeat", rank=0, seq=1)
        log.close()
        events = read_events(path)
        assert [e["event"] for e in events] == ["plan_accepted", "heartbeat"]
        assert events[1]["rank"] == 0
        assert all("t" in e for e in events)

    def test_flush_per_emit_visible_to_tailer(self, tmp_path):
        # The monitor attaches while the run is live: every emit must be
        # durable immediately, not buffered until close().
        path = str(tmp_path / "run-events.jsonl")
        log = EventLog(path)
        log.emit("plan_accepted", nranks=1)
        assert len(read_events(path)) == 1
        log.close()

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = str(tmp_path / "run-events.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"t": 1.0, "event": "heartbeat", "rank": 0}) + "\n")
            fh.write('{"t": 2.0, "event": "hea')  # coordinator died mid-write
        events = read_events(path)
        assert len(events) == 1

    def test_torn_multibyte_tail_skipped(self, tmp_path):
        # A SIGKILL can land mid-UTF-8-sequence; the partial bytes must
        # not poison the whole file (UnicodeDecodeError), only the line.
        path = str(tmp_path / "run-events.jsonl")
        with open(path, "wb") as fh:
            fh.write(json.dumps({"t": 1.0, "event": "done"}).encode() + b"\n")
            fh.write('{"t": 2.0, "label": "café'.encode("utf-8")[:-1])
        events = read_events(path)
        assert len(events) == 1
        assert events[0]["event"] == "done"

    def test_non_dict_json_line_skipped(self, tmp_path):
        path = str(tmp_path / "run-events.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"t": 1.0, "event": "done"}) + "\n")
            fh.write("42\n")           # valid JSON, not an event record
            fh.write('"surprise"\n')
        assert len(read_events(path)) == 1


class TestReplay:
    def _log(self, tmp_path, emits):
        path = str(tmp_path / "run-events.jsonl")
        log = EventLog(path)
        for event, fields in emits:
            log.emit(event, **fields)
        log.close()
        return read_events(path)

    def test_replay_rebuilds_rank_table(self, tmp_path):
        events = self._log(tmp_path, [
            ("plan_accepted", dict(nranks=2, heartbeat_interval=0.1,
                                   tasks_per_rank={"0": 6, "1": 4})),
            ("scatter", dict(rank=0, attempt=0, tasks_total=6)),
            ("scatter", dict(rank=1, attempt=0, tasks_total=4)),
            ("heartbeat", dict(rank=0, attempt=0, seq=0, tasks_done=0)),
            ("heartbeat", dict(rank=0, attempt=0, seq=1, tasks_done=3)),
            ("heartbeat", dict(rank=1, attempt=0, seq=0, tasks_done=0)),
            ("rank_done", dict(rank=0, attempt=0, tasks=6)),
        ])
        health = replay_health(events)
        assert health.heartbeat_interval == 0.1
        assert health.ranks[0].state == "done"
        assert health.ranks[0].tasks_done == 6
        assert health.ranks[1].state == "up"
        assert health.ranks[1].tasks_total == 4
        assert health.heartbeats == 3

    def test_replay_stall_retry_reassign_excursion(self, tmp_path):
        events = self._log(tmp_path, [
            ("plan_accepted", dict(nranks=1, heartbeat_interval=0.1,
                                   tasks_per_rank={"1": 8})),
            ("scatter", dict(rank=1, attempt=0, tasks_total=8)),
            ("heartbeat", dict(rank=1, attempt=0, seq=0, tasks_done=2)),
            ("stall", dict(rank=1, attempt=0, silent_seconds=0.6)),
            ("retry", dict(rank=1, attempt=0, reason="stalled")),
            ("scatter", dict(rank=1, attempt=1, tasks_total=8)),
            ("stall", dict(rank=1, attempt=1, silent_seconds=0.6)),
            ("reassign", dict(rank=1, attempt=2)),
        ])
        health = replay_health(events)
        rh = health.ranks[1]
        assert rh.state == "reassigned"
        assert rh.stalls == 2
        assert rh.tasks_total == 8  # carried across the rescatter
        # And the reconstructed view renders (the monitor's whole job).
        assert "reassigned" in health.table(now=events[-1]["t"])

    def test_replay_tolerates_malformed_fields(self, tmp_path):
        # A record with the right event name but a garbage payload (hand
        # edits, version skew) must degrade to "skip that event", not
        # crash the monitor attached to a live run.
        events = self._log(tmp_path, [
            ("plan_accepted", dict(nranks=1, heartbeat_interval=0.1,
                                   tasks_per_rank={"0": 4})),
            ("scatter", dict(rank=0, attempt=0, tasks_total=4)),
            ("heartbeat", dict(rank="bogus", attempt=0, seq=0)),
            ("heartbeat", dict(rank=0, attempt=0, seq=0, tasks_done=2)),
        ])
        health = replay_health(events)
        assert health.ranks[0].tasks_done == 2
        assert health.heartbeats == 1

    def test_replay_tolerates_unknown_events(self, tmp_path):
        events = self._log(tmp_path, [
            ("plan_accepted", dict(nranks=1, heartbeat_interval=0.1,
                                   tasks_per_rank={"0": 2})),
            ("straggler", dict(rank=0)),
            ("some_future_event", dict(rank=0, detail="ignored")),
            ("done", dict(ntasks=2)),
        ])
        health = replay_health(events)
        assert health.ranks[0].state == "straggler"


class TestRunScopedEventLog:
    """Per-run event files: satellite fix for concurrent-run clobbering."""

    def test_run_id_scopes_path_and_stamps_records(self, tmp_path):
        from repro.dist import resolve_events_path, run_scoped_events_path

        base = str(tmp_path / "run-events.jsonl")
        log = EventLog(base, run_id="job-7")
        assert log.path == run_scoped_events_path(base, "job-7")
        assert log.path.endswith("run-events.job-7.jsonl")
        log.emit("plan_accepted", nranks=1)
        log.close()
        events = read_events(log.path)
        assert events and all(e["run"] == "job-7" for e in events)
        assert resolve_events_path(base, "job-7") == log.path

    def test_concurrent_runs_do_not_clobber(self, tmp_path):
        base = str(tmp_path / "run-events.jsonl")
        log_a = EventLog(base, run_id="a")
        log_b = EventLog(base, run_id="b")
        log_a.emit("plan_accepted", nranks=1)
        log_b.emit("plan_accepted", nranks=2)
        log_a.emit("done", ntasks=1)
        log_b.emit("done", ntasks=2)
        log_a.close()
        log_b.close()
        ev_a = read_events(log_a.path)
        ev_b = read_events(log_b.path)
        assert [e["run"] for e in ev_a] == ["a", "a"]
        assert [e["run"] for e in ev_b] == ["b", "b"]
        assert ev_b[0]["nranks"] == 2

    def test_read_events_filters_mixed_file_by_run(self, tmp_path):
        # A legacy shared file with interleaved runs: filtering recovers
        # one run's stream; unstamped legacy records pass through.
        path = str(tmp_path / "run-events.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"t": 1.0, "event": "x", "run": "a"}) + "\n")
            fh.write(json.dumps({"t": 2.0, "event": "y", "run": "b"}) + "\n")
            fh.write(json.dumps({"t": 3.0, "event": "legacy"}) + "\n")
        assert [e["event"] for e in read_events(path, run_id="a")] == [
            "x", "legacy"
        ]
        assert len(read_events(path)) == 3

    def test_resolve_prefers_base_then_newest_sibling(self, tmp_path):
        import os
        import time

        from repro.dist import resolve_events_path

        base = str(tmp_path / "run-events.jsonl")
        # No file at all: the base path comes back unchanged.
        assert resolve_events_path(base) == base
        old = str(tmp_path / "run-events.old.jsonl")
        new = str(tmp_path / "run-events.new.jsonl")
        for p in (old, new):
            with open(p, "w", encoding="utf-8") as fh:
                fh.write(json.dumps({"t": 1.0, "event": "done"}) + "\n")
        past = time.time() - 60
        os.utime(old, (past, past))
        # No run id: newest run-scoped sibling wins.
        assert resolve_events_path(base) == new
        # An existing base file wins over siblings.
        with open(base, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"t": 1.0, "event": "done"}) + "\n")
        assert resolve_events_path(base) == base

    def test_unscoped_log_stays_backward_compatible(self, tmp_path):
        path = str(tmp_path / "run-events.jsonl")
        log = EventLog(path)
        log.emit("done", ntasks=1)
        log.close()
        events = read_events(path)
        assert log.path == path
        assert events and "run" not in events[0]
