"""Plan-verifier tests: zero findings on healthy plans, mutations caught.

The mutation suite corrupts inspector-built plans one invariant at a time
and asserts the verifier fires the matching rule id — the static-analysis
twin of the numeric crosscheck.
"""

import copy

import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis import PlanVerificationError, assert_plan_valid, verify_plan
from repro.core import PlanOptions, inspect, psgemm_plan
from repro.core.block_partition import InfeasiblePartitionError
from repro.dist import active_segments, execute_plan_distributed
from repro.machine import summit
from repro.sparse import random_block_sparse
from repro.sparse.shape import SparseShape
from repro.tiling import random_tiling
from tests.test_property_plans import instances, machines


def _instance(seed=0, n=400, k=1200):
    rows = random_tiling(n, 30, 120, seed=seed)
    inner = random_tiling(k, 30, 120, seed=seed + 1)
    a = random_block_sparse(rows, inner, 0.5, seed=seed + 2)
    b = random_block_sparse(inner, inner, 0.5, seed=seed + 3)
    return a, b


@pytest.fixture(scope="module")
def healthy():
    """A 2x2-grid plan (two procs per grid row, for ownership mutations)."""
    a, b = _instance()
    plan = psgemm_plan(a.sparse_shape(), b.sparse_shape(), summit(4), p=2)
    return plan


@pytest.fixture()
def plan(healthy):
    """A mutable deep copy of the healthy plan for mutation tests."""
    return copy.deepcopy(healthy)


def _drop_tile(shape: SparseShape, i: int, k: int) -> SparseShape:
    csr = shape.csr.copy().tolil()
    csr[i, k] = 0.0
    return SparseShape(shape.rows, shape.cols, csr.tocsr())


class TestHealthyPlans:
    def test_zero_findings(self, healthy):
        report = verify_plan(healthy)
        assert report.ok, report.render()
        assert report.exit_code() == 0
        assert "no findings" in report.render()

    def test_assert_plan_valid_passes(self, healthy):
        assert assert_plan_valid(healthy).ok

    def test_single_rank_plan_clean(self):
        a, b = _instance(seed=7, n=300, k=900)
        plan = psgemm_plan(a.sparse_shape(), b.sparse_shape(), summit(1), p=1)
        assert verify_plan(plan).ok

    @settings(max_examples=15, deadline=None)
    @given(instances(), machines())
    def test_property_inspector_plans_verify_clean(self, inst, machine):
        """Any plan the inspector accepts must pass static verification."""
        a, b = inst
        try:
            plan = inspect(a, b, machine, p=1)
        except InfeasiblePartitionError:
            return
        report = verify_plan(plan)
        assert report.ok, report.render()


class TestMutations:
    def test_missing_a_tile_fires_p101(self, plan):
        chunk = plan.procs[0].blocks[0].chunks[0]
        i, k = int(chunk.a_rows[0]), int(chunk.a_cols[0])
        plan.a_shape = _drop_tile(plan.a_shape, i, k)
        report = verify_plan(plan)
        assert "P101" in report.rules_fired(), report.render()

    def test_missing_b_tile_fires_p102(self, plan):
        block = plan.procs[0].blocks[0]
        j = int(block.columns[0])
        csc = plan.b_shape.csr.tocsc()
        k = int(csc.indices[csc.indptr[j]])
        plan.b_shape = _drop_tile(plan.b_shape, k, j)
        report = verify_plan(plan)
        assert "P102" in report.rules_fired(), report.render()

    def test_inconsistent_b_footprint_fires_p102(self, plan):
        plan.procs[0].blocks[0].b_tile_count += 3
        report = verify_plan(plan)
        assert "P102" in report.rules_fired(), report.render()

    def test_duplicated_c_ownership_fires_p103(self, plan):
        row0 = [p for p in plan.procs if p.row == 0]
        assert len(row0) >= 2, "need two procs in one grid row"
        a, b = row0[0], row0[1]
        b.columns = np.concatenate([b.columns, a.columns[:1]])
        report = verify_plan(plan)
        assert "P103" in report.rules_fired(), report.render()
        assert any("write race" in f.message for f in report.findings)

    def test_dropped_column_fires_p104_and_p103(self, plan):
        proc = plan.procs[0]
        proc.columns = proc.columns[1:]
        report = verify_plan(plan)
        assert "P104" in report.rules_fired(), report.render()
        # The orphaned column's C tiles are now owned by nobody.
        assert "P103" in report.rules_fired(), report.render()

    def test_oversized_block_fires_p110(self, plan):
        plan.procs[0].blocks[0].c_bytes = plan.gpu_memory_bytes
        report = verify_plan(plan)
        assert "P110" in report.rules_fired(), report.render()

    def test_over_budget_chunk_fires_p111(self, plan):
        chunk = plan.procs[0].blocks[0].chunks[0]
        assert chunk.ntiles > 1
        chunk.a_bytes = int(plan.gpu_memory_bytes * 0.9)
        report = verify_plan(plan)
        assert "P111" in report.rules_fired(), report.render()
        assert "P112" in report.rules_fired()  # double-buffering overflows too

    def test_gpu_imbalance_fires_p113(self):
        from repro.machine.spec import GpuSpec, MachineSpec, NodeSpec

        a, b = _instance(seed=3, n=400, k=2500)
        machine = MachineSpec(
            nnodes=1, node=NodeSpec(ngpus=2), gpu=GpuSpec(memory_bytes=8 * 2**20)
        )
        plan = inspect(a.sparse_shape(), b.sparse_shape(), machine, p=1)
        proc = plan.procs[0]
        movable = [blk for blk in proc.blocks if blk.gpu == 1]
        assert len(movable) >= 2, "instance too small to unbalance"
        movable[0].gpu = 0
        report = verify_plan(plan)
        assert "P113" in report.rules_fired(), report.render()

    def test_comm_volume_mismatch_fires_p120(self, plan):
        plan.procs[0].a_recv_bytes += 4096
        report = verify_plan(plan)
        assert report.rules_fired() == {"P120"}, report.render()
        assert len(report.findings) == 1

    def test_assert_plan_valid_raises_with_report(self, plan):
        plan.procs[0].a_recv_bytes += 4096
        with pytest.raises(PlanVerificationError) as ei:
            assert_plan_valid(plan)
        assert "P120" in str(ei.value)
        assert not ei.value.report.ok


class TestPlanOptionsValidation:
    def test_defaults_valid(self):
        PlanOptions()

    @pytest.mark.parametrize("frac", [0.0, -0.1, 1.5])
    def test_bad_block_fraction(self, frac):
        with pytest.raises(ValueError, match="block_fraction"):
            PlanOptions(block_fraction=frac)

    @pytest.mark.parametrize("frac", [0.0, -0.25, 0.6])
    def test_bad_chunk_fraction(self, frac):
        with pytest.raises(ValueError, match="chunk_fraction"):
            PlanOptions(chunk_fraction=frac)

    def test_budget_sum_over_device(self):
        with pytest.raises(ValueError, match="double-buffered"):
            PlanOptions(block_fraction=0.9, chunk_fraction=0.3)

    def test_budget_sum_exactly_one_allowed(self):
        PlanOptions(block_fraction=0.5, chunk_fraction=0.25)

    def test_bad_screen_threshold(self):
        with pytest.raises(ValueError, match="screen_threshold"):
            PlanOptions(screen_threshold=0.0)


class TestDistributedGate:
    def test_corrupted_plan_rejected_before_spawn(self, plan):
        """verify_plan=True rejects the plan before any worker or shared
        memory segment exists."""
        a, b = _instance()
        plan.procs[0].a_recv_bytes += 4096
        before = active_segments()
        with pytest.raises(PlanVerificationError):
            execute_plan_distributed(plan, a, b, verify_plan=True)
        assert active_segments() == before

    def test_fault_rank_out_of_plan_rejected(self, plan):
        from repro.dist import FaultPlan

        a, b = _instance()
        bad = FaultPlan.kill(rank=plan.grid.nprocs + 3, at_task=1)
        with pytest.raises(Exception, match="fault injection targets rank"):
            execute_plan_distributed(plan, a, b, fault_plan=bad)
