"""Persistent tile store unit tests (:mod:`repro.store`).

Codec round-trips and corruption detection, TileStore atomicity /
LRU GC / session stats, the writeback journal's torn-line tolerance and
tile re-validation, run fingerprinting, coordinator snapshots, and the
P121/P122 pre-flight checks.  Everything here is single-process and
tier-1 fast; the kill/resume end-to-end scenarios live in
``tests/test_checkpoint.py`` (marked ``dist``).
"""

import json
import os

import numpy as np
import pytest

from repro.analysis import check_checkpoint_compat, check_store_capacity
from repro.core import psgemm_plan
from repro.machine import summit
from repro.sparse import random_block_sparse
from repro.store import (
    ALIGN,
    CodecError,
    CompletedBlock,
    TileStore,
    WritebackJournal,
    b_fingerprint,
    ckpt_namespace,
    ckpt_tile_key,
    decode_tile,
    encode_tile,
    map_tile,
    object_digest,
    plan_fingerprint,
    read_header,
    read_journal,
    read_snapshot,
    read_store_stats,
    run_fingerprint,
    validated_completed_blocks,
    write_snapshot,
)
from repro.runtime import GeneratedCollection
from repro.tiling import random_tiling


def tile(seed=0, shape=(7, 11)):
    return np.random.default_rng(seed).standard_normal(shape)


class TestCodec:
    def test_roundtrip_uncompressed(self):
        arr = tile()
        blob = encode_tile("b:x", (3, 4), arr)
        header, out = decode_tile(blob)
        assert header["ns"] == "b:x" and header["key"] == (3, 4)
        assert np.array_equal(out, arr)

    def test_roundtrip_compressed(self):
        arr = np.zeros((40, 40))  # compresses well
        blob = encode_tile("ns", (0,), arr, compress=6)
        assert len(blob) < arr.nbytes
        _, out = decode_tile(blob)
        assert np.array_equal(out, arr)

    def test_payload_is_aligned(self):
        header = read_header(encode_tile("ns", (1, 2), tile()))
        assert header["header_size"] % ALIGN == 0

    def test_map_tile_zero_copy(self):
        arr = tile(1)
        blob = encode_tile("ns", (0, 0), arr)
        view = map_tile(read_header(blob), blob)
        assert np.array_equal(view, arr)
        assert not view.flags.writeable

    def test_map_tile_refuses_compressed(self):
        blob = encode_tile("ns", (0,), tile(), compress=1)
        with pytest.raises(CodecError, match="memory-mapped"):
            map_tile(read_header(blob), blob)

    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError, match="magic"):
            read_header(b"JUNK" + b"\x00" * 60)

    def test_flipped_payload_bit_fails_crc(self):
        blob = bytearray(encode_tile("ns", (0,), tile()))
        blob[-1] ^= 0xFF
        with pytest.raises(CodecError, match="CRC32"):
            decode_tile(bytes(blob))

    def test_truncated_payload_rejected(self):
        blob = encode_tile("ns", (0,), tile())
        with pytest.raises(CodecError, match="truncated"):
            decode_tile(blob[:-8])

    def test_digest_is_key_deterministic(self):
        assert object_digest("b:x", (1, 2)) == object_digest("b:x", (1, 2))
        assert object_digest("b:x", (1, 2)) != object_digest("b:y", (1, 2))
        assert object_digest("b:x", (1, 2)) != object_digest("b:x", (2, 1))


class TestTileStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = TileStore(str(tmp_path))
        try:
            arr = tile()
            assert store.put("ns", (0, 1), arr)
            out = store.get("ns", (0, 1))
            assert np.array_equal(out, arr)
            assert not out.flags.writeable  # zero-copy mapped view
        finally:
            store.close()

    def test_duplicate_put_is_noop(self, tmp_path):
        store = TileStore(str(tmp_path))
        try:
            assert store.put("ns", (0,), tile())
            assert not store.put("ns", (0,), tile())
            assert store.stats().objects == 1
        finally:
            store.close()

    def test_missing_key_is_a_miss(self, tmp_path):
        store = TileStore(str(tmp_path))
        try:
            assert store.get("ns", (9, 9)) is None
            assert store.stats().misses == 1
        finally:
            store.close()

    def test_corrupt_object_treated_as_miss(self, tmp_path):
        store = TileStore(str(tmp_path))
        try:
            store.put("ns", (0,), tile())
            path = store._path(object_digest("ns", (0,)))
            blob = bytearray(open(path, "rb").read())
            blob[-1] ^= 0xFF
            with open(path, "wb") as fh:
                fh.write(bytes(blob))
            assert store.get("ns", (0,), verify=True) is None
            assert store.stats().corrupt == 1
        finally:
            store.close()

    def test_gc_evicts_lru_to_budget(self, tmp_path):
        store = TileStore(str(tmp_path))
        try:
            for i in range(6):
                store.put("ns", (i,), tile(i, shape=(32, 32)))
            total = store.stats().disk_bytes
            evicted, freed = store.gc(total // 2)
            assert evicted > 0 and freed > 0
            assert store.stats().disk_bytes <= total // 2
            # Newest objects survive.
            assert store.get("ns", (5,)) is not None
        finally:
            store.close()

    def test_sessions_accumulate_in_store_stats(self, tmp_path):
        root = str(tmp_path)
        for _ in range(2):
            store = TileStore(root)
            try:
                store.put("ns", (0,), tile())
                store.get("ns", (0,))
            finally:
                store.close()
        agg = read_store_stats(root)
        assert agg.hits == 2 and agg.puts == 1
        assert agg.objects == 1 and agg.disk_bytes > 0
        assert agg.hit_rate > 0

    def test_torn_stats_line_tolerated(self, tmp_path):
        root = str(tmp_path)
        store = TileStore(root)
        try:
            store.put("ns", (0,), tile())
        finally:
            store.close()
        with open(os.path.join(root, "stats.jsonl"), "a", encoding="utf-8") as fh:
            fh.write('{"hits": 4')  # killed session's partial append
        assert read_store_stats(root).puts == 1


def small_plan(p=2, seed=0):
    rows = random_tiling(200, 20, 80, seed=seed)
    inner = random_tiling(600, 20, 80, seed=seed + 1)
    a = random_block_sparse(rows, inner, 0.5, seed=seed + 2)
    b = random_block_sparse(inner, inner, 0.5, seed=seed + 3)
    return psgemm_plan(a.sparse_shape(), b.sparse_shape(), summit(p), p=p)


class TestFingerprints:
    def test_plan_fingerprint_stable_across_rebuilds(self):
        assert plan_fingerprint(small_plan()) == plan_fingerprint(small_plan())

    def test_plan_fingerprint_sees_structure(self):
        assert plan_fingerprint(small_plan(seed=0)) != plan_fingerprint(small_plan(seed=5))

    def test_b_fingerprint_tracks_generator_seed(self):
        shape = small_plan().b_shape
        assert b_fingerprint(GeneratedCollection(shape, seed=1)) == \
            b_fingerprint(GeneratedCollection(shape, seed=1))
        assert b_fingerprint(GeneratedCollection(shape, seed=1)) != \
            b_fingerprint(GeneratedCollection(shape, seed=2))

    def test_run_fingerprint_namespaces_alpha(self):
        assert run_fingerprint("p", "b", 1.0) != run_fingerprint("p", "b", 2.0)
        assert ckpt_namespace("abc") == "ckpt:abc"


class TestJournal:
    def _block(self, rank=0, gpu=0, block=1):
        return CompletedBlock(rank=rank, gpu=gpu, block=block, chunks=2,
                              ntasks=9, tiles=((0, 0), (0, 1)))

    def test_record_read_roundtrip(self, tmp_path):
        j = WritebackJournal(str(tmp_path), rank=0)
        try:
            j.record("run1", self._block())
        finally:
            j.close()
        recs = read_journal(str(tmp_path), 0, "run1")
        assert len(recs) == 1
        assert recs[0].tiles == ((0, 0), (0, 1))

    def test_other_run_records_filtered(self, tmp_path):
        j = WritebackJournal(str(tmp_path), rank=0)
        try:
            j.record("old-run", self._block())
        finally:
            j.close()
        assert read_journal(str(tmp_path), 0, "new-run") == []

    def test_torn_final_line_skipped(self, tmp_path):
        j = WritebackJournal(str(tmp_path), rank=0)
        try:
            j.record("run1", self._block(block=0))
        finally:
            j.close()
        with open(j.path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "run": "run1", "rank": 0, "blo')  # SIGKILL here
        assert len(read_journal(str(tmp_path), 0, "run1")) == 1

    def test_missing_journal_is_empty(self, tmp_path):
        assert read_journal(str(tmp_path), 3, "run1") == []

    def test_validation_requires_tiles_in_store(self, tmp_path):
        ckpt = str(tmp_path)
        store = TileStore(os.path.join(ckpt, "store"))
        try:
            ns = ckpt_namespace("run1")
            # Block 0's tiles are all present; block 1 is journaled but its
            # tile never landed (the crash window the CRC validation closes).
            for i, jdx in ((0, 0), (0, 1)):
                store.put(ns, ckpt_tile_key(0, 0, 0, i, jdx), tile(i + jdx))
            jr = WritebackJournal(ckpt, rank=0)
            try:
                jr.record("run1", self._block(block=0))
                jr.record("run1", self._block(block=1))
            finally:
                jr.close()
            good = validated_completed_blocks(ckpt, 0, "run1", store)
        finally:
            store.close()
        assert set(good) == {(0, 0)}
        assert good[(0, 0)].ntasks == 9


class TestSnapshot:
    def test_write_read_roundtrip(self, tmp_path):
        write_snapshot(str(tmp_path), {"v": 1, "state": "running", "plan": "abc"})
        snap = read_snapshot(str(tmp_path))
        assert snap["plan"] == "abc"

    def test_missing_and_corrupt_read_as_none(self, tmp_path):
        assert read_snapshot(str(tmp_path)) is None
        with open(os.path.join(str(tmp_path), "coordinator.json"), "w") as fh:
            fh.write("{not json")
        assert read_snapshot(str(tmp_path)) is None

    def test_atomic_replace_leaves_no_partial(self, tmp_path):
        write_snapshot(str(tmp_path), {"v": 1, "state": "running"})
        write_snapshot(str(tmp_path), {"v": 1, "state": "done"})
        assert read_snapshot(str(tmp_path))["state"] == "done"
        assert [f for f in os.listdir(str(tmp_path)) if f.endswith(".tmp")] == []


class TestStoreChecks:
    def test_fresh_dir_and_matching_snapshot_clean(self, tmp_path):
        plan = small_plan()
        assert check_checkpoint_compat(plan, str(tmp_path)).ok
        write_snapshot(str(tmp_path), {
            "v": 1, "plan": plan_fingerprint(plan), "nranks": len(plan.procs),
        })
        assert check_checkpoint_compat(plan, str(tmp_path)).ok

    def test_plan_mismatch_fires_p121(self, tmp_path):
        plan = small_plan()
        write_snapshot(str(tmp_path), {"v": 1, "plan": "not-this-plan"})
        report = check_checkpoint_compat(plan, str(tmp_path))
        assert report.rules_fired() == {"P121"}

    def test_future_snapshot_version_fires_p121(self, tmp_path):
        plan = small_plan()
        write_snapshot(str(tmp_path), {"v": 99, "plan": plan_fingerprint(plan)})
        assert check_checkpoint_compat(plan, str(tmp_path)).rules_fired() == {"P121"}

    def test_rank_count_mismatch_fires_p121(self, tmp_path):
        plan = small_plan()
        write_snapshot(str(tmp_path), {
            "v": 1, "plan": plan_fingerprint(plan), "nranks": 99,
        })
        assert check_checkpoint_compat(plan, str(tmp_path)).rules_fired() == {"P121"}

    def test_budget_below_largest_tile_fires_p122(self, tmp_path):
        report = check_store_capacity(
            small_plan(), str(tmp_path / "store"), budget_bytes=16
        )
        assert report.rules_fired() == {"P122"}

    def test_ample_budget_clean(self, tmp_path):
        report = check_store_capacity(
            small_plan(), str(tmp_path / "store"), budget_bytes=1 << 30
        )
        assert report.ok, report.render()
