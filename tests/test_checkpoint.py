"""Checkpoint/resume end-to-end tests (kill → resume → bit parity).

The contract under test: a distributed run with ``checkpoint_dir`` can be
killed at any instant and resumed — in the same run (the coordinator's
retry path) or by a brand-new invocation over the same directory — and
the final C is bit-for-bit identical to the uninterrupted serial oracle,
with journaled blocks restored from disk instead of recomputed.

Fast single-process pieces are in ``tests/test_store.py``; everything
here spawns real workers, so the slow scenarios carry the ``dist`` mark
(run via ``make test-dist``).
"""

import numpy as np
import pytest

from repro.core import inspect, psgemm_distributed, psgemm_numeric
from repro.dist import DistExecutionError, FaultPlan, active_segments
from repro.machine import summit
from repro.runtime import GeneratedCollection
from repro.sparse import random_block_sparse
from repro.store import read_store_stats
from repro.tiling import random_tiling


def operands(seed=0, m=200, nk=600, density=0.5):
    rows = random_tiling(m, 20, 80, seed=seed)
    inner = random_tiling(nk, 20, 80, seed=seed + 1)
    a = random_block_sparse(rows, inner, density, seed=seed + 2)
    b_shape = random_block_sparse(inner, inner, density, seed=seed + 3).sparse_shape()
    return a, GeneratedCollection(b_shape, seed=seed + 3), b_shape


def serial_oracle(a, b, b_shape, p=2):
    c, _ = psgemm_numeric(a, b, summit(p), p=p, b_shape=b_shape)
    return c.to_dense()


def fault_after_first_block(a, b_shape, rank, p=2):
    """A task index safely past the victim rank's first completed block.

    A fault that fires before any block completes journals nothing and
    restores nothing — which is a valid resume, but not the one these
    tests exist to exercise.
    """
    plan = inspect(a.sparse_shape(), b_shape, summit(p), p=p)
    proc = next(pp for pp in plan.procs if pp.rank == rank)
    for g in range(plan.grid.gpus_per_proc):
        blocks = proc.gpu_blocks(g)
        if blocks:
            return blocks[0].ntasks + 2
    return 2


class TestCheckpointParity:
    def test_clean_checkpointed_run_matches_serial(self, tmp_path):
        """Checkpointing must be invisible: bit parity AND stats parity."""
        a, b, b_shape = operands(seed=0)
        c_serial, s_serial = psgemm_numeric(
            a, b, summit(2), p=2, b_shape=b_shape
        )
        c_dist, report = psgemm_distributed(
            a, b, summit(2), p=2, b_shape=b_shape,
            checkpoint_dir=str(tmp_path),
        )
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
        assert s_serial == report.stats
        assert report.blocks_restored == 0
        assert report.store_puts > 0  # B tiles + C tiles landed on disk
        assert not active_segments()


@pytest.mark.dist
class TestKillResume:
    def test_in_run_kill_resumes_from_journal(self, tmp_path):
        """The retry after a mid-run kill restores the dead attempt's
        journaled blocks instead of recomputing them."""
        a, b, b_shape = operands(seed=1)
        at = fault_after_first_block(a, b_shape, rank=1)
        c_dist, report = psgemm_distributed(
            a, b, summit(2), p=2, b_shape=b_shape,
            checkpoint_dir=str(tmp_path),
            fault_plan=FaultPlan.parse(f"1:{at}:kill"),
        )
        assert np.array_equal(c_dist.to_dense(), serial_oracle(a, b, b_shape))
        assert report.blocks_restored >= 1
        assert report.tasks_skipped > 0
        assert not active_segments()

    def test_second_invocation_resumes_completed_run(self, tmp_path):
        """A finished checkpointed run re-executed over the same directory
        restores every block and recomputes nothing."""
        a, b, b_shape = operands(seed=2)
        kwargs = dict(b_shape=b_shape, checkpoint_dir=str(tmp_path))
        c1, r1 = psgemm_distributed(a, b, summit(2), p=2, **kwargs)
        c2, r2 = psgemm_distributed(a, b, summit(2), p=2, **kwargs)
        assert np.array_equal(c1.to_dense(), c2.to_dense())
        assert np.array_equal(c2.to_dense(), serial_oracle(a, b, b_shape))
        assert r1.blocks_restored == 0
        # Every planned block of run 2 came off disk: run 1 executed the
        # whole plan, run 2 skipped exactly that many tasks.
        assert r2.blocks_restored > 0
        assert r2.tasks_skipped == r1.stats.ntasks
        assert not active_segments()

    def test_abort_then_resume_bit_identical(self, tmp_path):
        """The unrecoverable fault: abort raises with a resume hint, and a
        fresh invocation completes bit-identically, skipping journaled work."""
        a, b, b_shape = operands(seed=3)
        at = fault_after_first_block(a, b_shape, rank=1)
        with pytest.raises(DistExecutionError, match="resume"):
            psgemm_distributed(
                a, b, summit(2), p=2, b_shape=b_shape,
                checkpoint_dir=str(tmp_path),
                fault_plan=FaultPlan.abort(1, at),
            )
        assert not active_segments()  # the failed run cleaned up after itself
        c_dist, report = psgemm_distributed(
            a, b, summit(2), p=2, b_shape=b_shape,
            checkpoint_dir=str(tmp_path),
        )
        assert np.array_equal(c_dist.to_dense(), serial_oracle(a, b, b_shape))
        assert report.blocks_restored >= 1
        assert report.tasks_skipped > 0
        assert not active_segments()

    def test_mismatched_plan_refused(self, tmp_path):
        """A checkpoint directory is married to its plan: reusing it with a
        different grid must be refused before any worker spawns."""
        a, b, b_shape = operands(seed=4)
        psgemm_distributed(
            a, b, summit(2), p=2, b_shape=b_shape, checkpoint_dir=str(tmp_path)
        )
        with pytest.raises(DistExecutionError, match="different plan"):
            psgemm_distributed(
                a, b, summit(2), p=1, b_shape=b_shape,
                checkpoint_dir=str(tmp_path),
            )
        assert not active_segments()


@pytest.mark.dist
class TestPersistentBTier:
    def test_second_run_hits_the_store(self, tmp_path):
        """Acceptance criterion: two identical runs over one store — the
        second serves every B pull from disk and the aggregate hit rate
        is nonzero."""
        a, b, b_shape = operands(seed=5)
        store = str(tmp_path / "btiles")
        kwargs = dict(b_shape=b_shape, store_dir=store)
        c_serial, s_serial = psgemm_numeric(
            a, b, summit(2), p=2, b_shape=b_shape
        )
        c1, r1 = psgemm_distributed(a, b, summit(2), p=2, **kwargs)
        c2, r2 = psgemm_distributed(a, b, summit(2), p=2, **kwargs)
        for c, r in ((c1, r1), (c2, r2)):
            assert np.array_equal(c.to_dense(), c_serial.to_dense())
            assert s_serial == r.stats  # store tier preserves stat parity
        assert r1.store_puts > 0
        assert r2.store_hits > 0 and r2.store_misses == 0 and r2.store_puts == 0
        assert read_store_stats(store).hit_rate > 0
        assert not active_segments()
