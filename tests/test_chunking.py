"""Tests for chunk segmentation (3.2.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunking import build_chunks, cyclic_tile_order, split_by_budget


class TestCyclicOrder:
    def test_one_per_row_rounds(self):
        # Rows: 0 has tiles a,b ; 1 has c ; 2 has d,e,f.
        rows = np.array([0, 0, 1, 2, 2, 2])
        cols = np.array([5, 9, 1, 2, 4, 8])
        order = cyclic_tile_order(rows, cols)
        emitted = list(zip(rows[order], cols[order]))
        # Round 0: first tile of each row (by column); round 1: second ...
        assert emitted == [(0, 5), (1, 1), (2, 2), (0, 9), (2, 4), (2, 8)]

    def test_permutation(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 20, 200)
        cols = rng.integers(0, 50, 200)
        order = cyclic_tile_order(rows, cols)
        assert sorted(order.tolist()) == list(range(200))

    def test_empty(self):
        assert cyclic_tile_order(np.array([]), np.array([])).size == 0

    def test_single_row_keeps_column_order(self):
        rows = np.zeros(5, dtype=int)
        cols = np.array([4, 2, 0, 3, 1])
        order = cyclic_tile_order(rows, cols)
        assert cols[order].tolist() == [0, 1, 2, 3, 4]

    @settings(max_examples=30)
    @given(st.integers(1, 10), st.integers(1, 40), st.integers(0, 1000))
    def test_property_round_structure(self, nrows, ntiles, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, nrows, ntiles)
        cols = rng.integers(0, 1000, ntiles)
        order = cyclic_tile_order(rows, cols)
        r_emit = rows[order]
        # Within the emission, occurrences of each row appear in strictly
        # increasing column order.
        c_emit = cols[order]
        for r in range(nrows):
            cs = c_emit[r_emit == r]
            assert np.all(np.diff(np.sort(cs)) >= 0)
        # Round-robin structure: the k-th visit of any row happens before
        # the (k+1)-th visit of every row, i.e. per-tile visit ranks are
        # non-decreasing along the emission order.
        seen: dict[int, int] = {}
        visit_rank = []
        for r in r_emit.tolist():
            seen[r] = seen.get(r, 0) + 1
            visit_rank.append(seen[r])
        assert visit_rank == sorted(visit_rank)


class TestSplitByBudget:
    def test_basic_split(self):
        sizes = np.array([4, 4, 4, 4])
        segs = split_by_budget(sizes, 8)
        assert segs == [slice(0, 2), slice(2, 4)]

    def test_oversized_single_item(self):
        sizes = np.array([3, 20, 3])
        segs = split_by_budget(sizes, 8)
        assert segs == [slice(0, 1), slice(1, 2), slice(2, 3)]

    def test_everything_fits(self):
        segs = split_by_budget(np.array([1, 2, 3]), 100)
        assert segs == [slice(0, 3)]

    def test_empty(self):
        assert split_by_budget(np.array([], dtype=int), 10) == []

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            split_by_budget(np.array([1]), 0)

    @settings(max_examples=40)
    @given(
        st.lists(st.integers(min_value=1, max_value=100), min_size=0, max_size=100),
        st.integers(min_value=1, max_value=150),
    )
    def test_property_cover_and_budget(self, sizes, budget):
        sizes = np.array(sizes, dtype=int)
        segs = split_by_budget(sizes, budget)
        # Segments tile [0, n) contiguously.
        pos = 0
        for s in segs:
            assert s.start == pos
            pos = s.stop
            seg_sum = int(sizes[s].sum())
            assert seg_sum <= budget or (s.stop - s.start) == 1
        assert pos == sizes.size
        # Greedy maximality: a segment (except a final/oversized one) could
        # not absorb the next element.
        for i, s in enumerate(segs[:-1]):
            nxt = int(sizes[segs[i + 1].start])
            assert int(sizes[s].sum()) + nxt > budget


class TestBuildChunks:
    def test_chunks_preserve_tiles_and_bytes(self):
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 6, 50)
        cols = rng.integers(0, 30, 50)
        nbytes = rng.integers(10, 100, 50)
        chunks = build_chunks(rows, cols, nbytes, 250)
        total = sum(c[2] for c in chunks)
        assert total == nbytes.sum()
        emitted = sorted(zip(np.concatenate([c[0] for c in chunks]).tolist(),
                             np.concatenate([c[1] for c in chunks]).tolist()))
        assert emitted == sorted(zip(rows.tolist(), cols.tolist()))

    def test_empty_input(self):
        assert build_chunks(np.array([]), np.array([]), np.array([]), 10) == []
