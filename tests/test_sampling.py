"""Tests for task-population norm-product sampling."""

import numpy as np
import pytest

from repro.sparse import SparseShape
from repro.sparse.sampling import task_norm_product_quantile, task_norm_products
from repro.sparse.shape_algebra import gemm_task_count, screened_product
from repro.tiling import Tiling


def shapes_with_norms(seed=0, n=12):
    rng = np.random.default_rng(seed)
    t = Tiling.uniform(n * 5, 5)
    a_mask = (rng.uniform(size=(n, n)) < 0.6) * rng.uniform(0.01, 1, (n, n))
    b_mask = (rng.uniform(size=(n, n)) < 0.6) * rng.uniform(0.01, 1, (n, n))
    return SparseShape(t, t, a_mask), SparseShape(t, t, b_mask)


def brute_products(a, b):
    am = a.csr.toarray()
    bm = b.csr.toarray()
    out = []
    for k in range(am.shape[1]):
        for i in range(am.shape[0]):
            if am[i, k] == 0:
                continue
            for j in range(bm.shape[1]):
                if bm[k, j] != 0:
                    out.append(am[i, k] * bm[k, j])
    return np.array(out)


class TestTaskNormProducts:
    def test_matches_brute_force(self):
        a, b = shapes_with_norms()
        got = np.sort(task_norm_products(a, b))
        expect = np.sort(brute_products(a, b))
        assert got.size == gemm_task_count(a, b)
        assert np.allclose(got, expect)

    def test_quantile_screens_expected_fraction(self):
        a, b = shapes_with_norms(seed=3)
        total = gemm_task_count(a, b)
        for q in (0.03, 0.25, 0.5):
            tau = task_norm_product_quantile(a, b, q, max_samples=None)
            res = screened_product(a, b, tau)
            dropped = res.dropped_tasks / total
            assert dropped == pytest.approx(q, abs=0.06)

    def test_subsampling_bounds_size(self):
        a, b = shapes_with_norms(seed=5)
        s = task_norm_products(a, b, max_samples=50)
        assert s.size == 50

    def test_empty(self):
        t = Tiling.single(4)
        empty = SparseShape.empty(t, t)
        full = SparseShape.full(t, t)
        assert task_norm_products(empty, full).size == 0
        assert task_norm_product_quantile(empty, full, 0.1) == 0.0
