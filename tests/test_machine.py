"""Tests for the hardware models."""

import numpy as np
import pytest

from repro.machine import (
    CpuModel,
    GemmKernelModel,
    GenerationModel,
    LinkModel,
    MPQC_CPU,
    NetworkModel,
    effective_stream_bandwidth,
    summit,
)
from repro.machine.spec import GpuSpec, MachineSpec, NodeSpec


class TestGemmKernelModel:
    def setup_method(self):
        self.gpu = GpuSpec()
        self.kernel = GemmKernelModel(self.gpu)

    def test_efficiency_bounds_and_monotonicity(self):
        dims = [16, 64, 256, 1024, 4096]
        effs = [float(self.kernel.efficiency(d, d, d)) for d in dims]
        assert all(0 < e < 1 for e in effs)
        assert all(a < b for a, b in zip(effs, effs[1:]))

    def test_efficiency_calibration_points(self):
        # h = 128: ~50 % at 512^3, ~85 % at 2048^3 (V100 DGEMM behaviour).
        assert float(self.kernel.efficiency(512, 512, 512)) == pytest.approx(0.51, abs=0.05)
        assert float(self.kernel.efficiency(2048, 2048, 2048)) == pytest.approx(0.85, abs=0.05)

    def test_device_seconds_identity(self):
        # device_seconds == flops / (peak * efficiency), the separability
        # the coarse model relies on.
        m, n, k = 300, 700, 450
        flops = 2.0 * m * n * k
        expect = flops / (self.gpu.gemm_peak * float(self.kernel.efficiency(m, n, k)))
        assert float(self.kernel.device_seconds(m, n, k)) == pytest.approx(expect)

    def test_time_includes_launch(self):
        t = float(self.kernel.time(1, 1, 1))
        assert t > self.gpu.kernel_launch_s

    def test_vectorized(self):
        m = np.array([100, 200])
        out = self.kernel.time(m, m, m)
        assert out.shape == (2,)
        assert out[1] > out[0]

    def test_throughput_below_peak(self):
        assert float(self.kernel.throughput(2048, 2048, 2048)) < self.gpu.gemm_peak

    def test_large_tiles_approach_peak(self):
        thr = float(self.kernel.throughput(20_000, 20_000, 20_000))
        assert thr > 0.9 * self.gpu.gemm_peak


class TestGenerationModel:
    def test_node_time(self):
        node = NodeSpec()
        gen = GenerationModel(node)
        assert gen.time(node.gen_bandwidth) == pytest.approx(1.0)

    def test_tile_time_single_core(self):
        node = NodeSpec()
        gen = GenerationModel(node)
        t = gen.tile_time(np.array([node.gen_bandwidth_per_core]))
        assert t[0] == pytest.approx(1.0)


class TestLinks:
    def test_link_time(self):
        link = LinkModel(bandwidth=10e9, latency=1e-5)
        assert link.time(10e9) == pytest.approx(1.0 + 1e-5)
        assert link.time(10e9, nmessages=100) == pytest.approx(1.0 + 1e-3)

    def test_zero_transfer(self):
        link = LinkModel(bandwidth=10e9)
        assert link.time(0, 0) == 0.0

    def test_effective_stream_bandwidth(self):
        # 6 GPUs sharing an 80 GB/s aggregate: 13.3 GB/s each.
        bw = effective_stream_bandwidth(45e9, 80e9, 6)
        assert bw == pytest.approx(80e9 / 6)
        # A single stream keeps its brick cap.
        assert effective_stream_bandwidth(45e9, 80e9, 1) == 45e9

    def test_invalid(self):
        with pytest.raises(ValueError):
            LinkModel(bandwidth=0)
        with pytest.raises(ValueError):
            effective_stream_bandwidth(1, 1, 0)


class TestNetwork:
    def setup_method(self):
        self.net = NetworkModel(bandwidth=20e9, latency=2e-6)

    def test_ptp(self):
        assert self.net.ptp_time(20e9) == pytest.approx(1.0 + 2e-6)
        assert self.net.ptp_time(0) == 0.0

    def test_broadcast_bandwidth_bound(self):
        # Pipelined: nearly independent of peer count for large payloads.
        t2 = self.net.broadcast_time(20e9, 2)
        t16 = self.net.broadcast_time(20e9, 16)
        assert t16 < t2 * 1.01
        assert self.net.broadcast_time(1, 0) == 0.0

    def test_exchange_full_duplex(self):
        t = self.net.exchange_time(20e9, 10e9)
        assert t == pytest.approx(1.0 + 2e-6)  # max of the two directions

    def test_reduction_matches_broadcast(self):
        assert self.net.reduction_time(1e9, 8) == self.net.broadcast_time(1e9, 8)


class TestCpuModel:
    def test_paper_anchor_times(self):
        # Paper: C65H132 ABCD ~ 0.9-1.2 Pflop on {8, 16} nodes took
        # {308, 158} s; the default model reproduces that within ~40 %
        # using the paper's 877 Tflop count exactly.
        flops = 877e12
        t8 = MPQC_CPU.time(flops, 8)
        t16 = MPQC_CPU.time(flops, 16)
        assert t8 == pytest.approx(308, rel=0.25)
        assert t16 == pytest.approx(158, rel=0.25)

    def test_strong_scaling_step(self):
        m = CpuModel()
        assert m.time(1e15, 16) < m.time(1e15, 8)
        # Slightly sublinear (efficiency decay per doubling).
        assert m.time(1e15, 16) > m.time(1e15, 8) / 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            CpuModel(peak_per_node=0)
        with pytest.raises(ValueError):
            MPQC_CPU.throughput(0)


class TestMachineSpec:
    def test_summit_defaults(self):
        m = summit(16)
        assert m.total_gpus == 96
        assert m.aggregate_gemm_peak == pytest.approx(96 * 7.2e12)

    def test_partial_node(self):
        m = summit(1, gpus_per_node=3)
        assert m.total_gpus == 3
        # Host link share scales with the resource set.
        assert m.node.host_link_aggregate == pytest.approx(
            NodeSpec().host_link_aggregate / 2
        )

    def test_partial_node_bounds(self):
        with pytest.raises(ValueError):
            summit(1, gpus_per_node=7)

    def test_with_nodes(self):
        assert summit(2).with_nodes(5).nnodes == 5

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            MachineSpec(nnodes=0)
        with pytest.raises(ValueError):
            GpuSpec(memory_bytes=0)


class TestFrontier:
    def test_spec(self):
        from repro.machine import frontier

        m = frontier(4)
        assert m.name == "frontier"
        assert m.node.ngpus == 4
        assert m.total_gpus == 16
        assert m.gpu.gemm_peak > SUMMIT_PEAK_PER_GPU

    def test_runs_a_plan(self):
        from repro.core import psgemm_simulate
        from repro.machine import frontier, summit
        from repro.sparse import random_shape_with_density
        from repro.tiling import random_tiling

        rows = random_tiling(600, 40, 160, seed=0)
        inner = random_tiling(3000, 40, 160, seed=1)
        a = random_shape_with_density(rows, inner, 0.5, seed=2)
        b = random_shape_with_density(inner, inner, 0.5, seed=3)
        # Matched GPU counts: 2 Summit nodes (12 GPUs) vs 3 Frontier nodes.
        _, rs = psgemm_simulate(a, b, summit(2), p=1)
        _, rf = psgemm_simulate(a, b, frontier(3), p=1)
        assert rf.makespan > 0
        assert rf.flops == rs.flops


SUMMIT_PEAK_PER_GPU = 7.2e12
