"""Tests for the JSON experiment export."""

import json

from repro.experiments.export import (
    export_all,
    fig2_data,
    mpqc_data,
    scaling_data,
    table1_data,
)


class TestExport:
    def test_table1_structure(self):
        d = table1_data()
        assert set(d) == {"v1", "v2", "v3"}
        for v in d.values():
            assert v["tasks"] >= v["tasks_opt"] > 0
            assert 0 < v["density_v"] < 1

    def test_fig2_points(self):
        pts = fig2_data(scale="quick")
        assert len(pts) == 15  # 3 sizes x 5 densities
        for p in pts:
            assert p["parsec_tflops"] > 0
            assert p["dbcsr_feasible"] in (True, False)
            if p["dbcsr_feasible"]:
                assert p["dbcsr_tflops"] > 0
            else:
                assert p["dbcsr_tflops"] is None

    def test_scaling_points(self):
        d = scaling_data(gpu_counts=(3, 12))
        for v, series in d.items():
            assert [p["gpus"] for p in series] == [3, 12]
            assert series[0]["time"] > series[1]["time"]

    def test_mpqc_rows(self):
        rows = mpqc_data()
        assert [r["nodes"] for r in rows] == [8, 16]
        assert all(r["speedup"] > 1 for r in rows)

    def test_export_all_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.json")
        data = export_all(path, gpu_counts=(3, 12))
        with open(path) as f:
            back = json.load(f)
        assert back["meta"]["paper"].startswith("Herault")
        assert back["table1"].keys() == data["table1"].keys()
        assert len(back["fig2"]) == len(data["fig2"])

    def test_export_cli(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "r.json")
        assert main(["export", "-o", out, "--gpus", "3", "12"]) == 0
        assert "wrote" in capsys.readouterr().out
        json.load(open(out))
