"""Tests for fused-index (matricized) tilings."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.tiling import Tiling, fuse
from repro.tiling.product import fuse_centers, fuse_radii
from repro.tiling.stats import (
    TileSizeStats,
    matricized_tile_sizes_bytes,
    tile_size_histogram_mb,
    tile_size_stats,
)


class TestFuse:
    def test_sizes_outer_product(self):
        a = Tiling.from_sizes([2, 3])
        b = Tiling.from_sizes([5, 7, 11])
        f = fuse(a, b)
        assert f.ntiles == 6
        assert list(f.tiling.sizes) == [10, 14, 22, 15, 21, 33]
        assert f.tiling.extent == a.extent * b.extent

    def test_fused_pair_roundtrip(self):
        a = Tiling.from_sizes([2, 3, 4])
        b = Tiling.from_sizes([5, 7])
        f = fuse(a, b)
        for t1 in range(3):
            for t2 in range(2):
                t = f.fused_index(t1, t2)
                assert f.pair_index(t) == (t1, t2)
                assert f.tiling.tile_size(t) == a.tile_size(t1) * b.tile_size(t2)

    def test_vectorized_index_maps(self):
        f = fuse(Tiling.from_sizes([1, 2]), Tiling.from_sizes([3, 4, 5]))
        t1 = np.array([0, 1, 1])
        t2 = np.array([2, 0, 1])
        t = f.fused_index(t1, t2)
        back1, back2 = f.pair_index(t)
        assert np.array_equal(back1, t1)
        assert np.array_equal(back2, t2)

    @given(
        st.lists(st.integers(1, 9), min_size=1, max_size=6),
        st.lists(st.integers(1, 9), min_size=1, max_size=6),
    )
    def test_property_extent_product(self, s1, s2):
        f = fuse(Tiling.from_sizes(s1), Tiling.from_sizes(s2))
        assert f.tiling.extent == sum(s1) * sum(s2)
        assert f.ntiles == len(s1) * len(s2)


class TestFusedGeometry:
    def test_fuse_centers_midpoints(self):
        c1 = np.array([[0.0, 0, 0], [2.0, 0, 0]])
        c2 = np.array([[0.0, 2, 0]])
        out = fuse_centers(c1, c2)
        assert out.shape == (2, 3)
        assert np.allclose(out[0], [0, 1, 0])
        assert np.allclose(out[1], [1, 1, 0])

    def test_fuse_radii_covers_both(self):
        c1 = np.array([[0.0, 0, 0]])
        c2 = np.array([[4.0, 0, 0]])
        r = fuse_radii(c1, np.array([1.0]), c2, np.array([0.5]))
        # midpoint at x=2; cluster 1 extends to x=-1 -> radius >= 3
        assert r[0] >= 3.0


class TestStats:
    def test_tile_size_stats(self):
        t = Tiling.from_sizes([10, 20, 30])
        s = tile_size_stats(t)
        assert s.count == 3
        assert s.mean == 20
        assert s.minimum == 10 and s.maximum == 30
        assert s.median == 20

    def test_stats_row_formatting(self):
        s = TileSizeStats.from_sample(np.array([1.0, 2.0, 3.0]))
        assert "n=" in s.row() and "med=" in s.row()

    def test_matricized_sizes(self):
        r = Tiling.from_sizes([2, 3])
        c = Tiling.from_sizes([4])
        sizes = matricized_tile_sizes_bytes(r, c, dtype_bytes=8)
        assert sorted(sizes.tolist()) == [64, 96]

    def test_histogram(self):
        r = Tiling.from_sizes([100, 200, 300])
        c = Tiling.from_sizes([100, 400])
        edges, counts = tile_size_histogram_mb(r, c, nbins=10)
        assert counts.sum() == 6
        assert len(edges) == 11
