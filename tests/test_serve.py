"""Tests for the serving layer (:mod:`repro.serve`).

The contract under test: one warm pool serves many jobs, every job's C
is bit-for-bit equal to the serial oracle (even when clients submit
concurrently), job artifacts never collide, higher-priority jobs jump
the queue, admission control rejects what the pool cannot run, and a
failed job leaves the service healthy.

Fast unit tests (warm cache, admission, event-log scoping) run in
tier-1; everything that spawns worker processes is marked ``dist`` and
runs via ``make test-dist``.
"""

import json
import os
import threading

import numpy as np
import pytest

from repro.core import inspect
from repro.machine import summit
from repro.runtime import DelayedGeneratedCollection, GeneratedCollection, execute_plan
from repro.serve import (
    AdmissionError,
    BackpressureError,
    ContractionService,
    JobFailedError,
    WarmTileCache,
)
from repro.sparse import random_block_sparse
from repro.tiling import random_tiling


def operands(seed=0, m=200, nk=600, density=0.5, gen_delay_s=0.0):
    rows = random_tiling(m, 20, 80, seed=seed)
    inner = random_tiling(nk, 20, 80, seed=seed + 1)
    a = random_block_sparse(rows, inner, density, seed=seed + 2)
    b_shape = random_block_sparse(inner, inner, density, seed=seed + 3).sparse_shape()
    if gen_delay_s > 0.0:
        b = DelayedGeneratedCollection(b_shape, seed=seed + 4, gen_delay_s=gen_delay_s)
    else:
        b = GeneratedCollection(b_shape, seed=seed + 4)
    return a, b


@pytest.fixture()
def problem():
    a, b = operands(seed=0)
    plan = inspect(a.sparse_shape(), b.shape, summit(2), p=1)
    assert plan.grid.nprocs == 2
    c_serial, _ = execute_plan(plan, a, b.empty_clone())
    return plan, a, b, c_serial.to_dense()


# ---- warm cache (tier-1) ---------------------------------------------------


class TestWarmTileCache:
    def test_get_put_roundtrip_and_stats(self):
        cache = WarmTileCache(1 << 20)
        assert cache.get("ns", (0, 0)) is None
        tile = np.arange(6.0).reshape(2, 3)
        cache.put("ns", (0, 0), tile)
        out = cache.get("ns", (0, 0))
        assert np.array_equal(out, tile)
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    def test_put_copies_and_serves_read_only(self):
        cache = WarmTileCache(1 << 20)
        tile = np.ones((2, 2))
        cache.put("ns", (0, 0), tile)
        tile[:] = 7.0  # caller's buffer dies / mutates after the run
        out = cache.get("ns", (0, 0))
        assert np.array_equal(out, np.ones((2, 2)))
        with pytest.raises(ValueError):
            out[0, 0] = 9.0

    def test_namespaces_do_not_alias(self):
        cache = WarmTileCache(1 << 20)
        cache.put("b:aaa", (0, 0), np.zeros((2, 2)))
        assert cache.get("b:bbb", (0, 0)) is None

    def test_lru_eviction_under_budget(self):
        tile = np.zeros((8, 8))  # 512 B
        cache = WarmTileCache(tile.nbytes * 2)
        for i in range(3):
            cache.put("ns", (0, i), tile)
        assert cache.get("ns", (0, 0)) is None  # oldest evicted
        assert cache.get("ns", (0, 2)) is not None
        assert cache.evictions == 1
        assert cache.cached_bytes <= cache.budget_bytes

    def test_oversized_tile_not_cached(self):
        cache = WarmTileCache(64)
        cache.put("ns", (0, 0), np.zeros((8, 8)))
        assert len(cache) == 0

    def test_pickles_empty(self):
        import pickle

        cache = WarmTileCache(12345)
        cache.put("ns", (0, 0), np.zeros((2, 2)))
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.budget_bytes == 12345
        assert len(clone) == 0 and clone.get("ns", (0, 0)) is None


# ---- admission control (tier-1: rejected before any process spawns) --------


class TestAdmission:
    def test_rank_mismatch_rejected(self, problem):
        plan, a, b, _ = problem
        svc = ContractionService(plan.grid.nprocs + 1)
        try:
            with pytest.raises(AdmissionError, match="rank"):
                svc.submit(plan, a, b.empty_clone())
            assert svc.pool.spawns == 0
        finally:
            svc.shutdown()

    def test_memory_rule_violation_rejected_with_findings(self, problem):
        plan, a, b, _ = problem
        plan.procs[0].blocks[0].c_bytes = plan.gpu_memory_bytes  # fires P110
        svc = ContractionService(plan.grid.nprocs)
        try:
            with pytest.raises(AdmissionError) as exc:
                svc.submit(plan, a, b.empty_clone())
            assert any(f.rule == "P110" for f in exc.value.findings)
            assert svc.pool.spawns == 0
        finally:
            svc.shutdown()

    def test_unknown_job_id(self, problem):
        plan, *_ = problem
        svc = ContractionService(plan.grid.nprocs)
        try:
            with pytest.raises(ValueError, match="unknown job"):
                svc.result("nope")
        finally:
            svc.shutdown()


# ---- full service behaviour (multi-process; `make test-dist`) --------------


@pytest.mark.dist
class TestContractionService:
    def test_concurrent_jobs_bit_equal_to_serial_oracle(self, problem, tmp_path):
        plan, a, b, oracle = problem
        svc = ContractionService(plan.grid.nprocs, artifacts_dir=str(tmp_path))
        results: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []
        try:
            def client(i: int) -> None:
                try:
                    jid = svc.submit(plan, a, b.empty_clone())
                    out, _ = svc.result(jid, timeout=120)
                    results[i] = out.to_dense()
                except BaseException as exc:  # noqa: BLE001 - reraised below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            assert not errors, errors
            assert len(results) == 4
            for i, dense in results.items():
                assert np.array_equal(dense, oracle), f"client {i} C differs"
        finally:
            svc.shutdown()

    def test_warm_pool_reused_across_jobs(self, problem, tmp_path):
        plan, a, b, oracle = problem
        svc = ContractionService(plan.grid.nprocs, artifacts_dir=str(tmp_path))
        try:
            j1 = svc.submit(plan, a, b.empty_clone())
            out1, rep1 = svc.result(j1, timeout=120)
            spawns_after_first = svc.pool.spawns
            j2 = svc.submit(plan, a, b.empty_clone())
            out2, rep2 = svc.result(j2, timeout=120)
            assert np.array_equal(out1.to_dense(), oracle)
            assert np.array_equal(out2.to_dense(), oracle)
            # Same processes served both jobs...
            assert svc.pool.spawns == spawns_after_first == plan.grid.nprocs
            # ...and the second job's B tiles came from the warm tier.
            assert rep1.b_store_hits == 0
            assert rep2.b_store_hits > 0
            assert rep2.b_store_hits == rep2.stats.b_tiles_generated
        finally:
            svc.shutdown()

    def test_per_job_artifacts_are_disjoint(self, problem, tmp_path):
        plan, a, b, _ = problem
        svc = ContractionService(plan.grid.nprocs, artifacts_dir=str(tmp_path))
        try:
            ids = [svc.submit(plan, a, b.empty_clone()) for _ in range(2)]
            reports = [svc.result(j, timeout=120)[1] for j in ids]
        finally:
            svc.shutdown()
        names = sorted(os.listdir(tmp_path))
        for jid, rep in zip(ids, reports):
            assert rep.run_id == jid
            assert f"run-events.{jid}.jsonl" in names
            assert f"trace.{jid}.json" in names
            assert f"metrics.{jid}.prom" in names
            assert os.path.basename(rep.events_path) == f"run-events.{jid}.jsonl"
            # Each event log carries only its own run's records.
            with open(os.path.join(tmp_path, f"run-events.{jid}.jsonl")) as fh:
                records = [json.loads(line) for line in fh]
            assert records and all(r["run"] == jid for r in records)
            with open(os.path.join(tmp_path, f"trace.{jid}.json")) as fh:
                assert json.load(fh), "empty chrome trace"

    def test_priority_jumps_queue_under_saturation(self, tmp_path):
        a, b = operands(seed=2, m=150, nk=450, gen_delay_s=0.02)
        plan = inspect(a.sparse_shape(), b.shape, summit(2), p=1)
        svc = ContractionService(plan.grid.nprocs, artifacts_dir=str(tmp_path))
        try:
            blocker = svc.submit(plan, a, b.empty_clone())
            # While the blocker occupies the pool, queue low before high.
            low = svc.submit(plan, a, b.empty_clone(), priority=0)
            high = svc.submit(plan, a, b.empty_clone(), priority=5)
            for jid in (blocker, low, high):
                svc.result(jid, timeout=180)
            started = {jid: svc._job(jid).started_s for jid in (low, high)}
            assert started[high] < started[low], (
                "high-priority job did not jump the queue"
            )
        finally:
            svc.shutdown()

    def test_backpressure_when_queue_full(self, tmp_path):
        a, b = operands(seed=3, m=150, nk=450, gen_delay_s=0.02)
        plan = inspect(a.sparse_shape(), b.shape, summit(2), p=1)
        svc = ContractionService(
            plan.grid.nprocs, artifacts_dir=str(tmp_path), queue_limit=2
        )
        try:
            ids = [svc.submit(plan, a, b.empty_clone()) for _ in range(2)]
            with pytest.raises(BackpressureError):
                svc.submit(plan, a, b.empty_clone())
            for jid in ids:  # drains the queue; admission reopens
                svc.result(jid, timeout=180)
            ids.append(svc.submit(plan, a, b.empty_clone()))
            svc.result(ids[-1], timeout=180)
        finally:
            svc.shutdown()

    def test_failed_job_does_not_poison_the_service(self, problem, tmp_path):
        from repro.dist import FaultPlan

        plan, a, b, oracle = problem
        svc = ContractionService(plan.grid.nprocs, artifacts_dir=str(tmp_path))
        try:
            doomed = svc.submit(
                plan, a, b.empty_clone(),
                fault_plan=FaultPlan.parse("0:1:abort", plan.grid.nprocs),
            )
            with pytest.raises(JobFailedError):
                svc.result(doomed, timeout=120)
            assert svc.status(doomed) == "failed"
            healthy = svc.submit(plan, a, b.empty_clone())
            out, _ = svc.result(healthy, timeout=120)
            assert np.array_equal(out.to_dense(), oracle)
        finally:
            svc.shutdown()

    def test_drain_and_resume(self, problem, tmp_path):
        plan, a, b, _ = problem
        svc = ContractionService(plan.grid.nprocs, artifacts_dir=str(tmp_path))
        try:
            jid = svc.submit(plan, a, b.empty_clone())
            assert svc.drain(timeout=120)
            assert svc.status(jid) == "done"
            with pytest.raises(AdmissionError, match="draining"):
                svc.submit(plan, a, b.empty_clone())
            svc.resume()
            jid2 = svc.submit(plan, a, b.empty_clone())
            svc.result(jid2, timeout=120)
        finally:
            svc.shutdown()

    def test_shutdown_is_graceful_and_idempotent(self, problem, tmp_path):
        plan, a, b, _ = problem
        svc = ContractionService(plan.grid.nprocs, artifacts_dir=str(tmp_path))
        jid = svc.submit(plan, a, b.empty_clone())
        svc.shutdown()
        svc.shutdown()  # idempotent
        assert svc.pool.closed
        assert svc.status(jid) == "done"  # graceful shutdown drained it
        with pytest.raises(ValueError, match="shut down"):
            svc.submit(plan, a, b.empty_clone())
