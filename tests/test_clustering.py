"""Tests for k-means and spatially clustered ranges."""

import numpy as np
import pytest

from repro.tiling import cluster_points, kmeans
from repro.tiling.kmeans import KMeansResult


def quasi_1d_points(n=400, length=80.0, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.normal(scale=1.0, size=(n, 3))
    pts[:, 0] = np.sort(rng.uniform(0, length, size=n))
    return pts


class TestKMeans:
    def test_exact_k_nonempty(self):
        pts = quasi_1d_points()
        res = kmeans(pts, 16, seed=1)
        counts = np.bincount(res.labels, minlength=16)
        assert res.k == 16
        assert (counts > 0).all()

    def test_deterministic(self):
        pts = quasi_1d_points()
        r1 = kmeans(pts, 8, seed=3)
        r2 = kmeans(pts, 8, seed=3)
        assert np.array_equal(r1.labels, r2.labels)
        assert np.allclose(r1.centers, r2.centers)

    def test_centers_ordered_along_dominant_axis(self):
        pts = quasi_1d_points()
        res = kmeans(pts, 10, seed=2)
        assert (np.diff(res.centers[:, 0]) > 0).all()

    def test_k_equals_n(self):
        pts = np.arange(6, dtype=float).reshape(-1, 1) * 10
        res = kmeans(pts, 6, seed=0)
        assert sorted(res.labels.tolist()) == list(range(6))

    def test_k_one(self):
        pts = quasi_1d_points(50)
        res = kmeans(pts, 1, seed=0)
        assert np.allclose(res.centers[0], pts.mean(axis=0))
        assert (res.labels == 0).all()

    def test_separated_clusters_recovered(self):
        rng = np.random.default_rng(4)
        blobs = [rng.normal(loc=(c, 0, 0), scale=0.1, size=(30, 3)) for c in (0.0, 50.0, 100.0)]
        pts = np.vstack(blobs)
        res = kmeans(pts, 3, seed=5)
        # Each blob maps to a single cluster, in spatial order.
        for b, blob_slice in enumerate((slice(0, 30), slice(30, 60), slice(60, 90))):
            assert len(set(res.labels[blob_slice].tolist())) == 1
            assert res.labels[blob_slice][0] == b

    def test_invalid_k(self):
        pts = quasi_1d_points(10)
        with pytest.raises(ValueError):
            kmeans(pts, 11)
        with pytest.raises(ValueError):
            kmeans(pts, 0)

    def test_inertia_decreases_with_k(self):
        pts = quasi_1d_points()
        i2 = kmeans(pts, 2, seed=0).inertia
        i16 = kmeans(pts, 16, seed=0).inertia
        assert i16 < i2

    def test_result_type(self):
        res = kmeans(quasi_1d_points(30), 3, seed=0)
        assert isinstance(res, KMeansResult)


class TestClusterPoints:
    def test_tiling_covers_all_points(self):
        pts = quasi_1d_points()
        cr = cluster_points(pts, 12, seed=6)
        assert cr.extent == len(pts)
        assert cr.ntiles == 12
        assert cr.tiling.sizes.sum() == len(pts)

    def test_order_is_permutation(self):
        pts = quasi_1d_points(100)
        cr = cluster_points(pts, 5, seed=1)
        assert sorted(cr.order.tolist()) == list(range(100))

    def test_order_groups_clusters_contiguously(self):
        pts = quasi_1d_points(200)
        cr = cluster_points(pts, 8, seed=2)
        # Points of tile t, after permutation, must all be closest to center t.
        reordered = pts[cr.order]
        for t in range(cr.ntiles):
            members = reordered[cr.tiling.tile_slice(t)]
            d = np.linalg.norm(members - cr.centers[t], axis=1)
            assert (d <= cr.radii[t] + 1e-9).all()

    def test_radii_nonnegative(self):
        cr = cluster_points(quasi_1d_points(), 10, seed=3)
        assert (cr.radii >= 0).all()

    def test_weights_length_validated(self):
        pts = quasi_1d_points(50)
        with pytest.raises(ValueError):
            cluster_points(pts, 4, weights=np.ones(7))

    def test_too_many_clusters(self):
        with pytest.raises(ValueError):
            cluster_points(quasi_1d_points(5), 9)
