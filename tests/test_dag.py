"""Tests for the plan -> two-DAG task-graph expansion."""

import numpy as np
import pytest

from repro.core import inspect
from repro.core.analytic import simulate
from repro.machine import summit
from repro.runtime.dag import build_task_graph, simulate_des
from repro.sparse import gemm_task_count, random_shape_with_density
from repro.tiling import random_tiling


def instance(seed=0, m=600, nk=3000, density=0.5):
    rows = random_tiling(m, 40, 160, seed=seed)
    inner = random_tiling(nk, 40, 160, seed=seed + 1)
    a = random_shape_with_density(rows, inner, density, seed=seed + 2)
    b = random_shape_with_density(inner, inner, density, seed=seed + 3)
    return a, b


class TestBuildTaskGraph:
    def test_chunk_granularity_counts(self):
        # Shrink the GPU so the plan has many blocks and chunks (and thus
        # control edges) at test scale.
        from dataclasses import replace

        a, b = instance()
        mach = summit(1)
        mach = replace(mach, gpu=replace(mach.gpu, memory_bytes=4 * 2**20))
        plan = inspect(a, b, mach)
        assert plan.total_blocks > plan.grid.total_gpus  # multiple per GPU
        graph = build_task_graph(plan, mach, granularity="chunk")
        # Tasks: recv per proc + (gen + load_bc + store_c) per block +
        # (load_a + gemm) per chunk.
        expect = (
            plan.grid.nprocs
            + 3 * plan.total_blocks
            + 2 * plan.total_chunks
        )
        assert graph.ntasks == expect
        assert graph.control_edges > 0
        assert graph.dataflow_edges > graph.control_edges

    def test_task_granularity_emits_every_gemm(self):
        a, b = instance(m=300, nk=900)
        plan = inspect(a, b, summit(1), gpus_per_proc=3)
        graph = build_task_graph(plan, summit(1), granularity="task")
        n_gemms = gemm_task_count(a, b)
        non_gemm = plan.grid.nprocs + 3 * plan.total_blocks + plan.total_chunks
        assert graph.ntasks == non_gemm + n_gemms

    def test_graph_runs_acyclically(self):
        a, b = instance(seed=5)
        plan = inspect(a, b, summit(2), p=2, gpus_per_proc=3)
        trace, makespan = simulate_des(plan, summit(2))
        assert makespan > 0
        assert len(trace.events) == build_task_graph(plan, summit(2)).ntasks

    def test_invalid_granularity(self):
        a, b = instance()
        plan = inspect(a, b, summit(1))
        with pytest.raises(ValueError):
            build_task_graph(plan, summit(1), granularity="nope")


class TestCrossValidation:
    """The DES and the coarse model are two executors of the same plan;
    they must agree within the fidelity gap of the coarse model."""

    @pytest.mark.parametrize("seed,density", [(1, 1.0), (2, 0.5), (3, 0.2)])
    def test_des_vs_analytic_band(self, seed, density):
        a, b = instance(seed=seed, density=density, m=800, nk=5000)
        plan = inspect(a, b, summit(2), p=1, gpus_per_proc=3)
        _, des_time = simulate_des(plan, summit(2))
        coarse = simulate(plan, summit(2), overlap_rho=0.25).makespan
        assert 0.4 < des_time / coarse < 2.5, (des_time, coarse)

    def test_des_task_vs_chunk_granularity_agree(self):
        a, b = instance(seed=4, m=300, nk=1200)
        plan = inspect(a, b, summit(1), gpus_per_proc=2)
        _, t_chunk = simulate_des(plan, summit(1), granularity="chunk")
        _, t_task = simulate_des(plan, summit(1), granularity="task")
        # Same work, different aggregation; per-task launch overheads are
        # identical so the two should track closely.
        assert 0.5 < t_task / t_chunk < 2.0

    def test_des_monotone_in_nodes(self):
        a, b = instance(seed=6, m=1200, nk=8000)
        times = []
        for n in (1, 2):
            plan = inspect(a, b, summit(n), p=1)
            _, t = simulate_des(plan, summit(n))
            times.append(t)
        assert times[1] < times[0]

    def test_makespan_bounded_below_by_link_serialization(self):
        # The control chain serializes each GPU's link activity, so the
        # makespan is at least the busiest link's total transfer time.
        a, b = instance(seed=7)
        plan = inspect(a, b, summit(1), gpus_per_proc=1)
        graph = build_task_graph(plan, summit(1))
        trace = graph.engine.run()
        link_resources = {
            ev.resource for ev in trace.events if ev.resource.endswith(".link")
        }
        busiest = max(trace.busy_time(r) for r in link_resources)
        assert trace.makespan >= busiest - 1e-12
