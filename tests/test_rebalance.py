"""End-to-end tests for dynamic block rebalancing (steal + handoff).

When ``rebalance=True`` a flagged straggler is asked to relinquish its
unstarted blocks at the next block boundary and the coordinator hands
the yielded work to a finished rank (or its inline spare).  The serial
executor stays the bit-for-bit oracle under every fault combination, and
the merged statistics still attribute handed-off work to the origin rank
— stats parity is the proof that no block ran twice or vanished.

The deterministic straggler here is a ``slow`` fault: rank 0 sleeps on
every task, the others race ahead, the windowed-rate patrol flags it.
"""

import glob
import os

import numpy as np
import pytest

from repro.core import psgemm_distributed, psgemm_numeric
from repro.dist import FaultInjection, FaultPlan, read_events
from repro.machine import summit
from repro.runtime import GeneratedCollection
from repro.sparse import random_block_sparse
from repro.store.journal import CompletedBlock, WritebackJournal, read_journal
from repro.tiling import random_tiling


def operands(seed=0, m=300, nk=900, density=0.5):
    rows = random_tiling(m, 20, 80, seed=seed)
    inner = random_tiling(nk, 20, 80, seed=seed + 1)
    a = random_block_sparse(rows, inner, density, seed=seed + 2)
    b = random_block_sparse(inner, inner, density, seed=seed + 3)
    return a, b


#: Knobs that make the patrol flag the slow rank within the run: tight
#: heartbeat cadence and a permissive rate threshold.  ``summit(3)`` with
#: ``p=3`` gives every rank 6 GPU blocks, so there are block boundaries
#: left to steal when the flag lands.
REBALANCE_KWARGS = dict(
    heartbeat_interval=0.05,
    straggler_fraction=0.5,
    rebalance=True,
    timeout=120,
)


def slow_rank0(seconds=0.05):
    return FaultPlan.slow(0, at_task=1, seconds=seconds)


def kinds(events):
    return [e.get("event") for e in events]


class TestRebalanceParity:
    def test_rebalanced_run_matches_serial_bit_for_bit(self, tmp_path):
        """The tentpole invariant: steal + handoff changes *where* blocks
        run, never *what* they produce — C and merged stats are identical
        to the serial oracle, with stolen work attributed to the origin."""
        a, b = operands(seed=0)
        c_serial, s_serial = psgemm_numeric(a, b, summit(3), p=3)
        events = str(tmp_path / "events.jsonl")
        c_dist, rep = psgemm_distributed(
            a, b, summit(3), p=3, fault_plan=slow_rank0(),
            events_path=events, **REBALANCE_KWARGS,
        )
        assert np.array_equal(c_dist.to_dense(), c_serial.to_dense())
        assert rep.stats == s_serial
        assert rep.blocks_rebalanced > 0
        assert rep.handoffs >= 1
        assert rep.tasks_rebalanced > 0
        seen = kinds(read_events(events))
        # the full excursion is journaled: flag -> request -> ack ->
        # handoff -> absorb (patrol-under-load: traffic never stops, so
        # the bounded-interval patrol is what makes "straggler" appear)
        for kind in ("straggler", "rebalance", "relinquished", "handoff",
                     "handoff_done"):
            assert kind in seen, f"missing {kind!r} in {sorted(set(seen))}"
        assert "block_done" in seen  # per-block telemetry feeds the patrol

    def test_rebalance_is_off_by_default(self):
        """Without opting in, a slow rank is flagged but never stolen
        from — the run just takes longer and stays bit-identical."""
        a, b = operands(seed=1)
        c_serial, _ = psgemm_numeric(a, b, summit(3), p=3)
        c_dist, rep = psgemm_distributed(
            a, b, summit(3), p=3, fault_plan=slow_rank0(),
            heartbeat_interval=0.05, straggler_fraction=0.5, timeout=120,
        )
        assert np.array_equal(c_dist.to_dense(), c_serial.to_dense())
        assert rep.handoffs == 0
        assert rep.blocks_rebalanced == 0

    @pytest.mark.dist
    @pytest.mark.parametrize("kind", ["kill", "stall"])
    def test_slow_straggler_plus_fault_on_helper_rank(self, kind, tmp_path):
        """Steal x recovery: rank 0 drags (and is stolen from) while
        rank 1 dies mid-run and is retried — parity must survive the
        overlap of both excursions."""
        a, b = operands(seed=2)
        c_serial, s_serial = psgemm_numeric(a, b, summit(3), p=3)
        plan = FaultPlan(injections=(
            FaultInjection(rank=0, at_task=1, kind="slow",
                           delay_seconds=0.05, once=False),
            FaultInjection(rank=1, at_task=5, kind=kind, once=True),
        ))
        kwargs = dict(REBALANCE_KWARGS)
        if kind == "stall":
            kwargs["stall_after_beats"] = 5
        events = str(tmp_path / "events.jsonl")
        c_dist, rep = psgemm_distributed(
            a, b, summit(3), p=3, fault_plan=plan, events_path=events,
            **kwargs,
        )
        assert np.array_equal(c_dist.to_dense(), c_serial.to_dense())
        assert rep.stats == s_serial
        assert any(att > 1 for att in rep.attempts.values())
        seen = kinds(read_events(events))
        assert "retry" in seen

    @pytest.mark.dist
    def test_flagged_rank_can_be_reflagged_after_retry(self, tmp_path):
        """The flagged_stragglers bookkeeping must clear on retry: a
        persistently slow rank that is also killed once gets flagged,
        recovered (retried), and flagged again on the new attempt."""
        a, b = operands(seed=3)
        c_serial, _ = psgemm_numeric(a, b, summit(3), p=3)
        plan = FaultPlan(injections=(
            FaultInjection(rank=0, at_task=1, kind="slow",
                           delay_seconds=0.08, once=False),
            FaultInjection(rank=1, at_task=3, kind="kill", once=True),
        ))
        events = str(tmp_path / "events.jsonl")
        c_dist, rep = psgemm_distributed(
            a, b, summit(3), p=3, fault_plan=plan, events_path=events,
            **REBALANCE_KWARGS,
        )
        assert np.array_equal(c_dist.to_dense(), c_serial.to_dense())
        evs = read_events(events)
        flagged = [e for e in evs if e.get("event") == "straggler"]
        # rank 0 drags for the whole run: with the stale-flag bug the
        # set was never cleared and a rank could be flagged at most once
        # per run even across recoveries
        assert any(e.get("rank") == 0 for e in flagged)


@pytest.mark.dist
class TestCheckpointedHandoff:
    def test_sidecar_journal_written_and_resumed(self, tmp_path):
        """A checkpointed rebalanced run journals handed-off blocks into
        per-handoff sidecars under the *origin* rank; a second invocation
        restores every block — including the stolen ones — bit-for-bit."""
        a, b = operands(seed=4)
        b_shape = b.sparse_shape()
        bgen = GeneratedCollection(b_shape, seed=4 + 3)
        c_serial, _ = psgemm_numeric(
            a, bgen, summit(3), p=3, b_shape=b_shape
        )
        ckpt = str(tmp_path / "ckpt")
        c1, r1 = psgemm_distributed(
            a, bgen, summit(3), p=3, b_shape=b_shape, checkpoint_dir=ckpt,
            fault_plan=slow_rank0(), **REBALANCE_KWARGS,
        )
        assert np.array_equal(c1.to_dense(), c_serial.to_dense())
        assert r1.blocks_rebalanced > 0
        sidecars = glob.glob(os.path.join(ckpt, "journal-rank*.h*.jsonl"))
        assert sidecars, "handoff must journal into a sidecar file"
        # every sidecar belongs to the straggler (the origin rank)
        assert all("journal-rank0." in os.path.basename(p) for p in sidecars)

        # resume: the second invocation replays main + sidecar journals
        c2, r2 = psgemm_distributed(
            a, bgen, summit(3), p=3, b_shape=b_shape, checkpoint_dir=ckpt,
            timeout=120,
        )
        assert np.array_equal(c2.to_dense(), c_serial.to_dense())
        assert r2.blocks_restored > 0
        assert r2.tasks_skipped > 0
        # nothing is restored twice: restored blocks across ranks can
        # never exceed the plan's block count
        assert r2.handoffs == 0

    def test_abort_after_steal_resumes_bit_identical(self, tmp_path):
        """Kill the whole run (reserved abort exit) while rank 0 drags
        and rebalancing is live, then resume from the journals: the
        resumed run completes bit-for-bit whether or not the handoff
        landed before the abort — sidecar blocks replay as the origin's."""
        from repro.dist import DistExecutionError

        a, b = operands(seed=5)
        b_shape = b.sparse_shape()
        bgen = GeneratedCollection(b_shape, seed=5 + 3)
        c_serial, _ = psgemm_numeric(
            a, bgen, summit(3), p=3, b_shape=b_shape
        )
        ckpt = str(tmp_path / "ckpt")
        plan = FaultPlan(injections=(
            FaultInjection(rank=0, at_task=1, kind="slow",
                           delay_seconds=0.05, once=False),
            FaultInjection(rank=2, at_task=40, kind="abort", once=False),
        ))
        with pytest.raises(DistExecutionError):
            psgemm_distributed(
                a, bgen, summit(3), p=3, b_shape=b_shape,
                checkpoint_dir=ckpt, fault_plan=plan, **REBALANCE_KWARGS,
            )
        c2, r2 = psgemm_distributed(
            a, bgen, summit(3), p=3, b_shape=b_shape, checkpoint_dir=ckpt,
            timeout=120,
        )
        assert np.array_equal(c2.to_dense(), c_serial.to_dense())
        assert r2.blocks_restored > 0


class TestHandoffJournalUnit:
    """The sidecar format itself, no processes involved."""

    def _block(self, rank, gpu, block):
        return CompletedBlock(rank=rank, gpu=gpu, block=block, chunks=1,
                              ntasks=3, tiles=((0, 0),))

    def test_sidecar_folds_into_origin_journal(self, tmp_path):
        main = WritebackJournal(str(tmp_path), rank=0)
        main.record("run", self._block(0, 0, 0))
        main.close()
        side = WritebackJournal(str(tmp_path), rank=0, suffix=".h1")
        side.record("run", self._block(0, 2, 5))
        side.close()
        got = read_journal(str(tmp_path), 0, "run")
        assert {(c.gpu, c.block) for c in got} == {(0, 0), (2, 5)}

    def test_sidecar_is_per_rank(self, tmp_path):
        side = WritebackJournal(str(tmp_path), rank=1, suffix=".h0")
        side.record("run", self._block(1, 0, 7))
        side.close()
        assert read_journal(str(tmp_path), 0, "run") == []
        assert [c.block for c in read_journal(str(tmp_path), 1, "run")] == [7]

    def test_sidecar_respects_run_hash(self, tmp_path):
        side = WritebackJournal(str(tmp_path), rank=0, suffix=".h0")
        side.record("other-run", self._block(0, 0, 1))
        side.close()
        assert read_journal(str(tmp_path), 0, "run") == []

    def test_multiple_sidecars_merge_in_order(self, tmp_path):
        for hid, block in ((0, 3), (1, 4)):
            side = WritebackJournal(str(tmp_path), rank=0, suffix=f".h{hid}")
            side.record("run", self._block(0, 0, block))
            side.close()
        got = read_journal(str(tmp_path), 0, "run")
        assert [c.block for c in got] == [3, 4]
