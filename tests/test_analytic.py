"""Tests for the coarse performance model."""

import numpy as np
import pytest

from repro.core import inspect, psgemm_simulate
from repro.core.analytic import SimReport, _gpu_time, _overlap, simulate
from repro.core.plan import Block, Chunk
from repro.machine import summit
from repro.machine.links import LinkModel
from repro.sparse import random_shape_with_density
from repro.tiling import random_tiling


def instance(density=0.5, seed=0, m=900, nk=6000):
    rows = random_tiling(m, 50, 200, seed=seed)
    inner = random_tiling(nk, 50, 200, seed=seed + 1)
    a = random_shape_with_density(rows, inner, density, seed=seed + 2)
    b = random_shape_with_density(inner, inner, density, seed=seed + 3)
    return a, b


class TestOverlap:
    def test_perfect_overlap(self):
        assert _overlap([3.0, 1.0, 2.0], 0.0) == 3.0

    def test_full_serialization(self):
        assert _overlap([3.0, 1.0, 2.0], 1.0) == 6.0

    def test_partial(self):
        assert _overlap([4.0, 2.0], 0.25) == pytest.approx(4.5)

    def test_empty(self):
        assert _overlap([], 0.5) == 0.0


class TestGpuTime:
    def _chunk(self, nbytes, dev_s, ntasks=1, ntiles=1):
        return Chunk(
            a_rows=np.zeros(ntiles, dtype=np.int64),
            a_cols=np.arange(ntiles, dtype=np.int64),
            a_bytes=nbytes,
            ntasks=ntasks,
            flops=1.0,
            device_seconds=dev_s,
        )

    def _block(self, chunks, b_bytes=0, c_bytes=0):
        return Block(
            gpu=0,
            columns=np.array([0]),
            b_bytes=b_bytes,
            c_bytes=c_bytes,
            b_tile_count=1 if b_bytes else 0,
            c_tile_count=1 if c_bytes else 0,
            k_tiles=np.array([0]),
            chunks=chunks,
        )

    def test_double_buffer_pipeline(self):
        # Two chunks, compute 1 s each, loads 0.5 s each: pipeline is
        # load0 + max(comp0, load1) + comp1 = 0.5 + 1 + 1 = 2.5 s.
        link = LinkModel(bandwidth=10e9, latency=0.0)
        chunks = [self._chunk(int(5e9), 1.0), self._chunk(int(5e9), 1.0)]
        t = _gpu_time([self._block(chunks)], link, launch_s=0.0)
        assert t == pytest.approx(2.5)

    def test_transfer_bound_pipeline(self):
        # Loads 2 s, compute 0.1 s: t = 2 + max(0.1, 2) + 0.1 = 4.1 s.
        link = LinkModel(bandwidth=1e9, latency=0.0)
        chunks = [self._chunk(int(2e9), 0.1), self._chunk(int(2e9), 0.1)]
        t = _gpu_time([self._block(chunks)], link, launch_s=0.0)
        assert t == pytest.approx(4.1)

    def test_block_load_and_writeback_serialize(self):
        link = LinkModel(bandwidth=1e9, latency=0.0)
        blk = self._block([self._chunk(int(1e9), 0.0)], b_bytes=int(1e9), c_bytes=int(1e9))
        t = _gpu_time([blk], link, launch_s=0.0)
        assert t == pytest.approx(3.0)

    def test_empty_blocks(self):
        link = LinkModel(bandwidth=1e9)
        assert _gpu_time([], link, 0.0) == 0.0


class TestSimulate:
    def test_report_fields(self):
        a, b = instance()
        plan, rep = psgemm_simulate(a, b, summit(2), p=1)
        assert isinstance(rep, SimReport)
        assert rep.makespan > 0
        assert rep.perf == pytest.approx(rep.flops / rep.makespan)
        assert len(rep.nodes) == 2
        assert "Tflop/s" in rep.summary() or "Gflop/s" in rep.summary()

    def test_more_nodes_never_slower(self):
        a, b = instance(seed=5, m=2000, nk=20_000)
        t = []
        for n in (1, 2, 4):
            _, rep = psgemm_simulate(a, b, summit(n), p=1)
            t.append(rep.makespan)
        assert t[0] > t[1] > t[2]

    def test_perfect_overlap_lower_bound(self):
        a, b = instance(seed=6)
        plan = inspect(a, b, summit(2), p=1)
        lo = simulate(plan, summit(2), overlap_rho=0.0).makespan
        hi = simulate(plan, summit(2), overlap_rho=1.0).makespan
        mid = simulate(plan, summit(2), overlap_rho=0.25).makespan
        assert lo <= mid <= hi

    def test_denser_problem_more_flops_and_time(self):
        a1, b1 = instance(density=0.25, seed=7)
        a2, b2 = instance(density=1.0, seed=7)
        _, r1 = psgemm_simulate(a1, b1, summit(2), p=1)
        _, r2 = psgemm_simulate(a2, b2, summit(2), p=1)
        assert r2.flops > r1.flops
        assert r2.makespan > r1.makespan

    def test_perf_per_gpu_and_efficiency_helpers(self):
        a, b = instance(seed=8)
        _, r1 = psgemm_simulate(a, b, summit(1), p=1)
        _, r2 = psgemm_simulate(a, b, summit(2), p=1)
        assert r1.perf_per_gpu(6) == pytest.approx(r1.perf / 6)
        eff = r2.parallel_efficiency(r1, gpu_ratio=2.0)
        assert 0 < eff <= 1.2

    def test_gen_time_deduped_at_node_level(self):
        # Two processes per node in the same grid row have disjoint
        # columns; with p = 2 the two grid rows replicate columns, but
        # co-located procs of different rows share the node's B cache.
        a, b = instance(seed=9)
        plan = inspect(a, b, summit(2), p=2, gpus_per_proc=3)
        rep = simulate(plan, summit(2))
        # Generation per node can never exceed generating all of B.
        from repro.machine.kernels import GenerationModel

        gen_all = GenerationModel(summit(2).node).time(b.nbytes)
        for nt in rep.nodes:
            assert nt.gen <= gen_all * 1.0001
