"""Tests for the grid-rows autotuner and the communication model."""

import pytest

from repro.core import (
    communication_volumes,
    inspect,
    tune_grid_rows,
    worst_case_volumes,
)
from repro.core.autotune import replication_feasible
from repro.machine import summit
from repro.machine.spec import MachineSpec, NodeSpec
from repro.sparse import random_shape_with_density
from repro.tiling import random_tiling


def instance(seed=0, m=900, nk=6000, density=0.5):
    rows = random_tiling(m, 50, 200, seed=seed)
    inner = random_tiling(nk, 50, 200, seed=seed + 1)
    a = random_shape_with_density(rows, inner, density, seed=seed + 2)
    b = random_shape_with_density(inner, inner, density, seed=seed + 3)
    return a, b


class TestAutotune:
    def test_returns_best_feasible(self):
        a, b = instance()
        result = tune_grid_rows(a, b, summit(4), candidates=[1, 2, 4])
        assert result.best_p in (1, 2, 4)
        best = result.best_report.makespan
        assert all(best <= r.makespan for r in result.reports.values())

    def test_infeasible_p_reported(self):
        a, b = instance()
        result = tune_grid_rows(a, b, summit(2), candidates=[1, 64])
        assert 64 in result.infeasible
        assert 1 in result.reports

    def test_p_capped_by_tile_rows(self):
        a, b = instance(m=200)  # very few tile rows
        nrows = a.ntile_rows
        result = tune_grid_rows(a, b, summit(4), candidates=[1, nrows + 1])
        assert nrows + 1 in result.infeasible

    def test_all_infeasible_raises(self):
        a, b = instance()
        with pytest.raises(ValueError):
            tune_grid_rows(a, b, summit(2), candidates=[1000])

    def test_replication_feasibility(self):
        a, b = instance()
        tiny = MachineSpec(nnodes=1, node=NodeSpec(host_memory_bytes=b.nbytes // 2))
        assert not replication_feasible(b, tiny, p=1)
        assert replication_feasible(b, summit(1), p=4)


class TestCommModel:
    def test_report_totals(self):
        a, b = instance(seed=5)
        plan = inspect(a, b, summit(4), p=1)
        rep = communication_volumes(plan)
        assert rep.total_a == sum(p.a_recv_bytes for p in plan.procs)
        assert rep.total_b_generated == b.nbytes
        assert "A moved" in rep.summary()

    def test_worst_case_formulas(self):
        a, b = instance(seed=6)
        wc = worst_case_volumes(a, b, p=2, q=4)
        m_el, k_el = a.rows.extent, a.cols.extent
        n_el = b.cols.extent
        assert wc.a_broadcast == m_el * k_el * 8 * 3
        assert wc.c_move == m_el * n_el * 8
        assert wc.b_replicated == k_el * n_el * 8 * 2

    def test_single_proc_no_network(self):
        a, b = instance(seed=7)
        plan = inspect(a, b, summit(1), p=1)
        rep = communication_volumes(plan)
        assert rep.total_a == 0
        assert rep.total_c == 0

    def test_send_injection_bounded_by_owned(self):
        # Broadcast-injection semantics: an owner sends each tile once, so
        # its send volume is at most A's total bytes.
        a, b = instance(seed=8)
        plan = inspect(a, b, summit(4), p=1)
        for p in plan.procs:
            assert p.a_send_bytes <= a.nbytes
