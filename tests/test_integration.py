"""End-to-end integration: chemistry -> planning -> numeric execution.

These tests exercise the entire stack on a small molecule: the generated
ABCD problem is executed numerically through the distributed plan (with
on-demand generated V tiles, as in the paper) and checked against both
the serial block GEMM and the order-4 tensor API.
"""

import numpy as np
import pytest

from repro.chem import ScreeningModel, TilingVariant, alkane, build_abcd_problem
from repro.core import inspect, psgemm_simulate, tune_grid_rows
from repro.machine import summit
from repro.runtime import GeneratedCollection, execute_plan
from repro.runtime.dag import simulate_des
from repro.sparse.construct import from_shape
from repro.sparse.gemm_ref import block_gemm_reference
from repro.tensor import BlockSparseTensor, contract


@pytest.fixture(scope="module")
def small_abcd():
    """ABCD problem for butane (C4H10, U = 106, O = 13) — small enough to
    execute numerically on one core while keeping nontrivial sparsity."""
    return build_abcd_problem(
        alkane(4),
        TilingVariant("test", occ_clusters=4, ao_clusters=10),
        screening=ScreeningModel(),
        seed=0,
    )


class TestChemToNumeric:
    def test_distributed_abcd_matches_serial_reference(self, small_abcd):
        prob = small_abcd
        t_mat = from_shape(prob.t_shape, fill="random", seed=1)
        v_gen = GeneratedCollection(prob.v_shape, seed=2)
        plan = inspect(prob.t_shape, prob.v_shape, summit(2), p=2, gpus_per_proc=3)
        r, stats = execute_plan(plan, t_mat, v_gen)
        ref = block_gemm_reference(t_mat, v_gen.as_matrix())
        assert r.allclose(ref)
        assert stats.ntasks == plan.total_tasks
        assert v_gen.max_instantiations_per_proc_tile() == 1

    def test_r_occupancy_matches_inferred_shape(self, small_abcd):
        prob = small_abcd
        t_mat = from_shape(prob.t_shape, fill="random", seed=3)
        v_mat = from_shape(prob.v_shape, fill="random", seed=4)
        plan = inspect(prob.t_shape, prob.v_shape, summit(1))
        r, _ = execute_plan(plan, t_mat, v_mat)
        # Numerical cancellation to exactly zero is measure-zero with
        # random tiles, so the occupancies agree.
        assert r.sparse_shape() == prob.r_shape

    def test_matricized_equals_tensor_contraction(self):
        """The matricized GEMM path and the order-4 tensor path agree.

        Uses ethane (U = 38, O = 7) — dense order-4 reference arrays for
        anything larger would not fit in test memory.
        """
        prob = build_abcd_problem(
            alkane(2), TilingVariant("tiny", occ_clusters=3, ao_clusters=4), seed=0
        )
        o_t = prob.tilings.occ.tiling
        u_t = prob.tilings.ao.tiling
        rng = np.random.default_rng(5)

        # Build the order-4 T from dense and matricize through the tensor
        # API; V likewise.
        t_dense4 = rng.standard_normal((o_t.extent, o_t.extent, u_t.extent, u_t.extent))
        v_dense4 = rng.standard_normal((u_t.extent,) * 4)
        T4 = BlockSparseTensor.from_dense(t_dense4, "ijcd", [o_t, o_t, u_t, u_t])
        V4 = BlockSparseTensor.from_dense(v_dense4, "cdab", [u_t] * 4)
        R4 = contract("ijcd,cdab->ijab", T4, V4)
        ref = np.einsum("ijcd,cdab->ijab", t_dense4, v_dense4)
        assert np.allclose(R4.to_dense(), ref)

    def test_simulation_runs_on_chem_problem(self, small_abcd):
        prob = small_abcd
        plan, rep = psgemm_simulate(prob.t_shape, prob.v_shape, summit(2), p=1)
        plan.validate()
        assert rep.makespan > 0
        _, des_time = simulate_des(plan, summit(2))
        assert 0.2 < des_time / rep.makespan < 5.0

    def test_autotune_on_chem_problem(self, small_abcd):
        prob = small_abcd
        res = tune_grid_rows(
            prob.t_shape, prob.v_shape, summit(2), candidates=[1, 2], gpus_per_proc=3
        )
        assert res.best_p in (1, 2)


class TestScalingConsistency:
    def test_numeric_result_independent_of_grid(self, small_abcd):
        """The same problem through three different grids produces the
        same numbers — distribution must not change the mathematics."""
        prob = small_abcd
        t_mat = from_shape(prob.t_shape, fill="random", seed=6)
        v_mat = from_shape(prob.v_shape, fill="random", seed=7)
        results = []
        for p, gpp, nodes in ((1, 6, 1), (2, 3, 2), (1, 2, 3)):
            plan = inspect(prob.t_shape, prob.v_shape, summit(nodes), p=p, gpus_per_proc=gpp)
            r, _ = execute_plan(plan, t_mat, v_mat)
            results.append(r)
        for other in results[1:]:
            assert results[0].allclose(other)

    def test_simulated_time_decreases_with_gpus(self, small_abcd):
        prob = small_abcd
        t_prev = None
        for nodes in (1, 2, 4):
            _, rep = psgemm_simulate(prob.t_shape, prob.v_shape, summit(nodes), p=1)
            if t_prev is not None:
                assert rep.makespan <= t_prev * 1.001
            t_prev = rep.makespan
