"""Tests for the experiment drivers and report formatting."""

import numpy as np
import pytest

from repro.chem import TilingVariant, alkane, build_abcd_problem
from repro.experiments.ablations import (
    ablation_column_assignment,
    ablation_control_flow,
    ablation_grid_rows,
    ablation_memory_split,
    simulate_without_control_flow,
)
from repro.experiments.report import ascii_spy, fmt_series, fmt_table
from repro.experiments.synthetic import run_synthetic_point
from repro.machine import summit
from repro.sparse import random_shape_with_density
from repro.tiling import random_tiling


def small_problem():
    return build_abcd_problem(alkane(15), TilingVariant("t", 4, 10), seed=0)


def small_shapes(seed=0):
    rows = random_tiling(600, 40, 160, seed=seed)
    inner = random_tiling(3000, 40, 160, seed=seed + 1)
    a = random_shape_with_density(rows, inner, 0.5, seed=seed + 2)
    b = random_shape_with_density(inner, inner, 0.5, seed=seed + 3)
    return a, b


class TestReport:
    def test_fmt_table_alignment(self):
        out = fmt_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_fmt_series(self):
        out = fmt_series("label", [1, 2], ["x", "y"])
        assert "label" in out and ": x" in out

    def test_ascii_spy_shapes(self):
        m = np.zeros((100, 200))
        m[:10, :20] = 1.0
        art = ascii_spy(m, width=40, height=10)
        lines = art.splitlines()
        assert len(lines) <= 10
        assert "@" in lines[0] or "%" in lines[0]
        assert art.splitlines()[-1].strip(" .") == ""


class TestSyntheticDriver:
    def test_point_structure(self):
        p = run_synthetic_point(
            12_000, 0.5, m=6_000, machine=summit(2), seed=0,
            p_candidates=(1, 2), with_dbcsr=True,
        )
        assert p.flops > 0
        assert p.parsec_perf > 0
        assert p.intensity > 0
        assert p.parsec_p in (1, 2)
        assert p.dbcsr is not None
        row = p.fig2_row()
        assert row[0] == 12_000

    def test_without_dbcsr(self):
        p = run_synthetic_point(
            12_000, 1.0, m=6_000, machine=summit(2), seed=0,
            p_candidates=(1,), with_dbcsr=False,
        )
        assert p.dbcsr is None
        assert p.fig2_row()[-1] == "-"


class TestAblationDrivers:
    def test_grid_rows_rows(self):
        a, b = small_shapes()
        rows = ablation_grid_rows(a, b, summit(4), candidates=(1, 2))
        assert len(rows) == 2
        assert rows[0][0] == 1

    def test_column_assignment_rows(self):
        a, b = small_shapes(seed=5)
        rows = ablation_column_assignment(a, b, q=4)
        assert [r[0] for r in rows] == ["mirrored", "cyclic", "lpt"]

    def test_memory_split_rows(self):
        a, b = small_shapes(seed=7)
        rows = ablation_memory_split(a, b, summit(1), splits=((0.5, 0.25),))
        assert len(rows) == 1

    def test_control_flow_slowdown_positive(self):
        a, b = small_shapes(seed=9)
        rows = ablation_control_flow(a, b, summit(1))
        slowdown = float(rows[-1][1].rstrip("x"))
        assert slowdown >= 1.0

    def test_without_control_flow_worse(self):
        from repro.core import psgemm_simulate

        a, b = small_shapes(seed=11)
        plan, rep = psgemm_simulate(a, b, summit(1), p=1)
        t_off = simulate_without_control_flow(plan, summit(1))
        assert t_off >= rep.nodes[0].gpu_busy.max()


class TestC65Drivers:
    def test_scaling_series_small(self):
        # Use the real driver machinery on a fast variant.
        from repro.experiments.c65h132 import machine_for_gpus

        prob = small_problem()
        from repro.core import psgemm_simulate

        t_prev = None
        for g in (3, 12):
            _, rep = psgemm_simulate(
                prob.t_shape, prob.v_shape, machine_for_gpus(g), p=1
            )
            if t_prev is not None:
                assert rep.makespan < t_prev
            t_prev = rep.makespan

    def test_machine_for_gpus_validation(self):
        from repro.experiments.c65h132 import machine_for_gpus

        assert machine_for_gpus(3).total_gpus == 3
        assert machine_for_gpus(12).total_gpus == 12
        with pytest.raises(ValueError):
            machine_for_gpus(13)


class TestC65FigureHelpers:
    def test_fig5_density_maps_small(self):
        from repro.experiments.c65h132 import fig5_density_maps

        maps = fig5_density_maps("v3", grid=16)
        assert set(maps) == {"T", "V", "R"}
        for m in maps.values():
            assert m.ndim == 2
            assert 0.0 <= m.min() and m.max() <= 1.0 + 1e-9
            assert m.sum() > 0

    def test_fig6_tile_mb_positive(self):
        from repro.experiments.c65h132 import fig6_tile_mb

        mb = fig6_tile_mb("v3")
        assert (mb > 0).all()
        # v3's tile grid is 32^2 x 32^2.
        assert mb.size == (32**2) ** 2

    def test_table1_text_contains_all_variants(self):
        from repro.experiments.c65h132 import table1_text

        txt = table1_text()
        for col in ("v1 (ours)", "v2 (ours)", "v3 (ours)", "paper"):
            assert col in txt
