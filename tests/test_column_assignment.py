"""Tests for the flop-sorted mirrored-cyclic column assignment (3.2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import assign_columns


class TestAssignColumns:
    def test_partition_complete_and_disjoint(self):
        f = np.random.default_rng(0).uniform(0, 10, 100)
        asg = assign_columns(f, 7)
        merged = np.sort(np.concatenate(asg.columns))
        assert np.array_equal(merged, np.arange(100))

    def test_flops_accounted(self):
        f = np.random.default_rng(1).uniform(0, 10, 50)
        asg = assign_columns(f, 4)
        assert asg.flops.sum() == pytest.approx(f.sum())

    def test_mirrored_exact_on_arithmetic_weights(self):
        # Weights 0..2q-1: mirrored dealing gives every processor exactly
        # one pair summing to 2q-1 — perfect balance.
        q = 8
        f = np.arange(2 * q, dtype=float)
        asg = assign_columns(f, q, "mirrored")
        assert np.allclose(asg.flops, asg.flops[0])
        assert asg.imbalance == pytest.approx(1.0)

    def test_cyclic_imbalanced_on_arithmetic_weights(self):
        q = 8
        f = np.arange(2 * q, dtype=float)
        asg = assign_columns(f, q, "cyclic")
        assert asg.imbalance > 1.0

    def test_lpt_at_least_as_good(self):
        rng = np.random.default_rng(2)
        f = rng.lognormal(0, 1.5, 300)
        lpt = assign_columns(f, 12, "lpt").imbalance
        mir = assign_columns(f, 12, "mirrored").imbalance
        assert lpt <= mir + 1e-12

    def test_single_processor(self):
        f = np.array([1.0, 2.0, 3.0])
        asg = assign_columns(f, 1)
        assert asg.q == 1
        assert asg.columns[0].tolist() == [0, 1, 2]
        assert asg.imbalance == 1.0

    def test_more_processors_than_columns(self):
        f = np.array([5.0, 1.0])
        asg = assign_columns(f, 4)
        sizes = [len(c) for c in asg.columns]
        assert sum(sizes) == 2
        assert max(sizes) <= 1

    def test_zero_weight_columns_still_assigned(self):
        f = np.zeros(10)
        asg = assign_columns(f, 3)
        assert sum(len(c) for c in asg.columns) == 10

    def test_deterministic(self):
        f = np.random.default_rng(3).uniform(0, 1, 64)
        a1 = assign_columns(f, 5)
        a2 = assign_columns(f, 5)
        for c1, c2 in zip(a1.columns, a2.columns):
            assert np.array_equal(c1, c2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            assign_columns(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            assign_columns(np.array([]), 2)
        with pytest.raises(ValueError):
            assign_columns(np.array([1.0]), 2, policy="bogus")

    @settings(max_examples=40)
    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=16),
        st.sampled_from(["mirrored", "cyclic", "lpt"]),
    )
    def test_property_partition(self, weights, q, policy):
        f = np.array(weights)
        asg = assign_columns(f, q, policy)
        merged = np.sort(np.concatenate(asg.columns)) if f.size else np.array([])
        assert np.array_equal(merged, np.arange(f.size))
        assert asg.flops.sum() == pytest.approx(f.sum(), rel=1e-9, abs=1e-6)

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=12), st.integers(0, 10_000))
    def test_property_mirrored_near_optimal_smooth(self, q, seed):
        rng = np.random.default_rng(seed)
        f = np.sort(rng.uniform(0.5, 1.5, 40 * q))
        asg = assign_columns(f, q, "mirrored")
        assert asg.imbalance < 1.05
