"""Tests for the libDBCSR/SUMMA/CPU baselines."""

import pytest

from repro.baselines import dbcsr_simulate, mpqc_cpu_time, summa_simulate
from repro.baselines.cpu_mpqc import PAPER_MEASURED
from repro.baselines.dbcsr import _factor_grids
from repro.core import psgemm_simulate
from repro.machine import summit
from repro.sparse import random_shape_with_density
from repro.tiling import random_tiling


def instance(nk, density=1.0, m=48_000, seed=0):
    rows = random_tiling(m, 512, 2048, seed=seed)
    inner = random_tiling(nk, 512, 2048, seed=seed + 1)
    a = random_shape_with_density(rows, inner, density, seed=seed + 2)
    b = random_shape_with_density(inner, inner, density, seed=seed + 3)
    return a, b


class TestDbcsr:
    def test_factor_grids(self):
        grids = _factor_grids(12)
        assert (3, 4) in grids and (1, 12) in grids and (12, 1) in grids
        assert all(pr * pc == 12 for pr, pc in grids)

    def test_feasible_small_dense(self):
        a, b = instance(48_000)
        rep = dbcsr_simulate(a, b, summit(16))
        assert rep.feasible
        assert rep.perf > 0
        assert rep.grid[0] * rep.grid[1] == 96
        assert "Tflop/s" in rep.summary() or "Gflop/s" in rep.summary()

    def test_oom_large_dense(self):
        # The paper: dense (48k, >=192k, >=192k) fails to allocate.
        a, b = instance(240_000)
        rep = dbcsr_simulate(a, b, summit(16))
        assert not rep.feasible
        assert rep.working_set_bytes > 0
        assert "OOM" in rep.summary()

    def test_sparsity_restores_feasibility(self):
        a, b = instance(240_000, density=0.1, seed=5)
        rep = dbcsr_simulate(a, b, summit(16))
        assert rep.feasible

    def test_fixed_grid(self):
        a, b = instance(48_000)
        rep = dbcsr_simulate(a, b, summit(16), grid=(4, 24))
        assert rep.grid == (4, 24)

    def test_parsec_wins(self):
        # The paper's headline comparison, at the square dense anchor.
        a, b = instance(48_000)
        machine = summit(16)
        db = dbcsr_simulate(a, b, machine)
        _, rep = psgemm_simulate(a, b, machine, p=2, gpus_per_proc=3)
        assert rep.perf > db.perf

    def test_square_dense_anchor_band(self):
        # Paper: libDBCSR reaches 109 Tflop/s on dense 48k^3.
        a, b = instance(48_000)
        rep = dbcsr_simulate(a, b, summit(16))
        assert 50e12 < rep.perf < 200e12

    def test_nonconforming(self):
        a, _ = instance(48_000)
        _, b = instance(96_000, seed=9)
        with pytest.raises(ValueError):
            dbcsr_simulate(a, b, summit(1))


class TestSumma:
    def test_infeasible_when_c_exceeds_gpus(self):
        # C = 48k x 480k doubles = 184 GB > half of 6 GPUs' 96 GiB.
        a, b = instance(480_000, density=1.0, seed=11)
        rep = summa_simulate(a, b, summit(1))
        assert not rep.feasible
        assert "exceeds" in rep.error

    def test_feasible_small(self):
        a, b = instance(48_000, density=0.5, seed=13, m=10_000)
        rep = summa_simulate(a, b, summit(16))
        assert rep.feasible and rep.perf > 0

    def test_stationary_b_wins_on_paper_shape(self):
        # With B huge and C small-ish, streaming B (SUMMA) must lose to
        # keeping it stationary (the paper's algorithm).
        a, b = instance(96_000, density=0.5, seed=15, m=4_000)
        machine = summit(16)
        sm = summa_simulate(a, b, machine)
        _, rep = psgemm_simulate(a, b, machine, p=1)
        if sm.feasible:
            assert rep.makespan < sm.makespan


class TestCpuBaseline:
    def test_anchor_times(self):
        flops = 877e12  # the paper's v1 count
        for nodes, measured in PAPER_MEASURED.items():
            assert mpqc_cpu_time(flops, nodes) == pytest.approx(measured, rel=0.25)

    def test_scaling(self):
        assert mpqc_cpu_time(1e15, 16) < mpqc_cpu_time(1e15, 8)


class TestTransposeReduce:
    def _shapes(self):
        from repro.sparse import random_shape_with_density
        from repro.tiling import random_tiling

        rows = random_tiling(600, 40, 160, seed=20)
        inner = random_tiling(3000, 40, 160, seed=21)
        a = random_shape_with_density(rows, inner, 0.5, seed=22)
        b = random_shape_with_density(inner, inner, 0.5, seed=23)
        return a, b

    def test_report_fields(self):
        from repro.baselines.transpose_reduce import transpose_reduce_simulate

        a, b = self._shapes()
        rep = transpose_reduce_simulate(a, b, summit(4))
        assert rep.makespan > 0
        assert rep.c_reduce_bytes > 0
        assert rep.gen_saved_s >= 0
        assert "C reduced" in rep.summary()

    def test_needs_two_grid_rows(self):
        from repro.baselines.transpose_reduce import transpose_reduce_simulate

        a, b = self._shapes()
        with pytest.raises(ValueError):
            transpose_reduce_simulate(a, b, summit(4), grid_rows=1)

    def test_reduction_grows_with_grid_rows(self):
        from repro.baselines.transpose_reduce import transpose_reduce_simulate

        a, b = self._shapes()
        r2 = transpose_reduce_simulate(a, b, summit(4), grid_rows=2)
        r4 = transpose_reduce_simulate(a, b, summit(4), grid_rows=4)
        assert r4.c_reduce_bytes > r2.c_reduce_bytes
