"""Unit + property tests for repro.tiling.Tiling and random tilings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiling import IndexRange, Tiling, random_tiling


class TestIndexRange:
    def test_basic(self):
        r = IndexRange("i", 196)
        assert r.extent == 196

    def test_fused(self):
        ij = IndexRange("i", 196).fused(IndexRange("j", 196))
        assert ij.name == "ij"
        assert ij.extent == 196 * 196

    def test_invalid(self):
        with pytest.raises(ValueError):
            IndexRange("i", 0)
        with pytest.raises(ValueError):
            IndexRange("", 5)


class TestTiling:
    def test_from_sizes(self):
        t = Tiling.from_sizes([3, 5, 2])
        assert t.extent == 10
        assert t.ntiles == 3
        assert list(t.sizes) == [3, 5, 2]
        assert t.tile_size(1) == 5
        assert t.tile_slice(1) == slice(3, 8)

    def test_uniform(self):
        t = Tiling.uniform(10, 4)
        assert list(t.sizes) == [4, 4, 2]
        assert t.extent == 10

    def test_uniform_exact(self):
        t = Tiling.uniform(12, 4)
        assert list(t.sizes) == [4, 4, 4]

    def test_single(self):
        t = Tiling.single(100)
        assert t.ntiles == 1 and t.extent == 100

    def test_tile_of_scalar_and_vector(self):
        t = Tiling.from_sizes([3, 5, 2])
        assert t.tile_of(0) == 0
        assert t.tile_of(2) == 0
        assert t.tile_of(3) == 1
        assert t.tile_of(9) == 2
        assert np.array_equal(t.tile_of(np.array([0, 4, 8])), [0, 1, 2])

    def test_tile_of_out_of_range(self):
        t = Tiling.from_sizes([3, 5])
        with pytest.raises(IndexError):
            t.tile_of(8)
        with pytest.raises(IndexError):
            t.tile_of(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Tiling([1, 2])  # must start at 0
        with pytest.raises(ValueError):
            Tiling([0, 2, 2])  # empty tile
        with pytest.raises(ValueError):
            Tiling([0])  # too short

    def test_restrict(self):
        t = Tiling.from_sizes([3, 5, 2, 7])
        r = t.restrict([1, 3])
        assert list(r.sizes) == [5, 7]

    def test_eq_hash(self):
        a = Tiling.from_sizes([3, 5])
        b = Tiling.from_sizes([3, 5])
        c = Tiling.from_sizes([5, 3])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_iter_covers_range(self):
        t = Tiling.from_sizes([3, 5, 2])
        covered = np.zeros(10, dtype=bool)
        for sl in t:
            covered[sl] = True
        assert covered.all()

    def test_offsets_readonly(self):
        t = Tiling.from_sizes([3, 5])
        with pytest.raises(ValueError):
            t.offsets[0] = 1

    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=30))
    def test_property_sizes_roundtrip(self, sizes):
        t = Tiling.from_sizes(sizes)
        assert list(t.sizes) == sizes
        assert t.extent == sum(sizes)

    @given(st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=15))
    def test_property_tile_of_consistent_with_slices(self, sizes):
        t = Tiling.from_sizes(sizes)
        for tile in range(t.ntiles):
            sl = t.tile_slice(tile)
            assert t.tile_of(sl.start) == tile
            assert t.tile_of(sl.stop - 1) == tile


class TestRandomTiling:
    def test_extent_and_bounds(self):
        t = random_tiling(48_000, 512, 2048, seed=0)
        assert t.extent == 48_000
        # Every tile within [lo, lo + hi) after the sliver merge.
        assert t.sizes.min() >= 512
        assert t.sizes.max() < 512 + 2048

    def test_deterministic(self):
        t1 = random_tiling(10_000, 100, 400, seed=5)
        t2 = random_tiling(10_000, 100, 400, seed=5)
        assert t1 == t2

    def test_small_extent(self):
        t = random_tiling(600, 512, 2048, seed=1)
        assert t.extent == 600
        assert t.ntiles == 1

    def test_rejects_tiny_extent(self):
        with pytest.raises(ValueError):
            random_tiling(100, 512, 2048)

    @settings(max_examples=25)
    @given(
        st.integers(min_value=1_000, max_value=100_000),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_covers_extent(self, extent, seed):
        t = random_tiling(extent, 100, 400, seed=seed)
        assert t.extent == extent
        assert (t.sizes >= 100).all()
