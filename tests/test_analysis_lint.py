"""AST concurrency-lint tests: each rule, suppression, and the clean tree."""

import os
import textwrap

import repro
from repro.analysis import lint_paths, lint_source


def _lint(src):
    return lint_source(textwrap.dedent(src), filename="fixture.py")


def _rules(src):
    return {f.rule for f in _lint(src)}


class TestShmCleanup:
    def test_unprotected_creation_fires_l301(self):
        findings = _lint("""
            from multiprocessing import shared_memory

            def make():
                shm = shared_memory.SharedMemory(name="x", create=True, size=64)
                shm.buf[0] = 1
        """)
        assert {f.rule for f in findings} == {"L301"}
        assert findings[0].location.line == 5
        assert "leaks the segment" in findings[0].message

    def test_arena_factory_fires_l301(self):
        assert _rules("""
            def make(tiles):
                arena = TileArena.pack("a", tiles)
                return arena.meta()
        """) == {"L301"}

    def test_try_finally_close_is_clean(self):
        assert _rules("""
            from multiprocessing import shared_memory

            def make():
                try:
                    shm = shared_memory.SharedMemory(name="x", create=True, size=64)
                    use(shm)
                finally:
                    shm.close()
        """) == set()

    def test_except_unlink_is_clean(self):
        assert _rules("""
            def make(tiles):
                try:
                    arena = TileArena.allocate("a", 64)
                    fill(arena, tiles)
                except BaseException:
                    arena.unlink()
                    raise
        """) == set()

    def test_immediate_return_is_clean(self):
        assert _rules("""
            def attach(meta):
                return TileArena.attach(meta)
        """) == set()

    def test_handler_body_not_protected_by_own_try(self):
        # A segment created *inside* the except block is outside the
        # region the try's cleanup covers.
        assert "L301" in _rules("""
            def make():
                try:
                    x = reuse()
                except KeyError:
                    x = TileArena.allocate("a", 64)
                finally:
                    log.close()
        """)


class TestMpContext:
    def test_module_level_queue_fires_l302(self):
        findings = _lint("""
            import multiprocessing

            q = multiprocessing.Queue()
        """)
        assert {f.rule for f in findings} == {"L302"}
        assert "get_context" in findings[0].message

    def test_aliased_import_fires_l302(self):
        assert _rules("""
            import multiprocessing as mp

            p = mp.Process(target=f)
        """) == {"L302"}

    def test_context_primitives_clean(self):
        assert _rules("""
            import multiprocessing

            ctx = multiprocessing.get_context("spawn")
            q = ctx.Queue()
            p = ctx.Process(target=f)
        """) == set()


class TestLegacyRng:
    def test_np_random_seed_fires_l303(self):
        findings = _lint("""
            import numpy as np

            np.random.seed(0)
            x = np.random.rand(3)
        """)
        assert [f.rule for f in findings] == ["L303", "L303"]

    def test_generator_api_clean(self):
        assert _rules("""
            import numpy as np

            rng = np.random.default_rng(0)
            x = rng.random(3)
        """) == set()


class TestFrozenSetattr:
    def test_object_setattr_fires_l304(self):
        assert _rules("""
            def thaw(plan):
                object.__setattr__(plan, "rank", 3)
        """) == {"L304"}


class TestBareExcept:
    def test_bare_except_fires_l305(self):
        findings = _lint("""
            def f():
                try:
                    g()
                except:
                    pass
        """)
        assert {f.rule for f in findings} == {"L305"}

    def test_named_except_clean(self):
        assert _rules("""
            def f():
                try:
                    g()
                except Exception:
                    pass
        """) == set()


class TestParseAndSuppression:
    def test_syntax_error_fires_l300(self):
        findings = _lint("def f(:\n")
        assert [f.rule for f in findings] == ["L300"]

    def test_noqa_suppresses_named_rule(self):
        assert _rules("""
            import numpy as np

            np.random.seed(0)  # repro: noqa[L303]
        """) == set()

    def test_noqa_all_suppresses_everything(self):
        assert _rules("""
            import multiprocessing

            q = multiprocessing.Queue()  # repro: noqa[all]
        """) == set()

    def test_noqa_wrong_rule_keeps_finding(self):
        # The finding survives, and since L301 never fires on that line
        # the mistargeted suppression is itself flagged as stale (L399).
        assert _rules("""
            import numpy as np

            np.random.seed(0)  # repro: noqa[L301]
        """) == {"L303", "L399"}

    def test_noqa_comma_separated(self):
        assert _rules("""
            import numpy as np
            import multiprocessing

            q = multiprocessing.Queue(np.random.rand())  # repro: noqa[L302, L303]
        """) == set()


class TestDaemonThread:
    """L307: threads inside repro.dist must be daemon=True."""

    def _lint_dist(self, src):
        return {
            f.rule
            for f in lint_source(
                textwrap.dedent(src), filename="src/repro/dist/fixture.py"
            )
        }

    def test_non_daemon_thread_in_dist_fires(self):
        assert self._lint_dist("""
            import threading

            def start():
                t = threading.Thread(target=loop)
                t.start()
        """) == {"L307"}

    def test_daemon_true_is_clean(self):
        assert self._lint_dist("""
            import threading

            def start():
                t = threading.Thread(target=loop, daemon=True)
                t.start()
        """) == set()

    def test_non_literal_daemon_still_fires(self):
        # daemon=flag cannot be proven True statically; the rule demands
        # the literal so the guarantee survives refactors.
        assert self._lint_dist("""
            import threading

            def start(flag):
                t = threading.Thread(target=loop, daemon=flag)
                t.start()
        """) == {"L307"}

    def test_bare_thread_name_fires(self):
        assert self._lint_dist("""
            from threading import Thread

            def start():
                Thread(target=loop).start()
        """) == {"L307"}

    def test_outside_dist_is_ignored(self):
        src = """
            import threading

            def start():
                threading.Thread(target=loop).start()
        """
        assert _rules(src) == set()

    def test_noqa_suppresses(self):
        assert self._lint_dist("""
            import threading

            def start():
                t = threading.Thread(target=loop)  # repro: noqa[L307]
                t.start()
        """) == set()


class TestUnmanagedHandle:
    """L308: open()/mmap in dist+store must have a guaranteed close path."""

    def _lint_store(self, src):
        return {
            f.rule
            for f in lint_source(
                textwrap.dedent(src), filename="src/repro/store/fixture.py"
            )
        }

    def test_bare_open_fires(self):
        findings = lint_source(
            "fh = open('x')\n", filename="src/repro/store/fixture.py"
        )
        assert {f.rule for f in findings} == {"L308"}
        assert "leaks the descriptor" in findings[0].message

    def test_bare_mmap_fires_in_dist(self):
        assert {
            f.rule
            for f in lint_source(
                "import mmap\nm = mmap.mmap(-1, 10)\n",
                filename="src/repro/dist/fixture.py",
            )
        } == {"L308"}

    def test_with_statement_is_clean(self):
        assert self._lint_store("""
            def read(path):
                with open(path, 'rb') as fh:
                    return fh.read()
        """) == set()

    def test_immediate_return_is_clean(self):
        # Handing the handle straight to the caller transfers ownership;
        # this is how TileStore._open_map returns its mmap.
        assert self._lint_store("""
            import mmap

            def open_map(path):
                with open(path, 'rb') as fh:
                    return mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        """) == set()

    def test_cleanup_try_is_clean(self):
        assert self._lint_store("""
            def copy(path):
                fh = None
                try:
                    fh = open(path)
                    return fh.read()
                finally:
                    if fh is not None:
                        fh.close()
        """) == set()

    def test_outside_dist_and_store_is_ignored(self):
        assert _rules("fh = open('x')\n") == set()

    def test_noqa_suppresses(self):
        assert self._lint_store(
            "fh = open('x')  # repro: noqa[L308]\n"
        ) == set()

    def test_os_open_not_flagged(self):
        # Raw fds have their own discipline; the rule targets the builtin.
        assert self._lint_store("""
            import os

            def probe(path):
                fd = os.open(path, os.O_RDONLY)
                os.close(fd)
        """) == set()


class TestSourceTree:
    def test_repro_package_lints_clean(self):
        """The shipped source tree must stay lint-clean — this is the same
        gate `make analyze` and CI run."""
        report = lint_paths([os.path.dirname(repro.__file__)])
        assert report.ok, report.render()

    def test_lint_paths_exit_code_contract(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(0)\n")
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        report = lint_paths([str(tmp_path)])
        assert report.exit_code() == 1
        assert [f.rule for f in report.findings] == ["L303"]
        assert report.findings[0].location.file == str(bad)
        assert lint_paths([str(clean)]).exit_code() == 0


class TestStaleNoqa:
    """L399: every suppression must suppress something, and is itself
    unsuppressible."""

    def test_active_suppression_is_clean(self):
        assert _rules("""
            import numpy as np
            np.random.seed(0)  # repro: noqa[L303]
        """) == set()

    def test_stale_suppression_fires_l399(self):
        findings = _lint("x = 1  # repro: noqa[L303]\n")
        assert [f.rule for f in findings] == ["L399"]
        assert findings[0].location.line == 1
        assert "stale" in findings[0].message

    def test_partially_stale_list_flags_only_the_dead_rule(self):
        findings = _lint("""
            import numpy as np
            np.random.seed(0)  # repro: noqa[L303,L305]
        """)
        assert [f.rule for f in findings] == ["L399"]
        assert "L305" in findings[0].message

    def test_unknown_rule_id_fires_l399(self):
        findings = _lint("x = 1  # repro: noqa[L999]\n")
        assert [f.rule for f in findings] == ["L399"]
        assert "unknown rule" in findings[0].message

    def test_noqa_all_must_suppress_something(self):
        assert _rules("x = 1  # repro: noqa[all]\n") == {"L399"}
        assert _rules("""
            import numpy as np
            np.random.seed(0)  # repro: noqa[all]
        """) == set()

    def test_l399_cannot_suppress_itself(self):
        # noqa[L399] never fires as a walker rule, so it is always stale —
        # and being reported after the suppression filter, it sticks.
        findings = _lint("x = 1  # repro: noqa[L399]\n")
        assert [f.rule for f in findings] == ["L399"]

    def test_noqa_text_inside_strings_is_ignored(self):
        # Docstrings documenting the suppression syntax (this repo has
        # several) must neither suppress nor count as stale comments.
        assert _rules('''
            """Suppress with # repro: noqa[L308] on the offending line."""
            DOC = "see # repro: noqa[L303]"
        ''') == set()


class TestFilesScanned:
    def test_lint_paths_counts_scanned_files(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        report = lint_paths([str(tmp_path)])
        assert report.files_scanned == 2 and report.ok

    def test_nothing_matched_is_zero_not_an_error(self, tmp_path):
        report = lint_paths([str(tmp_path / "missing")])
        assert report.files_scanned == 0
        assert report.ok and report.exit_code() == 0


class TestUnboundedBlockingRecv:
    @staticmethod
    def _lint_serve(src):
        return {
            f.rule
            for f in lint_source(
                textwrap.dedent(src), filename="src/repro/serve/service.py"
            )
        }

    def test_blocking_get_without_timeout_fires_l309(self):
        assert self._lint_serve("""
            def loop(q):
                return q.get()
        """) == {"L309"}

    def test_blocking_recv_without_timeout_fires_l309(self):
        assert self._lint_serve("""
            def pump(endpoint):
                src, msg, n = endpoint.recv()
                return msg
        """) == {"L309"}

    def test_timeout_kwarg_is_clean(self):
        assert self._lint_serve("""
            def loop(q, ep):
                a = q.get(timeout=0.1)
                b = ep.recv(timeout=1.0)
                return a, b
        """) == set()

    def test_nonblocking_forms_are_clean(self):
        assert self._lint_serve("""
            def drain(q, ep):
                a = q.get_nowait()
                b = ep.recv_nowait()
                c = q.get(block=False)
                return a, b, c
        """) == set()

    def test_positional_args_mean_lookup_not_wait(self):
        # dict.get(key) / store.get(ns, key) are lookups, not blocking waits.
        assert self._lint_serve("""
            def lookup(d, store):
                return d.get("key"), store.get("ns", (0, 0))
        """) == set()

    def test_outside_serve_tree_is_ignored(self):
        assert {
            f.rule
            for f in lint_source(
                "def loop(q):\n    return q.get()\n",
                filename="src/repro/dist/worker.py",
            )
        } == set()

    def test_noqa_suppresses_l309(self):
        assert self._lint_serve(
            "def loop(q):\n    return q.get()  # repro: noqa[L309]\n"
        ) == set()
