"""Unit tests for repro.util (units, rng, validation)."""

import numpy as np
import pytest

from repro.util import (
    GIB,
    MIB,
    TERA,
    fmt_bytes,
    fmt_count,
    fmt_flops,
    fmt_rate,
    fmt_time,
    require,
    require_in,
    require_nonnegative,
    require_positive,
    resolve_rng,
    spawn_rng,
)


class TestUnits:
    def test_byte_constants(self):
        assert MIB == 1024**2
        assert GIB == 1024**3

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(1536 * 1024) == "1.50 MiB"
        assert fmt_bytes(16 * GIB) == "16.00 GiB"

    def test_fmt_count(self):
        assert fmt_count(950) == "950"
        assert fmt_count(1_900_000) == "1.90 M"

    def test_fmt_flops(self):
        assert fmt_flops(1.237e15) == "1.24 Pflop"
        assert fmt_flops(877e12) == "877.00 Tflop"

    def test_fmt_rate(self):
        assert fmt_rate(203 * TERA) == "203.0 Tflop/s"
        assert fmt_rate(2.5e12) == "2.5 Tflop/s"

    def test_fmt_time(self):
        assert fmt_time(34.9) == "34.9 s"
        assert fmt_time(272) == "4.53 min"
        assert fmt_time(0.0021) == "2.1 ms"
        assert fmt_time(2.5e-5) == "25 us"
        assert fmt_time(7200) == "2.00 h"


class TestRng:
    def test_resolve_passthrough(self):
        rng = np.random.default_rng(3)
        assert resolve_rng(rng) is rng

    def test_resolve_seed_deterministic(self):
        a = resolve_rng(42).integers(0, 1000, 10)
        b = resolve_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_spawn_children_independent_and_deterministic(self):
        base = resolve_rng(7)
        c1 = spawn_rng(base, 1).standard_normal(8)
        c2 = spawn_rng(base, 2).standard_normal(8)
        c1_again = spawn_rng(resolve_rng(7), 1).standard_normal(8)
        assert not np.allclose(c1, c2)
        assert np.allclose(c1, c1_again)

    def test_spawn_does_not_advance_parent(self):
        base = resolve_rng(11)
        spawn_rng(base, 5)
        after = base.integers(0, 2**31)
        fresh = resolve_rng(11).integers(0, 2**31)
        assert after == fresh

    def test_spawn_order_independent(self):
        b1 = resolve_rng(9)
        b2 = resolve_rng(9)
        x = spawn_rng(b1, 3).standard_normal(4)
        spawn_rng(b2, 1)
        y = spawn_rng(b2, 3).standard_normal(4)
        assert np.allclose(x, y)


class TestValidation:
    def test_require(self):
        require(True, "nope")
        with pytest.raises(ValueError, match="nope"):
            require(False, "nope")

    def test_require_positive(self):
        require_positive(1, "x")
        with pytest.raises(ValueError):
            require_positive(0, "x")

    def test_require_nonnegative(self):
        require_nonnegative(0, "x")
        with pytest.raises(ValueError):
            require_nonnegative(-1, "x")

    def test_require_in(self):
        require_in("a", {"a", "b"}, "mode")
        with pytest.raises(ValueError, match="mode"):
            require_in("c", {"a", "b"}, "mode")


class TestRngBitGenerators:
    @pytest.mark.parametrize(
        "bitgen", ["PCG64", "MT19937", "Philox", "SFC64"]
    )
    def test_spawn_works_across_bit_generators(self, bitgen):
        cls = getattr(np.random, bitgen)
        c1 = spawn_rng(np.random.Generator(cls(42)), 1).standard_normal(4)
        c2 = spawn_rng(np.random.Generator(cls(42)), 1).standard_normal(4)
        c3 = spawn_rng(np.random.Generator(cls(42)), 2).standard_normal(4)
        assert np.allclose(c1, c2)
        assert not np.allclose(c1, c3)
