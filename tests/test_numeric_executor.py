"""Numeric execution of plans: exactness and runtime invariants.

These are the tests that justify calling the plans *correct*: whatever
grid, memory budget or screening is used, executing the plan with real
tiles reproduces the dense reference, and the run respects the paper's
memory and generation invariants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PlanOptions, inspect, psgemm_numeric
from repro.machine import summit
from repro.runtime import GeneratedCollection, execute_plan
from repro.sparse import random_block_sparse
from repro.sparse.construct import from_shape
from repro.sparse.gemm_ref import block_gemm_reference, gemm_against_dense
from repro.sparse.random_sparsity import random_shape_with_density
from repro.tiling import random_tiling


def operands(density=0.5, seed=0, m=600, nk=3000):
    rows = random_tiling(m, 40, 160, seed=seed)
    inner = random_tiling(nk, 40, 160, seed=seed + 1)
    a = random_block_sparse(rows, inner, density, seed=seed + 2)
    b = random_block_sparse(inner, inner, density, seed=seed + 3)
    return a, b


class TestExactness:
    @pytest.mark.parametrize("p,gpp", [(1, 6), (2, 6), (1, 3), (3, 2)])
    def test_matches_dense_across_grids(self, p, gpp):
        a, b = operands(seed=p * 10 + gpp)
        c, stats = psgemm_numeric(a, b, summit(3), p=p, gpus_per_proc=gpp)
        assert np.allclose(c.to_dense(), gemm_against_dense(a, b))
        assert stats.ntasks > 0

    @pytest.mark.parametrize("density", [1.0, 0.5, 0.1])
    def test_matches_dense_across_densities(self, density):
        a, b = operands(density=density, seed=42)
        c, _ = psgemm_numeric(a, b, summit(2), p=1)
        assert np.allclose(c.to_dense(), gemm_against_dense(a, b))

    def test_accumulates_into_c_input(self):
        a, b = operands(seed=1)
        c0 = random_block_sparse(a.rows, b.cols, 0.3, seed=9)
        c, _ = psgemm_numeric(a, b, summit(1), c=c0)
        assert np.allclose(c.to_dense(), gemm_against_dense(a, b, c0))
        # Input not mutated.
        assert c0.allclose(random_block_sparse(a.rows, b.cols, 0.3, seed=9))

    def test_generated_b_source(self):
        a, bmat = operands(seed=2)
        b_shape = bmat.sparse_shape()
        gen = GeneratedCollection(b_shape, seed=77)
        c, stats = psgemm_numeric(a, gen, summit(2), p=1, b_shape=b_shape)
        ref = block_gemm_reference(a, gen.as_matrix())
        assert c.allclose(ref)
        assert stats.b_tiles_generated > 0

    def test_screened_execution_drops_tasks(self):
        a, b = operands(seed=3)
        a_sh = a.sparse_shape(with_norms=True)
        b_sh = b.sparse_shape(with_norms=True)
        tau = float(np.median(a_sh.csr.data) * np.median(b_sh.csr.data))
        plan = inspect(
            a_sh, b_sh, summit(1), options=PlanOptions(screen_threshold=tau)
        )
        c, stats = execute_plan(plan, a, b)
        assert stats.ntasks == plan.total_tasks
        assert stats.ntasks < inspect(a_sh, b_sh, summit(1)).total_tasks
        # Screened result approximates the full product (large norms kept).
        full = gemm_against_dense(a, b)
        err = np.linalg.norm(c.to_dense() - full) / np.linalg.norm(full)
        assert err < 0.9  # screened away part is the weak tail

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.15, max_value=1.0),
        st.integers(min_value=1, max_value=3),
    )
    def test_property_exact_for_random_instances(self, seed, density, p):
        rng = np.random.default_rng(seed)
        rows = random_tiling(int(rng.integers(100, 400)), 20, 80, seed=rng)
        inner = random_tiling(int(rng.integers(300, 900)), 20, 80, seed=rng)
        a = random_block_sparse(rows, inner, density, seed=rng)
        b = random_block_sparse(inner, inner, density, seed=rng)
        c, _ = psgemm_numeric(a, b, summit(2), p=min(p, rows.ntiles), gpus_per_proc=3)
        assert np.allclose(c.to_dense(), gemm_against_dense(a, b))


class TestInvariants:
    def test_task_count_matches_plan(self):
        a, b = operands(seed=4)
        plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(2), p=2)
        _, stats = execute_plan(plan, a, b)
        assert stats.ntasks == plan.total_tasks
        assert stats.flops == pytest.approx(plan.total_flops)

    def test_gpu_memory_never_exceeded(self):
        a, b = operands(seed=5)
        plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(1))
        _, stats = execute_plan(plan, a, b)
        assert 0 < stats.gpu_peak_bytes <= plan.gpu_memory_bytes

    def test_b_generated_once_per_proc(self):
        a, bmat = operands(seed=6)
        b_shape = bmat.sparse_shape()
        gen = GeneratedCollection(b_shape, seed=1)
        plan = inspect(a.sparse_shape(), b_shape, summit(2), p=2, gpus_per_proc=3)
        execute_plan(plan, a, gen)
        assert gen.max_instantiations_per_proc_tile() == 1

    def test_h2d_accounts_blocks_and_chunks(self):
        a, b = operands(seed=7)
        plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(1))
        _, stats = execute_plan(plan, a, b)
        expect = sum(
            blk.b_bytes + sum(ch.a_bytes for ch in blk.chunks)
            for pp in plan.procs
            for blk in pp.blocks
        )
        assert stats.h2d_bytes == expect

    def test_d2h_equals_produced_c(self):
        a, b = operands(seed=8)
        plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(1))
        c, stats = execute_plan(plan, a, b)
        assert stats.d2h_bytes == c.nbytes

    def test_per_proc_task_balance_recorded(self):
        a, b = operands(seed=9)
        plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(2), p=1, gpus_per_proc=3)
        _, stats = execute_plan(plan, a, b)
        assert sum(stats.per_proc_tasks.values()) == stats.ntasks
        assert len(stats.per_proc_tasks) == plan.grid.nprocs

    def test_mismatched_a_raises(self):
        a, b = operands(seed=10)
        a2, _ = operands(seed=11, m=500)
        plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(1))
        with pytest.raises(ValueError):
            execute_plan(plan, a2, b)

    def test_from_shape_values_used_for_matrix_b(self):
        # A BlockSparseMatrix passed directly is wrapped in a MatrixSource.
        a, b = operands(seed=12)
        plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(1))
        c1, _ = execute_plan(plan, a, b)
        c2, _ = execute_plan(plan, a, b.copy())
        assert c1.allclose(c2)


class TestGemmScalars:
    def test_alpha_beta_semantics(self):
        """The paper's full GEMM form: C <- alpha*A@B + beta*C."""
        a, b = operands(seed=30)
        c0 = random_block_sparse(a.rows, b.cols, 0.3, seed=31)
        c, _ = psgemm_numeric(a, b, summit(1), c=c0, alpha=2.0, beta=0.5)
        expect = 0.5 * c0.to_dense() + 2.0 * (a.to_dense() @ b.to_dense())
        assert np.allclose(c.to_dense(), expect)

    def test_beta_zero_discards_input(self):
        a, b = operands(seed=32)
        c0 = random_block_sparse(a.rows, b.cols, 0.3, seed=33)
        c, _ = psgemm_numeric(a, b, summit(1), c=c0, beta=0.0)
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense())

    def test_defaults_unchanged(self):
        a, b = operands(seed=34)
        c1, _ = psgemm_numeric(a, b, summit(1))
        c2, _ = psgemm_numeric(a, b, summit(1), alpha=1.0, beta=1.0)
        assert c1.allclose(c2)
