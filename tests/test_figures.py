"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.figures import ascii_chart, scaling_chart


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart({"s": [(1, 1), (2, 4), (3, 9)]}, width=30, height=8)
        lines = out.splitlines()
        assert any("o" in l for l in lines)
        assert "o=s" in lines[-1]
        assert "-" * 30 in out

    def test_axis_labels(self):
        out = ascii_chart(
            {"a": [(1, 10), (100, 20)]}, logx=True, xlabel="N", ylabel="T"
        )
        assert "N" in out and "[T]" in out
        assert "1" in out and "100" in out

    def test_multiple_series_distinct_glyphs(self):
        out = ascii_chart({"a": [(1, 1)], "b": [(2, 2)], "c": [(3, 3)]})
        last = out.splitlines()[-1]
        assert "o=a" in last and "x=b" in last and "+=c" in last

    def test_empty(self):
        assert ascii_chart({}) == "(no data)"
        assert ascii_chart({"s": []}) == "(no data)"

    def test_constant_series_no_crash(self):
        out = ascii_chart({"flat": [(1, 5), (2, 5), (3, 5)]})
        assert "o" in out

    def test_log_axes_positive_extremes_labelled(self):
        out = ascii_chart({"s": [(1, 1), (1000, 1000)]}, logx=True, logy=True)
        assert "1e+03" in out or "1000" in out


class TestScalingChart:
    def test_renders_all_metrics(self):
        from repro.experiments.c65h132 import ScalingPoint

        data = {
            "v1": [
                ScalingPoint("v1", 3, 200.0, 5e12, 1.6e12, 1.0, 200.0),
                ScalingPoint("v1", 12, 60.0, 16e12, 1.3e12, 0.83, 50.0),
            ]
        }
        for metric in ("time", "perf_per_gpu", "perf"):
            out = scaling_chart(data, metric)
            assert "#GPUs" in out

    def test_time_chart_includes_ideal(self):
        from repro.experiments.c65h132 import ScalingPoint

        data = {
            "v1": [
                ScalingPoint("v1", 3, 200.0, 5e12, 1.6e12, 1.0, 200.0),
                ScalingPoint("v1", 12, 60.0, 16e12, 1.3e12, 0.83, 50.0),
            ]
        }
        assert "ideal" in scaling_chart(data, "time")
