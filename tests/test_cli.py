"""Tests for the command-line interface and the tiling advisor."""

import numpy as np
import pytest

from repro.chem import TilingVariant, alkane, build_abcd_problem
from repro.cli import build_parser, main
from repro.core.advisor import recommend_tiling
from repro.machine import summit


class TestCli:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "matches dense reference: True" in out

    def test_traits_prints_table(self, capsys):
        assert main(["traits"]) == 0
        out = capsys.readouterr().out
        assert "#GEMM tasks" in out and "paper" in out

    def test_scaling_subset(self, capsys):
        assert main(["scaling", "--variants", "v3", "--gpus", "3", "12"]) == 0
        out = capsys.readouterr().out
        assert "tiling v3" in out
        assert "v1" not in out.split("scaling")[0]

    def test_mpqc(self, capsys):
        assert main(["mpqc"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_advise_small(self, capsys):
        # AO cluster targets below ~16 make single B columns wider than a
        # GPU can ever hold for C65H132, so stay at/above the paper's range.
        assert main(["advise", "--targets", "5x22", "4x16", "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "recommended:" in out

    def test_monitor_renders_event_log(self, capsys, tmp_path):
        from repro.dist import EventLog

        path = str(tmp_path / "run-events.jsonl")
        log = EventLog(path)
        log.emit("plan_accepted", nranks=2, heartbeat_interval=0.1,
                 tasks_per_rank={"0": 6, "1": 4})
        log.emit("heartbeat", rank=0, attempt=0, seq=0, tasks_done=0)
        log.emit("heartbeat", rank=0, attempt=0, seq=1, tasks_done=3)
        log.emit("rank_done", rank=0, attempt=0, tasks=6)
        log.emit("done", ntasks=10, heartbeats=2)
        log.close()
        assert main(["monitor", path]) == 0
        out = capsys.readouterr().out
        assert "run complete" in out
        assert "rank" in out and "state" in out  # the health table header
        assert "done" in out

    def test_monitor_live_run_not_marked_complete(self, capsys, tmp_path):
        from repro.dist import EventLog

        path = str(tmp_path / "run-events.jsonl")
        log = EventLog(path)
        log.emit("plan_accepted", nranks=1, heartbeat_interval=0.1,
                 tasks_per_rank={"0": 6})
        log.emit("heartbeat", rank=0, attempt=0, seq=0, tasks_done=2)
        log.close()
        assert main(["monitor", path]) == 0
        out = capsys.readouterr().out
        assert "run complete" not in out
        assert "2/6" in out  # live task progress from the heartbeat

    def test_monitor_missing_file(self, capsys, tmp_path):
        path = str(tmp_path / "nope.jsonl")
        assert main(["monitor", path]) == 1
        assert "waiting for" in capsys.readouterr().out

    def test_monitor_run_id_selects_scoped_log(self, capsys, tmp_path):
        from repro.dist import EventLog

        base = str(tmp_path / "run-events.jsonl")
        for run_id, nranks in (("job-a", 1), ("job-b", 2)):
            log = EventLog(base, run_id=run_id)
            log.emit("plan_accepted", nranks=nranks, heartbeat_interval=0.1,
                     tasks_per_rank={str(r): 3 for r in range(nranks)})
            for r in range(nranks):
                log.emit("rank_done", rank=r, attempt=0, tasks=3)
            log.emit("done", ntasks=3 * nranks, heartbeats=0)
            log.close()
        assert main(["monitor", base, "--run-id", "job-b"]) == 0
        out = capsys.readouterr().out
        assert "run-events.job-b.jsonl" in out
        assert "run complete" in out
        assert main(["monitor", base, "--run-id", "job-a"]) == 0
        assert "run-events.job-a.jsonl" in capsys.readouterr().out

    def test_monitor_without_run_id_falls_back_to_newest(self, capsys, tmp_path):
        from repro.dist import EventLog

        base = str(tmp_path / "run-events.jsonl")
        log = EventLog(base, run_id="only")
        log.emit("done", ntasks=0, heartbeats=0)
        log.close()
        assert main(["monitor", base]) == 0
        assert "run-events.only.jsonl" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestAdvisor:
    def _builder(self):
        mol = alkane(12)

        def build(cand):
            occ, ao = cand
            prob = build_abcd_problem(
                mol, TilingVariant(f"{occ}x{ao}", occ, ao), seed=0
            )
            return prob.t_shape, prob.v_shape

        return build

    def test_recommendation_is_minimum(self):
        rec = recommend_tiling(
            self._builder(), [(6, 14), (4, 8), (3, 5)], summit(1)
        )
        assert rec.best.time == min(c.time for c in rec.candidates)
        assert len(rec.candidates) == 3

    def test_labels_and_rows(self):
        rec = recommend_tiling(
            self._builder(), [(4, 8), (3, 5)], summit(1), labels=["fine", "coarse"]
        )
        rows = rec.table_rows()
        assert rows[0][0] == "fine"
        assert any("best" in r[-1] for r in rows)

    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            recommend_tiling(self._builder(), [], summit(1))


class TestD2d:
    def test_sharing_never_slower_and_fraction_bounds(self):
        from repro.core import psgemm_plan
        from repro.core.analytic import simulate
        from repro.core.d2d import (
            d2d_effective_bandwidth,
            duplicated_traffic_fraction,
        )
        from repro.sparse import random_shape_with_density
        from repro.tiling import random_tiling

        rows = random_tiling(600, 40, 160, seed=0)
        inner = random_tiling(3000, 40, 160, seed=1)
        a = random_shape_with_density(rows, inner, 0.5, seed=2)
        b = random_shape_with_density(inner, inner, 0.5, seed=3)
        machine = summit(1)
        plan = psgemm_plan(a, b, machine, p=1)
        off = simulate(plan, machine, use_d2d=False)
        on = simulate(plan, machine, use_d2d=True)
        assert on.makespan <= off.makespan + 1e-12

        m = a.rows.sizes.astype(np.int64)
        k = a.cols.sizes.astype(np.int64)
        for proc in plan.procs:
            frac = duplicated_traffic_fraction(
                proc, a.ntile_cols, m, k, plan.grid.gpus_per_proc
            )
            assert 0.0 <= frac < 1.0

    def test_effective_bandwidth_blend(self):
        assert d2d_eff(10e9, 40e9, 0.0) == pytest.approx(10e9)
        assert d2d_eff(10e9, 40e9, 1.0) == pytest.approx(40e9)
        mid = d2d_eff(10e9, 40e9, 0.5)
        assert 10e9 < mid < 40e9


def d2d_eff(host, d2d, frac):
    from repro.core.d2d import d2d_effective_bandwidth

    return d2d_effective_bandwidth(host, d2d, frac)
