"""Fault-spec parsing edge cases (``RANK:TASK[:kill|delay|stall]`` strings)."""

import pytest

from repro.dist import FaultInjection, FaultPlan


class TestParseValid:
    def test_minimal_kill(self):
        plan = FaultPlan.parse("1:20")
        assert plan.for_rank(1) == FaultInjection(rank=1, at_task=20, kind="kill")
        assert plan.for_rank(0) is None

    def test_explicit_kinds(self):
        assert FaultPlan.parse("0:3:delay").for_rank(0).kind == "delay"
        assert FaultPlan.parse("0:3:kill").for_rank(0).kind == "kill"
        assert FaultPlan.parse("0:3:stall").for_rank(0).kind == "stall"

    def test_stall_helper(self):
        plan = FaultPlan.stall(1, 4, once=False)
        inj = plan.for_rank(1)
        assert inj.kind == "stall"
        assert not inj.once

    def test_slow_parse_is_persistent(self):
        inj = FaultPlan.parse("0:3:slow").for_rank(0)
        assert inj.kind == "slow"
        assert not inj.once  # a slow rank stays slow, like abort
        assert inj.delay_seconds > 0

    def test_slow_helper(self):
        inj = FaultPlan.slow(2, at_task=1, seconds=0.25).for_rank(2)
        assert inj.kind == "slow"
        assert inj.delay_seconds == 0.25
        assert not inj.once

    def test_multiple_specs(self):
        plan = FaultPlan.parse("0:1:kill,2:5:delay")
        assert len(plan.injections) == 2
        assert plan.for_rank(2).at_task == 5

    def test_whitespace_tolerated(self):
        plan = FaultPlan.parse(" 0:1 , 1:2:delay ")
        assert plan.for_rank(1).kind == "delay"

    def test_in_range_with_nranks(self):
        plan = FaultPlan.parse("3:7", nranks=4)
        assert plan.for_rank(3).at_task == 7


class TestParseMalformed:
    @pytest.mark.parametrize("spec", ["nope", "1", "1:2:kill:extra", "::"])
    def test_wrong_field_count_or_shape(self, spec):
        with pytest.raises(ValueError, match="bad fault"):
            FaultPlan.parse(spec)

    @pytest.mark.parametrize("spec", ["a:1", "1:b", "1.5:2", "one:two"])
    def test_non_integer_fields(self, spec):
        with pytest.raises(ValueError, match="must be integers"):
            FaultPlan.parse(spec)

    def test_unknown_kind(self):
        with pytest.raises(
            ValueError, match="expected kill, delay, stall, slow or abort"
        ):
            FaultPlan.parse("0:5:explode")

    def test_empty_entry(self):
        with pytest.raises(ValueError, match="empty entry"):
            FaultPlan.parse("0:1,,1:2")

    def test_zero_task_rejected(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan.parse("0:0")

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultPlan.parse("-1:2")


class TestParseRanges:
    def test_rank_out_of_range(self):
        with pytest.raises(ValueError, match=r"valid ranks: 0\.\.3"):
            FaultPlan.parse("4:1", nranks=4)

    def test_unbounded_without_nranks(self):
        assert FaultPlan.parse("99:1").for_rank(99) is not None

    def test_duplicate_rank_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan.parse("1:2,1:5:delay")


class TestInjectionValidation:
    def test_negative_rank(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultInjection(rank=-1, at_task=1)

    def test_negative_delay(self):
        with pytest.raises(ValueError, match="delay_seconds"):
            FaultInjection(rank=0, at_task=1, kind="delay", delay_seconds=-0.1)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultInjection(rank=0, at_task=1, kind="explode")
