"""Tests for the unified runtime observability layer.

Covers the distributed trace pipeline end to end — workers record
monotonic spans, the coordinator aligns and merges them into a
:class:`repro.runtime.tracing.Trace` — plus the regression tests for the
three timing/accounting bugfixes that shipped with it:

* run-relative clocks use ``time.monotonic()`` (a stepping wall clock can
  no longer fire deadlines or produce negative durations);
* an oversized B tile is rejected with an actionable error *before* any
  worker starts (instead of emptying the LRU and dying mid-run);
* ``Trace.busy_time``/``utilization`` normalize by resource capacity
  (busy fractions of multi-capacity resources no longer exceed 1.0).
"""

import json
import pickle

import numpy as np
import pytest

from repro.analysis import verify_plan
from repro.analysis.lint import lint_source
from repro.core import inspect, psgemm_distributed, psgemm_numeric
from repro.dist import BService, active_segments, validate_b_budget
from repro.machine import summit
from repro.runtime import GeneratedCollection, SpanRecorder, Trace
from repro.sparse import random_block_sparse
from repro.tiling import random_tiling


def operands(seed=0, m=200, nk=600, density=0.5):
    rows = random_tiling(m, 20, 80, seed=seed)
    inner = random_tiling(nk, 20, 80, seed=seed + 1)
    a = random_block_sparse(rows, inner, density, seed=seed + 2)
    b = random_block_sparse(inner, inner, density, seed=seed + 3)
    return a, b


@pytest.fixture(scope="module")
def traced_run():
    """One traced 2-worker run shared by the merge/export/metric tests."""
    a, b = operands(seed=0)
    machine = summit(2)
    c, report = psgemm_distributed(a, b, machine, p=2, trace=True)
    plan = inspect(a.sparse_shape(), b.sparse_shape(), machine, p=2)
    return plan, c, report


class TestSpanRecorder:
    def test_disabled_records_nothing(self):
        rec = SpanRecorder(enabled=False)
        rec.record("t", "r", 0.0, 1.0)
        rec.count("hits")
        with rec.span("t2", "r"):
            pass
        assert rec.spans == [] and rec.counters == {} and rec.dropped == 0

    def test_bounded_memory_counts_drops(self):
        rec = SpanRecorder(max_spans=3)
        for i in range(5):
            rec.record(f"t{i}", "r", float(i), float(i) + 0.5)
        assert len(rec.spans) == 3
        assert rec.dropped == 2
        assert rec.stream().dropped == 2

    def test_dropped_spans_charge_duration_per_resource(self):
        """Truncation is accounted: the seconds a dropped span covered land
        in a per-resource ``dropped.<resource>`` counter."""
        rec = SpanRecorder(max_spans=1)
        rec.record("keep", "gpu.0.0.comp", 0.0, 1.0)
        rec.record("lost1", "gpu.0.0.comp", 1.0, 2.5)
        rec.record("lost2", "net.0", 2.0, 2.25)
        assert rec.dropped == 2
        assert rec.counters["dropped.gpu.0.0.comp"] == pytest.approx(1.5)
        assert rec.counters["dropped.net.0"] == pytest.approx(0.25)
        # The counters travel with the pickled stream to the coordinator.
        stream = pickle.loads(pickle.dumps(rec.stream()))
        assert stream.counters["dropped.gpu.0.0.comp"] == pytest.approx(1.5)
        assert stream.counters["dropped.net.0"] == pytest.approx(0.25)

    def test_span_contextmanager_and_counters(self):
        rec = SpanRecorder()
        with rec.span("work", "cpu.0"):
            pass
        rec.count("hits")
        rec.count("hits", 2)
        (task, resource, start, end) = rec.spans[0]
        assert (task, resource) == ("work", "cpu.0")
        assert end >= start >= 0.0
        assert rec.counters == {"hits": 3}

    def test_stream_pickles(self):
        rec = SpanRecorder()
        rec.record("t", "r", 0.0, 1.0)
        stream = pickle.loads(pickle.dumps(rec.stream()))
        assert stream.spans == [("t", "r", 0.0, 1.0)]
        assert stream.wall_origin == rec.wall_origin

    def test_now_is_monotonic_under_wall_clock_steps(self, monkeypatch):
        """Bugfix regression: a stepping wall clock must not affect now()."""
        import time as time_mod

        rec = SpanRecorder()
        t0 = rec.now()
        # Step the wall clock a day backwards: monotonic readings ignore it.
        real_time = time_mod.time
        monkeypatch.setattr(time_mod, "time", lambda: real_time() - 86_400.0)
        t1 = rec.now()
        assert t1 >= t0 >= 0.0

    def test_shared_origin_yields_comparable_clocks(self):
        import time

        origin = time.monotonic()
        a, b = SpanRecorder(origin=origin), SpanRecorder(origin=origin)
        # Same monotonic origin => same wall origin (up to clock read jitter).
        assert abs(a.wall_origin - b.wall_origin) < 0.1
        assert abs(a.now() - b.now()) < 0.1


class TestCapacityNormalizedUtilization:
    """Bugfix regression: busy fractions of capacity-c resources <= 1.0."""

    def _trace(self):
        t = Trace(capacities={"gpu": 4})
        # 4 concurrent unit tasks on a capacity-4 resource, 1 on a default.
        for _ in range(4):
            t.add("task", "gpu", 0.0, 1.0)
        t.add("task", "cpu", 0.0, 1.0)
        return t

    def test_busy_time_divides_by_capacity(self):
        t = self._trace()
        assert t.busy_time("gpu") == pytest.approx(1.0)
        assert t.busy_time("gpu", capacity=2) == pytest.approx(2.0)
        assert t.busy_time("cpu") == pytest.approx(1.0)

    def test_utilization_normalizes(self):
        util = self._trace().utilization()
        assert util["gpu"] == pytest.approx(1.0)
        assert util["cpu"] == pytest.approx(1.0)

    def test_utilization_override_map_wins(self):
        util = self._trace().utilization(capacities={"gpu": 8})
        assert util["gpu"] == pytest.approx(0.5)

    def test_engine_trace_carries_capacities(self):
        from repro.runtime.engine import DiscreteEventEngine, Resource, SimTask

        eng = DiscreteEventEngine([Resource("gpu", capacity=3)])
        eng.add_tasks(SimTask(f"t{i}", "gpu", 1.0) for i in range(3))
        trace = eng.run()
        assert trace.capacities == {"gpu": 3}
        # 3 unit tasks run concurrently on capacity 3: fraction 1.0, not 3.0.
        assert trace.utilization()["gpu"] == pytest.approx(1.0)


class TestOversizedBTile:
    """Bugfix regression: a B tile over the LRU budget fails fast."""

    def _collection(self, seed=0):
        inner = random_tiling(300, 40, 120, seed=seed)
        shape = random_block_sparse(inner, inner, 0.5, seed=seed + 1).sparse_shape()
        return GeneratedCollection(shape, seed=seed + 2)

    def test_validate_rejects_small_budget(self):
        col = self._collection()
        biggest = col.shape.max_tile_nbytes()
        with pytest.raises(ValueError, match="B-service budget"):
            validate_b_budget(col.shape, biggest - 1)
        validate_b_budget(col.shape, biggest)  # exact fit is fine

    def test_bservice_construction_rejects_small_budget(self):
        col = self._collection()
        with pytest.raises(ValueError, match="cannot hold the largest B tile"):
            BService(col, budget_bytes=col.shape.max_tile_nbytes() - 1)

    def test_distributed_run_fails_before_spawning_workers(self):
        a, bmat = operands(seed=5)
        b = GeneratedCollection(bmat.sparse_shape(), seed=9)
        machine = summit(2)
        plan = inspect(a.sparse_shape(), b.shape, machine, p=2)
        plan.gpu_memory_bytes = b.shape.max_tile_nbytes() - 1
        from repro.dist import execute_plan_distributed

        with pytest.raises(ValueError, match="B-service budget"):
            execute_plan_distributed(plan, a, b)
        assert not active_segments()  # nothing was packed or spawned

    def test_plan_verifier_flags_p114(self):
        a, bmat = operands(seed=6)
        machine = summit(2)
        plan = inspect(a.sparse_shape(), bmat.sparse_shape(), machine, p=2)
        assert verify_plan(plan).ok
        plan.gpu_memory_bytes = bmat.sparse_shape().max_tile_nbytes() - 1
        report = verify_plan(plan)
        assert any(f.rule == "P114" for f in report.findings)


class TestMergedDistributedTrace:
    def test_chrome_trace_round_trips(self, traced_run, tmp_path):
        _, _, report = traced_run
        events = report.trace.to_chrome_trace()
        assert events, "traced run produced no spans"
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": events}))
        parsed = json.loads(path.read_text())["traceEvents"]
        spans = [ev for ev in parsed if ev["ph"] == "X"]
        meta = [ev for ev in parsed if ev["ph"] == "M"]
        assert len(spans) == len(report.trace.events)
        assert len(spans) + len(meta) == len(parsed)
        for ev in spans:
            assert isinstance(ev["name"], str) and ev["name"]
            assert isinstance(ev["ts"], float) and isinstance(ev["dur"], float)
            assert ev["dur"] >= 0.0
            assert isinstance(ev["args"]["resource"], str)
        # Rank lanes are labeled for Perfetto: every worker rank gets a
        # process_name metadata event, and the coordinator lane is named.
        proc_names = {ev["args"]["name"] for ev in meta
                      if ev["name"] == "process_name"}
        assert "coordinator" in proc_names
        assert any(n.startswith("rank ") for n in proc_names)
        thread_names = {ev["args"]["name"] for ev in meta
                        if ev["name"] == "thread_name"}
        assert {e.resource for e in report.trace.events} == thread_names

    def test_spans_lie_within_the_run_interval(self, traced_run):
        _, _, report = traced_run
        span = report.trace.makespan
        assert span > 0
        for e in report.trace.events:
            # Clock alignment uses one wall sample per process; allow a
            # few ms of cross-process sampling jitter at the left edge.
            assert e.start >= -0.01
            assert e.end <= span + 1e-9
            assert e.duration >= 0.0

    def test_gemm_spans_reconcile_with_plan_chunks(self, traced_run):
        plan, _, report = traced_run
        per_rank = {}
        for e in report.trace.events:
            parts = e.resource.split(".")
            if parts[0] == "gpu" and parts[-1] == "comp":
                assert e.task.endswith(".gemm")
                rank = int(parts[1])
                per_rank[rank] = per_rank.get(rank, 0) + 1
        expected = {
            proc.rank: sum(len(b.chunks) for b in proc.blocks)
            for proc in plan.procs
        }
        assert per_rank == {r: n for r, n in expected.items() if n}
        assert set(per_rank) == set(report.stats.per_proc_tasks)

    def test_derived_metrics_populated(self, traced_run):
        _, _, report = traced_run
        util = report.rank_utilization()
        assert set(util) == set(report.stats.per_proc_tasks)
        assert all(0.0 < u <= 1.0 for u in util.values())
        waits = report.queue_wait_seconds()
        assert all(w >= 0.0 for w in waits.values())
        assert report.spans_dropped == 0
        assert report.span_dropped == 0  # deprecated alias stays readable
        assert report.shm_bytes > 0
        text = report.observability_summary()
        assert "busy fraction" in text and "B service" in text

    def test_trace_off_is_bit_identical_and_span_free(self):
        a, b = operands(seed=2)
        machine = summit(2)
        c_serial, _ = psgemm_numeric(a, b, machine, p=2)
        c_off, report = psgemm_distributed(a, b, machine, p=2, trace=False)
        assert np.array_equal(c_serial.to_dense(), c_off.to_dense())
        assert report.trace.events == []
        assert report.rank_utilization() == {}

    def test_wall_clock_step_does_not_break_a_run(self, monkeypatch):
        """Bugfix regression: deadlines/durations survive a stepping clock.

        The coordinator's deadline and every recorded interval are
        monotonic; a wall clock frozen in the past must neither trip the
        fault-recovery timeout nor yield negative span durations.
        """
        import time as time_mod

        frozen = time_mod.time() - 86_400.0
        monkeypatch.setattr(time_mod, "time", lambda: frozen)
        a, b = operands(seed=4, m=120, nk=300)
        c, report = psgemm_distributed(a, b, summit(2), p=2, timeout=60.0)
        c_serial, _ = psgemm_numeric(a, b, summit(2), p=2)
        assert np.array_equal(c_serial.to_dense(), c.to_dense())
        assert all(e.duration >= 0.0 for e in report.trace.events)


class TestTraceExportEdgeCases:
    """gantt()/to_chrome_trace() on degenerate and labeled traces."""

    def test_zero_duration_spans_export_cleanly(self):
        t = Trace()
        t.add("instant", "gpu.0.0.comp", 1.0, 1.0)
        t.add("work", "gpu.0.0.comp", 0.0, 2.0)
        spans = [e for e in t.to_chrome_trace() if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        assert by_name["instant"]["dur"] == 0.0
        assert by_name["work"]["dur"] == pytest.approx(2e6)
        assert "gpu.0.0.comp" in t.gantt(width=20)

    def test_empty_trace_gantt_and_chrome(self):
        t = Trace()
        assert t.gantt() == "(empty trace)"
        assert t.to_chrome_trace() == []

    def test_unlabeled_resources_keep_flat_pid_layout(self):
        # Simulated-engine vocabularies ("x", "y") carry no ranks: no
        # metadata events, everything on pid 0 — the pre-metadata format.
        t = Trace()
        t.add("a", "x", 0.0, 1.0)
        t.add("b", "y", 0.5, 1.5)
        chrome = t.to_chrome_trace()
        assert all(e["ph"] == "X" for e in chrome)
        assert {e["pid"] for e in chrome} == {0}

    def test_rank_labeled_resources_gain_process_metadata(self):
        t = Trace()
        t.add("gen.0.0", "cpu.1", 0.0, 1.0)
        t.add("reduce", "net.-1", 0.0, 0.5)
        chrome = t.to_chrome_trace()
        meta = [e for e in chrome if e["ph"] == "M"]
        procs = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert procs == {"coordinator", "rank 1"}
        pid_of = {e["args"]["resource"]: e["pid"]
                  for e in chrome if e["ph"] == "X"}
        assert pid_of == {"cpu.1": 2, "net.-1": 0}

    def test_rank_of_resource_parsing(self):
        from repro.runtime.tracing import rank_of_resource

        assert rank_of_resource("gpu.2.0.comp") == 2
        assert rank_of_resource("net.-1") == -1
        assert rank_of_resource("cpu.0") == 0
        assert rank_of_resource("net.n0") is None  # node-shared sim lanes
        assert rank_of_resource("x") is None
        assert rank_of_resource("gpu") is None

    def test_single_resource_capacity_override(self):
        t = Trace()
        for i in range(3):
            t.add(f"t{i}", "gpu.0.0.comp", 0.0, 1.0)
        t.add("zero", "gpu.0.0.comp", 0.5, 0.5)
        assert t.utilization({"gpu.0.0.comp": 3})["gpu.0.0.comp"] == pytest.approx(1.0)
        assert t.busy_time("gpu.0.0.comp", capacity=3) == pytest.approx(1.0)
        assert t.gantt(width=12).count("|") == 2  # one row, two borders


class TestDegenerateTraces:
    """Zero-span and zero-capacity traces degrade to zeros, not crashes."""

    def test_empty_trace_queries_return_zeros(self):
        trace = Trace()
        assert trace.makespan == 0.0
        assert trace.utilization() == {}
        assert trace.busy_time("gpu.0.0.comp") == 0.0
        assert trace.to_chrome_trace() == []

    def test_zero_capacity_entry_degrades_to_unnormalized(self):
        # A degenerate machine spec (0 GPUs on a resource) must not turn
        # utilization/busy_time into a ZeroDivisionError.
        trace = Trace(capacities={"gpu.0.0.comp": 0})
        trace.add("t", "gpu.0.0.comp", 0.0, 2.0)
        assert trace.busy_time("gpu.0.0.comp") == 2.0
        assert trace.utilization()["gpu.0.0.comp"] == 1.0
        assert trace.busy_time("gpu.0.0.comp", capacity=-3) == 2.0
        assert trace.utilization({"gpu.0.0.comp": -1})["gpu.0.0.comp"] == 1.0

    def test_zero_duration_spans_are_fine(self):
        trace = Trace()
        trace.add("t", "r", 1.0, 1.0)
        assert trace.makespan == 1.0
        assert trace.utilization()["r"] == 0.0


class TestWallClockLint:
    """L306: time.time() is forbidden inside the dist/ tree."""

    SRC = "import time\n\ndef f():\n    return time.time()\n"

    def test_flags_time_time_in_dist(self):
        findings = lint_source(self.SRC, filename="src/repro/dist/worker.py")
        assert [f.rule for f in findings] == ["L306"]

    def test_noqa_suppresses(self):
        src = self.SRC.replace(
            "time.time()", "time.time()  # repro: noqa[L306]"
        )
        assert lint_source(src, filename="src/repro/dist/worker.py") == []

    def test_outside_dist_is_ignored(self):
        findings = lint_source(self.SRC, filename="src/repro/runtime/x.py")
        assert findings == []

    def test_monotonic_is_fine_in_dist(self):
        src = "import time\n\ndef f():\n    return time.monotonic()\n"
        assert lint_source(src, filename="src/repro/dist/worker.py") == []

    def test_dist_tree_has_no_wall_clock_calls(self):
        import os

        import repro.dist as dist_pkg

        root = os.path.dirname(dist_pkg.__file__)
        for name in sorted(os.listdir(root)):
            if not name.endswith(".py"):
                continue
            with open(os.path.join(root, name), encoding="utf-8") as fh:
                findings = lint_source(fh.read(), filename=os.path.join(root, name))
            assert [f for f in findings if f.rule == "L306"] == []
