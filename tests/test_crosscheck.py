"""Tests for the cross-executor consistency harness."""

import pytest

from repro.core.crosscheck import ConsistencyReport, crosscheck, random_crosscheck
from repro.machine import summit
from repro.sparse import random_shape_with_density
from repro.tiling import random_tiling


class TestCrosscheck:
    def test_random_instances_pass(self):
        for seed in (0, 1, 2):
            report = random_crosscheck(seed=seed)
            assert report.ok, report.summary()

    def test_report_fields(self):
        rows = random_tiling(400, 30, 120, seed=0)
        inner = random_tiling(1500, 30, 120, seed=1)
        a = random_shape_with_density(rows, inner, 0.5, seed=2)
        b = random_shape_with_density(inner, inner, 0.5, seed=3)
        report = crosscheck(a, b, summit(2), p=2, gpus_per_proc=3)
        assert isinstance(report, ConsistencyReport)
        assert report.numeric_exact
        assert report.counts_consistent
        assert report.memory_safe
        assert report.b_lifecycle_ok
        assert report.flops_planned == pytest.approx(report.flops_counted)
        assert "PASS" in report.summary()

    def test_deep_selftest_cli(self, capsys):
        from repro.cli import main

        assert main(["selftest", "--deep"]) == 0
        assert "ALL CHECKS" in capsys.readouterr().out
