"""Tests for SparseShape and the random-sparsity generator."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import SparseShape, random_shape_with_density
from repro.tiling import Tiling, random_tiling


def small_grid():
    return Tiling.from_sizes([2, 3, 4]), Tiling.from_sizes([5, 1, 2, 3])


class TestSparseShape:
    def test_full_and_empty(self):
        r, c = small_grid()
        full = SparseShape.full(r, c)
        empty = SparseShape.empty(r, c)
        assert full.nnz_tiles == 12 and full.tile_density == 1.0
        assert full.element_density == 1.0
        assert full.element_nnz == r.extent * c.extent
        assert empty.nnz_tiles == 0 and empty.element_density == 0.0

    def test_from_coo_and_has_tile(self):
        r, c = small_grid()
        s = SparseShape.from_coo(r, c, np.array([0, 2]), np.array([1, 3]))
        assert s.nnz_tiles == 2
        assert s.has_tile(0, 1) and s.has_tile(2, 3)
        assert not s.has_tile(1, 1)
        assert s.element_nnz == 2 * 1 + 4 * 3

    def test_mask_shape_validated(self):
        r, c = small_grid()
        with pytest.raises(ValueError):
            SparseShape(r, c, np.ones((2, 2)))

    def test_nonzero_tiles_row_major(self):
        r, c = small_grid()
        s = SparseShape.from_coo(r, c, np.array([2, 0, 0]), np.array([0, 3, 1]))
        ii, jj = s.nonzero_tiles()
        assert ii.tolist() == [0, 0, 2]
        assert jj.tolist() == [1, 3, 0]

    def test_transpose(self):
        r, c = small_grid()
        s = SparseShape.from_coo(r, c, np.array([1]), np.array([2]))
        t = s.transpose()
        assert t.has_tile(2, 1)
        assert t.rows == c and t.cols == r

    def test_intersect_union(self):
        r, c = small_grid()
        s1 = SparseShape.from_coo(r, c, np.array([0, 1]), np.array([0, 1]))
        s2 = SparseShape.from_coo(r, c, np.array([1, 2]), np.array([1, 2]))
        both = s1.intersect(s2)
        either = s1.union(s2)
        assert both.nnz_tiles == 1 and both.has_tile(1, 1)
        assert either.nnz_tiles == 3

    def test_restrict_rows_cols(self):
        r, c = small_grid()
        s = SparseShape.full(r, c)
        sub = s.restrict_rows(np.array([0, 2]))
        assert sub.ntile_rows == 2 and sub.rows.extent == 6
        subc = s.restrict_cols(np.array([1]))
        assert subc.ntile_cols == 1 and subc.cols.extent == 1

    def test_column_row_element_counts(self):
        r, c = small_grid()
        s = SparseShape.from_coo(r, c, np.array([0, 1]), np.array([0, 0]))
        col = s.column_element_counts()
        assert col[0] == (2 + 3) * 5 and col[1:].sum() == 0
        row = s.row_element_counts()
        assert row[0] == 2 * 5 and row[1] == 3 * 5 and row[2] == 0

    def test_tile_bytes(self):
        r, c = small_grid()
        s = SparseShape.from_coo(r, c, np.array([2]), np.array([0]))
        tb = s.tile_bytes()
        assert tb[2, 0] == 4 * 5 * 8

    def test_with_norms_keeps_occupancy(self):
        r, c = small_grid()
        s = SparseShape.from_coo(r, c, np.array([0, 1]), np.array([0, 1]))
        norms = sp.csr_matrix(
            (np.array([5.0, 0.0]), (np.array([0, 1]), np.array([0, 1]))), shape=(3, 4)
        )
        sn = s.with_norms(norms)
        assert sn.nnz_tiles == 2  # zero-norm tile still occupied
        assert sn.csr[0, 0] == pytest.approx(5.0, rel=1e-6)

    def test_eq(self):
        r, c = small_grid()
        a = SparseShape.from_coo(r, c, np.array([0]), np.array([0]))
        b = SparseShape.from_coo(r, c, np.array([0]), np.array([0]), norms=np.array([9.0]))
        assert a == b  # equality is occupancy-only
        assert a != SparseShape.empty(r, c)

    def test_pattern_strips_norms(self):
        r, c = small_grid()
        s = SparseShape.from_coo(r, c, np.array([0]), np.array([0]), norms=np.array([3.0]))
        assert s.pattern()[0, 0] == 1.0


class TestRandomSparsity:
    def test_density_close_above_target(self):
        rows = random_tiling(20_000, 200, 800, seed=0)
        cols = random_tiling(20_000, 200, 800, seed=1)
        for target in (0.75, 0.5, 0.25, 0.1):
            s = random_shape_with_density(rows, cols, target, seed=2)
            d = s.element_density
            assert d >= target - 1e-12
            # Within one max-tile of the target.
            max_tile_frac = (800 * 800) / (rows.extent * cols.extent)
            assert d <= target + max_tile_frac + 1e-12

    def test_full_density(self):
        r, c = small_grid()
        s = random_shape_with_density(r, c, 1.0, seed=0)
        assert s.tile_density == 1.0

    def test_deterministic(self):
        rows = random_tiling(5_000, 100, 400, seed=3)
        cols = random_tiling(5_000, 100, 400, seed=4)
        s1 = random_shape_with_density(rows, cols, 0.3, seed=9)
        s2 = random_shape_with_density(rows, cols, 0.3, seed=9)
        assert s1 == s2

    def test_invalid_density(self):
        r, c = small_grid()
        with pytest.raises(ValueError):
            random_shape_with_density(r, c, 0.0)
        with pytest.raises(ValueError):
            random_shape_with_density(r, c, 1.5)

    def test_never_empty(self):
        # Even with a density so low every tile would be removed.
        r = Tiling.from_sizes([10])
        c = Tiling.from_sizes([10])
        s = random_shape_with_density(r, c, 0.001, seed=0)
        assert s.nnz_tiles >= 1

    @settings(max_examples=20)
    @given(
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_density_above_target(self, target, seed):
        rows = Tiling.uniform(1000, 100)
        cols = Tiling.uniform(1000, 100)
        s = random_shape_with_density(rows, cols, target, seed=seed)
        assert s.element_density >= target - 1e-12
