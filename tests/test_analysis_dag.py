"""Task-graph check tests: cycles, unknown deps, unordered conflicts."""

import copy

import numpy as np
import pytest

from repro.analysis import (
    check_conflicts,
    check_engine,
    check_task_graph,
    plan_tile_accesses,
)
from repro.core import psgemm_plan
from repro.machine import summit
from repro.runtime.engine import DiscreteEventEngine, Resource, SimTask
from repro.sparse import random_block_sparse
from repro.tiling import random_tiling


def _engine(tasks):
    eng = DiscreteEventEngine([Resource("r", capacity=4)])
    eng.add_tasks(tasks)
    return eng


@pytest.fixture(scope="module")
def plan_and_machine():
    rows = random_tiling(400, 30, 120, seed=0)
    inner = random_tiling(1200, 30, 120, seed=1)
    a = random_block_sparse(rows, inner, 0.5, seed=2)
    b = random_block_sparse(inner, inner, 0.5, seed=3)
    machine = summit(4)
    plan = psgemm_plan(a.sparse_shape(), b.sparse_shape(), machine, p=2)
    return plan, machine


class TestEngineChecks:
    def test_acyclic_graph_clean(self):
        eng = _engine([
            SimTask("a", "r", 1.0),
            SimTask("b", "r", 1.0, deps=("a",)),
            SimTask("c", "r", 1.0, deps=("a", "b")),
        ])
        assert check_engine(eng).ok

    def test_cycle_fires_d201(self):
        eng = _engine([
            SimTask("a", "r", 1.0, deps=("c",)),
            SimTask("b", "r", 1.0, deps=("a",)),
            SimTask("c", "r", 1.0, deps=("b",)),
            SimTask("free", "r", 1.0),
        ])
        report = check_engine(eng)
        assert report.rules_fired() == {"D201"}
        assert "3 tasks" in report.findings[0].message

    def test_unknown_dep_fires_d202(self):
        eng = _engine([SimTask("a", "r", 1.0, deps=("ghost",))])
        report = check_engine(eng)
        assert report.rules_fired() == {"D202"}
        assert "ghost" in report.findings[0].message


class TestConflictChecks:
    def test_ordered_accesses_clean(self):
        eng = _engine([
            SimTask("w1", "r", 1.0),
            SimTask("w2", "r", 1.0, deps=("w1",)),
        ])
        accesses = {"w1": [(("C", 0, 0), "w")], "w2": [(("C", 0, 0), "w")]}
        assert check_conflicts(eng, accesses).ok

    def test_transitively_ordered_accesses_clean(self):
        eng = _engine([
            SimTask("w1", "r", 1.0),
            SimTask("mid", "r", 1.0, deps=("w1",)),
            SimTask("w2", "r", 1.0, deps=("mid",)),
        ])
        accesses = {"w1": [(("C", 0, 0), "w")], "w2": [(("C", 0, 0), "w")]}
        assert check_conflicts(eng, accesses).ok

    def test_unordered_writes_fire_d210(self):
        eng = _engine([SimTask("w1", "r", 1.0), SimTask("w2", "r", 1.0)])
        accesses = {"w1": [(("C", 0, 0), "w")], "w2": [(("C", 0, 0), "w")]}
        report = check_conflicts(eng, accesses)
        assert report.rules_fired() == {"D210"}
        assert "write/write" in report.findings[0].message

    def test_unordered_read_write_fires_d210(self):
        eng = _engine([SimTask("rd", "r", 1.0), SimTask("wr", "r", 1.0)])
        accesses = {"rd": [(("C", 1, 2), "r")], "wr": [(("C", 1, 2), "w")]}
        report = check_conflicts(eng, accesses)
        assert report.rules_fired() == {"D210"}
        assert "read/write" in report.findings[0].message

    def test_concurrent_reads_clean(self):
        eng = _engine([SimTask("r1", "r", 1.0), SimTask("r2", "r", 1.0)])
        accesses = {"r1": [(("C", 0, 0), "r")], "r2": [(("C", 0, 0), "r")]}
        assert check_conflicts(eng, accesses).ok

    def test_different_tiles_clean(self):
        eng = _engine([SimTask("w1", "r", 1.0), SimTask("w2", "r", 1.0)])
        accesses = {"w1": [(("C", 0, 0), "w")], "w2": [(("C", 0, 1), "w")]}
        assert check_conflicts(eng, accesses).ok


class TestPlanTaskGraph:
    def test_healthy_plan_graph_clean(self, plan_and_machine):
        plan, machine = plan_and_machine
        report = check_task_graph(plan, machine)
        assert report.ok, report.render()

    def test_accesses_cover_every_block(self, plan_and_machine):
        plan, _ = plan_and_machine
        accesses = plan_tile_accesses(plan)
        nblocks = sum(len(p.blocks) for p in plan.procs)
        loads = [k for k in accesses if k.startswith("load_bc.")]
        stores = [k for k in accesses if k.startswith("store_c.")]
        assert len(loads) == len(stores) == nblocks
        # store_c writes exactly what load_bc reads, per block.
        for load in loads:
            store = load.replace("load_bc.", "store_c.")
            assert [k for k, _ in accesses[load]] == [
                k for k, _ in accesses[store]
            ]

    def test_duplicated_block_columns_fire_d210(self, plan_and_machine):
        """Two ranks in one grid row claiming the same B columns is a
        cross-rank write race on their shared C tiles."""
        plan, machine = plan_and_machine
        plan = copy.deepcopy(plan)
        row0 = [p for p in plan.procs if p.row == 0]
        assert len(row0) >= 2
        src, dst = row0[0], row0[1]
        stolen = src.blocks[0].columns
        dst.blocks[0].columns = np.array(stolen, copy=True)
        report = check_task_graph(plan, machine)
        assert "D210" in report.rules_fired(), report.render()
        racy = [f for f in report.findings if f.rule == "D210"]
        assert any(
            f"p{src.rank}." in f.message and f"p{dst.rank}." in f.message
            for f in racy
        )
