"""Unit tests for the live-metrics registry (:mod:`repro.runtime.metrics`).

Covers the three metric kinds, the disabled-registry zero-cost path, the
snapshot/merge protocol (including the mismatched-bucket rejection), and
the Prometheus text exposition format — validated by actually parsing the
output line by line, not just substring checks.
"""

import pickle
import re

import pytest

from repro.runtime.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestCounter:
    def test_monotone(self):
        c = Counter("repro_x_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("repro_x_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)
        assert c.value == 0.0


class TestGauge:
    def test_set_and_set_max(self):
        g = Gauge("repro_x_bytes")
        g.set(10.0)
        g.set_max(5.0)  # below the watermark: ignored
        assert g.value == 10.0
        g.set_max(20.0)
        assert g.value == 20.0
        g.set(1.0)  # plain set always wins
        assert g.value == 1.0

    def test_bad_agg_rejected(self):
        with pytest.raises(ValueError, match="agg must be one of"):
            Gauge("g", agg="avg")


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram("repro_x_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)   # <= 0.1
        h.observe(0.5)    # <= 1.0
        h.observe(5.0)    # +Inf only
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)

    def test_boundary_is_inclusive(self):
        # Prometheus buckets are upper-inclusive: observe(b) lands in le="b".
        h = Histogram("repro_x_seconds", buckets=(0.1, 1.0))
        h.observe(0.1)
        assert h.counts == [1, 0, 0]

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(2.0, 1.0))


class TestRegistry:
    def test_idempotent_by_name(self):
        reg = MetricsRegistry()
        c1 = reg.counter("repro_x_total", help="first wins")
        c2 = reg.counter("repro_x_total", help="ignored")
        assert c1 is c2
        assert c1.help == "first wins"
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_disabled_registry_hands_out_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("repro_x_total")
        # The no-op metric accepts every mutator and is shared across kinds.
        c.inc(5)
        reg.gauge("g").set(1.0)
        reg.gauge("g").set_max(2.0)
        reg.histogram("h").observe(0.1)
        assert reg.counter("other") is c  # one shared singleton
        assert reg.snapshot().empty

    def test_snapshot_freezes_state(self):
        reg = MetricsRegistry()
        reg.counter("repro_tasks_total", help="tasks").inc(7)
        reg.gauge("repro_peak_bytes", agg="max").set_max(100)
        reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
        snap = reg.snapshot()
        assert snap.counters["repro_tasks_total"] == 7
        assert snap.gauges["repro_peak_bytes"] == 100
        assert snap.gauge_aggs["repro_peak_bytes"] == "max"
        assert snap.histograms["repro_lat_seconds"].counts == (1, 0, 0)
        assert snap.helps["repro_tasks_total"] == "tasks"
        # Mutating the registry afterwards must not leak into the snapshot.
        reg.counter("repro_tasks_total").inc()
        reg.histogram("repro_lat_seconds").observe(0.05)
        assert snap.counters["repro_tasks_total"] == 7
        assert snap.histograms["repro_lat_seconds"].counts == (1, 0, 0)

    def test_snapshot_is_picklable(self):
        # The whole point of snapshots: they ride inside heartbeats.
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(0.01)
        clone = pickle.loads(pickle.dumps(reg.snapshot()))
        assert clone.counters["c"] == 1
        assert clone.histograms["h"].count == 1

    def test_get_lookup(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(4)
        snap = reg.snapshot()
        assert snap.get("c") == 3
        assert snap.get("g") == 4
        assert snap.get("missing") == 0.0
        assert snap.get("missing", -1.0) == -1.0


def _snap(**kwargs):
    reg = MetricsRegistry()
    for name, v in kwargs.items():
        reg.counter(name).inc(v)
    return reg.snapshot()


class TestMerge:
    def test_counters_sum(self):
        merged = MetricsSnapshot.merge([_snap(a=1, b=2), _snap(a=10)])
        assert merged.counters == {"a": 11.0, "b": 2.0}

    def test_none_parts_skipped(self):
        # Workers with metrics off report None; merge must tolerate it.
        merged = MetricsSnapshot.merge([None, _snap(a=1), None])
        assert merged.counters == {"a": 1.0}
        assert MetricsSnapshot.merge([None, None]).empty

    def test_gauges_by_declared_agg(self):
        def gsnap(peak, level, stamp):
            reg = MetricsRegistry()
            reg.gauge("peak", agg="max").set(peak)
            reg.gauge("level", agg="sum").set(level)
            reg.gauge("stamp", agg="last").set(stamp)
            return reg.snapshot()

        merged = MetricsSnapshot.merge([gsnap(5, 1, 7), gsnap(3, 2, 9)])
        assert merged.gauges["peak"] == 5    # max
        assert merged.gauges["level"] == 3   # sum
        assert merged.gauges["stamp"] == 9   # last

    def test_histograms_add_elementwise(self):
        def hsnap(values):
            reg = MetricsRegistry()
            h = reg.histogram("h", buckets=(0.1, 1.0))
            for v in values:
                h.observe(v)
            return reg.snapshot()

        merged = MetricsSnapshot.merge([hsnap([0.05, 5.0]), hsnap([0.5])])
        h = merged.histograms["h"]
        assert h.counts == (1, 1, 1)
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)

    def test_mismatched_buckets_rejected(self):
        a = MetricsSnapshot(histograms={
            "h": HistogramSnapshot(buckets=(0.1,), counts=(1, 0), sum=0.05, count=1)
        })
        b = MetricsSnapshot(histograms={
            "h": HistogramSnapshot(buckets=(0.2,), counts=(1, 0), sum=0.05, count=1)
        })
        with pytest.raises(ValueError, match="mismatched"):
            MetricsSnapshot.merge([a, b])


#: One Prometheus sample line: name[{labels}] value
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$'
)


def _parse_exposition(text):
    """Parse exposition text into {family: type} and [(name, labels, value)]."""
    types, samples = {}, []
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, family, kind = line.split(" ")
            types[family] = kind
        elif line.startswith("#"):
            assert line.startswith("# HELP "), f"unknown comment: {line!r}"
        else:
            m = _SAMPLE_RE.match(line)
            assert m, f"malformed sample line: {line!r}"
            samples.append((m["name"], m["labels"], float(m["value"])))
    return types, samples


class TestPrometheus:
    def test_empty_snapshot_renders_empty(self):
        assert MetricsSnapshot().to_prometheus() == ""

    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_tasks_total", help="tasks executed").inc(42)
        reg.gauge("repro_peak_bytes").set(1.5)
        text = reg.snapshot().to_prometheus()
        types, samples = _parse_exposition(text)
        assert types == {"repro_tasks_total": "counter", "repro_peak_bytes": "gauge"}
        assert ("repro_tasks_total", None, 42.0) in samples
        assert ("repro_peak_bytes", None, 1.5) in samples
        assert "# HELP repro_tasks_total tasks executed" in text
        # Integer-valued samples must not carry a trailing ".0".
        assert "repro_tasks_total 42\n" in text

    def test_histogram_series_are_cumulative_and_end_at_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.snapshot().to_prometheus()
        types, samples = _parse_exposition(text)
        assert types == {"repro_lat_seconds": "histogram"}
        buckets = [(labels, v) for name, labels, v in samples
                   if name == "repro_lat_seconds_bucket"]
        assert buckets == [('le="0.1"', 1.0), ('le="1"', 2.0), ('le="+Inf"', 3.0)]
        assert ("repro_lat_seconds_sum", None, pytest.approx(5.55)) in [
            (n, l, v) for n, l, v in samples if n.endswith("_sum")
        ]
        assert ("repro_lat_seconds_count", None, 3.0) in samples

    def test_default_buckets_render(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(0.3)
        text = reg.snapshot().to_prometheus()
        _, samples = _parse_exposition(text)
        nbuckets = sum(1 for n, _, _ in samples if n == "h_bucket")
        assert nbuckets == len(DEFAULT_BUCKETS) + 1  # finite bounds + +Inf
