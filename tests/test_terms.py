"""Tests for the CCSD doubles-term cost models."""

import pytest

from repro.chem import TilingVariant, alkane, build_abcd_problem
from repro.chem.terms import TermCost, abcd_work_fraction, doubles_term_costs


@pytest.fixture(scope="module")
def small():
    return build_abcd_problem(alkane(12), TilingVariant("t", 4, 10), seed=0)


class TestDoublesTerms:
    def test_four_terms_default(self, small):
        costs = doubles_term_costs(small)
        assert len(costs) == 4
        assert costs[0].name.startswith("pp-ladder")
        assert all(isinstance(c, TermCost) for c in costs)

    def test_ring_cases_parameter(self, small):
        assert len(doubles_term_costs(small, ring_cases=1)) == 3
        assert len(doubles_term_costs(small, ring_cases=3)) == 5

    def test_positive_costs(self, small):
        for c in doubles_term_costs(small):
            assert c.flops > 0
            assert c.tasks > 0

    def test_inner_extents(self, small):
        costs = doubles_term_costs(small)
        O, U = small.O, small.U
        assert costs[0].inner_extent == U**2
        assert costs[1].inner_extent == O**2
        assert costs[2].inner_extent == O * U

    def test_abcd_matches_problem_shapes(self, small):
        from repro.sparse.shape_algebra import gemm_flops

        costs = doubles_term_costs(small)
        assert costs[0].flops == pytest.approx(
            gemm_flops(small.t_shape, small.v_shape)
        )

    def test_hh_ladder_much_cheaper(self, small):
        costs = doubles_term_costs(small)
        # Inner dim O^2 vs U^2: the hh ladder is a small correction.
        assert costs[1].flops < 0.25 * costs[0].flops

    def test_fraction_between_zero_and_one(self, small):
        frac = abcd_work_fraction(small)
        assert 0 < frac < 1

    def test_abcd_share_grows_with_u_over_o(self):
        # Longer chains have larger U/O leverage for the pp ladder.
        short = build_abcd_problem(alkane(8), TilingVariant("s", 3, 6), seed=0)
        longer = build_abcd_problem(alkane(20), TilingVariant("l", 4, 12), seed=0)
        assert abcd_work_fraction(longer) > abcd_work_fraction(short) - 0.05
