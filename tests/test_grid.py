"""Tests for process grids and data ownership."""

import numpy as np
import pytest

from repro.core import ProcessGrid, make_grid
from repro.machine import summit


class TestProcessGrid:
    def test_coords_rank_roundtrip(self):
        g = ProcessGrid(p=2, q=3, gpus_per_proc=6)
        assert g.nprocs == 6
        for r in range(6):
            row, col = g.coords(r)
            assert g.rank(row, col) == r

    def test_bounds_checked(self):
        g = ProcessGrid(p=2, q=3, gpus_per_proc=6)
        with pytest.raises(ValueError):
            g.coords(6)
        with pytest.raises(ValueError):
            g.rank(2, 0)

    def test_row_ranks(self):
        g = ProcessGrid(p=2, q=3, gpus_per_proc=1)
        assert g.row_ranks(0) == [0, 1, 2]
        assert g.row_ranks(1) == [3, 4, 5]

    def test_slice_tile_rows_partition(self):
        g = ProcessGrid(p=3, q=2, gpus_per_proc=1)
        rows = [g.slice_tile_rows(r, 10) for r in range(3)]
        merged = np.sort(np.concatenate(rows))
        assert np.array_equal(merged, np.arange(10))
        # Each slice is i mod p == r.
        for r, sl in enumerate(rows):
            assert np.all(sl % 3 == r)

    def test_a_owner_2d_cyclic(self):
        g = ProcessGrid(p=2, q=3, gpus_per_proc=1)
        assert g.a_owner(0, 0) == 0
        assert g.a_owner(1, 0) == 3
        assert g.a_owner(0, 4) == 1
        owners = g.a_owner(np.array([0, 1]), np.array([4, 5]))
        assert owners.tolist() == [1, 5]

    def test_c_owner_matches_a_layout(self):
        g = ProcessGrid(p=2, q=2, gpus_per_proc=1)
        assert g.c_owner(3, 5) == g.a_owner(3, 5)

    def test_total_gpus(self):
        g = ProcessGrid(p=2, q=4, gpus_per_proc=3)
        assert g.total_gpus == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessGrid(p=0, q=1, gpus_per_proc=1)
        with pytest.raises(ValueError):
            ProcessGrid(p=1, q=1, gpus_per_proc=0)


class TestMakeGrid:
    def test_default_one_proc_per_node(self):
        g = make_grid(summit(4))
        assert g.nprocs == 4 and g.gpus_per_proc == 6
        assert g.p == 1 and g.q == 4
        assert g.procs_per_node == 1

    def test_three_gpu_procs(self):
        g = make_grid(summit(16), gpus_per_proc=3)
        assert g.nprocs == 32 and g.procs_per_node == 2

    def test_grid_rows(self):
        g = make_grid(summit(8), p=2)
        assert (g.p, g.q) == (2, 4)

    def test_q_floor(self):
        # 6 processes, p = 4 -> q = 1 (pq <= P as the paper specifies).
        g = make_grid(summit(6), p=4)
        assert (g.p, g.q) == (4, 1)

    def test_p_too_large(self):
        with pytest.raises(ValueError):
            make_grid(summit(2), p=3)

    def test_gpus_per_proc_must_divide(self):
        with pytest.raises(ValueError):
            make_grid(summit(2), gpus_per_proc=4)
