"""Tests for the multi-process distributed executor (:mod:`repro.dist`).

The serial executor is the oracle: every distributed run must reproduce
its C matrix *bit for bit* (same seeds), its merged statistics must equal
the serial statistics exactly, and every shared-memory segment must be
unlinked afterwards — including when workers are killed mid-run.

Fast parity checks run in tier-1; the slower multi-process scenarios
(fault recovery, 4-worker grids, the CLI round-trip) are marked ``dist``
and run via ``make test-dist``.
"""

import os

import numpy as np
import pytest

from repro.core import inspect, psgemm_distributed, psgemm_numeric
from repro.dist import (
    BService,
    DistExecutionError,
    FaultPlan,
    TileArena,
    active_segments,
    execute_plan_distributed,
)
from repro.machine import summit
from repro.runtime import GeneratedCollection, execute_plan
from repro.runtime.numeric import NumericStats
from repro.sparse import random_block_sparse
from repro.sparse.gemm_ref import gemm_against_dense
from repro.tiling import random_tiling


def operands(seed=0, m=200, nk=600, density=0.5):
    rows = random_tiling(m, 20, 80, seed=seed)
    inner = random_tiling(nk, 20, 80, seed=seed + 1)
    a = random_block_sparse(rows, inner, density, seed=seed + 2)
    b = random_block_sparse(inner, inner, density, seed=seed + 3)
    return a, b


def assert_bit_equal_runs(a, b, machine, p, gpus_per_proc, **dist_kwargs):
    c_serial, s_serial = psgemm_numeric(a, b, machine, p=p, gpus_per_proc=gpus_per_proc)
    c_dist, report = psgemm_distributed(
        a, b, machine, p=p, gpus_per_proc=gpus_per_proc, **dist_kwargs
    )
    assert np.array_equal(c_serial.to_dense(), c_dist.to_dense()), "C differs bitwise"
    assert s_serial == report.stats, "merged stats differ from serial stats"
    assert np.allclose(c_dist.to_dense(), gemm_against_dense(a, b))
    return c_dist, report


@pytest.fixture(scope="module")
def q2_run():
    """One 1x2-grid distributed run shared by the comm/trace/leak tests."""
    a, b = operands(seed=0)
    plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(2), p=1)
    assert plan.grid.q == 2  # remote A tiles exist under 2D-cyclic placement
    c_serial, _ = execute_plan(plan, a, b)
    c_dist, report = execute_plan_distributed(plan, a, b)
    assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
    return plan, report


class TestParity:
    """Dist result == serial result == dense reference."""

    @pytest.mark.parametrize("p,gpus_per_proc", [(2, 6), (1, 6)])  # 2x1 and 1x2 grids
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_three_random_plans_two_grid_shapes(self, seed, p, gpus_per_proc):
        a, b = operands(seed=seed)
        assert_bit_equal_runs(a, b, summit(2), p, gpus_per_proc)

    def test_four_workers_2x2_grid(self):
        a, b = operands(seed=7)
        _, report = assert_bit_equal_runs(a, b, summit(2), 2, 3)
        assert report.nworkers == 4
        assert len(report.stats.per_proc_tasks) == 4

    def test_generated_b_source(self):
        a, bmat = operands(seed=3)
        b_shape = bmat.sparse_shape()
        c_serial, s_serial = psgemm_numeric(
            a, GeneratedCollection(b_shape, seed=77), summit(2), p=2, b_shape=b_shape
        )
        c_dist, report = psgemm_distributed(
            a, GeneratedCollection(b_shape, seed=77), summit(2), p=2, b_shape=b_shape
        )
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
        assert s_serial == report.stats
        # The paper's invariant: every B tile instantiated at most once per rank.
        assert report.b_max_instantiations == 1

    def test_alpha_beta_and_c_input(self):
        a, b = operands(seed=4)
        c0 = random_block_sparse(a.rows, b.cols, 0.3, seed=9)
        c_serial, _ = psgemm_numeric(a, b, summit(2), c=c0, p=2, alpha=2.0, beta=0.5)
        c_dist, _ = psgemm_distributed(a, b, summit(2), c=c0, p=2, alpha=2.0, beta=0.5)
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())


class TestCommAndTrace:
    def test_modeled_a_broadcast_matches_inspector(self, q2_run):
        plan, report = q2_run
        expected = sum(pp.a_recv_bytes for pp in plan.procs)
        assert expected > 0
        assert report.comm.a_broadcast_bytes() == expected

    def test_scatter_and_gather_bytes_counted(self, q2_run):
        _, report = q2_run
        assert report.comm.scatter_bytes() > 0
        assert report.comm.gather_bytes() > 0

    def test_per_rank_trace_events(self, q2_run):
        plan, report = q2_run
        trace = report.trace
        assert trace.makespan > 0
        resources = {e.resource for e in trace.events}
        for pp in plan.procs:
            assert any(r.startswith(f"gpu.{pp.rank}.") for r in resources)
        # Prefetch (link) and compute events both present, and the Chrome
        # export the tracing module promises still works on merged traces:
        # one "X" span per event plus "M" metadata labeling the rank lanes.
        assert any(r.endswith(".link") for r in resources)
        assert any(r.endswith(".comp") for r in resources)
        chrome = trace.to_chrome_trace()
        assert len([ev for ev in chrome if ev["ph"] == "X"]) == len(trace.events)
        names = {ev["args"]["name"] for ev in chrome
                 if ev["ph"] == "M" and ev["name"] == "process_name"}
        assert {f"rank {pp.rank}" for pp in plan.procs} <= names


class TestSharedMemoryLifecycle:
    def test_all_segments_unlinked_after_success(self, q2_run):
        from multiprocessing import shared_memory

        _, report = q2_run
        assert report.segments, "run should have created shm segments"
        assert active_segments() == frozenset()
        for name in report.segments:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_all_segments_unlinked_after_failure(self):
        a, b = operands(seed=5)
        plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(2), p=2)
        with pytest.raises(DistExecutionError):
            execute_plan_distributed(
                plan, a, b,
                fault_plan=FaultPlan.kill(0, 1, once=False),
                max_retries=0,
                allow_reassign=False,
            )
        assert active_segments() == frozenset()

    def test_arena_roundtrip_and_unlink(self):
        rng = np.random.default_rng(0)
        tiles = {(0, 0): rng.standard_normal((4, 5)), (1, 2): rng.standard_normal((3, 3))}
        arena = TileArena.pack("t", tiles.items())
        try:
            attached = TileArena.attach(arena.meta())
            for key, arr in tiles.items():
                view = attached.get(key)
                assert not view.flags.writeable
                assert np.array_equal(view, arr)
            entry = arena.index[(0, 0)]
            assert np.array_equal(arena.read(entry), tiles[(0, 0)])
            attached.close()
        finally:
            arena.unlink()
        assert arena.name not in active_segments()

    def test_arena_overflow_rejected(self):
        arena = TileArena.allocate("small", 8)
        try:
            with pytest.raises(ValueError):
                arena.put((0, 0), np.zeros((2, 2)))
        finally:
            arena.unlink()


class TestFaultRecovery:
    @pytest.mark.dist
    def test_killed_worker_is_retried_and_result_exact(self):
        a, b = operands(seed=6)
        _, report = assert_bit_equal_runs(
            a, b, summit(2), 2, 6, fault_plan=FaultPlan.kill(0, 5)
        )
        assert report.attempts[0] == 2  # one failure, one successful retry
        assert all(report.attempts[r] == 1 for r in report.attempts if r != 0)
        assert report.reassigned == []

    @pytest.mark.dist
    def test_persistently_failing_rank_is_reassigned(self):
        a, b = operands(seed=8)
        _, report = assert_bit_equal_runs(
            a, b, summit(2), 2, 6, fault_plan=FaultPlan.kill(1, 3, once=False)
        )
        assert report.attempts[1] == 3  # initial + retry + reassigned inline
        assert report.reassigned == [1]

    @pytest.mark.dist
    def test_killed_worker_with_generated_b_still_exact(self):
        a, bmat = operands(seed=10)
        b_shape = bmat.sparse_shape()
        c_serial, _ = psgemm_numeric(
            a, GeneratedCollection(b_shape, seed=5), summit(2), p=2, b_shape=b_shape
        )
        c_dist, report = psgemm_distributed(
            a, GeneratedCollection(b_shape, seed=5), summit(2), p=2, b_shape=b_shape,
            fault_plan=FaultPlan.kill(0, 2, once=False),
        )
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
        assert report.reassigned == [0]

    @pytest.mark.dist
    def test_delayed_worker_finishes_without_recovery(self):
        a, b = operands(seed=11)
        _, report = assert_bit_equal_runs(
            a, b, summit(2), 2, 6, fault_plan=FaultPlan.delay(0, 5, seconds=0.3)
        )
        assert all(n == 1 for n in report.attempts.values())
        assert report.reassigned == []

    def test_fault_plan_parsing(self):
        plan = FaultPlan.parse("1:20")
        assert plan.for_rank(1).kind == "kill" and plan.for_rank(1).at_task == 20
        assert plan.for_rank(0) is None
        assert FaultPlan.parse("0:3:delay").for_rank(0).kind == "delay"
        with pytest.raises(ValueError):
            FaultPlan.parse("nope")
        with pytest.raises(ValueError):
            FaultPlan.parse("0:0")  # at_task is 1-based
        with pytest.raises(ValueError):
            FaultPlan.parse("0:5:explode")  # unknown fault kind


class TestBService:
    def _collection(self):
        rows = random_tiling(60, 10, 20, seed=0)
        shape = random_block_sparse(rows, rows, 1.0, seed=1).sparse_shape()
        return GeneratedCollection(shape, seed=42)

    def test_generates_once_and_caches(self):
        col = self._collection()
        svc = BService(col, budget_bytes=1 << 20)
        t1 = svc.tile(0, 0, 0)
        t2 = svc.tile(0, 0, 0)
        assert t1 is t2
        assert svc.generated_tiles() == 1
        assert np.array_equal(t1, col.generate_tile(0, 0))

    def test_lru_budget_evicts_and_regenerates_identically(self):
        col = self._collection()
        keys = [(k, j) for k in range(col.shape.ntile_rows)
                for j in range(col.shape.ntile_cols) if col.has_tile(k, j)][:6]
        budget = sum(col.tile_nbytes(k, j) for k, j in keys[:2]) + 8
        svc = BService(col, budget_bytes=budget)
        first = {key: svc.tile(0, *key).copy() for key in keys}
        assert svc.lru_evictions > 0
        assert svc.max_instantiations() == 1
        # A re-pull of an evicted tile regenerates bit-identical values.
        again = svc.tile(0, *keys[0])
        assert np.array_equal(again, first[keys[0]])

    def test_block_lifecycle_evict_frees_budget(self):
        col = self._collection()
        svc = BService(col, budget_bytes=1 << 20)
        svc.tile(0, 0, 0)
        held = svc.cached_bytes
        assert held > 0
        svc.evict(0, 0, 0)
        assert svc.cached_bytes == 0
        svc.evict(0, 0, 0)  # idempotent


class TestNumericStatsMerge:
    def test_merge_sums_counters_and_maxes_peak(self):
        s1 = NumericStats(ntasks=2, flops=4.0, h2d_bytes=10, d2h_bytes=5,
                          b_tiles_generated=1, gpu_peak_bytes=100,
                          per_proc_tasks={0: 2})
        s2 = NumericStats(ntasks=3, flops=6.0, h2d_bytes=20, d2h_bytes=7,
                          b_tiles_generated=2, gpu_peak_bytes=80,
                          per_proc_tasks={1: 3})
        m = NumericStats.merge([s1, s2])
        assert m.ntasks == 5 and m.flops == 10.0
        assert m.h2d_bytes == 30 and m.d2h_bytes == 12
        assert m.b_tiles_generated == 3
        assert m.gpu_peak_bytes == 100
        assert m.per_proc_tasks == {0: 2, 1: 3}

    def test_merge_overlapping_ranks_sums(self):
        parts = [NumericStats(per_proc_tasks={0: 2}), NumericStats(per_proc_tasks={0: 3})]
        assert NumericStats.merge(parts).per_proc_tasks == {0: 5}

    def test_merge_empty(self):
        m = NumericStats.merge([])
        assert m == NumericStats()


def _events_path(tmp_path, name):
    """Place event logs under ``REPRO_EVENTS_DIR`` when CI sets it.

    CI uploads that directory as an artifact on failure, so a red
    telemetry test ships its own evidence; locally the log lands in the
    test's tmp dir and vanishes with it.
    """
    root = os.environ.get("REPRO_EVENTS_DIR")
    if root:
        os.makedirs(root, exist_ok=True)
        return os.path.join(root, name)
    return str(tmp_path / name)


class TestTelemetry:
    """Heartbeats, merged metrics, stall recovery and the event log."""

    def test_metrics_merged_into_report(self, q2_run):
        plan, report = q2_run
        snap = report.metrics
        assert snap is not None and not snap.empty
        # The fleet-total GEMM counter must agree with the merged stats.
        assert snap.get("repro_gemm_tasks_total") == report.stats.ntasks
        assert snap.get("repro_gemm_flops_total") == report.stats.flops
        # One observation per chunk GEMM stream: the histogram and the
        # trace describe the same events.
        h = snap.histograms["repro_chunk_gemm_seconds"]
        n_chunk_spans = sum(
            1 for e in report.trace.events if e.task.endswith(".gemm")
        )
        assert h.count == n_chunk_spans > 0
        assert report.health is not None
        # The run is short enough that a rank's first beat can race its
        # done report (the terminal-state guard then drops it), so assert
        # consistency, not a floor, on the accepted-beat count.
        assert snap.get("repro_heartbeats_total") == report.health.heartbeats
        assert all(rh.state == "done" for rh in report.health.ranks.values())
        # Every beat's bytes are counted on receipt, accepted or not —
        # and beat 0 fires on scatter receipt, so some always arrive.
        assert report.comm.telemetry_total() > 0
        assert "telemetry" in report.observability_summary()

    def test_prometheus_export_from_real_run(self, q2_run):
        _, report = q2_run
        text = report.metrics.to_prometheus()
        assert text.endswith("\n")
        assert "# TYPE repro_gemm_tasks_total counter" in text
        assert "# TYPE repro_chunk_gemm_seconds histogram" in text
        assert 'repro_chunk_gemm_seconds_bucket{le="+Inf"}' in text
        # Exposition discipline: every non-comment line is `name[{labels}] value`.
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name_labels, value = line.rsplit(" ", 1)
            float(value)
            assert name_labels.startswith("repro_")

    def test_metrics_disabled_run_reports_none(self):
        a, b = operands(seed=12, m=100, nk=200)
        plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(2), p=1)
        c_dist, report = execute_plan_distributed(
            plan, a, b, metrics=False, heartbeat_interval=0.0
        )
        assert report.metrics is None
        assert report.health is not None and not report.health.enabled
        c_serial, _ = execute_plan(plan, a, b)
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())

    def test_span_recorder_bound_counts_drops(self):
        # A tiny recorder bound: the run stays exact, the report says how
        # much of the trace is missing instead of silently truncating.
        a, b = operands(seed=13, m=100, nk=200)
        plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(2), p=1)
        c_dist, report = execute_plan_distributed(plan, a, b, trace_max_spans=8)
        c_serial, _ = execute_plan(plan, a, b)
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
        assert report.spans_dropped > 0
        assert report.metrics.get("repro_spans_dropped_total") == report.spans_dropped
        assert "spans dropped" in report.observability_summary()

    @pytest.mark.dist
    def test_stalled_rank_detected_and_reassigned(self, tmp_path):
        # A rank that hangs forever (stall fault = suspend heartbeats and
        # sleep) must be caught by missed heartbeats, retried once, then
        # reassigned — and the run must still be bit-exact.
        events_path = _events_path(tmp_path, "stall-run-events.jsonl")
        a, b = operands(seed=14)
        _, report = assert_bit_equal_runs(
            a, b, summit(2), 2, 6,
            fault_plan=FaultPlan.stall(1, 5, once=False),
            heartbeat_interval=0.05,
            stall_after_beats=4,
            events_path=events_path,
        )
        assert report.attempts[1] == 3  # initial + retry + reassigned inline
        assert report.reassigned == [1]
        assert sorted(set(report.stalled)) == [1]
        assert report.health.ranks[1].state == "reassigned"
        assert report.health.ranks[1].stalls == 2
        assert report.metrics.get("repro_stalls_detected_total") == 2
        assert report.metrics.get("repro_worker_retries_total") == 1
        assert report.metrics.get("repro_ranks_reassigned_total") == 1

        # The event log tells the same story, in order: the rank beat,
        # went silent, was declared stalled, retried, stalled again,
        # reassigned; the run still finished.
        from repro.dist import read_events

        events = read_events(events_path)
        assert report.events_path == events_path
        kinds_r1 = [e["event"] for e in events if e.get("rank") == 1]
        for earlier, later in [("heartbeat", "stall"), ("stall", "retry"),
                               ("retry", "reassign")]:
            assert kinds_r1.index(earlier) < kinds_r1.index(later), kinds_r1
        assert events[0]["event"] == "plan_accepted"
        assert events[-1]["event"] == "done"
        assert events[-1]["stalled"] == [1]
        # And the monitor's replay reconstructs the same terminal state.
        from repro.dist import replay_health

        replayed = replay_health(events)
        assert replayed.ranks[1].state == "reassigned"
        assert replayed.ranks[1].stalls == 2

    @pytest.mark.dist
    def test_healthy_run_event_log_lifecycle(self, tmp_path):
        from repro.dist import read_events

        events_path = _events_path(tmp_path, "healthy-run-events.jsonl")
        a, b = operands(seed=15)
        # Hold each rank at its first task for a few beat intervals so
        # the first beats are drained well before the done reports land
        # (the test problem alone finishes inside one drain cycle, which
        # lets a rank's only beat race its final report).
        from repro.dist.faults import FaultInjection

        slow = FaultPlan(tuple(
            FaultInjection(rank=r, at_task=1, kind="delay", delay_seconds=0.4)
            for r in (0, 1)
        ))
        _, report = assert_bit_equal_runs(
            a, b, summit(2), 2, 6, fault_plan=slow,
            heartbeat_interval=0.05, events_path=events_path,
        )
        events = read_events(events_path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "plan_accepted"
        assert kinds[-1] == "done"
        assert kinds.count("scatter") == 2
        assert kinds.count("rank_done") == 2
        assert "stall" not in kinds and "reassign" not in kinds
        for rank in (0, 1):
            rk = [e["event"] for e in events if e.get("rank") == rank]
            assert rk.index("worker_up") < rk.index("rank_done")
            # The 0.4 s hold spans ~8 beat intervals; ≥2 accepted beats
            # per rank is a safe floor.
            assert rk.count("heartbeat") >= 2
        assert events[-1]["heartbeats"] == report.health.heartbeats


class TestCliIntegration:
    @pytest.mark.dist
    def test_selftest_procs(self, capsys):
        from repro.cli import main

        assert main(["selftest", "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "matches serial executor bit-for-bit: True" in out

    @pytest.mark.dist
    def test_selftest_procs_with_fault(self, capsys):
        from repro.cli import main

        assert main(["selftest", "--procs", "2", "--inject-fault", "0:5"]) == 0
        out = capsys.readouterr().out
        assert "retried [0]" in out
        assert "matches dense reference: True" in out

    @pytest.mark.dist
    def test_selftest_procs_with_stall_fault(self, capsys, tmp_path):
        from repro.cli import main

        events = str(tmp_path / "run-events.jsonl")
        assert main(["selftest", "--procs", "2",
                     "--inject-fault", "1:5:stall", "--events", events]) == 0
        out = capsys.readouterr().out
        assert "stalled [1]" in out
        assert "retried [1]" in out
        assert "matches serial executor bit-for-bit: True" in out
        from repro.dist import read_events

        assert any(e["event"] == "stall" for e in read_events(events))

    @pytest.mark.dist
    def test_metrics_command_emits_prometheus(self, capsys, tmp_path):
        from repro.cli import main

        outfile = str(tmp_path / "metrics.prom")
        assert main(["metrics", "--procs", "2", "--m", "150", "--k", "450",
                     "-o", outfile]) == 0
        with open(outfile, encoding="utf-8") as fh:
            text = fh.read()
        assert "# TYPE repro_gemm_tasks_total counter" in text
        for line in text.splitlines():
            if not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])
