"""Tests for the multi-process distributed executor (:mod:`repro.dist`).

The serial executor is the oracle: every distributed run must reproduce
its C matrix *bit for bit* (same seeds), its merged statistics must equal
the serial statistics exactly, and every shared-memory segment must be
unlinked afterwards — including when workers are killed mid-run.

Fast parity checks run in tier-1; the slower multi-process scenarios
(fault recovery, 4-worker grids, the CLI round-trip) are marked ``dist``
and run via ``make test-dist``.
"""

import numpy as np
import pytest

from repro.core import inspect, psgemm_distributed, psgemm_numeric
from repro.dist import (
    BService,
    DistExecutionError,
    FaultPlan,
    TileArena,
    active_segments,
    execute_plan_distributed,
)
from repro.machine import summit
from repro.runtime import GeneratedCollection, execute_plan
from repro.runtime.numeric import NumericStats
from repro.sparse import random_block_sparse
from repro.sparse.gemm_ref import gemm_against_dense
from repro.tiling import random_tiling


def operands(seed=0, m=200, nk=600, density=0.5):
    rows = random_tiling(m, 20, 80, seed=seed)
    inner = random_tiling(nk, 20, 80, seed=seed + 1)
    a = random_block_sparse(rows, inner, density, seed=seed + 2)
    b = random_block_sparse(inner, inner, density, seed=seed + 3)
    return a, b


def assert_bit_equal_runs(a, b, machine, p, gpus_per_proc, **dist_kwargs):
    c_serial, s_serial = psgemm_numeric(a, b, machine, p=p, gpus_per_proc=gpus_per_proc)
    c_dist, report = psgemm_distributed(
        a, b, machine, p=p, gpus_per_proc=gpus_per_proc, **dist_kwargs
    )
    assert np.array_equal(c_serial.to_dense(), c_dist.to_dense()), "C differs bitwise"
    assert s_serial == report.stats, "merged stats differ from serial stats"
    assert np.allclose(c_dist.to_dense(), gemm_against_dense(a, b))
    return c_dist, report


@pytest.fixture(scope="module")
def q2_run():
    """One 1x2-grid distributed run shared by the comm/trace/leak tests."""
    a, b = operands(seed=0)
    plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(2), p=1)
    assert plan.grid.q == 2  # remote A tiles exist under 2D-cyclic placement
    c_serial, _ = execute_plan(plan, a, b)
    c_dist, report = execute_plan_distributed(plan, a, b)
    assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
    return plan, report


class TestParity:
    """Dist result == serial result == dense reference."""

    @pytest.mark.parametrize("p,gpus_per_proc", [(2, 6), (1, 6)])  # 2x1 and 1x2 grids
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_three_random_plans_two_grid_shapes(self, seed, p, gpus_per_proc):
        a, b = operands(seed=seed)
        assert_bit_equal_runs(a, b, summit(2), p, gpus_per_proc)

    def test_four_workers_2x2_grid(self):
        a, b = operands(seed=7)
        _, report = assert_bit_equal_runs(a, b, summit(2), 2, 3)
        assert report.nworkers == 4
        assert len(report.stats.per_proc_tasks) == 4

    def test_generated_b_source(self):
        a, bmat = operands(seed=3)
        b_shape = bmat.sparse_shape()
        c_serial, s_serial = psgemm_numeric(
            a, GeneratedCollection(b_shape, seed=77), summit(2), p=2, b_shape=b_shape
        )
        c_dist, report = psgemm_distributed(
            a, GeneratedCollection(b_shape, seed=77), summit(2), p=2, b_shape=b_shape
        )
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
        assert s_serial == report.stats
        # The paper's invariant: every B tile instantiated at most once per rank.
        assert report.b_max_instantiations == 1

    def test_alpha_beta_and_c_input(self):
        a, b = operands(seed=4)
        c0 = random_block_sparse(a.rows, b.cols, 0.3, seed=9)
        c_serial, _ = psgemm_numeric(a, b, summit(2), c=c0, p=2, alpha=2.0, beta=0.5)
        c_dist, _ = psgemm_distributed(a, b, summit(2), c=c0, p=2, alpha=2.0, beta=0.5)
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())


class TestCommAndTrace:
    def test_modeled_a_broadcast_matches_inspector(self, q2_run):
        plan, report = q2_run
        expected = sum(pp.a_recv_bytes for pp in plan.procs)
        assert expected > 0
        assert report.comm.a_broadcast_bytes() == expected

    def test_scatter_and_gather_bytes_counted(self, q2_run):
        _, report = q2_run
        assert report.comm.scatter_bytes() > 0
        assert report.comm.gather_bytes() > 0

    def test_per_rank_trace_events(self, q2_run):
        plan, report = q2_run
        trace = report.trace
        assert trace.makespan > 0
        resources = {e.resource for e in trace.events}
        for pp in plan.procs:
            assert any(r.startswith(f"gpu.{pp.rank}.") for r in resources)
        # Prefetch (link) and compute events both present, and the Chrome
        # export the tracing module promises still works on merged traces.
        assert any(r.endswith(".link") for r in resources)
        assert any(r.endswith(".comp") for r in resources)
        assert len(trace.to_chrome_trace()) == len(trace.events)


class TestSharedMemoryLifecycle:
    def test_all_segments_unlinked_after_success(self, q2_run):
        from multiprocessing import shared_memory

        _, report = q2_run
        assert report.segments, "run should have created shm segments"
        assert active_segments() == frozenset()
        for name in report.segments:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_all_segments_unlinked_after_failure(self):
        a, b = operands(seed=5)
        plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(2), p=2)
        with pytest.raises(DistExecutionError):
            execute_plan_distributed(
                plan, a, b,
                fault_plan=FaultPlan.kill(0, 1, once=False),
                max_retries=0,
                allow_reassign=False,
            )
        assert active_segments() == frozenset()

    def test_arena_roundtrip_and_unlink(self):
        rng = np.random.default_rng(0)
        tiles = {(0, 0): rng.standard_normal((4, 5)), (1, 2): rng.standard_normal((3, 3))}
        arena = TileArena.pack("t", tiles.items())
        try:
            attached = TileArena.attach(arena.meta())
            for key, arr in tiles.items():
                view = attached.get(key)
                assert not view.flags.writeable
                assert np.array_equal(view, arr)
            entry = arena.index[(0, 0)]
            assert np.array_equal(arena.read(entry), tiles[(0, 0)])
            attached.close()
        finally:
            arena.unlink()
        assert arena.name not in active_segments()

    def test_arena_overflow_rejected(self):
        arena = TileArena.allocate("small", 8)
        try:
            with pytest.raises(ValueError):
                arena.put((0, 0), np.zeros((2, 2)))
        finally:
            arena.unlink()


class TestFaultRecovery:
    @pytest.mark.dist
    def test_killed_worker_is_retried_and_result_exact(self):
        a, b = operands(seed=6)
        _, report = assert_bit_equal_runs(
            a, b, summit(2), 2, 6, fault_plan=FaultPlan.kill(0, 5)
        )
        assert report.attempts[0] == 2  # one failure, one successful retry
        assert all(report.attempts[r] == 1 for r in report.attempts if r != 0)
        assert report.reassigned == []

    @pytest.mark.dist
    def test_persistently_failing_rank_is_reassigned(self):
        a, b = operands(seed=8)
        _, report = assert_bit_equal_runs(
            a, b, summit(2), 2, 6, fault_plan=FaultPlan.kill(1, 3, once=False)
        )
        assert report.attempts[1] == 3  # initial + retry + reassigned inline
        assert report.reassigned == [1]

    @pytest.mark.dist
    def test_killed_worker_with_generated_b_still_exact(self):
        a, bmat = operands(seed=10)
        b_shape = bmat.sparse_shape()
        c_serial, _ = psgemm_numeric(
            a, GeneratedCollection(b_shape, seed=5), summit(2), p=2, b_shape=b_shape
        )
        c_dist, report = psgemm_distributed(
            a, GeneratedCollection(b_shape, seed=5), summit(2), p=2, b_shape=b_shape,
            fault_plan=FaultPlan.kill(0, 2, once=False),
        )
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
        assert report.reassigned == [0]

    @pytest.mark.dist
    def test_delayed_worker_finishes_without_recovery(self):
        a, b = operands(seed=11)
        _, report = assert_bit_equal_runs(
            a, b, summit(2), 2, 6, fault_plan=FaultPlan.delay(0, 5, seconds=0.3)
        )
        assert all(n == 1 for n in report.attempts.values())
        assert report.reassigned == []

    def test_fault_plan_parsing(self):
        plan = FaultPlan.parse("1:20")
        assert plan.for_rank(1).kind == "kill" and plan.for_rank(1).at_task == 20
        assert plan.for_rank(0) is None
        assert FaultPlan.parse("0:3:delay").for_rank(0).kind == "delay"
        with pytest.raises(ValueError):
            FaultPlan.parse("nope")
        with pytest.raises(ValueError):
            FaultPlan.parse("0:0")  # at_task is 1-based
        with pytest.raises(ValueError):
            FaultPlan.parse("0:5:explode")  # unknown fault kind


class TestBService:
    def _collection(self):
        rows = random_tiling(60, 10, 20, seed=0)
        shape = random_block_sparse(rows, rows, 1.0, seed=1).sparse_shape()
        return GeneratedCollection(shape, seed=42)

    def test_generates_once_and_caches(self):
        col = self._collection()
        svc = BService(col, budget_bytes=1 << 20)
        t1 = svc.tile(0, 0, 0)
        t2 = svc.tile(0, 0, 0)
        assert t1 is t2
        assert svc.generated_tiles() == 1
        assert np.array_equal(t1, col.generate_tile(0, 0))

    def test_lru_budget_evicts_and_regenerates_identically(self):
        col = self._collection()
        keys = [(k, j) for k in range(col.shape.ntile_rows)
                for j in range(col.shape.ntile_cols) if col.has_tile(k, j)][:6]
        budget = sum(col.tile_nbytes(k, j) for k, j in keys[:2]) + 8
        svc = BService(col, budget_bytes=budget)
        first = {key: svc.tile(0, *key).copy() for key in keys}
        assert svc.lru_evictions > 0
        assert svc.max_instantiations() == 1
        # A re-pull of an evicted tile regenerates bit-identical values.
        again = svc.tile(0, *keys[0])
        assert np.array_equal(again, first[keys[0]])

    def test_block_lifecycle_evict_frees_budget(self):
        col = self._collection()
        svc = BService(col, budget_bytes=1 << 20)
        svc.tile(0, 0, 0)
        held = svc.cached_bytes
        assert held > 0
        svc.evict(0, 0, 0)
        assert svc.cached_bytes == 0
        svc.evict(0, 0, 0)  # idempotent


class TestNumericStatsMerge:
    def test_merge_sums_counters_and_maxes_peak(self):
        s1 = NumericStats(ntasks=2, flops=4.0, h2d_bytes=10, d2h_bytes=5,
                          b_tiles_generated=1, gpu_peak_bytes=100,
                          per_proc_tasks={0: 2})
        s2 = NumericStats(ntasks=3, flops=6.0, h2d_bytes=20, d2h_bytes=7,
                          b_tiles_generated=2, gpu_peak_bytes=80,
                          per_proc_tasks={1: 3})
        m = NumericStats.merge([s1, s2])
        assert m.ntasks == 5 and m.flops == 10.0
        assert m.h2d_bytes == 30 and m.d2h_bytes == 12
        assert m.b_tiles_generated == 3
        assert m.gpu_peak_bytes == 100
        assert m.per_proc_tasks == {0: 2, 1: 3}

    def test_merge_overlapping_ranks_sums(self):
        parts = [NumericStats(per_proc_tasks={0: 2}), NumericStats(per_proc_tasks={0: 3})]
        assert NumericStats.merge(parts).per_proc_tasks == {0: 5}

    def test_merge_empty(self):
        m = NumericStats.merge([])
        assert m == NumericStats()


class TestCliIntegration:
    @pytest.mark.dist
    def test_selftest_procs(self, capsys):
        from repro.cli import main

        assert main(["selftest", "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "matches serial executor bit-for-bit: True" in out

    @pytest.mark.dist
    def test_selftest_procs_with_fault(self, capsys):
        from repro.cli import main

        assert main(["selftest", "--procs", "2", "--inject-fault", "0:5"]) == 0
        out = capsys.readouterr().out
        assert "retried [0]" in out
        assert "matches dense reference: True" in out
