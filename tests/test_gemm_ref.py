"""Reference block-sparse GEMM vs dense NumPy, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    BlockSparseMatrix,
    block_gemm_reference,
    random_block_sparse,
    random_full,
)
from repro.sparse.gemm_ref import gemm_against_dense
from repro.tiling import Tiling, random_tiling


class TestGemmReference:
    @pytest.mark.parametrize("density", [1.0, 0.75, 0.5, 0.25, 0.1])
    def test_matches_dense(self, density):
        rows = random_tiling(600, 40, 160, seed=1)
        inner = random_tiling(700, 40, 160, seed=2)
        cols = random_tiling(800, 40, 160, seed=3)
        a = random_block_sparse(rows, inner, density, seed=4)
        b = random_block_sparse(inner, cols, density, seed=5)
        c = block_gemm_reference(a, b)
        assert np.allclose(c.to_dense(), gemm_against_dense(a, b))

    def test_accumulates_into_c(self):
        t = Tiling.from_sizes([3, 4])
        a = random_full(t, t, seed=0)
        b = random_full(t, t, seed=1)
        c0 = random_full(t, t, seed=2)
        expect = c0.to_dense() + a.to_dense() @ b.to_dense()
        out = block_gemm_reference(a, b, c=c0.copy())
        assert np.allclose(out.to_dense(), expect)

    def test_alpha_beta(self):
        t = Tiling.from_sizes([5])
        a = random_full(t, t, seed=0)
        b = random_full(t, t, seed=1)
        c0 = random_full(t, t, seed=2)
        expect = 0.5 * c0.to_dense() + 2.0 * (a.to_dense() @ b.to_dense())
        out = block_gemm_reference(a, b, c=c0.copy(), alpha=2.0, beta=0.5)
        assert np.allclose(out.to_dense(), expect)

    def test_rectangular_short_and_wide(self):
        # The paper's regime: A and C short-and-wide, B square.
        m = random_tiling(120, 20, 60, seed=6)
        k = random_tiling(1200, 20, 60, seed=7)
        a = random_block_sparse(m, k, 0.3, seed=8)
        b = random_block_sparse(k, k, 0.3, seed=9)
        c = block_gemm_reference(a, b)
        assert np.allclose(c.to_dense(), gemm_against_dense(a, b))

    def test_nonconforming_raises(self):
        a = BlockSparseMatrix(Tiling.single(3), Tiling.single(4))
        b = BlockSparseMatrix(Tiling.single(5), Tiling.single(6))
        with pytest.raises(ValueError):
            block_gemm_reference(a, b)

    def test_wrong_c_grid_raises(self):
        t = Tiling.single(3)
        a = random_full(t, t, seed=0)
        b = random_full(t, t, seed=1)
        bad_c = BlockSparseMatrix(Tiling.single(4), Tiling.single(4))
        with pytest.raises(ValueError):
            block_gemm_reference(a, b, c=bad_c)

    def test_empty_operands(self):
        t = Tiling.from_sizes([3, 4])
        a = BlockSparseMatrix(t, t)
        b = random_full(t, t, seed=0)
        c = block_gemm_reference(a, b)
        assert c.nnz_tiles == 0

    def test_result_occupancy_is_product_shape(self):
        rows = random_tiling(300, 30, 90, seed=10)
        a = random_block_sparse(rows, rows, 0.3, seed=11)
        b = random_block_sparse(rows, rows, 0.3, seed=12)
        from repro.sparse import product_shape

        c = block_gemm_reference(a, b)
        expect = product_shape(a.sparse_shape(), b.sparse_shape())
        got = c.sparse_shape()
        assert got == expect

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.floats(min_value=0.1, max_value=1.0))
    def test_property_gemm_matches_dense(self, seed, density):
        rng = np.random.default_rng(seed)
        sizes = lambda: rng.integers(1, 9, size=rng.integers(1, 5)).tolist()  # noqa: E731
        m, k, n = Tiling.from_sizes(sizes()), Tiling.from_sizes(sizes()), Tiling.from_sizes(sizes())
        a = random_block_sparse(m, k, density, seed=rng)
        b = random_block_sparse(k, n, density, seed=rng)
        c = block_gemm_reference(a, b)
        assert np.allclose(c.to_dense(), gemm_against_dense(a, b))
