"""Tests for shape algebra (task/flop counting, screening, intensity)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    SparseShape,
    gemm_flops,
    gemm_task_count,
    per_column_flops,
    per_column_task_counts,
    product_shape,
    random_shape_with_density,
    screened_product,
)
from repro.sparse.shape_algebra import (
    arithmetic_intensity,
    flop_matrix,
    pair_count_matrix,
    per_column_gpu_bytes,
)
from repro.tiling import Tiling, random_tiling


def brute_force(a: SparseShape, b: SparseShape):
    """O(n^3) reference for tasks/flops/product occupancy."""
    am = a.pattern().toarray()
    bm = b.pattern().toarray()
    m, k, n = a.rows.sizes, a.cols.sizes, b.cols.sizes
    tasks = 0
    flops = 0.0
    occ = np.zeros((a.ntile_rows, b.ntile_cols), dtype=bool)
    for i in range(a.ntile_rows):
        for kk in range(a.ntile_cols):
            if not am[i, kk]:
                continue
            for j in range(b.ntile_cols):
                if bm[kk, j]:
                    tasks += 1
                    flops += 2.0 * m[i] * k[kk] * n[j]
                    occ[i, j] = True
    return tasks, flops, occ


def random_pair(seed=0, da=0.4, db=0.4):
    rows = random_tiling(900, 50, 200, seed=seed)
    inner = random_tiling(1100, 50, 200, seed=seed + 1)
    cols = random_tiling(1000, 50, 200, seed=seed + 2)
    a = random_shape_with_density(rows, inner, da, seed=seed + 3)
    b = random_shape_with_density(inner, cols, db, seed=seed + 4)
    return a, b


class TestCounting:
    def test_against_brute_force(self):
        a, b = random_pair(seed=10)
        tasks, flops, occ = brute_force(a, b)
        assert gemm_task_count(a, b) == tasks
        assert gemm_flops(a, b) == pytest.approx(flops)
        c = product_shape(a, b)
        assert np.array_equal(c.pattern().toarray() > 0, occ)

    def test_per_column_sums(self):
        a, b = random_pair(seed=20)
        assert per_column_flops(a, b).sum() == pytest.approx(gemm_flops(a, b))
        assert per_column_task_counts(a, b).sum() == gemm_task_count(a, b)

    def test_dense_formula(self):
        r = Tiling.from_sizes([3, 4])
        k = Tiling.from_sizes([5, 6])
        c = Tiling.from_sizes([7])
        a = SparseShape.full(r, k)
        b = SparseShape.full(k, c)
        assert gemm_flops(a, b) == pytest.approx(2.0 * 7 * 11 * 7)
        assert gemm_task_count(a, b) == 4

    def test_empty_operand(self):
        r, k, c = Tiling.single(4), Tiling.single(5), Tiling.single(6)
        a = SparseShape.empty(r, k)
        b = SparseShape.full(k, c)
        assert gemm_task_count(a, b) == 0
        assert gemm_flops(a, b) == 0.0
        assert product_shape(a, b).nnz_tiles == 0

    def test_nonconformable_raises(self):
        a = SparseShape.full(Tiling.single(4), Tiling.single(5))
        b = SparseShape.full(Tiling.single(6), Tiling.single(7))
        with pytest.raises(ValueError):
            gemm_task_count(a, b)

    def test_flop_matrix_entries(self):
        r = Tiling.from_sizes([2])
        k = Tiling.from_sizes([3, 4])
        c = Tiling.from_sizes([5])
        a = SparseShape.from_coo(r, k, np.array([0, 0]), np.array([0, 1]))
        b = SparseShape.from_coo(k, c, np.array([0, 1]), np.array([0, 0]))
        fm = flop_matrix(a, b)
        assert fm[0, 0] == pytest.approx(2.0 * 2 * (3 + 4) * 5)
        pc = pair_count_matrix(a, b)
        assert pc[0, 0] == 2

    def test_per_column_gpu_bytes(self):
        a, b = random_pair(seed=30)
        c = product_shape(a, b)
        w = per_column_gpu_bytes(a, b, c)
        expect = (
            np.asarray(b.tile_bytes().sum(axis=0)).ravel()
            + np.asarray(c.tile_bytes().sum(axis=0)).ravel()
        )
        assert np.allclose(w, expect)
        # omitted C computes the same
        assert np.allclose(per_column_gpu_bytes(a, b), expect)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_property_counts_match_brute_force(self, seed):
        rows = Tiling.uniform(60, 13)
        inner = Tiling.uniform(70, 17)
        cols = Tiling.uniform(50, 11)
        a = random_shape_with_density(rows, inner, 0.4, seed=seed)
        b = random_shape_with_density(inner, cols, 0.5, seed=seed + 1)
        tasks, flops, occ = brute_force(a, b)
        assert gemm_task_count(a, b) == tasks
        assert gemm_flops(a, b) == pytest.approx(flops)


class TestScreening:
    def test_zero_threshold_matches_unscreened(self):
        a, b = random_pair(seed=40)
        sp_res = screened_product(a, b, threshold=0.0)
        assert sp_res.task_count == gemm_task_count(a, b)
        assert sp_res.flops == pytest.approx(gemm_flops(a, b))
        assert sp_res.dropped_tasks == 0
        assert sp_res.shape == product_shape(a, b)

    def test_screening_monotone(self):
        a, b = random_pair(seed=50)
        # Attach random norms in (0, 1).
        rng = np.random.default_rng(0)
        na = a.csr.copy()
        na.data = rng.uniform(0.01, 1.0, na.nnz)
        nb = b.csr.copy()
        nb.data = rng.uniform(0.01, 1.0, nb.nnz)
        a2 = a.with_norms(na)
        b2 = b.with_norms(nb)
        prev_tasks = None
        for tau in (0.0, 0.1, 0.3, 0.6):
            res = screened_product(a2, b2, tau)
            if prev_tasks is not None:
                assert res.task_count <= prev_tasks
            prev_tasks = res.task_count
        total = screened_product(a2, b2, 0.0).task_count
        res = screened_product(a2, b2, 0.3)
        assert res.task_count + res.dropped_tasks == total

    def test_everything_screened(self):
        a, b = random_pair(seed=60)
        res = screened_product(a, b, threshold=10.0)  # norms are 1.0
        assert res.task_count == 0
        assert res.shape.nnz_tiles == 0
        assert res.flops == 0.0


class TestIntensity:
    def test_dense_square_intensity(self):
        # Dense n x n x n: flops = 2n^3, bytes = 3 n^2 * 8 -> AI = n/12.
        t = Tiling.uniform(240, 60)
        a = SparseShape.full(t, t)
        ai = arithmetic_intensity(a, a)
        assert ai == pytest.approx(240 / 12.0)

    def test_intensity_decreases_with_sparsity(self):
        rows = random_tiling(3000, 100, 300, seed=0)
        a1 = SparseShape.full(rows, rows)
        a2 = random_shape_with_density(rows, rows, 0.25, seed=1)
        ai_dense = arithmetic_intensity(a1, a1)
        ai_sparse = arithmetic_intensity(a2, a2)
        assert ai_sparse < ai_dense
