"""Tests for the top-level psgemm API surface and plan options."""

import numpy as np
import pytest

from repro.core import PlanOptions, psgemm_numeric, psgemm_plan, psgemm_simulate
from repro.core.inspector import inspect
from repro.machine import summit
from repro.sparse import random_block_sparse, random_shape_with_density
from repro.tiling import random_tiling


def shapes(seed=0):
    rows = random_tiling(500, 40, 160, seed=seed)
    inner = random_tiling(2500, 40, 160, seed=seed + 1)
    a = random_shape_with_density(rows, inner, 0.5, seed=seed + 2)
    b = random_shape_with_density(inner, inner, 0.5, seed=seed + 3)
    return a, b


class TestPsgemmApi:
    def test_plan_equals_inspect(self):
        a, b = shapes()
        p1 = psgemm_plan(a, b, summit(2), p=2)
        p2 = inspect(a, b, summit(2), p=2)
        assert p1.total_tasks == p2.total_tasks
        assert p1.total_flops == p2.total_flops
        assert p1.total_blocks == p2.total_blocks

    def test_simulate_returns_pair(self):
        a, b = shapes(seed=5)
        plan, rep = psgemm_simulate(a, b, summit(1))
        assert plan.total_tasks > 0
        assert rep.flops == pytest.approx(plan.total_flops)

    def test_numeric_infers_b_shape(self):
        rows = random_tiling(300, 30, 90, seed=1)
        inner = random_tiling(900, 30, 90, seed=2)
        a = random_block_sparse(rows, inner, 0.5, seed=3)
        b = random_block_sparse(inner, inner, 0.5, seed=4)
        c, stats = psgemm_numeric(a, b, summit(1))
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense())

    def test_options_flow_through(self):
        a, b = shapes(seed=7)
        opts = PlanOptions(block_fraction=0.3, chunk_fraction=0.15)
        plan = psgemm_plan(a, b, summit(1), options=opts)
        plan.validate()
        assert plan.options.block_fraction == 0.3

    def test_smaller_blocks_mean_more_blocks(self):
        from dataclasses import replace

        a, b = shapes(seed=9)
        mach = summit(1)
        # Shrink GPU memory so the block budget actually bites.
        mach = replace(mach, gpu=replace(mach.gpu, memory_bytes=8 * 2**20))
        n_small = psgemm_plan(
            a, b, mach, options=PlanOptions(block_fraction=0.25, chunk_fraction=0.12)
        ).total_blocks
        n_big = psgemm_plan(
            a, b, mach, options=PlanOptions(block_fraction=0.9, chunk_fraction=0.05)
        ).total_blocks
        assert n_small > n_big

    def test_assignment_policy_option(self):
        a, b = shapes(seed=11)
        for policy in ("mirrored", "cyclic", "lpt"):
            plan = psgemm_plan(
                a, b, summit(1), options=PlanOptions(assignment_policy=policy)
            )
            assert plan.total_tasks > 0

    def test_invalid_policy_rejected(self):
        a, b = shapes(seed=13)
        with pytest.raises(ValueError):
            psgemm_plan(a, b, summit(1), options=PlanOptions(assignment_policy="x"))
