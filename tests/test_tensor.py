"""Tests for block-sparse tensors, matricization and contractions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import BlockSparseTensor, contract, matricize, plan_contraction, unmatricize
from repro.tensor.contraction import parse_spec
from repro.tiling import Tiling


def rand_tensor(modes, tilings, seed=0, sparsity=0.5):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal(tuple(t.extent for t in tilings))
    t = BlockSparseTensor(modes, tilings)
    for key in np.ndindex(*t.tile_grid):
        if rng.uniform() < sparsity:
            slices = tuple(tl.tile_slice(k) for tl, k in zip(tilings, key))
            t.set_tile(key, dense[slices])
        else:
            slices = tuple(tl.tile_slice(k) for tl, k in zip(tilings, key))
            dense[slices] = 0.0
    return t, dense


class TestBlockSparseTensor:
    def test_geometry(self):
        t = BlockSparseTensor("ijk", [Tiling.from_sizes([2, 3]), Tiling.single(4), Tiling.uniform(6, 2)])
        assert t.order == 3
        assert t.shape == (5, 4, 6)
        assert t.tile_grid == (2, 1, 3)
        assert t.tile_shape((1, 0, 2)) == (3, 4, 2)
        assert t.mode_axis("k") == 2
        with pytest.raises(KeyError):
            t.mode_axis("z")

    def test_duplicate_modes_rejected(self):
        with pytest.raises(ValueError):
            BlockSparseTensor("ii", [Tiling.single(2), Tiling.single(2)])

    def test_tile_validation(self):
        t = BlockSparseTensor("ij", [Tiling.from_sizes([2, 3]), Tiling.single(4)])
        with pytest.raises(ValueError):
            t.set_tile((0, 0), np.zeros((3, 4)))  # wrong shape
        with pytest.raises(ValueError):
            t.set_tile((2, 0), np.zeros((2, 4)))  # out of grid
        with pytest.raises(ValueError):
            t.set_tile((0,), np.zeros(2))  # wrong key length

    def test_dense_roundtrip(self):
        tilings = [Tiling.from_sizes([2, 1]), Tiling.from_sizes([3]), Tiling.from_sizes([1, 2])]
        t, dense = rand_tensor("abc", tilings, seed=1, sparsity=1.0)
        back = BlockSparseTensor.from_dense(dense, "abc", tilings)
        assert np.allclose(back.to_dense(), dense)
        assert np.allclose(t.to_dense(), dense)

    def test_from_dense_drops_zero_tiles(self):
        tilings = [Tiling.from_sizes([2, 2])]
        dense = np.array([1.0, 1.0, 0.0, 0.0])
        t = BlockSparseTensor.from_dense(dense, "i", tilings)
        assert t.nnz_tiles == 1

    def test_accumulate_and_norm(self):
        t = BlockSparseTensor("i", [Tiling.single(3)])
        t.accumulate_tile((0,), np.ones(3))
        t.accumulate_tile((0,), np.ones(3))
        assert t.norm_fro() == pytest.approx(np.sqrt(12.0))

    def test_allclose_and_copy(self):
        tilings = [Tiling.from_sizes([2, 3]), Tiling.single(2)]
        t, _ = rand_tensor("ij", tilings, seed=2)
        cp = t.copy()
        assert t.allclose(cp)
        for key, _tile in cp.items():
            cp.get_tile(key)[:] = 0.0
            break
        if cp.nnz_tiles:
            assert not t.allclose(cp) or t.norm_fro() == 0


class TestMatricize:
    def test_roundtrip_order4(self):
        tilings = [Tiling.from_sizes([2, 1]), Tiling.from_sizes([2]),
                   Tiling.from_sizes([1, 2]), Tiling.from_sizes([3])]
        t, dense = rand_tensor("ijcd", tilings, seed=3)
        m = matricize(t, "ij", "cd")
        assert m.shape == (3 * 2, 3 * 3)
        back = unmatricize(m, "ijcd", tilings, "ij", "cd")
        assert back.allclose(t)

    def test_matricize_matches_reshape_for_contiguous_modes(self):
        tilings = [Tiling.single(2), Tiling.single(3), Tiling.single(4), Tiling.single(5)]
        t, dense = rand_tensor("ijcd", tilings, seed=4, sparsity=1.0)
        m = matricize(t, "ij", "cd")
        assert np.allclose(m.to_dense(), dense.reshape(6, 20))

    def test_matricize_permuted_modes(self):
        tilings = [Tiling.single(2), Tiling.single(3), Tiling.single(4)]
        t, dense = rand_tensor("abc", tilings, seed=5, sparsity=1.0)
        m = matricize(t, "ca", "b")
        expect = np.transpose(dense, (2, 0, 1)).reshape(8, 3)
        assert np.allclose(m.to_dense(), expect)

    def test_invalid_modes(self):
        t, _ = rand_tensor("ab", [Tiling.single(2), Tiling.single(2)], seed=6)
        with pytest.raises(ValueError):
            matricize(t, "a", "c")


class TestParseSpec:
    def test_abcd_spec(self):
        s = parse_spec("ijcd,cdab->ijab")
        assert s.contracted == "cd"
        assert s.a_free == "ij" and s.b_free == "ab"
        assert s.einsum == "ijcd,cdab->ijab"

    def test_matrix_multiply(self):
        s = parse_spec("ik,kj->ij")
        assert s.contracted == "k"

    def test_rejects_trace(self):
        with pytest.raises(ValueError):
            parse_spec("ii,ij->j")

    def test_rejects_hadamard(self):
        with pytest.raises(ValueError):
            parse_spec("ik,kj->ikj")

    def test_rejects_interleaved_output(self):
        with pytest.raises(ValueError):
            parse_spec("ik,kj->ji")

    def test_rejects_no_contraction(self):
        with pytest.raises(ValueError):
            parse_spec("ij,kl->ijkl")

    def test_rejects_unknown_output_mode(self):
        with pytest.raises(ValueError):
            parse_spec("ik,kj->iz")


class TestContract:
    def test_abcd_matches_einsum(self):
        o = Tiling.from_sizes([2, 2])
        u = Tiling.from_sizes([3, 2])
        T, t_dense = rand_tensor("ijcd", [o, o, u, u], seed=7)
        V, v_dense = rand_tensor("cdab", [u, u, u, u], seed=8)
        R = contract("ijcd,cdab->ijab", T, V)
        ref = np.einsum("ijcd,cdab->ijab", t_dense, v_dense)
        assert np.allclose(R.to_dense(), ref)

    def test_matrix_case(self):
        m = Tiling.from_sizes([2, 3])
        k = Tiling.from_sizes([4])
        n = Tiling.from_sizes([1, 2])
        A, a_dense = rand_tensor("ik", [m, k], seed=9, sparsity=1.0)
        B, b_dense = rand_tensor("kj", [k, n], seed=10, sparsity=1.0)
        C = contract("ik,kj->ij", A, B)
        assert np.allclose(C.to_dense(), a_dense @ b_dense)

    def test_contracted_modes_in_any_position(self):
        a_t = Tiling.from_sizes([2])
        k_t = Tiling.from_sizes([3, 1])
        b_t = Tiling.from_sizes([2, 2])
        A, a_dense = rand_tensor("ka", [k_t, a_t], seed=11, sparsity=1.0)
        B, b_dense = rand_tensor("bk", [b_t, k_t], seed=12, sparsity=1.0)
        C = contract("ka,bk->ab", A, B)
        ref = np.einsum("ka,bk->ab", a_dense, b_dense)
        assert np.allclose(C.to_dense(), ref)

    def test_tiling_mismatch_on_contracted_mode(self):
        A, _ = rand_tensor("ik", [Tiling.single(2), Tiling.single(4)], seed=13)
        B, _ = rand_tensor("kj", [Tiling.from_sizes([2, 2]), Tiling.single(3)], seed=14)
        with pytest.raises(ValueError, match="tiled differently"):
            plan_contraction("ik,kj->ij", A, B)

    def test_order_mismatch(self):
        A, _ = rand_tensor("ik", [Tiling.single(2), Tiling.single(4)], seed=15)
        with pytest.raises(ValueError):
            plan_contraction("ikz,kj->izj", A, A)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_random_order3_contractions(self, seed):
        rng = np.random.default_rng(seed)
        sizes = lambda: Tiling.from_sizes(rng.integers(1, 4, rng.integers(1, 4)).tolist())  # noqa: E731
        i, j, k = sizes(), sizes(), sizes()
        A, a_dense = rand_tensor("ik", [i, k], seed=seed, sparsity=0.7)
        B, b_dense = rand_tensor("kj", [k, j], seed=seed + 1, sparsity=0.7)
        C = contract("ik,kj->ij", A, B)
        assert np.allclose(C.to_dense(), a_dense @ b_dense)


class TestDistributedContraction:
    def test_matches_serial_contract(self):
        from repro.machine import summit
        from repro.tensor import contract_distributed

        o = Tiling.from_sizes([3, 2])
        u = Tiling.from_sizes([4, 3])
        T, t_dense = rand_tensor("ijcd", [o, o, u, u], seed=20)
        V, v_dense = rand_tensor("cdab", [u, u, u, u], seed=21)
        R, stats = contract_distributed(
            "ijcd,cdab->ijab", T, V, summit(2), p=2, gpus_per_proc=3
        )
        ref = np.einsum("ijcd,cdab->ijab", t_dense, v_dense)
        assert np.allclose(R.to_dense(), ref)
        assert stats.ntasks > 0
