"""CLI contract for ``repro analyze`` / ``repro lint``: exit codes + output."""

import pytest

from repro.cli import main


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        assert main(["lint", str(f)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text(
            "import numpy as np\n"
            "np.random.seed(0)\n"
            "try:\n"
            "    pass\n"
            "except:\n"
            "    pass\n"
        )
        assert main(["lint", str(f)]) == 1
        out = capsys.readouterr().out
        assert "[L303]" in out and "[L305]" in out
        assert "2 finding(s)" in out
        assert f"{f}:2" in out

    def test_default_path_is_source_tree(self, capsys):
        assert main(["lint"]) == 0
        assert "no findings" in capsys.readouterr().out


class TestAnalyzeCommand:
    def test_inspector_plan_analyzes_clean(self, capsys):
        assert main(["analyze", "--procs", "2", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "analyzed plan: 2 rank(s)" in out
        assert "no findings" in out


class TestSelftestFaultSpec:
    def test_out_of_range_fault_rank_rejected_early(self):
        """--inject-fault is validated against --procs before any worker
        process or plan is built."""
        with pytest.raises(ValueError, match="out of range"):
            main(["selftest", "--procs", "2", "--inject-fault", "5:1"])


class TestLintNoFilesMatched:
    def test_missing_path_warns_and_exits_zero(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 0
        out = capsys.readouterr().out
        assert "no files matched" in out
        assert "no findings" in out

    def test_empty_directory_warns_and_exits_zero(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path)]) == 0
        assert "no files matched" in capsys.readouterr().out


class TestSarifExport:
    def test_lint_sarif_round_trips(self, tmp_path, capsys):
        from repro.analysis import validate_sarif_file

        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(0)\n")
        sarif = tmp_path / "lint.sarif"
        assert main(["lint", str(bad), "--sarif", str(sarif)]) == 1
        doc = validate_sarif_file(sarif)
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "L303"
        uri = result["locations"][0]["physicalLocation"]["artifactLocation"]
        assert uri["uri"] == str(bad)
        assert f"sarif: {sarif}" in capsys.readouterr().out

    def test_analyze_sarif_validates_when_clean(self, tmp_path, capsys):
        from repro.analysis import validate_sarif_file

        sarif = tmp_path / "analysis.sarif"
        assert main(["analyze", "--procs", "2", "--nodes", "2",
                     "--sarif", str(sarif)]) == 0
        doc = validate_sarif_file(sarif)
        assert doc["runs"][0]["results"] == []


class TestModelCheckCommand:
    def test_analyze_model_check_passes_clean(self, capsys):
        """The shipped protocol model-checks clean from the CLI — the same
        gate `make model-check` runs in CI."""
        assert main(["analyze", "--procs", "2", "--nodes", "2",
                     "--model-check"]) == 0
        out = capsys.readouterr().out
        assert "model check:" in out
        assert "scenario(s)" in out and "state(s) explored" in out
        assert "no findings" in out


class TestRulesCommand:
    def test_prints_catalog(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "# Analysis rule catalog" in out
        for rule_id in ("P101", "D201", "L399", "M401"):
            assert f"`{rule_id}`" in out

    def test_check_detects_drift_and_accepts_fresh(self, tmp_path, capsys):
        stale = tmp_path / "rules.md"
        stale.write_text("# outdated\n")
        assert main(["rules", "--check", str(stale)]) == 1
        assert "drifted" in capsys.readouterr().out
        assert main(["rules", "-o", str(stale)]) == 0
        assert main(["rules", "--check", str(stale)]) == 0

    def test_committed_catalog_matches_registry(self):
        """docs/rules.md must be regenerated (make docs-rules) whenever the
        registry changes — CI enforces exactly this check."""
        import pathlib

        import repro

        repo = pathlib.Path(repro.__file__).resolve().parents[2]
        catalog = repo / "docs" / "rules.md"
        if not catalog.exists():  # running from an installed package
            pytest.skip("docs/rules.md not present in this layout")
        assert main(["rules", "--check", str(catalog)]) == 0
