"""CLI contract for ``repro analyze`` / ``repro lint``: exit codes + output."""

import pytest

from repro.cli import main


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        assert main(["lint", str(f)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text(
            "import numpy as np\n"
            "np.random.seed(0)\n"
            "try:\n"
            "    pass\n"
            "except:\n"
            "    pass\n"
        )
        assert main(["lint", str(f)]) == 1
        out = capsys.readouterr().out
        assert "[L303]" in out and "[L305]" in out
        assert "2 finding(s)" in out
        assert f"{f}:2" in out

    def test_default_path_is_source_tree(self, capsys):
        assert main(["lint"]) == 0
        assert "no findings" in capsys.readouterr().out


class TestAnalyzeCommand:
    def test_inspector_plan_analyzes_clean(self, capsys):
        assert main(["analyze", "--procs", "2", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "analyzed plan: 2 rank(s)" in out
        assert "no findings" in out


class TestSelftestFaultSpec:
    def test_out_of_range_fault_rank_rejected_early(self):
        """--inject-fault is validated against --procs before any worker
        process or plan is built."""
        with pytest.raises(ValueError, match="out of range"):
            main(["selftest", "--procs", "2", "--inject-fault", "5:1"])
