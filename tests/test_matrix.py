"""Tests for BlockSparseMatrix and its constructors."""

import numpy as np
import pytest

from repro.sparse import (
    BlockSparseMatrix,
    from_dense,
    random_block_sparse,
    random_full,
    zeros,
)
from repro.sparse.construct import from_shape
from repro.sparse.shape import SparseShape
from repro.tiling import Tiling


def grids():
    return Tiling.from_sizes([2, 3]), Tiling.from_sizes([4, 1, 2])


class TestBlockSparseMatrix:
    def test_shape_and_grid(self):
        r, c = grids()
        m = BlockSparseMatrix(r, c)
        assert m.shape == (5, 7)
        assert m.tile_grid == (2, 3)
        assert m.tile_shape(1, 0) == (3, 4)

    def test_set_get_validation(self):
        r, c = grids()
        m = BlockSparseMatrix(r, c)
        m.set_tile(0, 0, np.ones((2, 4)))
        assert m.has_tile(0, 0)
        assert m.nnz_tiles == 1
        with pytest.raises(ValueError):
            m.set_tile(0, 1, np.ones((2, 4)))  # wrong shape
        with pytest.raises(KeyError):
            m.get_tile(1, 1)

    def test_tile_or_zeros(self):
        r, c = grids()
        m = BlockSparseMatrix(r, c)
        z = m.tile_or_zeros(1, 2)
        assert z.shape == (3, 2) and not z.any()

    def test_accumulate(self):
        r, c = grids()
        m = BlockSparseMatrix(r, c)
        m.accumulate_tile(0, 0, np.ones((2, 4)))
        m.accumulate_tile(0, 0, 2 * np.ones((2, 4)))
        assert np.allclose(m.get_tile(0, 0), 3.0)

    def test_to_dense_from_dense_roundtrip(self):
        r, c = grids()
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((5, 7))
        m = from_dense(dense, r, c)
        assert np.allclose(m.to_dense(), dense)

    def test_from_dense_drops_zero_tiles(self):
        r, c = grids()
        dense = np.zeros((5, 7))
        dense[0:2, 0:4] = 1.0
        m = from_dense(dense, r, c)
        assert m.nnz_tiles == 1
        m_all = from_dense(dense, r, c, drop_tol=None)
        assert m_all.nnz_tiles == 6

    def test_from_dense_shape_mismatch(self):
        r, c = grids()
        with pytest.raises(ValueError):
            from_dense(np.zeros((4, 7)), r, c)

    def test_transpose(self):
        r, c = grids()
        m = random_full(r, c, seed=1)
        t = m.transpose()
        assert np.allclose(t.to_dense(), m.to_dense().T)

    def test_scale_axpy(self):
        r, c = grids()
        m1 = random_full(r, c, seed=2)
        m2 = random_full(r, c, seed=3)
        d = 2.0 * m1.to_dense() + 0.5 * m2.to_dense()
        out = m1.copy().scale(2.0).axpy(0.5, m2)
        assert np.allclose(out.to_dense(), d)

    def test_axpy_grid_mismatch(self):
        r, c = grids()
        m1 = BlockSparseMatrix(r, c)
        m2 = BlockSparseMatrix(c, r)
        with pytest.raises(ValueError):
            m1.axpy(1.0, m2)

    def test_norm_fro(self):
        r, c = grids()
        m = random_full(r, c, seed=4)
        assert m.norm_fro() == pytest.approx(np.linalg.norm(m.to_dense()))

    def test_allclose_treats_missing_as_zero(self):
        r, c = grids()
        m1 = BlockSparseMatrix(r, c)
        m2 = BlockSparseMatrix(r, c)
        m2.set_tile(0, 0, np.zeros((2, 4)))
        assert m1.allclose(m2)
        m2.set_tile(0, 0, np.ones((2, 4)))
        assert not m1.allclose(m2)

    def test_prune(self):
        r, c = grids()
        m = BlockSparseMatrix(r, c)
        m.set_tile(0, 0, np.zeros((2, 4)))
        m.set_tile(0, 1, np.ones((2, 1)))
        m.prune()
        assert m.nnz_tiles == 1 and m.has_tile(0, 1)

    def test_copy_independent(self):
        r, c = grids()
        m = random_full(r, c, seed=5)
        cp = m.copy()
        cp.get_tile(0, 0)[:] = 0
        assert not np.allclose(m.get_tile(0, 0), 0)

    def test_nbytes(self):
        r, c = grids()
        m = BlockSparseMatrix(r, c)
        m.set_tile(0, 0, np.ones((2, 4)))
        assert m.nbytes == 2 * 4 * 8

    def test_sparse_shape_with_norms(self):
        r, c = grids()
        m = BlockSparseMatrix(r, c)
        m.set_tile(1, 1, 3.0 * np.ones((3, 1)))
        s = m.sparse_shape(with_norms=True)
        assert s.nnz_tiles == 1
        assert s.csr[1, 1] == pytest.approx(np.sqrt(9.0 * 3))

    def test_drop_tile(self):
        r, c = grids()
        m = random_full(r, c, seed=6)
        m.drop_tile(0, 0)
        m.drop_tile(0, 0)  # idempotent
        assert not m.has_tile(0, 0)


class TestConstructors:
    def test_zeros(self):
        r, c = grids()
        assert zeros(r, c).nnz_tiles == 0

    def test_random_full_deterministic(self):
        r, c = grids()
        m1 = random_full(r, c, seed=7)
        m2 = random_full(r, c, seed=7)
        assert m1.allclose(m2)

    def test_from_shape_fills(self):
        r, c = grids()
        s = SparseShape.from_coo(r, c, np.array([0]), np.array([2]))
        ones = from_shape(s, fill="ones")
        assert ones.nnz_tiles == 1 and np.allclose(ones.get_tile(0, 2), 1.0)
        zz = from_shape(s, fill="zeros")
        assert np.allclose(zz.get_tile(0, 2), 0.0)
        with pytest.raises(ValueError):
            from_shape(s, fill="bogus")

    def test_from_shape_order_independent_values(self):
        # Tile values depend only on (seed, tile id), not instantiation order.
        r, c = grids()
        s_full = SparseShape.full(r, c)
        m_full = from_shape(s_full, seed=11)
        s_one = SparseShape.from_coo(r, c, np.array([1]), np.array([2]))
        m_one = from_shape(s_one, seed=11)
        assert np.allclose(m_full.get_tile(1, 2), m_one.get_tile(1, 2))

    def test_random_block_sparse_density(self):
        r = Tiling.uniform(400, 40)
        c = Tiling.uniform(400, 40)
        m = random_block_sparse(r, c, 0.5, seed=8)
        d = m.sparse_shape().element_density
        assert 0.5 <= d <= 0.55
