"""Round-trip tests for the npz serialization of matrices and shapes."""

import numpy as np

from repro.sparse import random_block_sparse
from repro.sparse.io import load_matrix, load_shape, save_matrix, save_shape
from repro.sparse.random_sparsity import random_shape_with_density
from repro.tiling import random_tiling


def test_matrix_roundtrip(tmp_path):
    rows = random_tiling(500, 50, 150, seed=0)
    cols = random_tiling(600, 50, 150, seed=1)
    m = random_block_sparse(rows, cols, 0.4, seed=2)
    path = str(tmp_path / "mat.npz")
    save_matrix(path, m)
    back = load_matrix(path)
    assert back.rows == m.rows and back.cols == m.cols
    assert back.allclose(m)


def test_empty_matrix_roundtrip(tmp_path):
    from repro.sparse import zeros
    from repro.tiling import Tiling

    m = zeros(Tiling.from_sizes([2, 3]), Tiling.from_sizes([4]))
    path = str(tmp_path / "empty.npz")
    save_matrix(path, m)
    back = load_matrix(path)
    assert back.nnz_tiles == 0
    assert back.rows == m.rows


def test_shape_roundtrip(tmp_path):
    rows = random_tiling(500, 50, 150, seed=3)
    cols = random_tiling(600, 50, 150, seed=4)
    s = random_shape_with_density(rows, cols, 0.3, seed=5)
    path = str(tmp_path / "shape.npz")
    save_shape(path, s)
    back = load_shape(path)
    assert back == s
    assert np.allclose(back.csr.toarray(), s.csr.toarray())
