"""Test-suite configuration.

Hypothesis deadlines are disabled globally: the suite runs on arbitrary
(often single-core, contended) CI machines, and the property tests wrap
whole planner/executor pipelines whose wall time is load-dependent.
Example counts stay per-test; set ``HYPOTHESIS_PROFILE=thorough`` for a
deeper fuzzing pass.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    deadline=None,
    max_examples=300,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
