"""Edge-case and error-path tests across modules."""

import numpy as np
import pytest

from repro.runtime import DiscreteEventEngine, GeneratedCollection, Resource, SimTask
from repro.sparse import SparseShape
from repro.tiling import Tiling


class TestTilingEdges:
    def test_single_element_range(self):
        t = Tiling.from_sizes([1])
        assert t.extent == 1 and t.tile_of(0) == 0

    def test_restrict_empty_selection(self):
        t = Tiling.from_sizes([2, 3])
        with pytest.raises(ValueError):
            t.restrict([])

    def test_restrict_out_of_bounds(self):
        t = Tiling.from_sizes([2, 3])
        with pytest.raises(IndexError):
            t.restrict([5])


class TestShapeEdges:
    def test_single_tile_shape(self):
        t = Tiling.single(7)
        s = SparseShape.full(t, t)
        assert s.nnz_tiles == 1
        assert s.element_nnz == 49
        assert s.tile_density == 1.0

    def test_empty_shape_queries(self):
        t = Tiling.from_sizes([3, 4])
        s = SparseShape.empty(t, t)
        ii, jj = s.nonzero_tiles()
        assert ii.size == jj.size == 0
        assert s.element_nnz == 0
        assert s.column_element_counts().sum() == 0
        assert s.transpose().nnz_tiles == 0

    def test_shape_not_hashable(self):
        t = Tiling.single(2)
        with pytest.raises(TypeError):
            hash(SparseShape.full(t, t))

    def test_intersect_grid_mismatch(self):
        a = SparseShape.full(Tiling.single(2), Tiling.single(2))
        b = SparseShape.full(Tiling.single(3), Tiling.single(3))
        with pytest.raises(ValueError):
            a.intersect(b)


class TestGeneratedCollectionEdges:
    def test_unknown_fill_rejected(self):
        t = Tiling.from_sizes([2])
        shape = SparseShape.full(t, t)
        with pytest.raises(ValueError, match="fill"):
            GeneratedCollection(shape, fill="bogus")

    def test_evict_unknown_is_noop(self):
        t = Tiling.from_sizes([2])
        g = GeneratedCollection(SparseShape.full(t, t), seed=0)
        g.evict(0, 0, 0)  # never materialized; must not raise


class TestEngineEdges:
    def test_insertion_order_breaks_priority_ties(self):
        e = DiscreteEventEngine([Resource("r")])
        e.add_task(SimTask("first", "r", 1.0, priority=1))
        e.add_task(SimTask("second", "r", 1.0, priority=1))
        trace = e.run()
        assert [ev.task for ev in trace.events] == ["first", "second"]

    def test_empty_engine_runs(self):
        e = DiscreteEventEngine([Resource("r")])
        trace = e.run()
        assert trace.makespan == 0.0
        assert trace.events == []

    def test_negative_duration_rejected(self):
        e = DiscreteEventEngine([Resource("r")])
        with pytest.raises(ValueError):
            e.add_task(SimTask("bad", "r", -1.0))


class TestFormattingEdges:
    def test_fmt_negative_bytes(self):
        from repro.util import fmt_bytes

        assert "MiB" in fmt_bytes(-3 * 2**20)

    def test_fmt_zero(self):
        from repro.util import fmt_count, fmt_flops, fmt_rate

        assert fmt_count(0) == "0"
        assert fmt_flops(0) == "0 flop"
        assert fmt_rate(0) == "0 flop/s"


class TestIoEdges:
    def test_load_missing_file(self, tmp_path):
        from repro.sparse.io import load_matrix

        with pytest.raises(FileNotFoundError):
            load_matrix(str(tmp_path / "nope.npz"))
