"""Tests for the permutational pair-symmetry extension."""

import numpy as np
import pytest

from repro.sparse import BlockSparseMatrix, random_block_sparse
from repro.sparse.gemm_ref import block_gemm_reference
from repro.tensor.symmetry import (
    canonical_pair_tiles,
    fold_rows,
    folded_flop_ratio,
    pair_transpose_tile,
    partner_pair,
    reconstruct_full,
    symmetrize_pair_matrix,
)
from repro.tiling import Tiling
from repro.tiling.product import fuse


def pair_fused(base_sizes):
    base = Tiling.from_sizes(base_sizes)
    return base, fuse(base, base).tiling


class TestPairIndexing:
    def test_canonical_count(self):
        for n in (1, 2, 3, 5, 8):
            assert canonical_pair_tiles(n).size == n * (n + 1) // 2

    def test_partner_involution(self):
        n = 4
        t = np.arange(n * n)
        assert np.array_equal(partner_pair(partner_pair(t, n), n), t)

    def test_canonical_union_partner_covers_all(self):
        n = 5
        canon = canonical_pair_tiles(n)
        covered = set(canon.tolist()) | set(partner_pair(canon, n).tolist())
        assert covered == set(range(n * n))

    def test_flop_ratio(self):
        assert folded_flop_ratio(1) == 1.0
        assert folded_flop_ratio(8) == pytest.approx(9 / 16)
        assert folded_flop_ratio(1000) == pytest.approx(0.5, abs=1e-3)


class TestPairTranspose:
    def test_matches_order4_permutation(self):
        rng = np.random.default_rng(0)
        s1, s2, sa, sb = 2, 3, 4, 5
        data = rng.standard_normal((s1 * s2, sa * sb))
        got = pair_transpose_tile(data, (s1, s2), (sa, sb))
        expect = data.reshape(s1, s2, sa, sb).transpose(1, 0, 3, 2).reshape(s2 * s1, sb * sa)
        assert np.array_equal(got, expect)

    def test_involution(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((6, 20))
        once = pair_transpose_tile(data, (2, 3), (4, 5))
        back = pair_transpose_tile(once, (3, 2), (5, 4))
        assert np.array_equal(back, data)

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            pair_transpose_tile(np.zeros((4, 4)), (2, 3), (2, 2))


class TestSymmetrize:
    def test_result_is_pair_symmetric(self):
        base, fused = pair_fused([2, 3])
        m = random_block_sparse(fused, fused, 0.8, seed=0)
        sym = symmetrize_pair_matrix(m, base.ntiles, base.ntiles)
        n = base.ntiles
        from repro.tensor.symmetry import _constituent_sizes

        rs = _constituent_sizes(sym.rows, n)
        cs = _constituent_sizes(sym.cols, n)
        for (r, c), tile in sym.items():
            pr, pc = int(partner_pair(r, n)), int(partner_pair(c, n))
            partner = sym.tile_or_zeros(pr, pc)
            assert np.allclose(pair_transpose_tile(partner, rs[pr], cs[pc]), tile)

    def test_idempotent(self):
        base, fused = pair_fused([1, 2, 2])
        m = random_block_sparse(fused, fused, 0.6, seed=1)
        s1 = symmetrize_pair_matrix(m, base.ntiles, base.ntiles)
        s2 = symmetrize_pair_matrix(s1, base.ntiles, base.ntiles)
        assert s1.allclose(s2)


class TestFoldedContraction:
    def test_folded_plus_reconstruction_matches_full(self):
        """The headline: computing only canonical rows reproduces the full
        pair-symmetric product exactly — the ~2x saving the paper defers."""
        occ, occ_pair = pair_fused([2, 2, 3])
        ao, ao_pair = pair_fused([3, 2, 4])
        n_occ, n_ao = occ.ntiles, ao.ntiles

        t_full = symmetrize_pair_matrix(
            random_block_sparse(occ_pair, ao_pair, 0.7, seed=2), n_occ, n_ao
        )
        v_full = symmetrize_pair_matrix(
            random_block_sparse(ao_pair, ao_pair, 0.7, seed=3), n_ao, n_ao
        )

        # Full contraction.
        r_full = block_gemm_reference(t_full, v_full)

        # Folded: only canonical (i, j) row tiles of T.
        keep = canonical_pair_tiles(n_occ)
        t_folded = BlockSparseMatrix(occ_pair.restrict(keep), ao_pair)
        for rf, r in enumerate(keep.tolist()):
            for c in range(ao_pair.ntiles):
                if t_full.has_tile(r, c):
                    t_folded.set_tile(rf, c, t_full.get_tile(r, c))
        r_folded = block_gemm_reference(t_folded, v_full)
        r_rebuilt = reconstruct_full(r_folded, keep, occ_pair, n_occ, n_ao)

        assert r_rebuilt.allclose(r_full)

    def test_fold_rows_shape(self):
        occ, occ_pair = pair_fused([2, 3])
        ao, ao_pair = pair_fused([2, 2])
        from repro.sparse import SparseShape

        s = SparseShape.full(occ_pair, ao_pair)
        folded, keep = fold_rows(s, occ.ntiles)
        assert folded.ntile_rows == keep.size == 3
        assert folded.ntile_cols == ao_pair.ntiles

    def test_flop_saving_realized(self):
        """The folded task count is the canonical fraction of the full one."""
        from repro.sparse import SparseShape, gemm_task_count

        occ, occ_pair = pair_fused([2, 2, 2, 2])
        ao, ao_pair = pair_fused([3, 3])
        a = SparseShape.full(occ_pair, ao_pair)
        b = SparseShape.full(ao_pair, ao_pair)
        folded, _ = fold_rows(a, occ.ntiles)
        full = gemm_task_count(a, b)
        fold = gemm_task_count(folded, b)
        assert fold / full == pytest.approx(folded_flop_ratio(occ.ntiles))
