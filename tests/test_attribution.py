"""Tests for the performance-attribution subsystem (:mod:`repro.perf`).

Unit tests exercise each stage on synthetic traces: the bucket
classifier, the backward-greedy critical-path sweep and its tiling
invariant (buckets + idle == path length == makespan), the plan-derived
:class:`PerfModel` and its serialization, the run-artifact round trip,
the median-normalized roofline audit, and the run-to-run diff.

The ``dist``-marked acceptance tests run the real 3-worker executor and
assert the headline criteria: a clean traced run's critical path covers
>= 90% of the makespan; with an injected ``slow`` fault the audit flags
exactly the slowed rank (its relative achieved-vs-predicted ratio lands
outside the band); and ``repro explain --baseline`` against the clean
run attributes the makespan delta to that rank's GEMM bucket.
"""

import json

import pytest

from repro.core import inspect, psgemm_distributed
from repro.dist import FaultPlan
from repro.machine import summit
from repro.perf import (
    BUCKETS,
    DEFAULT_BAND,
    GemmPrediction,
    PerfModel,
    attribute,
    audit_run,
    classify,
    critical_path,
    diff_attributions,
    diff_traces,
    html_report,
    plan_task_id,
    read_run_artifact,
    span_task_id,
    text_report,
    write_run_artifact,
)
from repro.runtime import Trace
from repro.sparse import random_block_sparse
from repro.tiling import random_tiling


def operands(seed=0, m=300, nk=900, density=0.5):
    rows = random_tiling(m, 20, 80, seed=seed)
    inner = random_tiling(nk, 20, 80, seed=seed + 1)
    a = random_block_sparse(rows, inner, density, seed=seed + 2)
    b = random_block_sparse(inner, inner, density, seed=seed + 3)
    return a, b


class TestClassify:
    def test_both_span_vocabularies(self):
        # Measured executor names and engine task-graph names both land in
        # the same buckets — the diff depends on this being stable.
        assert classify("block0.chunk1.gemm") == "gemm"
        assert classify("gemm.p0.g0.b1.c2") == "gemm"
        assert classify("gen.3.7") == "bgen"
        assert classify("block0.prefetch") == "fetch"
        assert classify("h2d.a.0") == "fetch"
        assert classify("block0.chunk1.qwait") == "qwait"
        assert classify("inbox.wait") == "qwait"
        assert classify("shm.attach") == "shm"
        assert classify("writeback") == "writeback"
        assert classify("d2h.c.0") == "writeback"
        assert classify("scatter.1") == "comm"
        assert classify("report.2") == "comm"
        assert classify("recv.a.0") == "comm"
        assert classify("spawn.1") == "other"

    def test_every_bucket_is_known(self):
        for task in ("block0.chunk0.gemm", "gen.0.0", "inbox.wait",
                     "shm.attach", "writeback", "scatter.0", "mystery"):
            assert classify(task) in BUCKETS


class TestSpanTaskId:
    def test_measured_span_maps_to_plan_task(self):
        assert span_task_id("block2.chunk3.gemm", "gpu.1.0.comp") == "p1.g0.b2.c3"
        assert plan_task_id(1, 0, 2, 3) == "p1.g0.b2.c3"

    def test_engine_task_passes_through(self):
        assert span_task_id("gemm.p0.g1.b2.c3", "x") == "p0.g1.b2.c3"
        # Per-task suffixes are stripped to the chunk-stream id.
        assert span_task_id("gemm.p0.g1.b2.c3.t7", "x") == "p0.g1.b2.c3"

    def test_non_gemm_and_malformed_are_none(self):
        assert span_task_id("writeback", "gpu.0.0.comp") is None
        assert span_task_id("block0.chunk0.gemm", "cpu.0") is None
        assert span_task_id("blockX.chunk0.gemm", "gpu.0.0.comp") is None


class TestCriticalPath:
    def test_empty_trace(self):
        assert critical_path([]) == []
        att = attribute(Trace())
        assert att.path == [] and att.coverage == 0.0
        assert "empty trace" in att.summary()

    def test_gap_becomes_idle_and_path_tiles_makespan(self):
        t = Trace()
        t.add("block0.chunk0.gemm", "gpu.0.0.comp", 0.0, 2.0)
        t.add("inbox.wait", "cpu.0", 3.0, 5.0)
        att = attribute(t)
        assert [s.bucket for s in att.path] == ["gemm", "idle", "qwait"]
        assert att.path[0].start == pytest.approx(0.0)
        assert att.path[-1].end == pytest.approx(att.makespan)
        for prev, nxt in zip(att.path, att.path[1:]):
            assert nxt.start == pytest.approx(prev.end)
        # The tiling invariant: buckets (idle included) sum to the path
        # length, which spans the whole makespan.
        assert sum(att.buckets.values()) == pytest.approx(att.path_length)
        assert att.path_length == pytest.approx(att.makespan) == pytest.approx(5.0)
        assert att.idle_seconds == pytest.approx(1.0)
        assert att.coverage == pytest.approx(4.0 / 5.0)

    def test_head_idle_when_nothing_ran_at_zero(self):
        t = Trace()
        t.add("block0.chunk0.gemm", "gpu.0.0.comp", 1.0, 2.0)
        att = attribute(t)
        assert [s.bucket for s in att.path] == ["idle", "gemm"]
        assert att.coverage == pytest.approx(0.5)

    def test_overlapping_spans_never_double_count(self):
        t = Trace()
        t.add("block0.chunk0.gemm", "gpu.0.0.comp", 0.0, 3.0)
        t.add("block0.chunk0.gemm", "gpu.1.0.comp", 1.0, 4.0)
        att = attribute(t)
        assert sum(att.buckets.values()) == pytest.approx(4.0)
        assert att.idle_seconds == 0.0
        # Whole-trace busy seconds do sum both spans.
        assert att.trace_buckets["gemm"] == pytest.approx(6.0)
        assert att.rank_buckets[0]["gemm"] == pytest.approx(3.0)
        assert att.rank_buckets[1]["gemm"] == pytest.approx(3.0)

    def test_to_dict_carries_the_acceptance_fields(self):
        t = Trace()
        t.add("block0.chunk0.gemm", "gpu.0.0.comp", 0.0, 1.0)
        d = attribute(t).to_dict()
        for key in ("makespan", "path_length", "coverage", "buckets",
                    "trace_buckets", "rank_buckets", "critical_path"):
            assert key in d
        assert d["critical_path"][0]["bucket"] == "gemm"


class TestPerfModel:
    def test_from_plan_and_round_trip(self):
        a, b = operands(seed=0, m=200, nk=600)
        plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(2), p=2)
        model = PerfModel.from_plan(plan, plan_hash="abc")
        assert model.plan_hash == "abc" and model.nranks == 2
        assert model.gemm and all(p.seconds > 0 for p in model.gemm.values())
        per_rank = model.predicted_rank_seconds()
        assert set(per_rank) == {0, 1} and all(s > 0 for s in per_rank.values())
        for rank in (0, 1):
            assert model.comm[rank]["b_gen_bytes"] > 0
        # Serialization survives JSON exactly (the artifact's path).
        clone = PerfModel.from_dict(json.loads(json.dumps(model.to_dict())))
        assert clone == model


def _gemm_trace(rank_seconds):
    """One GEMM span per rank, all starting at zero."""
    t = Trace()
    for rank, sec in rank_seconds.items():
        t.add("block0.chunk0.gemm", f"gpu.{rank}.0.comp", 0.0, sec)
    return t


class TestArtifactRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "run.json")
        trace = _gemm_trace({0: 1.0, 1: 2.0})
        model = PerfModel(plan_hash="deadbeef", nranks=2, gemm={
            "p0.g0.b0.c0": GemmPrediction(rank=0, gpu=0, block=0, chunk=0,
                                          seconds=0.5, flops=1e9, ntasks=3),
        })
        links = {(-1, 0): 100, (1, 0): 40, (0, 1): 60}
        write_run_artifact(path, trace, model=model, comm_link_bytes=links,
                           meta={"command": "test"})
        art = read_run_artifact(path)
        assert len(art.trace.events) == len(trace.events)
        assert art.trace.makespan == pytest.approx(trace.makespan)
        assert art.model == model
        assert art.links == links
        assert art.plan_hash == "deadbeef"
        assert art.meta == {"command": "test"}

    def test_artifact_is_a_loadable_chrome_trace(self, tmp_path):
        path = str(tmp_path / "run.json")
        write_run_artifact(path, _gemm_trace({0: 1.0}))
        payload = json.load(open(path))
        assert all(ev["ph"] in ("X", "M") for ev in payload["traceEvents"])
        assert payload["repro"]["version"] == 1

    def test_plain_chrome_trace_still_loads(self, tmp_path):
        # A bare event list (no "repro" key) from another tool.
        path = str(tmp_path / "plain.json")
        with open(path, "w") as fh:
            json.dump([{"ph": "X", "name": "t", "ts": 0, "dur": 1e6,
                        "pid": 0, "tid": 0}], fh)
        art = read_run_artifact(path)
        assert len(art.trace.events) == 1
        assert art.model is None and art.links == {}


class TestAudit:
    def _model(self, preds):
        gemm = {}
        for (rank, block), sec in preds.items():
            gemm[plan_task_id(rank, 0, block, 0)] = GemmPrediction(
                rank=rank, gpu=0, block=block, chunk=0,
                seconds=sec, flops=1.0, ntasks=1,
            )
        return PerfModel(plan_hash="h", nranks=2, gemm=gemm)

    def _trace(self, measured):
        t = Trace()
        for (rank, block), sec in measured.items():
            t.add(f"block{block}.chunk0.gemm", f"gpu.{rank}.0.comp",
                  0.0, sec)
        return t

    def test_median_normalization_flags_the_outlier(self):
        # Every task runs 2x its prediction (a uniformly slower host);
        # one task on rank 1 runs 40x.  Median calibration keeps the
        # healthy tasks at rel ~1.0 and flags only the outlier.
        preds = {(r, b): 1.0 for r in (0, 1) for b in (0, 1, 2)}
        meas = {k: 2.0 for k in preds}
        meas[(1, 2)] = 40.0
        audit = audit_run(self._trace(meas), self._model(preds))
        assert audit.median_ratio == pytest.approx(2.0)
        assert [e.key for e in audit.flagged] == ["p1.g0.b2.c0"]
        assert audit.flagged_ranks == [1]
        assert audit.rank_rel(1) > DEFAULT_BAND[1] > audit.rank_rel(0)
        assert "OUT OF BAND" in audit.summary()

    def test_uniform_slowdown_flags_nothing(self):
        preds = {(r, b): 1.0 for r in (0, 1) for b in (0, 1)}
        meas = {k: 37.0 for k in preds}
        audit = audit_run(self._trace(meas), self._model(preds))
        assert audit.flagged == [] and audit.flagged_ranks == []

    def test_unmeasured_tasks_are_skipped_not_flagged(self):
        preds = {(0, 0): 1.0, (0, 1): 1.0}
        audit = audit_run(self._trace({(0, 0): 2.0}), self._model(preds))
        assert [e.key for e in audit.entries] == ["p0.g0.b0.c0"]

    def test_no_model_yields_empty_audit(self):
        audit = audit_run(self._trace({(0, 0): 1.0}), None)
        assert audit.entries == [] and audit.comm_entries == []

    def test_comm_volumes_checked_exactly(self):
        model = self._model({(0, 0): 1.0, (1, 0): 1.0})
        model.comm = {0: {"a_recv_bytes": 100}, 1: {"a_recv_bytes": 100}}
        trace = self._trace({(0, 0): 1.0, (1, 0): 1.0})
        # Coordinator traffic (src -1) never counts as A broadcast; rank 0
        # matches its prediction, rank 1 moved 1.5x the plan's bytes.
        links = {(-1, 0): 10**6, (1, 0): 100, (0, 1): 150}
        audit = audit_run(trace, model, comm_link_bytes=links)
        by_rank = {e.rank: e for e in audit.comm_entries}
        assert not by_rank[0].flagged
        assert by_rank[1].flagged and by_rank[1].ratio == pytest.approx(1.5)
        assert "MISMATCH" in audit.summary()


class TestDiff:
    def test_delta_attributed_to_the_slowed_rank(self):
        base = _gemm_trace({0: 1.0, 1: 1.0})
        cur = _gemm_trace({0: 1.0, 1: 3.0})
        d = diff_traces(base, cur, base_hash="h", cur_hash="h")
        assert d.fingerprints_match is True
        assert d.regressed and d.delta == pytest.approx(2.0)
        assert d.slowest_rank() == 1
        what, grew = d.top_contributors(1)[0]
        assert what == "rank 1 gemm" and grew == pytest.approx(2.0)
        assert "what got slower" in d.summary()
        assert "largest growth on rank 1" in d.summary()

    def test_improvement_reports_what_got_faster(self):
        d = diff_traces(_gemm_trace({0: 3.0}), _gemm_trace({0: 1.0}))
        assert not d.regressed and d.slowest_rank() is None
        assert d.fingerprints_match is None  # no hashes to compare
        assert "what got faster" in d.summary()

    def test_fingerprint_mismatch_warns(self):
        d = diff_traces(_gemm_trace({0: 1.0}), _gemm_trace({0: 2.0}),
                        base_hash="a", cur_hash="b")
        assert d.fingerprints_match is False
        assert "WARNING" in d.summary()

    def test_to_dict_lists_top_contributors(self):
        d = diff_traces(_gemm_trace({0: 1.0}), _gemm_trace({0: 2.0}))
        payload = json.loads(json.dumps(d.to_dict()))
        assert payload["top_contributors"][0]["what"] == "rank 0 gemm"


class TestReports:
    def test_text_report_stitches_all_sections(self):
        att = attribute(_gemm_trace({0: 1.0, 1: 2.0}))
        d = diff_traces(_gemm_trace({0: 1.0}), _gemm_trace({0: 2.0}))
        out = text_report(att, None, d, title="t")
        assert "critical path" in out and "trace diff" in out

    def test_html_report_is_self_contained(self):
        trace = _gemm_trace({0: 1.0, 1: 2.0})
        page = html_report(trace, attribute(trace), title="unit")
        assert page.lstrip().lower().startswith("<!doctype html")
        assert 'id="data"' in page and "unit" in page
        # No external fetches: a single file must render offline.
        assert "http://" not in page and "https://" not in page


# ---------------------------------------------------------------------------
# Acceptance: the real 3-worker executor (slow; `make test-dist` tier).
# ---------------------------------------------------------------------------

#: The injected straggler for the acceptance runs: rank 1 sleeps on every
#: GEMM task from its third onward — tens of ms against sub-ms tasks, far
#: outside any band the audit would use.
SLOW_RANK, SLOW_SECONDS = 1, 0.02


@pytest.fixture(scope="module")
def clean_run():
    a, b = operands(seed=0)
    _, report = psgemm_distributed(a, b, summit(3), p=3, trace=True)
    return report


@pytest.fixture(scope="module")
def slow_run():
    a, b = operands(seed=0)
    _, report = psgemm_distributed(
        a, b, summit(3), p=3, trace=True,
        fault_plan=FaultPlan.slow(SLOW_RANK, at_task=3, seconds=SLOW_SECONDS),
    )
    return report


@pytest.mark.dist
class TestAcceptanceCleanRun:
    def test_critical_path_covers_the_makespan(self, clean_run):
        att = clean_run.attribution()
        assert att.path
        # The path tiles [0, makespan]: contiguous segments, no overlap.
        assert att.path[0].start == pytest.approx(0.0, abs=1e-6)
        assert att.path[-1].end == pytest.approx(att.makespan, rel=1e-6)
        for prev, nxt in zip(att.path, att.path[1:]):
            assert nxt.start == pytest.approx(prev.end, abs=1e-6)
        # Blame buckets (idle included) sum to the path length exactly.
        assert sum(att.buckets.values()) == pytest.approx(att.path_length,
                                                          rel=1e-6)
        assert att.path_length == pytest.approx(att.makespan, rel=1e-6)
        # The acceptance bar: measured spans explain >= 90% of the run.
        assert att.coverage >= 0.9
        assert att.buckets.get("gemm", 0.0) > 0

    def test_clean_run_audit_is_quiet(self, clean_run):
        audit = clean_run.audit()
        assert audit.entries  # predictions joined to measurements
        assert audit.flagged_ranks == []

    def test_report_attribution_matches_module_function(self, clean_run):
        assert clean_run.attribution().trace_buckets == pytest.approx(
            attribute(clean_run.trace).trace_buckets
        )


@pytest.mark.dist
class TestAcceptanceSlowFault:
    def test_audit_flags_the_injected_rank_with_a_cause(self, slow_run):
        audit = slow_run.audit()
        assert audit.flagged_ranks == [SLOW_RANK]
        assert audit.rank_rel(SLOW_RANK) > DEFAULT_BAND[1]
        assert audit.rank_rel(SLOW_RANK) == max(
            audit.rank_rel(r) for r in range(3)
        )
        # The flagged tasks name the culprit's plan tasks.
        worst = max(audit.flagged, key=lambda e: e.rel)
        assert worst.rank == SLOW_RANK
        assert f"rank {SLOW_RANK}" in audit.summary()
        assert "OUT OF BAND" in audit.summary()

    def test_diff_attributes_the_delta_to_the_slowed_rank(self, clean_run,
                                                          slow_run):
        d = diff_attributions(
            clean_run.attribution(), slow_run.attribution(),
            base_hash=clean_run.model.plan_hash,
            cur_hash=slow_run.model.plan_hash,
        )
        assert d.fingerprints_match is True  # same operands, same plan
        assert d.regressed
        assert d.slowest_rank() == SLOW_RANK
        what, _ = d.top_contributors(1)[0]
        assert what == f"rank {SLOW_RANK} gemm"
        # The slowed rank's busy growth explains the bulk of the delta.
        assert d.rank_deltas[SLOW_RANK] >= 0.5 * d.delta


@pytest.mark.dist
class TestAcceptanceExplainCli:
    def test_explain_baseline_round_trip(self, clean_run, slow_run,
                                         tmp_path, capsys):
        from repro.cli import main

        base = str(tmp_path / "base.json")
        cur = str(tmp_path / "cur.json")
        out = str(tmp_path / "explain.json")
        html = str(tmp_path / "explain.html")
        for path, report in ((base, clean_run), (cur, slow_run)):
            write_run_artifact(
                path, report.trace, model=report.model,
                comm_link_bytes=dict(report.comm.link_bytes),
            )
        rc = main(["explain", "--trace", cur, "--baseline", base,
                   "--json", out, "--html", html])
        assert rc == 0
        text = capsys.readouterr().out
        assert "critical path" in text and "trace diff" in text
        assert "OUT OF BAND" in text
        payload = json.load(open(out))
        assert payload["attribution"]["critical_path"]
        assert payload["audit"]["flagged_ranks"] == [SLOW_RANK]
        assert payload["diff"]["fingerprints_match"] is True
        assert str(SLOW_RANK) in payload["diff"]["rank_deltas"]
        page = open(html).read()
        assert page.lstrip().lower().startswith("<!doctype html")
