"""Endpoint byte accounting and CommStats rendering edge cases.

The comm layer's counters are the runtime ground truth the plan-derived
comm-volume crosschecks compare against, so the accounting rules are
load-bearing: telemetry bytes must never leak into data-link totals,
links that never carried a message must not materialize, and the table
must render exactly what was counted.
"""

import pickle
import queue

from repro.dist.comm import COORDINATOR, CommStats, Empty, Endpoint


def _fabric(nranks=2):
    inboxes = [queue.Queue() for _ in range(nranks)]
    gather = queue.Queue()
    telemetry = queue.Queue()
    coord = Endpoint(rank=COORDINATOR, inboxes=inboxes, gather=gather,
                     telemetry=telemetry)
    workers = [
        Endpoint(rank=r, inboxes=inboxes, gather=gather, telemetry=telemetry)
        for r in range(nranks)
    ]
    return coord, workers


class TestEndpointAccounting:
    def test_send_counts_pickled_bytes_per_link(self):
        coord, (w0, _) = _fabric()
        payload = {"plan": list(range(100))}
        n = coord.send(0, payload)
        assert n == len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        assert coord.link_bytes[(COORDINATOR, 0)] == n
        assert coord.messages[(COORDINATOR, 0)] == 1
        src, msg, nbytes = w0.recv(timeout=1)
        assert (src, msg, nbytes) == (COORDINATOR, payload, n)

    def test_zero_message_links_do_not_materialize(self):
        coord, (w0, w1) = _fabric()
        coord.send(0, "x")
        # No traffic ever touched rank 1 or the gather direction: those
        # links must be absent, not present-with-zero.
        assert (COORDINATOR, 1) not in coord.link_bytes
        assert (0, COORDINATOR) not in w0.link_bytes
        assert w1.link_bytes == {}
        assert w1.messages == {}

    def test_telemetry_bytes_excluded_from_data_links(self):
        _, (w0, _) = _fabric()
        n_data = w0.send(COORDINATOR, ("done", 0, "report"))
        n_beat = w0.send_telemetry(("hb", 0, 0))
        # One counter each, no cross-talk.
        assert w0.link_bytes[(0, COORDINATOR)] == n_data
        assert w0.telemetry_bytes[(0, COORDINATOR)] == n_beat
        assert sum(w0.link_bytes.values()) == n_data
        assert w0.messages[(0, COORDINATOR)] == 1  # the beat is not a message

    def test_recv_telemetry_drains_then_raises_empty(self):
        coord, (w0, _) = _fabric()
        w0.send_telemetry("beat")
        src, msg, nbytes = coord.recv_telemetry()
        assert (src, msg) == (0, "beat") and nbytes > 0
        try:
            coord.recv_telemetry()
            raised = False
        except Empty:
            raised = True
        assert raised


class TestCommStats:
    def test_directional_totals_split_by_coordinator(self):
        s = CommStats()
        s.absorb({(COORDINATOR, 0): 100, (COORDINATOR, 1): 50,
                  (0, COORDINATOR): 30, (0, 1): 7})
        assert s.scatter_bytes() == 150
        assert s.gather_bytes() == 30
        assert s.a_broadcast_bytes() == 7

    def test_telemetry_total_separate_from_directional_totals(self):
        s = CommStats()
        s.absorb({(0, COORDINATOR): 10})
        s.absorb_telemetry({(0, COORDINATOR): 999})
        assert s.gather_bytes() == 10  # telemetry does not inflate gather
        assert s.telemetry_total() == 999

    def test_summary_mentions_telemetry_only_when_present(self):
        s = CommStats()
        s.absorb({(COORDINATOR, 0): 10})
        assert "telemetry" not in s.summary()
        s.absorb_telemetry({(0, COORDINATOR): 42})
        assert "+42 B telemetry" in s.summary()

    def test_table_orders_heaviest_links_first(self):
        s = CommStats()
        s.absorb(
            {(COORDINATOR, 0): 10, (1, COORDINATOR): 5000, (0, 1): 300},
            {(1, COORDINATOR): 2},
        )
        lines = s.table().splitlines()
        assert lines[0] == "per-link traffic:"
        assert "rank 1" in lines[1] and "coord" in lines[1]
        assert "(2 msg)" in lines[1]  # counted links show message counts
        assert "rank 0 -> rank 1" in lines[2]
        assert "coord -> rank 0" in lines[3]
        assert "(0 msg)" not in lines[3]  # uncounted links omit the suffix

    def test_empty_stats_render(self):
        s = CommStats()
        assert s.table() == "per-link traffic:"
        assert "over 0 links" in s.summary()
        assert s.telemetry_total() == 0
