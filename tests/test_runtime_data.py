"""Tests for tile sources and the GPU memory manager."""

import numpy as np
import pytest

from repro.runtime import GeneratedCollection, GpuMemory, GpuMemoryError, MatrixSource
from repro.sparse import SparseShape, random_block_sparse
from repro.sparse.construct import from_shape
from repro.tiling import Tiling


def shape():
    r = Tiling.from_sizes([2, 3])
    c = Tiling.from_sizes([4, 1, 2])
    return SparseShape.from_coo(r, c, np.array([0, 1, 1]), np.array([0, 1, 2]))


class TestGeneratedCollection:
    def test_structural_zero_raises(self):
        g = GeneratedCollection(shape(), seed=0)
        assert g.has_tile(0, 0)
        assert not g.has_tile(0, 1)
        with pytest.raises(KeyError):
            g.tile(0, 0, 1)

    def test_instantiated_at_most_once_per_proc(self):
        g = GeneratedCollection(shape(), seed=0)
        t1 = g.tile(0, 0, 0)
        t2 = g.tile(0, 0, 0)
        assert t1 is t2
        assert g.max_instantiations_per_proc_tile() == 1
        g.tile(1, 0, 0)  # another process: its own instantiation
        assert g.generated_tiles() == 2
        assert g.generated_tiles(proc=0) == 1

    def test_eviction_then_regeneration_same_values(self):
        g = GeneratedCollection(shape(), seed=3)
        before = g.tile(0, 1, 2).copy()
        g.evict(0, 1, 2)
        after = g.tile(0, 1, 2)
        assert np.allclose(before, after)

    def test_values_order_independent(self):
        g1 = GeneratedCollection(shape(), seed=7)
        g2 = GeneratedCollection(shape(), seed=7)
        a1 = g1.tile(0, 0, 0)
        g2.tile(0, 1, 1)  # different first touch
        a2 = g2.tile(0, 0, 0)
        assert np.allclose(a1, a2)

    def test_matches_from_shape_materialization(self):
        s = shape()
        g = GeneratedCollection(s, seed=11)
        mat = from_shape(s, fill="random", seed=11)
        assert np.allclose(g.tile(0, 1, 1), mat.get_tile(1, 1))
        assert g.as_matrix().allclose(mat)

    def test_ones_fill_and_bytes(self):
        g = GeneratedCollection(shape(), fill="ones")
        assert np.all(g.tile(0, 0, 0) == 1.0)
        assert g.tile_nbytes(0, 0) == 2 * 4 * 8
        assert g.tile_shape(1, 2) == (3, 2)


class TestMatrixSource:
    def test_counts_accesses(self):
        m = random_block_sparse(Tiling.uniform(40, 10), Tiling.uniform(40, 10), 1.0, seed=0)
        src = MatrixSource(m)
        src.tile(0, 1, 1)
        src.tile(0, 1, 1)
        assert src.access_counts[(0, 1, 1)] == 2
        assert src.has_tile(1, 1)
        assert src.tile_nbytes(1, 1) == 10 * 10 * 8


class TestGpuMemory:
    def test_reserve_release_cycle(self):
        mem = GpuMemory(100)
        mem.reserve("block", 60)
        assert mem.used == 60 and mem.free == 40
        mem.reserve("chunk", 40)
        assert mem.peak == 100
        mem.release("chunk")
        assert mem.used == 60
        mem.release("block")
        assert mem.used == 0 and mem.peak == 100

    def test_overflow_raises(self):
        mem = GpuMemory(100)
        mem.reserve("a", 80)
        with pytest.raises(GpuMemoryError):
            mem.reserve("b", 30)
        # Failed reservation leaves state unchanged.
        assert mem.used == 80

    def test_duplicate_name_raises(self):
        mem = GpuMemory(100)
        mem.reserve("a", 10)
        with pytest.raises(GpuMemoryError):
            mem.reserve("a", 10)

    def test_release_unknown_raises(self):
        mem = GpuMemory(100)
        with pytest.raises(GpuMemoryError):
            mem.release("nope")

    def test_holds(self):
        mem = GpuMemory(10)
        mem.reserve("x", 1)
        assert mem.holds("x") and not mem.holds("y")

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            GpuMemory(0)
        mem = GpuMemory(10)
        with pytest.raises(ValueError):
            mem.reserve("neg", -1)
