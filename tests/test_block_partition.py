"""Tests for worst-fit block partitioning (3.2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block_partition import (
    InfeasiblePartitionError,
    blocks_per_gpu,
    partition_columns_into_blocks,
)

GIB = 1024**3


def partition(cols_bytes, gpu_mem=16 * GIB, ngpus=3, frac=0.5, **kw):
    cols = np.arange(len(cols_bytes))
    return partition_columns_into_blocks(
        cols, np.asarray(cols_bytes), gpu_mem, ngpus, frac, **kw
    )


class TestPartition:
    def test_all_columns_placed_once(self):
        rng = np.random.default_rng(0)
        sizes = rng.integers(100 * 2**20, 2 * GIB, 40)
        blocks = partition(sizes)
        placed = sorted(c for b in blocks for c in b.columns)
        assert placed == list(range(40))

    def test_budget_respected(self):
        rng = np.random.default_rng(1)
        sizes = rng.integers(1 * 2**20, 4 * GIB, 60)
        budget = int(16 * GIB * 0.5)
        for blk in partition(sizes):
            assert blk.bytes_used <= budget
            assert blk.bytes_used == sum(sizes[c] for c in blk.columns)

    def test_round_robin_balance(self):
        rng = np.random.default_rng(2)
        sizes = rng.integers(3 * GIB, 7 * GIB, 30)  # ~1-2 columns per block
        blocks = partition(sizes, ngpus=4)
        counts = blocks_per_gpu(blocks, 4)
        assert counts.max() - counts.min() <= 1

    def test_worst_fit_prefers_most_remaining(self):
        # Two open blocks at 1 GiB and 3 GiB used; a 1 GiB column must go
        # to the emptier one (worst fit).
        cols = np.array([0, 1, 2])
        sizes = np.array([3 * GIB, 1 * GIB, 1 * GIB])
        blocks = partition_columns_into_blocks(cols, sizes, 16 * GIB, 2, 0.5)
        # Sorted by size: col0 (3G) -> gpu0's block, col1 (1G) -> gpu1's
        # empty block (more remaining), col2 -> gpu1's block again (7G left
        # vs 5G left on gpu0).
        by_gpu = {b.gpu: b.columns for b in blocks}
        assert by_gpu[0] == [0]
        assert sorted(by_gpu[1]) == [1, 2]

    def test_single_gpu(self):
        sizes = np.full(10, 2 * GIB)
        blocks = partition(sizes, ngpus=1)
        assert all(b.gpu == 0 for b in blocks)
        assert len(blocks) >= 3  # 8 GiB budget, 2 GiB columns -> 4/block

    def test_fewer_columns_than_gpus(self):
        sizes = np.array([GIB])
        blocks = partition(sizes, ngpus=6)
        assert len(blocks) == 1  # empty initial blocks dropped

    def test_oversized_column_strict_raises(self):
        sizes = np.array([9 * GIB])  # > 8 GiB budget
        with pytest.raises(InfeasiblePartitionError):
            partition(sizes, allow_oversized=False)

    def test_oversized_column_singleton_block(self):
        sizes = np.array([9 * GIB, GIB, GIB])
        blocks = partition(sizes)
        big = [b for b in blocks if 0 in b.columns]
        assert len(big) == 1 and big[0].columns == [0]

    def test_hopeless_column_always_raises(self):
        sizes = np.array([int(15.9 * GIB)])  # > 95 % of the GPU
        with pytest.raises(InfeasiblePartitionError):
            partition(sizes)

    def test_deterministic_under_ties(self):
        sizes = np.full(12, GIB)
        b1 = partition(sizes)
        b2 = partition(sizes)
        assert [b.columns for b in b1] == [b.columns for b in b2]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            partition_columns_into_blocks(
                np.array([0, 1]), np.array([GIB]), 16 * GIB, 2
            )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=8 * GIB), min_size=1, max_size=80),
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.3, max_value=1.0),
    )
    def test_property_invariants(self, sizes, ngpus, frac):
        sizes = np.array(sizes)
        budget = int(16 * GIB * frac)
        try:
            blocks = partition(sizes, ngpus=ngpus, frac=frac)
        except InfeasiblePartitionError:
            assert sizes.max() > 16 * GIB * 0.95
            return
        placed = sorted(c for b in blocks for c in b.columns)
        assert placed == list(range(len(sizes)))
        for blk in blocks:
            assert blk.bytes_used <= budget or len(blk.columns) == 1
            assert 0 <= blk.gpu < ngpus
