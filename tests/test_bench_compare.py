"""Tests for the benchmark regression gate (``benchmarks/compare.py``).

The gate script lives outside the package (it must run with nothing but a
checkout), so it is loaded by path here.  Covers the three gated signals
(exact task counts, exact per-rank splits, the speedup tolerance), the
never-punish-improvements rule, and the CLI exit-code contract CI relies
on.
"""

import copy
import importlib.util
import json
import os

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_compare():
    spec = importlib.util.spec_from_file_location(
        "bench_compare", os.path.join(_ROOT, "benchmarks", "compare.py")
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


compare_mod = _load_compare()


def _baseline():
    return {
        "bench": "dist_executor",
        "small": True,
        "points": [
            {"workers": 1, "serial_s": 0.2, "dist_s": 0.4, "speedup": 0.5,
             "ntasks": 408, "tasks_per_rank": {"0": 408}, "heartbeats": 3},
            {"workers": 2, "serial_s": 0.2, "dist_s": 0.38, "speedup": 0.52,
             "ntasks": 408, "tasks_per_rank": {"0": 200, "1": 208},
             "heartbeats": 6},
        ],
    }


class TestCompare:
    def test_identical_runs_pass(self):
        assert compare_mod.compare(_baseline(), _baseline(), 0.15) == []

    def test_speedup_regression_fails(self):
        cur = _baseline()
        cur["points"][0]["speedup"] = 0.25  # 2x slower than 0.5
        problems = compare_mod.compare(_baseline(), cur, 0.15)
        assert len(problems) == 1
        assert "speedup regressed" in problems[0]

    def test_drop_within_tolerance_passes(self):
        cur = _baseline()
        cur["points"][0]["speedup"] = 0.44  # 12% below, tolerance 15%
        assert compare_mod.compare(_baseline(), cur, 0.15) == []

    def test_improvement_never_fails(self, capsys):
        cur = _baseline()
        cur["points"][0]["speedup"] = 5.0
        assert compare_mod.compare(_baseline(), cur, 0.15) == []
        assert "improved" in capsys.readouterr().out

    def test_task_count_drift_fails(self):
        cur = _baseline()
        cur["points"][0]["ntasks"] = 409
        problems = compare_mod.compare(_baseline(), cur, 0.15)
        assert any("plan drift" in p for p in problems)

    def test_per_rank_split_drift_fails(self):
        cur = _baseline()
        cur["points"][1]["tasks_per_rank"] = {"0": 204, "1": 204}
        problems = compare_mod.compare(_baseline(), cur, 0.15)
        assert any("column assignment drift" in p for p in problems)

    def test_missing_point_fails(self):
        cur = _baseline()
        cur["points"].pop()
        problems = compare_mod.compare(_baseline(), cur, 0.15)
        assert any("missing" in p for p in problems)

    def test_extra_point_is_not_gated(self, capsys):
        cur = _baseline()
        extra = copy.deepcopy(cur["points"][1])
        extra["workers"] = 4
        cur["points"].append(extra)
        assert compare_mod.compare(_baseline(), cur, 0.15) == []
        assert "not gated" in capsys.readouterr().out

    def test_mismatched_problem_size_fails_early(self):
        cur = _baseline()
        cur["small"] = False
        cur["points"][0]["speedup"] = 0.01  # would also regress, but...
        problems = compare_mod.compare(_baseline(), cur, 0.15)
        assert len(problems) == 1  # ...the size mismatch short-circuits
        assert "problem size differs" in problems[0]


class TestSchemaDrift:
    """Missing keys (old baseline vs new harness, or vice versa) degrade to
    warnings — the gate exits nonzero only on an actual regression."""

    def test_baseline_missing_speedup_warns_and_passes(self, capsys):
        base = _baseline()
        for pt in base["points"]:
            del pt["speedup"]
        assert compare_mod.compare(base, _baseline(), 0.15) == []
        out = capsys.readouterr().out
        assert "warning" in out and "'speedup'" in out and "skipped" in out

    def test_current_missing_tasks_per_rank_warns_and_passes(self, capsys):
        cur = _baseline()
        for pt in cur["points"]:
            del pt["tasks_per_rank"]
        assert compare_mod.compare(_baseline(), cur, 0.15) == []
        assert "'tasks_per_rank'" in capsys.readouterr().out

    def test_missing_key_does_not_mask_other_regressions(self):
        cur = _baseline()
        del cur["points"][0]["speedup"]       # drifted schema on one point...
        cur["points"][1]["ntasks"] = 999      # ...but a real drift elsewhere
        problems = compare_mod.compare(_baseline(), cur, 0.15)
        assert len(problems) == 1
        assert "plan drift" in problems[0]

    def test_point_without_workers_key_is_ignored(self):
        cur = _baseline()
        cur["points"].append({"note": "malformed point"})
        assert compare_mod.compare(_baseline(), cur, 0.15) == []

    def test_cli_exits_zero_on_schema_drift(self, tmp_path):
        base = _baseline()
        del base["points"][0]["speedup"]
        bpath = tmp_path / "base.json"
        cpath = tmp_path / "cur.json"
        bpath.write_text(json.dumps(base))
        cpath.write_text(json.dumps(_baseline()))
        assert compare_mod.main([str(bpath), str(cpath)]) == 0


def _with_buckets(payload, scale=1.0):
    """Attach per-bucket busy seconds to every point (the traced runs')."""
    for pt in payload["points"]:
        pt["buckets"] = {
            "gemm": round(0.30 * scale, 4),
            "qwait": round(0.05 * scale, 4),
            "writeback": 0.02,
        }
    return payload


class TestBucketBlame:
    """A speedup regression names *what got slower* when both sides carry
    blame-bucket seconds from the traced run."""

    def test_regression_message_names_the_grown_bucket(self):
        base = _with_buckets(_baseline())
        cur = _with_buckets(_baseline(), scale=3.0)
        cur["points"][0]["speedup"] = 0.25
        problems = compare_mod.compare(base, cur, 0.15)
        assert len(problems) == 1
        assert "what got slower" in problems[0]
        # gemm grew 0.6s, qwait 0.1s, writeback not at all: order by growth.
        assert problems[0].index("gemm") < problems[0].index("qwait")
        assert "writeback" not in problems[0]

    def test_no_buckets_on_one_side_degrades_silently(self):
        cur = _with_buckets(_baseline())
        cur["points"][0]["speedup"] = 0.25
        problems = compare_mod.compare(_baseline(), cur, 0.15)
        assert len(problems) == 1
        assert "speedup regressed" in problems[0]
        assert "what got slower" not in problems[0]

    def test_shrinking_buckets_add_no_blame(self):
        base = _with_buckets(_baseline(), scale=3.0)
        cur = _with_buckets(_baseline())
        cur["points"][0]["speedup"] = 0.25
        problems = compare_mod.compare(base, cur, 0.15)
        assert "what got slower" not in problems[0]


def _skew():
    return {
        "workers": 3,
        "slow_rank": 0,
        "delay_s": 0.02,
        "ntasks": 327,
        "off_s": 5.0,
        "on_s": 1.0,
        "makespan_ratio": 5.0,
        "blocks_rebalanced": 5,
        "handoffs": 1,
    }


class TestSkewGate:
    def _with_skew(self, **overrides):
        payload = _baseline()
        payload["skew"] = {**_skew(), **overrides}
        return payload

    def test_identical_skew_passes(self):
        assert compare_mod.compare(
            self._with_skew(), self._with_skew(), 0.15
        ) == []

    def test_skew_missing_from_current_fails(self):
        problems = compare_mod.compare(self._with_skew(), _baseline(), 0.15)
        assert problems == ["skew: scenario missing from current run"]

    def test_new_skew_scenario_is_not_gated(self, capsys):
        # A baseline that predates the scenario must not fail the gate.
        assert compare_mod.compare(_baseline(), self._with_skew(), 0.15) == []
        assert "not gated" in capsys.readouterr().out

    def test_no_blocks_rebalanced_fails(self):
        cur = self._with_skew(blocks_rebalanced=0)
        problems = compare_mod.compare(self._with_skew(), cur, 0.15)
        assert any("no blocks were rebalanced" in p for p in problems)

    def test_makespan_ratio_collapse_fails(self):
        cur = self._with_skew(makespan_ratio=1.01)
        problems = compare_mod.compare(self._with_skew(), cur, 0.15)
        assert any("no longer reduces the makespan" in p for p in problems)

    def test_ratio_noise_above_floor_passes(self):
        # The flag-latency jitter makes the ratio drift run to run; any
        # clear improvement passes regardless of the baseline's value.
        cur = self._with_skew(makespan_ratio=1.5)
        assert compare_mod.compare(self._with_skew(), cur, 0.15) == []

    def test_skew_task_drift_fails(self):
        cur = self._with_skew(ntasks=328)
        problems = compare_mod.compare(self._with_skew(), cur, 0.15)
        assert any("plan drift" in p for p in problems)


class TestCompareCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _baseline())
        cur = self._write(tmp_path, "cur.json", _baseline())
        assert compare_mod.main([base, cur]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        payload = _baseline()
        payload["points"][0]["speedup"] = 0.2
        base = self._write(tmp_path, "base.json", _baseline())
        cur = self._write(tmp_path, "cur.json", payload)
        assert compare_mod.main([base, cur]) == 1
        assert "REGRESSION:" in capsys.readouterr().out

    def test_tolerance_flag(self, tmp_path):
        payload = _baseline()
        payload["points"][0]["speedup"] = 0.4  # 20% below baseline
        base = self._write(tmp_path, "base.json", _baseline())
        cur = self._write(tmp_path, "cur.json", payload)
        assert compare_mod.main([base, cur, "--tolerance", "0.15"]) == 1
        assert compare_mod.main([base, cur, "--tolerance", "0.25"]) == 0

    def test_update_ratifies_new_baseline(self, tmp_path):
        payload = _baseline()
        payload["points"][0]["speedup"] = 0.2
        base = self._write(tmp_path, "base.json", _baseline())
        cur = self._write(tmp_path, "cur.json", payload)
        assert compare_mod.main([base, cur, "--update"]) == 0
        assert json.loads(open(base).read()) == payload
        assert compare_mod.main([base, cur]) == 0  # now the baseline


class TestCommittedBaseline:
    def test_baseline_file_is_well_formed(self):
        path = os.path.join(_ROOT, "benchmarks", "BENCH_dist.json")
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["bench"] == "dist_executor"
        assert payload["small"] is True
        workers = [pt["workers"] for pt in payload["points"]]
        assert workers == sorted(set(workers))
        for pt in payload["points"]:
            assert pt["ntasks"] == sum(pt["tasks_per_rank"].values())
            assert pt["speedup"] == pytest.approx(
                pt["serial_s"] / pt["dist_s"], rel=0.02
            )
        # And it gates itself: a no-change comparison passes.
        assert compare_mod.compare(payload, payload, 0.15) == []
