"""Tests for the discrete-event engine with hand-built task graphs."""

import pytest

from repro.runtime import DiscreteEventEngine, Resource, SimTask


def engine(*resources):
    return DiscreteEventEngine([Resource(*r) if isinstance(r, tuple) else Resource(r) for r in resources])


class TestEngine:
    def test_serial_chain(self):
        e = engine("r")
        e.add_tasks(
            [
                SimTask("a", "r", 1.0),
                SimTask("b", "r", 2.0, deps=("a",)),
                SimTask("c", "r", 3.0, deps=("b",)),
            ]
        )
        trace = e.run()
        assert trace.makespan == pytest.approx(6.0)
        assert [ev.task for ev in trace.events] == ["a", "b", "c"]

    def test_parallel_on_capacity(self):
        e = engine(("pool", 2))
        e.add_tasks([SimTask(f"t{i}", "pool", 1.0) for i in range(4)])
        trace = e.run()
        assert trace.makespan == pytest.approx(2.0)

    def test_capacity_one_serializes(self):
        e = engine("r")
        e.add_tasks([SimTask(f"t{i}", "r", 1.0) for i in range(4)])
        assert e.run().makespan == pytest.approx(4.0)

    def test_independent_resources_overlap(self):
        e = engine("x", "y")
        e.add_tasks([SimTask("a", "x", 5.0), SimTask("b", "y", 3.0)])
        assert e.run().makespan == pytest.approx(5.0)

    def test_cross_resource_dependency(self):
        e = engine("link", "comp")
        e.add_tasks(
            [
                SimTask("load", "link", 1.0),
                SimTask("gemm", "comp", 2.0, deps=("load",)),
                SimTask("load2", "link", 1.0),  # overlaps gemm
                SimTask("gemm2", "comp", 2.0, deps=("load2", "gemm")),
            ]
        )
        # load(0-1), gemm(1-3) || load2(1-2), gemm2(3-5).
        assert e.run().makespan == pytest.approx(5.0)

    def test_priority_order_within_resource(self):
        e = engine("r")
        e.add_tasks(
            [
                SimTask("low", "r", 1.0, priority=5),
                SimTask("high", "r", 1.0, priority=0),
            ]
        )
        trace = e.run()
        assert trace.events[0].task == "high"

    def test_diamond_dependencies(self):
        e = engine(("pool", 4))
        e.add_tasks(
            [
                SimTask("src", "pool", 1.0),
                SimTask("l", "pool", 2.0, deps=("src",)),
                SimTask("r", "pool", 3.0, deps=("src",)),
                SimTask("sink", "pool", 1.0, deps=("l", "r")),
            ]
        )
        assert e.run().makespan == pytest.approx(5.0)

    def test_cycle_detection(self):
        e = engine("r")
        e.add_tasks(
            [
                SimTask("a", "r", 1.0, deps=("b",)),
                SimTask("b", "r", 1.0, deps=("a",)),
            ]
        )
        with pytest.raises(ValueError, match="cycle"):
            e.run()

    def test_unknown_dependency(self):
        e = engine("r")
        e.add_task(SimTask("a", "r", 1.0, deps=("ghost",)))
        with pytest.raises(ValueError, match="unknown"):
            e.run()

    def test_duplicate_task_rejected(self):
        e = engine("r")
        e.add_task(SimTask("a", "r", 1.0))
        with pytest.raises(ValueError):
            e.add_task(SimTask("a", "r", 1.0))

    def test_unknown_resource_rejected(self):
        e = engine("r")
        with pytest.raises(ValueError):
            e.add_task(SimTask("a", "nope", 1.0))

    def test_zero_duration_tasks(self):
        e = engine("r")
        e.add_tasks([SimTask("a", "r", 0.0), SimTask("b", "r", 0.0, deps=("a",))])
        assert e.run().makespan == 0.0


class TestTrace:
    def test_utilization_and_busy(self):
        e = engine("x", "y")
        e.add_tasks([SimTask("a", "x", 4.0), SimTask("b", "y", 2.0)])
        trace = e.run()
        assert trace.busy_time("x") == pytest.approx(4.0)
        util = trace.utilization()
        assert util["x"] == pytest.approx(1.0)
        assert util["y"] == pytest.approx(0.5)

    def test_gantt_renders(self):
        e = engine("x")
        e.add_task(SimTask("a", "x", 1.0))
        g = e.run().gantt(width=20)
        assert "x" in g and "#" in g

    def test_empty_trace(self):
        from repro.runtime.tracing import Trace

        t = Trace()
        assert t.makespan == 0.0
        assert t.utilization() == {}
        assert "empty" in t.gantt()


class TestChromeTrace:
    def test_chrome_trace_export(self):
        e = engine("x", "y")
        e.add_tasks([SimTask("a", "x", 1.0), SimTask("b", "y", 2.0, deps=("a",))])
        trace = e.run()
        events = trace.to_chrome_trace()
        assert len(events) == 2
        by_name = {ev["name"]: ev for ev in events}
        assert by_name["a"]["ph"] == "X"
        assert by_name["b"]["ts"] == pytest.approx(1e6)
        assert by_name["b"]["dur"] == pytest.approx(2e6)
        assert by_name["a"]["tid"] != by_name["b"]["tid"]

    def test_chrome_trace_json_serializable(self):
        import json

        e = engine("x")
        e.add_task(SimTask("a", "x", 0.5))
        s = json.dumps({"traceEvents": e.run().to_chrome_trace()})
        assert '"traceEvents"' in s
