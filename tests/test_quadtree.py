"""Tests for the quad-tree representation and Z-order distribution."""

import numpy as np
import pytest

from repro.core import psgemm_plan
from repro.machine import summit
from repro.sparse import SparseShape, random_shape_with_density
from repro.sparse.quadtree import (
    QuadTree,
    distribution_traffic,
    morton_order,
    zorder_owners,
)
from repro.tiling import Tiling, random_tiling


def banded_shape(n=64, band=6):
    t = Tiling.uniform(n * 8, 8)
    mask = np.zeros((n, n))
    for i in range(n):
        lo, hi = max(0, i - band), min(n, i + band + 1)
        mask[i, lo:hi] = 1.0
    return SparseShape(t, t, mask)


class TestQuadTree:
    def test_preserves_all_tiles(self):
        s = banded_shape()
        qt = QuadTree(s, leaf_tiles=8)
        assert qt.nnz_tiles == s.nnz_tiles
        # Every nonzero tile appears in exactly one leaf.
        counted = sum(l.tile_idx.size for l in qt.leaves())
        assert counted == s.nnz_tiles

    def test_leaves_within_bounds(self):
        s = banded_shape()
        qt = QuadTree(s, leaf_tiles=4)
        ii, jj = s.nonzero_tiles()
        for leaf in qt.leaves():
            if leaf.tile_idx.size == 0:
                continue
            li, lj = ii[leaf.tile_idx], jj[leaf.tile_idx]
            assert li.min() >= leaf.row_lo and li.max() < leaf.row_hi
            assert lj.min() >= leaf.col_lo and lj.max() < leaf.col_hi

    def test_empty_quadrants_pruned(self):
        s = banded_shape(band=2)  # very narrow band
        qt = QuadTree(s, leaf_tiles=4)
        assert qt.occupancy_savings() > 0.5

    def test_full_shape_no_savings(self):
        t = Tiling.uniform(64, 8)
        s = SparseShape.full(t, t)
        qt = QuadTree(s, leaf_tiles=2)
        assert qt.occupancy_savings() == pytest.approx(0.0)

    def test_depth_scales_with_grid(self):
        small = QuadTree(banded_shape(n=16), leaf_tiles=2)
        big = QuadTree(banded_shape(n=128), leaf_tiles=2)
        assert big.depth() > small.depth()

    def test_leaf_size_respected(self):
        qt = QuadTree(banded_shape(), leaf_tiles=4)
        for leaf in qt.leaves():
            span = max(leaf.row_hi - leaf.row_lo, leaf.col_hi - leaf.col_lo)
            assert span <= 4 or leaf.tile_idx.size == 0

    def test_empty_shape(self):
        t = Tiling.uniform(32, 8)
        qt = QuadTree(SparseShape.empty(t, t))
        assert qt.nnz_tiles == 0

    def test_invalid_leaf_size(self):
        with pytest.raises(ValueError):
            QuadTree(banded_shape(), leaf_tiles=0)


class TestMorton:
    def test_order_is_permutation(self):
        rng = np.random.default_rng(0)
        ii = rng.integers(0, 100, 500)
        jj = rng.integers(0, 100, 500)
        order = morton_order(ii, jj)
        assert sorted(order.tolist()) == list(range(500))

    def test_locality_of_z_curve(self):
        # Consecutive tiles along the curve are spatially close on average.
        n = 32
        ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        ii, jj = ii.ravel(), jj.ravel()
        order = morton_order(ii, jj)
        d = np.abs(np.diff(ii[order])) + np.abs(np.diff(jj[order]))
        assert d.mean() < 3.0  # row-major order would average ~2 + long jumps

    def test_zorder_owners_balanced(self):
        rng = np.random.default_rng(1)
        ii = rng.integers(0, 64, 1000)
        jj = rng.integers(0, 64, 1000)
        owners = zorder_owners(ii, jj, 8)
        counts = np.bincount(owners, minlength=8)
        assert counts.max() - counts.min() <= 1


class TestDistributionTraffic:
    def _plan(self):
        rows = random_tiling(900, 50, 200, seed=0)
        inner = random_tiling(4500, 50, 200, seed=1)
        a = random_shape_with_density(rows, inner, 0.5, seed=2)
        b = random_shape_with_density(inner, inner, 0.5, seed=3)
        return psgemm_plan(a, b, summit(4), p=1)

    def test_cyclic_owner_matches_plan_volumes(self):
        plan = self._plan()
        grid = plan.grid

        def cyclic(ii, kk):
            return (np.asarray(ii) % grid.p) * grid.q + (np.asarray(kk) % grid.q)

        got = distribution_traffic(plan, cyclic)
        assert got == sum(p.a_recv_bytes for p in plan.procs)

    def test_extreme_owner_maps_bound_traffic(self):
        plan = self._plan()
        # Owner -1 matches no consumer: every needed byte crosses the net.
        nowhere = lambda ii, kk: np.full(np.asarray(ii).shape, -1)  # noqa: E731
        total_a = sum(
            int(
                np.sum(
                    plan.a_shape.rows.sizes[p.a_needed_rows]
                    * plan.a_shape.cols.sizes[p.a_needed_cols]
                    * 8
                )
            )
            for p in plan.procs
        )
        assert distribution_traffic(plan, nowhere) == total_a
        # Any real owner map moves strictly less.
        grid = plan.grid
        cyclic = lambda ii, kk: (np.asarray(ii) % grid.p) * grid.q + (  # noqa: E731
            np.asarray(kk) % grid.q
        )
        assert distribution_traffic(plan, cyclic) < total_a
