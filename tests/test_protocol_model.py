"""Protocol model checker: the real spec proves clean, mutations are caught.

The mutation tests are the subsystem's own soundness check: for each
protocol property there is a deliberately broken model (a dropped
transition, a reversed journal order, a starved queue budget) and the
checker must convict it with the right M4xx rule *and* a reproducing
trace — while the shipped spec passes every scope clean.
"""

from dataclasses import replace

import pytest

from repro.analysis.protocol import (
    FaultSpec,
    Scenario,
    build_protocol_model,
    check_protocol,
    default_scenarios,
)


@pytest.fixture(scope="module")
def model():
    return build_protocol_model()


class TestCleanProtocol:
    def test_default_sweep_is_clean(self, model):
        """The shipped protocol survives every small-scope fault schedule."""
        result = check_protocol(model)
        assert result.ok, result.report.render()
        assert result.scenarios >= 40  # 2 ranks x ckpt x fault kinds + resumes
        assert result.states > 10_000  # genuinely exhaustive, not a smoke run

    def test_two_rank_fault_scope_is_explored(self, model):
        """The acceptance scope: 2 ranks x {fail, stall, abort} explicitly."""
        scenarios = [
            Scenario(2, FaultSpec(0, kind, 1, once=(kind != "abort")), ckpt)
            for kind in ("kill", "stall", "abort")
            for ckpt in (False, True)
        ]
        result = check_protocol(model, scenarios)
        assert result.ok, result.report.render()
        # abort+ckpt spawns resume sub-scenarios beyond the 6 requested
        assert result.scenarios > len(scenarios)
        assert any("resume=" in label for label, _ in result.per_scenario)

    def test_three_ranks_still_clean(self, model):
        # Extra beats drive 3-rank interleavings past half a million
        # states (~10 s); drop them — rank count is what this test is for.
        small = replace(model, max_extra_beats=0)
        result = check_protocol(small, [Scenario(3, FaultSpec(0, "kill", 1))])
        assert result.ok, result.report.render()


class TestDroppedAckMutation:
    """The ISSUE's seeded bug: drop the WorkerReport ack transition."""

    def test_deadlock_reported_with_trace(self, model):
        mutated = model.without("coordinator", "supervising", "recv:done")
        result = check_protocol(mutated, [Scenario(1), Scenario(2)])
        fired = result.report.rules_fired()
        assert "M401" in fired  # the run wedges: report sent, never consumed
        assert "M402" in fired  # the message reaches an ack-less machine
        deadlock = result.report.by_rule("M401")[0]
        # The counterexample is an ordered message trace ending in the wedge.
        assert "trace:" in deadlock.message
        assert "->" in deadlock.message
        assert "send done" in deadlock.message
        assert "recv scatter" in deadlock.message.split("->")[0]

    def test_mutating_a_missing_edge_is_an_error(self, model):
        with pytest.raises(KeyError):
            model.without("coordinator", "supervising", "recv:nonsense")


class TestRecoveryMutations:
    def test_no_reassign_with_persistent_fault_loses_work(self, model):
        bad = replace(model, allow_reassign=False)
        sc = Scenario(1, FaultSpec(0, "kill", 1, once=False))
        result = check_protocol(bad, [sc])
        assert result.report.rules_fired() == {"M405"}
        assert "failed" in result.report.by_rule("M405")[0].message

    def test_dropped_stale_heartbeat_discard_is_unhandled(self, model):
        """A retried rank's late beat must have a discard edge."""
        mutated = model.without(
            "coordinator", "supervising", "recv:heartbeat:stale"
        )
        sc = Scenario(1, FaultSpec(0, "stall", 1, once=True))
        result = check_protocol(mutated, [sc])
        assert "M402" in result.report.rules_fired()
        msg = result.report.by_rule("M402")[0].message
        assert "recv:heartbeat:stale" in msg

    def test_dropped_worker_exit_observation_deadlocks(self, model):
        """Without the patrol, a silently dead rank wedges the run."""
        mutated = model.without(
            "coordinator", "supervising", "obs:worker_exit"
        )
        result = check_protocol(
            mutated, [Scenario(1, FaultSpec(0, "kill", 1, once=True))]
        )
        assert "M401" in result.report.rules_fired()


class TestDisciplineMutations:
    def test_journal_before_store_violates_m406(self, model):
        bad = replace(model, journal_after_store=False)
        result = check_protocol(bad, [Scenario(1, None, checkpoint=True)])
        assert "M406" in result.report.rules_fired()
        assert "store" in result.report.by_rule("M406")[0].message

    def test_correct_journal_order_is_clean_under_faults(self, model):
        result = check_protocol(
            model,
            [Scenario(1, FaultSpec(0, "kill", 2, once=True), checkpoint=True)],
        )
        assert result.ok, result.report.render()

    def test_starved_telemetry_budget_overflows(self, model):
        bad = replace(
            model, queue_budgets={**model.queue_budgets, "telemetry": 256}
        )
        result = check_protocol(bad, [Scenario(2)])
        assert "M404" in result.report.rules_fired()
        assert "telemetry" in result.report.by_rule("M404")[0].message


class TestRebalanceModel:
    """The steal excursion: M407/M408 proven clean, mutations convicted."""

    def test_steal_scenarios_are_swept(self):
        steals = [sc for sc in default_scenarios() if sc.steal]
        assert len(steals) >= 10
        kinds = {sc.fault.kind for sc in steals if sc.fault is not None}
        assert kinds == {"kill", "stall", "raise", "abort"}

    def test_steal_label(self):
        sc = Scenario(2, FaultSpec(0, "kill", 1), steal=True)
        assert sc.label() == "ranks=2 fault=kill@r0u1 steal"

    def test_steal_with_faults_is_clean(self, model):
        """M407/M408 over every steal x kill/stall/abort interleaving."""
        scenarios = [
            Scenario(2, FaultSpec(0, kind, 1, once=(kind != "abort")), ckpt,
                     steal=True)
            for kind in ("kill", "stall", "abort")
            for ckpt in (False, True)
        ]
        result = check_protocol(model, scenarios)
        assert result.ok, result.report.render()
        # ckpt aborts leave journals (including the steal's sidecar
        # variant): the resume sub-scenarios must run and pass too
        assert any("resume=" in label for label, _ in result.per_scenario)

    def test_three_rank_steal_is_clean(self, model):
        small = replace(model, max_extra_beats=0)
        result = check_protocol(
            small, [Scenario(3, FaultSpec(0, "kill", 1), steal=True)]
        )
        assert result.ok, result.report.render()

    def test_worker_ignoring_relinquish_is_convicted(self, model):
        """A running worker with no relinquish yield point strands the
        request — M408's failure mode, convicted as unhandled."""
        mutated = model.without("worker", "running", "recv:relinquish")
        result = check_protocol(mutated, [Scenario(1, None, steal=True)])
        assert "M402" in result.report.rules_fired()
        assert "recv:relinquish" in result.report.by_rule("M402")[0].message

    def test_finished_worker_must_still_ack_relinquish(self, model):
        """The dispatch loop's stale-ack edge is load-bearing: drop it
        and a relinquish racing the rank's own report goes unhandled."""
        mutated = model.without("worker", "idle_done", "recv:relinquish")
        result = check_protocol(mutated, [Scenario(1, None, steal=True)])
        assert "M402" in result.report.rules_fired()

    def test_dropped_dispatch_edge_loses_stolen_blocks(self, model):
        """Without recv:relinquished the yielded blocks have no owner:
        the ack wedges the gather queue and the run deadlocks."""
        mutated = model.without(
            "coordinator", "supervising", "recv:relinquished"
        )
        result = check_protocol(mutated, [Scenario(2, None, steal=True)])
        fired = result.report.rules_fired()
        assert "M402" in fired
        assert "M401" in fired

    def test_dropped_handoff_consumption_wedges(self, model):
        mutated = model.without("worker", "idle_done", "recv:handoff")
        result = check_protocol(mutated, [Scenario(2, None, steal=True)])
        fired = result.report.rules_fired()
        assert "M401" in fired or "M402" in fired

    def test_dropped_handoff_absorb_is_convicted(self, model):
        mutated = model.without(
            "coordinator", "supervising", "recv:handoff_done"
        )
        result = check_protocol(mutated, [Scenario(2, None, steal=True)])
        assert "M402" in result.report.rules_fired()

    def test_dropped_block_done_fold_is_convicted(self, model):
        mutated = model.without(
            "coordinator", "supervising", "recv:block_done"
        )
        result = check_protocol(mutated, [Scenario(1)])
        assert "M402" in result.report.rules_fired()


class TestScenarioVocabulary:
    def test_labels_are_descriptive(self):
        sc = Scenario(2, FaultSpec(0, "stall", 1, once=False), checkpoint=True)
        assert sc.label() == "ranks=2 fault=stall@r0u1* ckpt"
        assert Scenario(1).label() == "ranks=1 fault=none"

    def test_default_sweep_covers_all_fault_kinds(self):
        kinds = {
            sc.fault.kind for sc in default_scenarios() if sc.fault is not None
        }
        assert kinds == {"kill", "stall", "abort", "raise"}

    def test_fault_arming_mirrors_fault_injection(self):
        once = FaultSpec(0, "kill", 1, once=True)
        persistent = FaultSpec(0, "kill", 1, once=False)
        assert once.armed(0) and not once.armed(1)
        assert persistent.armed(0) and persistent.armed(1)
