"""Setup shim for environments whose setuptools predates PEP 660 editable
installs (no ``wheel`` package available offline).  All metadata lives in
``pyproject.toml``; ``pip install -e . --no-build-isolation`` or
``python setup.py develop`` both work.
"""

from setuptools import setup

setup()
