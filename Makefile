# Convenience targets for the reproduction.

.PHONY: install test test-dist trace-smoke explain-smoke resume-smoke serve-smoke bench-smoke analyze model-check docs-rules bench bench-paper examples export selftest clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test: analyze model-check resume-smoke explain-smoke serve-smoke
	pytest tests/

# Static analysis gate: the AST concurrency lint over the source tree, then
# the plan verifier + task-graph checks on an inspector-built plan.  Both
# exit nonzero exactly when findings exist, so this fails the build early.
# Findings are mirrored as SARIF under /tmp/repro-sarif for code-scanning
# ingestion and failure artifacts.
analyze:
	PYTHONPATH=src python -m repro lint src/repro --sarif /tmp/repro-sarif/lint.sarif
	PYTHONPATH=src python -m repro analyze --sarif /tmp/repro-sarif/analysis.sarif

# Protocol model check: bounded exhaustive exploration of the
# coordinator/worker protocol (deadlock freedom, bounded queues,
# recovery/resume safety; M4xx) plus the AST conformance pass pinning the
# model to the repro.dist call sites.
model-check:
	PYTHONPATH=src python -m repro analyze --model-check --sarif /tmp/repro-sarif/model-check.sarif

# Regenerate the committed rule catalog from the registry; CI fails when
# docs/rules.md drifts (repro rules --check docs/rules.md).
docs-rules:
	PYTHONPATH=src python -m repro rules -o docs/rules.md

# The full multi-process executor suite (fault injection, 4-worker grids,
# checkpoint/resume, CLI round-trips); budgeted so a hung worker can never
# wedge CI.
test-dist:
	PYTHONPATH=src timeout 120 pytest tests/test_dist_executor.py -m "" -q
	PYTHONPATH=src timeout 300 pytest tests/test_checkpoint.py -m "" -q
	PYTHONPATH=src timeout 300 pytest tests/test_rebalance.py -m "" -q
	PYTHONPATH=src timeout 420 pytest tests/test_serve.py -m "" -q
	PYTHONPATH=src timeout 120 python -m repro selftest --procs 3 \
		--inject-fault 0:1:slow --rebalance

# Benchmark regression gate: run the small dist-executor sweep, write
# BENCH_dist.json, and compare against the committed baseline (exact task
# counts, speedups within 15%).  After a deliberate performance change,
# ratify with: python benchmarks/compare.py benchmarks/BENCH_dist.json \
#   /tmp/BENCH_dist.json --update
bench-smoke:
	PYTHONPATH=src timeout 300 python benchmarks/bench_dist_executor.py --small --json /tmp/BENCH_dist.json
	PYTHONPATH=src python benchmarks/compare.py benchmarks/BENCH_dist.json /tmp/BENCH_dist.json

# Checkpoint/resume smoke test: abort a 2-worker run mid-flight (exit 3 =
# resumable), resume it from the journal, and require that the resumed run
# both restored journaled blocks (--resume) and bit-matched the serial
# oracle.  Finishes with the persistent store's cumulative stats.
resume-smoke:
	rm -rf /tmp/repro-ckpt
	PYTHONPATH=src timeout 120 python -m repro selftest --procs 2 --checkpoint /tmp/repro-ckpt --inject-fault 1:6:abort; \
	  test $$? -eq 3 || { echo "expected resumable exit code 3"; exit 1; }
	PYTHONPATH=src timeout 120 python -m repro selftest --procs 2 --checkpoint /tmp/repro-ckpt --resume
	PYTHONPATH=src python -m repro store stats /tmp/repro-ckpt/store

# Observability smoke test: trace a tiny 2-worker run end to end, then
# prove the artifact is a loadable Chrome trace (non-empty "X" spans plus
# the "M" metadata events that label rank lanes in Perfetto).
trace-smoke:
	PYTHONPATH=src timeout 120 python -m repro trace --procs 2 --m 150 --k 450 -o /tmp/repro-trace.json
	PYTHONPATH=src python -c "import json; evs = json.load(open('/tmp/repro-trace.json'))['traceEvents']; xs = [e for e in evs if e['ph'] == 'X']; ms = [e for e in evs if e['ph'] == 'M']; assert xs and all(e['dur'] >= 0 for e in xs), 'bad trace'; assert all(e['ph'] in 'XM' for e in evs), 'unknown phase'; assert any(e['name'] == 'process_name' for e in ms), 'missing rank labels'; print(f'trace-smoke OK: {len(xs)} spans, {len(ms)} metadata events')"

# Performance-attribution smoke test: a traced 3-worker selftest, then
# `repro explain` over the artifact — the critical path must be non-empty
# and cover most of the makespan, with an HTML report for CI artifacts.
explain-smoke:
	PYTHONPATH=src timeout 300 python -m repro selftest --procs 3 --trace /tmp/repro-run.json
	PYTHONPATH=src timeout 120 python -m repro explain --trace /tmp/repro-run.json --json /tmp/repro-explain.json --html /tmp/repro-explain.html
	PYTHONPATH=src python -c "import json; a = json.load(open('/tmp/repro-explain.json'))['attribution']; assert a['critical_path'], 'empty critical path'; assert a['coverage'] >= 0.5, f\"low path coverage {a['coverage']:.2f}\"; print(f\"explain-smoke OK: {len(a['critical_path'])} segments, {a['coverage']:.0%} coverage\")"

# Serving-layer smoke test: 2 sequential then 2 concurrent jobs through
# one warm ContractionService pool.  Gates: every job succeeds, the pool
# spawned its 2 processes exactly once (warm reuse, no respawns), and the
# repeat jobs hit the warm B-tile cache instead of regenerating.
serve-smoke:
	printf '{"procs": 2, "jobs": [{"seed": 0, "wait": true}, {"seed": 0, "wait": true}, {"seed": 0, "priority": 1}, {"seed": 0}]}' > /tmp/repro-serve-spec.json
	PYTHONPATH=src timeout 300 python -m repro serve /tmp/repro-serve-spec.json --artifacts /tmp/repro-serve-art | tee /tmp/repro-serve.out
	PYTHONPATH=src python -c "import re; txt = open('/tmp/repro-serve.out').read(); hits = re.search(r'warm B-tile hits: (\d+)', txt); spawns = re.search(r'spawned (\d+) process', txt); assert '0 failure(s)' in txt, 'serve job failed'; assert spawns and int(spawns.group(1)) == 2, 'pool respawned workers'; assert hits and int(hits.group(1)) > 0, 'no warm B reuse'; print(f'serve-smoke OK: 4 jobs, 2 warm processes, {hits.group(1)} warm tile hits')"

bench:
	pytest benchmarks/ --benchmark-only

bench-paper:
	pytest benchmarks/ --benchmark-only --paper-scale

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

export:
	python -m repro export -o results.json

selftest:
	python -m repro selftest --deep

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache results.json
	find . -name __pycache__ -type d -exec rm -rf {} +
