# Convenience targets for the reproduction.

.PHONY: install test bench bench-paper examples export selftest clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-paper:
	pytest benchmarks/ --benchmark-only --paper-scale

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

export:
	python -m repro export -o results.json

selftest:
	python -m repro selftest --deep

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache results.json
	find . -name __pycache__ -type d -exec rm -rf {} +
