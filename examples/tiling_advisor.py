#!/usr/bin/env python
"""The tiling advisor: the paper's future work, runnable.

Section 7: "Future work will aim at modeling the interactions between the
tiling and the performance."  This example sweeps clustering granularities
for the C65H132 ABCD term between (and beyond) the paper's v1/v2/v3,
prices each with the performance model, and recommends the granularity
minimizing time to completion on a chosen partition.

Run:  python examples/tiling_advisor.py [--nodes 4]
"""

import argparse

from repro.chem import TilingVariant, build_abcd_problem
from repro.core.advisor import recommend_tiling
from repro.experiments.report import fmt_table
from repro.machine import summit


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nodes", type=int, default=4)
    args = ap.parse_args()

    targets = [(10, 80), (8, 65), (7, 48), (6, 32), (5, 22), (4, 16)]

    def build(cand):
        occ, ao = cand
        prob = build_abcd_problem(
            variant=TilingVariant(f"{occ}x{ao}", occ, ao), seed=0
        )
        return prob.t_shape, prob.v_shape

    machine = summit(args.nodes)
    rec = recommend_tiling(
        build, targets, machine, labels=[f"{o}x{a}" for o, a in targets]
    )
    print(f"C65H132 ABCD tiling sweep on {args.nodes} Summit nodes "
          f"({machine.total_gpus} GPUs)\n")
    print(fmt_table(["occ x ao clusters", "Tflop", "#tasks", "time (s)", ""],
                    rec.table_rows()))
    print(f"\nrecommended granularity: {rec.best.label} "
          f"({rec.best.time:.2f} s simulated)")
    print("(the paper's v1 = 8x65, v2 ~ 7x48, v3 ~ 6x32; its observation "
          "that the finest tiling never wins is the advisor's starting point)")


if __name__ == "__main__":
    main()
