#!/usr/bin/env python
"""The paper's application benchmark: the CCSD ABCD term for C65H132.

Rebuilds the electronic-structure problem from first principles — alkane
geometry, def2-SVP AO counts (U = 1570), localized bond orbitals
(O = 196), k-means clustered tilings v1/v2/v3, distance-decay screening —
prints the Table 1 traits next to the paper's, and strong-scales the
contraction from 3 to 108 simulated V100s (Figs. 7/8/9).

Run:  python examples/ccsd_abcd_c65h132.py [--variant v1|v2|v3] [--quick]
"""

import argparse

from repro.experiments.c65h132 import (
    GPU_COUNTS,
    scaling_series,
    table1_text,
)
from repro.experiments.report import fmt_table


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--variant", default=None, choices=["v1", "v2", "v3"],
                    help="scale only this tiling variant")
    ap.add_argument("--quick", action="store_true",
                    help="fewer GPU counts (3, 12, 108)")
    args = ap.parse_args()

    print("Table 1 — C65H132 problem traits (this reproduction vs paper)")
    print(table1_text())

    counts = (3, 12, 108) if args.quick else GPU_COUNTS
    variants = [args.variant] if args.variant else ["v1", "v2", "v3"]
    for v in variants:
        series = scaling_series(v, gpu_counts=counts)
        rows = [
            [p.gpus, f"{p.time:8.1f}", f"{p.ideal_time:8.1f}",
             f"{p.perf / 1e12:7.1f}", f"{p.perf_per_gpu / 1e12:6.2f}",
             f"{p.efficiency:6.1%}"]
            for p in series
        ]
        print(f"\nStrong scaling — tiling {v} (Figs. 7/8/9)")
        print(fmt_table(
            ["#GPUs", "time (s)", "ideal (s)", "Tflop/s", "Tf/GPU", "efficiency"],
            rows,
        ))


if __name__ == "__main__":
    main()
