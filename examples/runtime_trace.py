#!/usr/bin/env python
"""Inside the runtime: the two-DAG task graph and its execution trace.

Builds a small contraction, expands its plan into the PaRSEC-style task
graph — dataflow edges (GEMMs wait for their tiles) plus control edges
(blocking block loads, two-deep chunk prefetch) — runs it through the
discrete-event engine at per-GEMM granularity, and prints the resulting
trace: an ASCII Gantt chart, per-resource utilization, and the edge-set
sizes of the two superimposed DAGs (Section 4 of the paper).

Run:  python examples/runtime_trace.py
"""

from repro.core import psgemm_plan
from repro.machine import summit
from repro.runtime.dag import build_task_graph
from repro.sparse import random_shape_with_density
from repro.tiling import random_tiling
from repro.util import fmt_time


def main() -> None:
    rows = random_tiling(1_000, 100, 300, seed=1)
    inner = random_tiling(6_000, 100, 300, seed=2)
    a = random_shape_with_density(rows, inner, 0.5, seed=3)
    b = random_shape_with_density(inner, inner, 0.5, seed=4)
    machine = summit(1)

    plan = psgemm_plan(a, b, machine, p=1)
    print(plan.summary())

    graph = build_task_graph(plan, machine, granularity="task")
    print(f"\nTask graph: {graph.ntasks} tasks, "
          f"{graph.dataflow_edges} dataflow edges, "
          f"{graph.control_edges} control edges")

    trace = graph.engine.run()
    print(f"\nSimulated makespan: {fmt_time(trace.makespan)}")
    print("\nGantt (one row per resource):")
    print(trace.gantt(width=72))
    print("\nUtilization:")
    for res, u in trace.utilization().items():
        print(f"  {res:>16s}: {u:6.1%}")


if __name__ == "__main__":
    main()
