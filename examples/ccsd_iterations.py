#!/usr/bin/env python
"""CCSD-style amplitude iterations over the distributed contraction.

The ABCD term exists to be evaluated "in typically 10-20 iterations" while
the amplitudes T are refined until the residual R vanishes.  This example
runs that loop on a representative linear amplitude equation
``T = T0 + T @ Vs`` with the contraction executed through the full
distributed plan each iteration, and shows the dynamic block sparsity
(tiles pruned as they fall below threshold).

Run:  python examples/ccsd_iterations.py
"""

from repro.chem.ccsd import scale_coupling, solve_amplitudes
from repro.machine import summit
from repro.sparse import random_block_sparse
from repro.tiling import random_tiling


def main() -> None:
    rows = random_tiling(300, 25, 80, seed=1)    # fused occupied pairs
    inner = random_tiling(1200, 25, 80, seed=2)  # fused AO pairs
    t0 = random_block_sparse(rows, inner, density=0.35, seed=3)
    vs = scale_coupling(random_block_sparse(inner, inner, density=0.35, seed=4))

    machine = summit(2)
    print(f"T0: {t0}\nVs: {vs}\n")
    trace = solve_amplitudes(
        t0, vs, max_iter=25, tol=1e-9, prune_tol=1e-10, machine=machine, p=2
    )

    print("iter   ||R||_F        nnz(T)")
    for i, (r, nnz) in enumerate(zip(trace.residual_norms, trace.nnz_history), 1):
        print(f"{i:>4}   {r:12.3e}  {nnz:>8}")
    print(f"\nconverged: {trace.converged} in {trace.iterations} iterations "
          f"(each one a full distributed block-sparse contraction)")


if __name__ == "__main__":
    main()
