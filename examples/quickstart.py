#!/usr/bin/env python
"""Quickstart: plan, execute and simulate a block-sparse GEMM.

Builds a small irregularly tiled block-sparse ``C <- A @ B`` (the paper's
shape: A short-and-wide, B square), runs it through the *full* distributed
pipeline — inspector, column assignment, block partition, chunking, and
the in-process numeric executor — then verifies against a dense reference
and prices the same plan on a 2-node Summit partition.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import communication_volumes, psgemm_numeric, psgemm_simulate
from repro.machine import summit
from repro.sparse import random_block_sparse
from repro.tiling import random_tiling
from repro.util import fmt_bytes, fmt_rate, fmt_time


def main() -> None:
    # The paper's shape in miniature: M << K = N, irregular tiles, 40 % fill.
    rows = random_tiling(800, 50, 200, seed=1)       # M = 800
    inner = random_tiling(8_000, 50, 200, seed=2)    # K = N = 8000
    a = random_block_sparse(rows, inner, density=0.4, seed=3)
    b = random_block_sparse(inner, inner, density=0.4, seed=4)
    print(f"A: {a}\nB: {b}")

    machine = summit(2)

    # 1) Numeric path: the distributed plan executed with real tiles.
    c, stats = psgemm_numeric(a, b, machine, p=2, gpus_per_proc=3)
    dense = a.to_dense() @ b.to_dense()
    ok = np.allclose(c.to_dense(), dense)
    print(f"\nNumeric execution: {stats.ntasks} GEMM tasks, "
          f"h2d {fmt_bytes(stats.h2d_bytes)}, "
          f"GPU peak {fmt_bytes(stats.gpu_peak_bytes)}, "
          f"matches dense reference: {ok}")
    assert ok

    # 2) Simulated path: the same planner priced on Summit hardware models.
    plan, report = psgemm_simulate(a.sparse_shape(), b.sparse_shape(), machine, p=2)
    plan.validate()
    print(f"\n{plan.summary()}")
    print(f"Simulated on 2 Summit nodes (12 V100s): "
          f"{fmt_time(report.makespan)} at {fmt_rate(report.perf)}")
    print(f"Communication: {communication_volumes(plan).summary()}")


if __name__ == "__main__":
    main()
