#!/usr/bin/env python
"""The synthetic evaluation of Section 5.1 (paper Figs. 2, 3, 4).

Sweeps N = K and density on 16 simulated Summit nodes with M = 48k and
random tile sizes in [512, 2048], pricing both the paper's algorithm
(with the grid-rows parameter autotuned) and the libDBCSR baseline —
including the baseline's out-of-memory failures on large dense points.

Run:  python examples/synthetic_sweep.py [--paper-scale] [--no-dbcsr]
"""

import argparse

from repro.experiments.synthetic import (
    fig2_sweep,
    fig2_table,
    fig3_table,
    fig4_table,
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--paper-scale", action="store_true",
                    help="run the full Fig. 2 x-axis (slower)")
    ap.add_argument("--no-dbcsr", action="store_true",
                    help="skip the libDBCSR baseline")
    args = ap.parse_args()

    points = fig2_sweep(
        scale="paper" if args.paper_scale else "quick",
        with_dbcsr=not args.no_dbcsr,
    )

    print("Fig. 2 — performance (16 nodes / 96 GPUs; aggregate peak 672 Tflop/s)")
    print(fig2_table(points))
    print("\nFig. 3 — theoretical arithmetic intensity")
    print(fig3_table(points))
    print("\nFig. 4 — time to completion")
    print(fig4_table(points))


if __name__ == "__main__":
    main()
