#!/usr/bin/env python
"""Order-4 block-sparse tensor contraction through the public tensor API.

The paper's Eq. (1): ``R[i,j,a,b] = sum_cd T[i,j,c,d] * V[c,d,a,b]``.
This example builds small block-sparse T and V tensors, contracts them
with the einsum-like spec ``"ijcd,cdab->ijab"`` (which matricizes both
operands and runs the block GEMM), and verifies against ``numpy.einsum``.

Run:  python examples/tensor_contraction.py
"""

import numpy as np

from repro.tensor import BlockSparseTensor, contract, plan_contraction
from repro.tiling import Tiling


def main() -> None:
    rng = np.random.default_rng(0)
    o = Tiling.from_sizes([3, 4, 2])   # occupied range, 9 orbitals
    u = Tiling.from_sizes([5, 3, 4])   # AO range, 12 functions

    # Dense masters with artificial block sparsity.
    t_dense = rng.standard_normal((9, 9, 12, 12))
    v_dense = rng.standard_normal((12, 12, 12, 12))
    t_dense[np.abs(t_dense) < 0.8] *= 0.0  # thin out
    v_dense[np.abs(v_dense) < 0.8] *= 0.0

    T = BlockSparseTensor.from_dense(t_dense, "ijcd", [o, o, u, u])
    V = BlockSparseTensor.from_dense(v_dense, "cdab", [u, u, u, u])
    print(f"T: {T}\nV: {V}")

    plan = plan_contraction("ijcd,cdab->ijab", T, V)
    am, bm = plan.matricized_a(), plan.matricized_b()
    print(f"\nMatricized: A is {am.shape[0]}x{am.shape[1]} "
          f"({am.tile_grid[0]}x{am.tile_grid[1]} tiles), "
          f"B is {bm.shape[0]}x{bm.shape[1]} — the paper's C <- C + A @ B")

    R = contract("ijcd,cdab->ijab", T, V)
    ref = np.einsum("ijcd,cdab->ijab", t_dense, v_dense)
    ok = np.allclose(R.to_dense(), ref)
    print(f"\nR: {R}\nmatches numpy.einsum: {ok}")
    assert ok


if __name__ == "__main__":
    main()
