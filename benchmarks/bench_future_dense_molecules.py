"""Future-work experiment: denser problems reach higher performance.

The paper's final paragraph: "different molecules have the potential to
provide much denser and compute-intensive input matrices, thereby
(likely) enabling our algorithm to reach higher peak performance."

Two studies test that prediction:

1. **geometry sweep** (reported, not asserted on performance): the same
   pipeline on a quasi-1D alkane, a 2-D raft and a 3-D water droplet of
   matched basis size shows tensor density rising 1D < 2D < 3D — but at
   this (test-sized) scale occupied-orbital counts differ across
   chemistries and confound attained performance;
2. **density sweep at fixed system** (asserted): the same C27 chain with
   progressively longer screening ranges — physically, a more diffuse
   basis — isolates density exactly.  Per-GPU performance must rise with
   density, the chemistry-pipeline analogue of Fig. 2's density ordering.
"""

from dataclasses import replace

from conftest import run_once

from repro.chem import ScreeningModel, TilingVariant, alkane, build_abcd_problem
from repro.chem.clusters3d import alkane_sheet, water_cluster
from repro.core import psgemm_simulate
from repro.experiments.report import fmt_table
from repro.machine.spec import summit
from repro.sparse.shape_algebra import arithmetic_intensity


def test_geometry_density_ordering(benchmark):
    systems = [
        ("chain C12H26 (1D)", alkane(12)),
        ("raft 2xC6 (2D)", alkane_sheet(6, 2)),
        ("droplet (H2O)12 (3D)", water_cluster(12, seed=0)),
    ]

    def run():
        rows = []
        for label, mol in systems:
            prob = build_abcd_problem(mol, TilingVariant(label, 4, 8), seed=0)
            rows.append((label, prob.U, prob.v_shape.element_density,
                         prob.t_shape.element_density))
        return rows

    rows = run_once(benchmark, run)
    print("\nFuture work (i) — geometry vs tensor density")
    print(fmt_table(
        ["system", "U", "V density", "T density"],
        [[l, u, f"{dv:7.1%}", f"{dt:7.1%}"] for l, u, dv, dt in rows],
    ))
    # Density rises with dimensionality, as the paper's argument implies.
    assert rows[0][2] < rows[1][2] < rows[2][2]


def test_denser_problem_reaches_higher_per_gpu_performance(benchmark):
    machine = summit(2)
    mol = alkane(27)
    base = ScreeningModel()
    scales = (1.0, 1.6, 2.4)

    def run():
        rows = []
        for s in scales:
            screening = replace(
                base, v_cutoff=base.v_cutoff * s, t_cutoff=base.t_cutoff * s
            )
            prob = build_abcd_problem(
                mol, TilingVariant(f"x{s}", 4, 16), screening=screening, seed=0
            )
            plan, rep = psgemm_simulate(prob.t_shape, prob.v_shape, machine, p=1)
            rows.append(
                (
                    s,
                    prob.v_shape.element_density,
                    arithmetic_intensity(prob.t_shape, prob.v_shape),
                    rep.perf / machine.total_gpus,
                    rep.makespan,
                )
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nFuture work (ii) — density sweep at fixed system (C27, 2 nodes)")
    print(fmt_table(
        ["range scale", "V density", "AI (f/B)", "Tf/GPU", "time (s)"],
        [
            [f"{s:4.1f}", f"{d:7.1%}", f"{ai:8.1f}", f"{p / 1e12:6.2f}", f"{t:8.2f}"]
            for s, d, ai, p, t in rows
        ],
    ))

    dens = [r[1] for r in rows]
    intensity = [r[2] for r in rows]
    perf = [r[3] for r in rows]
    assert dens[0] < dens[1] < dens[2]
    assert intensity[0] < intensity[2]
    # The paper's prediction: denser input -> higher attained rate.
    assert perf[2] > perf[0]
