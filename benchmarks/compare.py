"""Benchmark regression gate: compare a BENCH_dist.json against a baseline.

``python benchmarks/compare.py BASELINE CURRENT [--tolerance 0.15]``
exits nonzero when the current run regresses:

* **task counts** (``ntasks``, ``tasks_per_rank``) must match the
  baseline *exactly* — the plan is deterministic per seed, so any drift
  means the inspector or the column assignment changed behaviour;
* **speedup** (serial wall time / distributed wall time, measured in the
  same process on the same host) must stay within ``tolerance`` of the
  baseline.  The ratio is machine-normalized to first order, which is
  what lets a baseline recorded on one host gate runs on another; raw
  ``serial_s``/``dist_s`` seconds are carried for the human reading the
  file but are not gated.

Getting faster never fails the gate (improvements are reported, not
punished).  ``--update`` replaces the baseline with the current result
and exits 0 — the "ratify the new performance" escape hatch after a
deliberate change.

Schema drift degrades gracefully: a scenario key missing from either
side (an old baseline predating a new field, or vice versa) prints a
warning and skips that one check instead of crashing — the gate exits
nonzero only on an actual regression.  When both sides carry per-bucket
busy seconds (``buckets``, from the traced run's blame attribution), a
speedup regression also reports *what got slower* (gemm, qwait, ...).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _have(scope: str, base: dict, cur: dict, *keys: str) -> bool:
    """True when every key is present on both sides; warns and skips not.

    A missing key means the two files were produced by different harness
    versions — that is schema drift to warn about, not a perf regression
    to fail on (``--update`` re-records the baseline and restores the
    check).
    """
    ok = True
    for side_name, side in (("baseline", base), ("current", cur)):
        for k in keys:
            if k not in side:
                print(
                    f"warning: {scope}: {side_name} lacks {k!r}; check "
                    f"skipped (re-record the baseline with --update to "
                    f"restore this gate)"
                )
                ok = False
    return ok


def _bucket_blame(base: dict, cur: dict) -> str:
    """'what got slower' from two points' per-bucket busy seconds, or ''."""
    bb, cb = base.get("buckets"), cur.get("buckets")
    if not bb or not cb:
        return ""
    grew = sorted(
        ((b, cb.get(b, 0.0) - bb.get(b, 0.0)) for b in set(bb) | set(cb)),
        key=lambda kv: -kv[1],
    )
    grew = [(b, d) for b, d in grew if d > 0]
    if not grew:
        return ""
    return "; what got slower: " + ", ".join(
        f"{b} +{d:.3f}s" for b, d in grew[:4]
    )


def compare(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Return the list of regression messages (empty = gate passes)."""
    problems: list[str] = []
    base_points = {
        pt["workers"]: pt for pt in baseline.get("points", []) if "workers" in pt
    }
    cur_points = {
        pt["workers"]: pt for pt in current.get("points", []) if "workers" in pt
    }

    if baseline.get("small") != current.get("small"):
        problems.append(
            f"problem size differs: baseline small={baseline.get('small')}, "
            f"current small={current.get('small')} (comparing apples to oranges)"
        )
        return problems

    for workers in sorted(base_points):
        if workers not in cur_points:
            problems.append(f"workers={workers}: point missing from current run")
            continue
        base, cur = base_points[workers], cur_points[workers]
        scope = f"workers={workers}"

        if _have(scope, base, cur, "ntasks") and cur["ntasks"] != base["ntasks"]:
            problems.append(
                f"workers={workers}: task count changed "
                f"{base['ntasks']} -> {cur['ntasks']} (plan drift)"
            )
        if (
            _have(scope, base, cur, "tasks_per_rank")
            and cur["tasks_per_rank"] != base["tasks_per_rank"]
        ):
            problems.append(
                f"workers={workers}: per-rank task split changed "
                f"{base['tasks_per_rank']} -> {cur['tasks_per_rank']} "
                f"(column assignment drift)"
            )

        if _have(scope, base, cur, "speedup"):
            floor = base["speedup"] * (1.0 - tolerance)
            if cur["speedup"] < floor:
                problems.append(
                    f"workers={workers}: speedup regressed "
                    f"{base['speedup']:.2f}x -> {cur['speedup']:.2f}x "
                    f"(> {tolerance:.0%} below baseline; dist time "
                    f"{base.get('dist_s', float('nan')):.2f}s -> "
                    f"{cur.get('dist_s', float('nan')):.2f}s)"
                    + _bucket_blame(base, cur)
                )
            elif cur["speedup"] > base["speedup"] * (1.0 + tolerance):
                print(
                    f"workers={workers}: speedup improved "
                    f"{base['speedup']:.2f}x -> {cur['speedup']:.2f}x "
                    f"(consider --update to ratify)"
                )

    for workers in sorted(set(cur_points) - set(base_points)):
        print(f"workers={workers}: new point (not in baseline, not gated)")

    problems.extend(_compare_skew(baseline.get("skew"), current.get("skew")))
    problems.extend(_compare_serve(baseline.get("serve"), current.get("serve")))
    return problems


def _compare_skew(base: dict | None, cur: dict | None) -> list[str]:
    """Gate the skewed-plan (straggler rebalancing) scenario.

    The makespan ratio (rebalance off / on) is sleep-dominated and so
    host-stable to first order, but the *moment* the straggler flag fires
    still jitters — the gate therefore checks for a clear improvement
    (>= 1.05x) and that blocks actually moved, rather than tracking the
    baseline ratio within the tight speedup tolerance.
    """
    if base is None:
        if cur is not None:
            print("skew: new scenario (not in baseline, not gated)")
        return []
    if cur is None:
        return ["skew: scenario missing from current run"]
    problems = []
    if _have("skew", base, cur, "ntasks") and cur["ntasks"] != base["ntasks"]:
        problems.append(
            f"skew: task count changed {base['ntasks']} -> {cur['ntasks']} "
            f"(plan drift)"
        )
    if _have("skew", base, cur, "blocks_rebalanced") and cur["blocks_rebalanced"] <= 0:
        problems.append(
            "skew: no blocks were rebalanced (the straggler was never "
            "acted on)"
        )
    if _have("skew", base, cur, "makespan_ratio") and cur["makespan_ratio"] < 1.05:
        problems.append(
            f"skew: rebalancing no longer reduces the makespan "
            f"(off/on ratio {cur['makespan_ratio']:.2f}x, want >= 1.05x; "
            f"baseline {base['makespan_ratio']:.2f}x)"
        )
    return problems


def _compare_serve(base: dict | None, cur: dict | None) -> list[str]:
    """Gate the serving-layer (warm-vs-cold) scenario.

    Like the skew gate, the ratio is sleep-dominated (B generation pays
    a fixed per-tile delay that the warm job skips entirely), so the
    check is a fixed floor — the warm repeat job must run at least 1.5x
    faster than the cold first job — plus the mechanism checks: the warm
    job actually hit the cache, and the pool never respawned a worker.
    """
    if base is None:
        if cur is not None:
            print("serve: new scenario (not in baseline, not gated)")
        return []
    if cur is None:
        return ["serve: scenario missing from current run"]
    problems = []
    if _have("serve", base, cur, "ntasks") and cur["ntasks"] != base["ntasks"]:
        problems.append(
            f"serve: task count changed {base['ntasks']} -> {cur['ntasks']} "
            f"(plan drift)"
        )
    if _have("serve", base, cur, "warm_b_hits") and cur["warm_b_hits"] <= 0:
        problems.append(
            "serve: the warm job hit the B-tile cache 0 times (cross-job "
            "reuse is broken)"
        )
    if (
        _have("serve", base, cur, "spawns", "workers")
        and cur["spawns"] != cur["workers"]
    ):
        problems.append(
            f"serve: pool spawned {cur['spawns']} process(es) for "
            f"{cur['workers']} rank(s) across two jobs (workers were not "
            f"reused)"
        )
    if _have("serve", base, cur, "warm_speedup") and cur["warm_speedup"] < 1.5:
        problems.append(
            f"serve: warm job only {cur['warm_speedup']:.2f}x faster than "
            f"cold (want >= 1.5x; baseline {base['warm_speedup']:.2f}x) — "
            f"the warm pool no longer amortizes B generation"
        )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed BENCH_dist.json to gate against")
    ap.add_argument("current", help="freshly produced BENCH_dist.json")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional speedup drop (default 0.15)")
    ap.add_argument("--update", action="store_true",
                    help="replace the baseline with the current result and exit 0")
    args = ap.parse_args(argv)

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline {args.baseline} updated from {args.current}")
        return 0

    problems = compare(load(args.baseline), load(args.current), args.tolerance)
    if problems:
        for p in problems:
            print(f"REGRESSION: {p}")
        return 1
    npts = len(load(args.baseline).get("points", []))
    print(f"benchmark gate passed: {npts} point(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
