"""Fig. 5: sparsity patterns of matricized T, V and R for C65H132 (v1).

The paper renders the three matricized tensors as dot plots; here the
same occupancy is rendered as ASCII density maps and checked for the
structural features the figure shows: extreme sparsity, a banded/blocky
locality pattern (near-diagonal fill heavier than the far corners), and
R denser than T (accumulation over cd widens the footprint).
"""

import numpy as np
from conftest import run_once

from repro.experiments.c65h132 import fig5_density_maps, problem
from repro.experiments.report import ascii_spy


def test_fig5_sparsity_patterns(benchmark):
    maps = run_once(benchmark, lambda: fig5_density_maps("v1"))
    prob = problem("v1")
    for name in ("T", "V", "R"):
        shape = {"T": prob.t_shape, "V": prob.v_shape, "R": prob.r_shape}[name]
        print(f"\nFig. 5 — {name} ({shape.ntile_rows} x {shape.ntile_cols} tiles, "
              f"element density {shape.element_density:.1%})")
        print(ascii_spy(maps[name]))

    # The paper's tile grids: T is 64 x 4225, V is 4225 x 4225 (Fig. 5 axes).
    assert prob.t_shape.ntile_rows == 64
    assert prob.v_shape.ntile_rows == prob.v_shape.ntile_cols == 4225

    # Extreme sparsity (quasi-1D molecule).
    assert prob.v_shape.element_density < 0.05
    assert prob.t_shape.element_density < 0.15

    # R is denser than T (paper: 9.8 % -> 14.9 %).
    assert prob.r_shape.element_density > prob.t_shape.element_density

    # Locality: V's far corner (distant bra/ket pairs) is emptier than its
    # diagonal region.
    v = maps["V"]
    n = v.shape[0]
    diag = np.mean([v[i, i] for i in range(n)])
    corner = v[: n // 8, -n // 8 :].mean()
    assert diag > 5 * (corner + 1e-12)
