"""Section 2's claim: the ABCD term is ~90 % of the CCSD doubles work.

"The complex tensor algebra involved in the CCSD method can be reduced
for our purposes to a single representative term, and usually the most
expensive one (accounting routinely for 90 % or more of the total
work)."  This benchmark derives that number instead of assuming it:
screened cost models of the other doubles contraction families
(hole-hole ladder, particle-hole rings) on the same molecule, tiling and
screening show the pp-ladder (ABCD) carrying ~90 % of the flops.
"""

from conftest import run_once

from repro.chem.terms import abcd_work_fraction, doubles_term_costs
from repro.experiments.c65h132 import problem
from repro.experiments.report import fmt_table


def test_abcd_dominates_doubles_work(benchmark):
    def run():
        out = {}
        for v in ("v1", "v2", "v3"):
            prob = problem(v)
            out[v] = (doubles_term_costs(prob), abcd_work_fraction(prob))
        return out

    data = run_once(benchmark, run)
    for v, (costs, frac) in data.items():
        print(f"\nCCSD doubles work breakdown — C65H132 {v} "
              f"(ABCD fraction {frac:.1%})")
        print(fmt_table(
            ["term", "contraction", "Tflop", "tasks", "inner dim"],
            [
                [c.name, c.description, f"{c.flops / 1e12:7.0f}", c.tasks,
                 c.inner_extent]
                for c in costs
            ],
        ))

    for v, (costs, frac) in data.items():
        # The ABCD term is the most expensive single contraction ...
        assert costs[0].flops == max(c.flops for c in costs)
        # ... and carries the lion's share, ~90 % as the paper states.
        assert frac > 0.8, (v, frac)
    # The finest tilings sit right at the paper's "routinely 90 %".
    assert data["v1"][1] > 0.9
