"""Ablation A6: NVLink device-to-device A-tile sharing (paper Section 4).

The paper's runtime fetches an A tile over the host link once and serves
sibling GPUs from the resident device copy.  This ablation prices the
C65H132 contraction with and without that sharing and reports the
duplicated-traffic fraction the sharing exploits.
"""

import numpy as np
from conftest import run_once

from repro.core import psgemm_plan
from repro.core.analytic import simulate
from repro.core.d2d import duplicated_traffic_fraction
from repro.experiments.c65h132 import problem
from repro.experiments.report import fmt_table
from repro.machine.spec import summit


def test_d2d_sharing(benchmark):
    prob = problem("v1")
    machine = summit(2)

    def run():
        plan = psgemm_plan(prob.t_shape, prob.v_shape, machine, p=1)
        off = simulate(plan, machine, use_d2d=False)
        on = simulate(plan, machine, use_d2d=True)
        m = prob.t_shape.rows.sizes.astype(np.int64)
        k = prob.t_shape.cols.sizes.astype(np.int64)
        fracs = [
            duplicated_traffic_fraction(
                p, prob.t_shape.ntile_cols, m, k, plan.grid.gpus_per_proc
            )
            for p in plan.procs
        ]
        return off, on, float(np.mean(fracs))

    off, on, frac = run_once(benchmark, run)
    rows = [
        ["d2d off", f"{off.makespan:8.2f}"],
        ["d2d on", f"{on.makespan:8.2f}"],
        ["duplicated traffic", f"{frac:8.1%}"],
        ["speedup", f"{off.makespan / on.makespan:8.2f}x"],
    ]
    print("\nAblation A6 — NVLink d2d A-tile sharing (C65H132 v1, 2 nodes)")
    print(fmt_table(["configuration", "value"], rows))

    # Sharing can only help, and on this banded problem GPUs of a process
    # overlap substantially in the A tiles they touch.
    assert on.makespan <= off.makespan + 1e-9
    assert frac > 0.1
