"""Extension: permutational pair symmetry on the C65H132 contraction.

The paper's footnote 1 neglects the pair symmetries "for simplicity"
while noting they are "essential ... for attaining the optimal operation
count".  With the symmetry fold implemented
(:mod:`repro.tensor.symmetry`), this benchmark quantifies exactly what
the paper left on the table: the task/flop reduction from computing only
canonical (i <= j cluster) rows of R, per tiling variant.
"""

from conftest import run_once

from repro.chem.abcd import C65H132_VARIANTS
from repro.experiments.c65h132 import problem
from repro.experiments.report import fmt_table
from repro.sparse.shape_algebra import gemm_flops, gemm_task_count
from repro.tensor.symmetry import fold_rows, folded_flop_ratio


def test_symmetry_fold_savings(benchmark):
    def run():
        rows = []
        for v, variant in C65H132_VARIANTS.items():
            prob = problem(v)
            n_occ = variant.occ_clusters
            full_tasks = gemm_task_count(prob.t_shape, prob.v_shape)
            full_flops = gemm_flops(prob.t_shape, prob.v_shape)
            folded, _ = fold_rows(prob.t_shape, n_occ)
            fold_tasks = gemm_task_count(folded, prob.v_shape)
            fold_flops = gemm_flops(folded, prob.v_shape)
            rows.append(
                (v, full_flops, fold_flops, full_tasks, fold_tasks,
                 folded_flop_ratio(n_occ))
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nExtension — pair-symmetry fold on C65H132 (the paper's footnote 1)")
    print(fmt_table(
        ["tiling", "flops full", "flops folded", "tasks full", "tasks folded", "tile ratio"],
        [
            [v, f"{ff / 1e12:6.0f} T", f"{lf / 1e12:6.0f} T", ft, lt, f"{r:6.3f}"]
            for v, ff, lf, ft, lt, r in rows
        ],
    ))

    for v, ff, lf, ft, lt, ratio in rows:
        flop_saving = lf / ff
        task_saving = lt / ft
        # The fold keeps roughly the canonical tile fraction (n+1)/2n of
        # the work (T's occupancy is itself pair-symmetric, so the kept
        # rows carry a representative share of tasks and flops).
        assert flop_saving < 0.75, (v, flop_saving)
        assert abs(flop_saving - ratio) < 0.12, (v, flop_saving, ratio)
        assert abs(task_saving - ratio) < 0.12, (v, task_saving, ratio)
