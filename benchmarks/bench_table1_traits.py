"""Table 1: problem traits of C65H132 under tilings v1/v2/v3.

Regenerates every row of the paper's Table 1 from our own chemistry
pipeline (geometry -> def2-SVP AOs -> bond orbitals -> k-means clustering
-> decay screening) and checks each against the paper's value.
"""

import pytest
from conftest import run_once

from repro.experiments.c65h132 import PAPER_TABLE1, table1_text


def test_table1_traits(benchmark, all_traits):
    trs = run_once(benchmark, lambda: all_traits)
    print("\nTable 1 — C65H132 traits (ours vs paper)")
    print(table1_text())

    # Dimensions are exact: the basis/orbital counting must match.
    for t in trs.values():
        assert t.N == t.K == 1570**2
        assert t.M == 196**2

    # Kept pairs within 10 % of the paper's M = 26 576.
    for t in trs.values():
        assert abs(t.kept_pairs - 26_576) / 26_576 < 0.10

    # Flops within 35 % of the paper, tasks within a factor 1.6.
    for v, t in trs.items():
        paper_f = PAPER_TABLE1["#flop"][v]
        assert abs(t.flops - paper_f) / paper_f < 0.35, f"{v} flops off"
        paper_t = PAPER_TABLE1["#GEMM tasks"][v]
        assert 1 / 1.6 < t.tasks / paper_t < 1.6, f"{v} task count off"

    # The paper's headline contrast: task count drops ~30x from v1 to v3
    # while the flop count *rises* — the dual aspect of tiling.
    assert trs["v1"].tasks / trs["v3"].tasks > 15
    assert trs["v3"].flops >= trs["v1"].flops

    # Densities in the paper's bands.
    for v, t in trs.items():
        assert t.density_v == pytest.approx(PAPER_TABLE1["Density of V"][v], abs=0.01)
        assert t.density_t == pytest.approx(PAPER_TABLE1["Density of T"][v], abs=0.05)

    # "opt" screening drops ~3 % of tasks, as in the paper.
    for t in trs.values():
        drop = 1 - t.tasks_opt / t.tasks
        assert 0.005 < drop < 0.08

    # Reduced-scaling pitch of Section 5.2: using sparsity evaluates the
    # term in ~1 Pflop instead of the dense 2 O^2 U^4 ~ 0.47 Eflop.
    dense_flops = 2 * 26_576 * 1570**4
    assert trs["v1"].flops < dense_flops / 100
