"""Ablation A3: the 50 % block / 25 % chunk / 25 % prefetch memory split.

The paper fixes the split at 50/25/25 (Sections 3.2.2-3.2.3).  This
ablation compares against a smaller-block and a larger-block split on the
C65H132 v2 instance and reports blocks/chunks/time for each — smaller
blocks mean more block loads (B re-streamed more often is avoided, but
more A re-loads per column set), larger blocks squeeze the chunk budget.
"""

from conftest import run_once

from repro.experiments.ablations import ablation_memory_split
from repro.experiments.c65h132 import problem
from repro.experiments.report import fmt_table
from repro.machine.spec import summit


def test_memory_split(benchmark):
    prob = problem("v2")
    machine = summit(4)
    splits = ((0.25, 0.125), (0.5, 0.25), (0.8, 0.09))
    rows = run_once(
        benchmark,
        lambda: ablation_memory_split(prob.t_shape, prob.v_shape, machine, splits),
    )
    print("\nAblation A3 — GPU memory split (block/chunk fractions), C65H132 v2, 4 nodes")
    print(fmt_table(["split", "#blocks", "#chunks", "time (s)", "Tflop/s"], rows))

    by_split = {r[0]: r for r in rows}
    # Smaller blocks -> strictly more blocks -> more A re-streaming.
    assert by_split["0.25/0.125"][1] > by_split["0.50/0.250"][1]
    # The paper's 50/25 choice is not beaten by more than 15 % by either
    # alternative on this instance.
    t_paper = float(by_split["0.50/0.250"][3])
    for key in ("0.25/0.125", "0.80/0.090"):
        assert t_paper <= float(by_split[key][3]) * 1.15
