"""Ablation A5: tiling granularity sweep (the paper's stated future work).

"Future work will aim at modeling the interactions between the tiling and
the performance, in order to increase the efficiency of the algorithm."
This ablation sweeps the cluster targets continuously between (and
beyond) the paper's v1/v3 and locates the granularity minimizing time to
completion — the trade-off of Table 1 made quantitative.
"""

from conftest import run_once

from repro.chem.abcd import build_abcd_problem
from repro.chem.clustering import TilingVariant
from repro.experiments.ablations import ablation_tiling
from repro.experiments.report import fmt_table
from repro.machine.spec import summit


def _builder(occ, ao, seed):
    return build_abcd_problem(
        variant=TilingVariant(f"occ{occ}-ao{ao}", occ, ao), seed=seed
    )


def test_tiling_granularity_sweep(benchmark):
    machine = summit(4)
    targets = [(10, 80), (8, 65), (7, 48), (6, 32), (5, 22), (4, 16)]
    rows = run_once(
        benchmark, lambda: ablation_tiling(_builder, targets, machine)
    )
    print("\nAblation A5 — tiling granularity (C65H132, 4 nodes / 24 GPUs)")
    print(fmt_table(["occ x ao clusters", "Tflop", "#tasks", "time (s)", "Tf/GPU"], rows))

    tasks = [int(r[2]) for r in rows]
    flops = {r[0]: float(r[1]) for r in rows}
    times = [float(r[3]) for r in rows]
    # Coarser tiling -> monotonically fewer tasks.
    assert all(a > b for a, b in zip(tasks, tasks[1:]))
    # Across the paper's v1..v3 span, coarser tiles cover more zeros and
    # raise the flop count (Table 1's dual aspect of tiling).  Beyond the
    # coarse extreme the trend need not continue — that non-monotonicity
    # is exactly what the tuning problem the paper leaves open looks like.
    assert flops["6x32"] >= flops["8x65"]
    # The finest tiling never wins (the paper's v1 observation).
    assert times[0] > min(times)
