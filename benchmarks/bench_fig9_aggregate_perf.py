"""Fig. 9: aggregate performance for the C65H132 ABCD term.

Paper: "overall, the performance continues to increase up to 108 GPUs,
when the completion time is less than a minute, even for the finest grain
case" — added computation (v3's extra flops) rides along with the data
transfers it overlaps.
"""

from conftest import run_once

from repro.experiments.report import fmt_table


def test_fig9_aggregate_performance(benchmark, scaling_data):
    data = run_once(benchmark, lambda: scaling_data)
    rows = []
    for g_idx in range(len(data["v1"])):
        pts = [data[v][g_idx] for v in ("v1", "v2", "v3")]
        rows.append([pts[0].gpus] + [f"{p.perf / 1e12:7.1f}" for p in pts])
    print("\nFig. 9 — aggregate Tflop/s vs #GPUs")
    print(fmt_table(["#GPUs", "v1", "v2", "v3"], rows))
    from repro.experiments.figures import scaling_chart

    print(scaling_chart(data, "perf"))

    for v, series in data.items():
        perfs = [p.perf for p in series]
        # Aggregate performance increases all the way to 108 GPUs (one
        # <= 6 % dip from assignment granularity tolerated, cf. Fig. 7).
        assert all(b > a * 0.94 for a, b in zip(perfs, perfs[1:])), f"{v} not increasing"
        assert perfs[-1] > 3 * perfs[0]
        # Completion under a minute at 108 GPUs, even for v1.
        assert series[-1].time < 60.0, v
