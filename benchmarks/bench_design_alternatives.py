"""Design-choice bake-off: the paper's algorithm vs the two rejected ones.

Section 3.1 weighs three layouts before committing:

1. stationary C (prior work) — capacity-limited and B-streaming-bound;
2. stationary B on a 2-D grid (Bᵀ x "A x C") — "to avoid these costly
   [C] reductions";
3. stationary B with replicated columns on grid rows — **the paper's
   choice**.

This benchmark prices all three on the C65H132 contraction and verifies
the paper's ranking.
"""

from conftest import run_once

from repro.baselines.summa import summa_simulate
from repro.baselines.transpose_reduce import transpose_reduce_simulate
from repro.core import psgemm_simulate
from repro.experiments.c65h132 import problem
from repro.experiments.report import fmt_table
from repro.machine.spec import summit


def test_design_alternatives(benchmark):
    prob = problem("v2")
    machine = summit(4)

    def run():
        _, chosen = psgemm_simulate(prob.t_shape, prob.v_shape, machine, p=1)
        rejected = transpose_reduce_simulate(prob.t_shape, prob.v_shape, machine)
        prior = summa_simulate(prob.t_shape, prob.v_shape, machine)
        return chosen, rejected, prior

    chosen, rejected, prior = run_once(benchmark, run)
    rows = [
        ["paper: replicated-B grid rows", f"{chosen.makespan:8.2f}",
         f"{chosen.perf / 1e12:7.1f}"],
        ["rejected: 2-D stationary B + C reductions",
         f"{rejected.makespan:8.2f}", f"{rejected.perf / 1e12:7.1f}"],
        ["prior work: stationary C (SUMMA)",
         "infeasible" if not prior.feasible else f"{prior.makespan:8.2f}",
         "-" if not prior.feasible else f"{prior.perf / 1e12:7.1f}"],
    ]
    print("\nSection 3.1 design bake-off — C65H132 v2, 4 nodes")
    print(fmt_table(["algorithm", "time (s)", "Tflop/s"], rows))
    if not prior.feasible:
        print(f"  (stationary C: {prior.error})")
    print(f"  C-reduction traffic the paper avoids: "
          f"{rejected.c_reduce_bytes / 1e9:.1f} GB")

    # The paper's choice wins against the rejected variant ...
    assert chosen.makespan < rejected.makespan
    # ... and the prior-work layout cannot even hold this problem's C (or,
    # if it can, it is slower).
    if prior.feasible:
        assert chosen.makespan < prior.makespan
    # The avoided C-reduction traffic is substantial.
    assert rejected.c_reduce_bytes > 1e9
