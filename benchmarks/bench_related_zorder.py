"""Related-work comparison: Z-order (quad-tree) layout vs 2D-cyclic.

Section 6.2: Chunks-and-Tasks "uses quad-trees to represent the sparsity
and reduce the memory overheads ... the key advantage of using quad-trees
is to preserve data locality while reducing communications".  The paper's
algorithm instead keeps A 2D-cyclic and B stationary.

This benchmark quantifies both claims on the C65H132 problem: the
quad-tree's index-memory savings on the banded chemistry tensors, and the
A-broadcast volume of the paper's consumer pattern under Z-order vs
2D-cyclic initial placement.
"""

import numpy as np
from conftest import run_once

from repro.core import psgemm_plan
from repro.experiments.c65h132 import problem
from repro.experiments.report import fmt_table
from repro.machine.spec import summit
from repro.sparse.quadtree import QuadTree, distribution_traffic, zorder_owners


def test_quadtree_and_zorder_on_chemistry_tensors(benchmark):
    def run():
        prob = problem("v1")
        qt_t = QuadTree(prob.t_shape, leaf_tiles=8)
        qt_v = QuadTree(prob.v_shape, leaf_tiles=32)

        plan = psgemm_plan(prob.t_shape, prob.v_shape, summit(4), p=1)
        grid = plan.grid

        def cyclic(ii, kk):
            return (np.asarray(ii) % grid.p) * grid.q + (np.asarray(kk) % grid.q)

        ii, kk = prob.t_shape.nonzero_tiles()
        owners = zorder_owners(ii, kk, grid.nprocs)
        owner_lookup = {}
        for t in range(ii.size):
            owner_lookup[(int(ii[t]), int(kk[t]))] = int(owners[t])

        def zorder(ri, rk):
            return np.array(
                [owner_lookup.get((int(i), int(k)), -1) for i, k in zip(np.atleast_1d(ri), np.atleast_1d(rk))]
            )

        return {
            "savings_t": qt_t.occupancy_savings(),
            "savings_v": qt_v.occupancy_savings(),
            "nodes_v": qt_v.node_count(),
            "nnz_v": prob.v_shape.nnz_tiles,
            "cyclic": distribution_traffic(plan, cyclic),
            "zorder": distribution_traffic(plan, zorder),
        }

    r = run_once(benchmark, run)
    print("\nRelated work — quad-tree / Z-order on C65H132 v1 (4 nodes)")
    print(fmt_table(
        ["quantity", "value"],
        [
            ["quad-tree index savings on T", f"{r['savings_t']:7.1%}"],
            ["quad-tree index savings on V", f"{r['savings_v']:7.1%}"],
            ["quad-tree nodes vs nnz tiles (V)", f"{r['nodes_v']} / {r['nnz_v']}"],
            ["A traffic, 2D-cyclic placement", f"{r['cyclic'] / 1e9:8.2f} GB"],
            ["A traffic, Z-order placement", f"{r['zorder'] / 1e9:8.2f} GB"],
        ],
    ))

    # The quad-tree prunes most of the (extremely sparse) V index space.
    assert r["savings_v"] > 0.3
    # Both placements move the same order of traffic for this consumer
    # pattern: every grid-row process needs nearly all of its slice of A,
    # so *initial placement locality* cannot reduce the broadcast much —
    # the reason the paper keeps B stationary instead of optimizing A's
    # layout.  Z-order must be within 2x of cyclic either way.
    ratio = r["zorder"] / max(r["cyclic"], 1)
    assert 0.5 < ratio < 2.0
