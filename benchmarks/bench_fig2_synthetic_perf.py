"""Fig. 2: synthetic performance vs (N=K, density), PaRSEC and libDBCSR.

Regenerates both panels of the paper's Fig. 2 on 16 Summit nodes (96
GPUs, aggregate GEMM peak 672 Tflop/s) and checks the paper's qualitative
findings:

* density dominates performance ("the density has more impact than the
  problem size or shape");
* performance grows with N=K from the square case;
* the PaRSEC algorithm outperforms libDBCSR on every feasible point
  ("PaRSEC outperforms libDBCSR in all our experiments");
* libDBCSR runs out of device memory on large dense instances while the
  paper's algorithm has no such limit.
"""

from collections import defaultdict

from conftest import run_once

from repro.baselines.dbcsr import dbcsr_simulate
from repro.experiments.synthetic import fig2_table
from repro.machine.spec import summit
from repro.sparse.random_sparsity import random_shape_with_density
from repro.tiling.random import random_tiling


def test_fig2_performance_sweep(benchmark, synthetic_points):
    points = run_once(benchmark, lambda: synthetic_points)
    print("\nFig. 2 — performance (16 nodes / 96 GPUs, peak 672 Tflop/s)")
    print(fig2_table(points))

    by_nk = defaultdict(dict)
    for p in points:
        by_nk[p.nk][p.density] = p

    # Density ordering at every N=K: denser never slower (within 5 %).
    for nk, dens_map in by_nk.items():
        ds = sorted(dens_map)
        for lo, hi in zip(ds, ds[1:]):
            assert dens_map[hi].parsec_perf >= 0.95 * dens_map[lo].parsec_perf, (
                f"density ordering violated at N=K={nk}"
            )

    # Performance grows from the square case to the largest N=K (dense).
    nks = sorted(by_nk)
    assert by_nk[nks[-1]][1.0].parsec_perf > by_nk[nks[0]][1.0].parsec_perf

    # PaRSEC beats DBCSR on every feasible point.
    for p in points:
        if p.dbcsr is not None and p.dbcsr.feasible:
            assert p.parsec_perf > p.dbcsr.perf, (
                f"DBCSR faster at N=K={p.nk}, d={p.density}"
            )

    # Square dense anchor lands in the paper's band (paper: 203 Tflop/s).
    anchor = by_nk[48_000][1.0]
    assert 80e12 < anchor.parsec_perf < 450e12


def test_fig2_dbcsr_oom_on_large_dense(benchmark):
    """The paper: "problems of size (48k, 192k, 192k) or more result in an
    error when trying to allocate the memory on some CUDA devices"."""

    def run():
        machine = summit(16)
        rows = random_tiling(48_000, 512, 2048, seed=0)
        inner = random_tiling(240_000, 512, 2048, seed=1)
        a = random_shape_with_density(rows, inner, 1.0, seed=2)
        b = random_shape_with_density(inner, inner, 1.0, seed=3)
        return dbcsr_simulate(a, b, machine)

    report = run_once(benchmark, run)
    print(f"\nlibDBCSR on dense (48k, 240k, 240k): {report.summary()}")
    assert not report.feasible
    assert "memory" in report.error
