"""Reduced-scaling check: cost growth with molecule size.

Section 5.2 motivates the whole enterprise: dense CCSD's ABCD term costs
2 O^2 U^4 (~0.47 Eflop for C65H132) while the block-sparse evaluation
needs ~1 Pflop — "reduction of the operation cost by more than two orders
of magnitude".  For quasi-1D systems the screened flop count must grow
like a low-order polynomial of chain length, not N^6.  This benchmark
sweeps alkane sizes at proportional clustering granularity and verifies
both the sparse/dense separation and its growth.
"""

import numpy as np
from conftest import run_once

from repro.chem import TilingVariant, alkane, build_abcd_problem
from repro.core import psgemm_simulate
from repro.experiments.report import fmt_table
from repro.machine.spec import summit
from repro.sparse.shape_algebra import gemm_flops


def test_system_size_scaling(benchmark):
    chain_lengths = (16, 24, 32, 48, 65)

    def run():
        rows = []
        for n in chain_lengths:
            mol = alkane(n)
            prob = build_abcd_problem(
                mol, TilingVariant(f"n{n}", max(3, n // 8), n), seed=0
            )
            sparse_flops = gemm_flops(prob.t_shape, prob.v_shape)
            dense_flops = 2.0 * prob.kept_pairs() * prob.U**4
            _, rep = psgemm_simulate(prob.t_shape, prob.v_shape, summit(2), p=1)
            rows.append(
                (n, prob.U, sparse_flops, dense_flops, rep.makespan)
            )
        return rows

    rows = run_once(benchmark, run)
    table = [
        [n, u, f"{sf / 1e12:9.1f}", f"{df / 1e15:9.2f}", f"{df / sf:7.0f}x",
         f"{t:8.2f}"]
        for n, u, sf, df, t in rows
    ]
    print("\nReduced scaling — ABCD cost vs chain length (2 nodes)")
    print(fmt_table(
        ["C_n", "U", "sparse Tflop", "dense Pflop", "reduction", "time (s)"],
        table,
    ))

    ns = np.array([r[0] for r in rows], dtype=float)
    sparse = np.array([r[2] for r in rows])
    dense = np.array([r[3] for r in rows])

    # Dense/sparse separation grows with system size (the reduced-scaling
    # payoff) and exceeds two orders of magnitude at C65, as in the paper.
    reduction = dense / sparse
    assert reduction[-1] > reduction[0]
    assert reduction[-1] > 100

    # Empirical growth exponent of the sparse cost: fit log-log slope.
    slope = np.polyfit(np.log(ns), np.log(sparse), 1)[0]
    dense_slope = np.polyfit(np.log(ns), np.log(dense), 1)[0]
    print(f"growth exponents: sparse ~ N^{slope:.2f}, dense ~ N^{dense_slope:.2f}")
    assert slope < dense_slope - 1.0  # materially below the dense exponent
    assert slope < 4.5  # far from N^6

    # Time grows monotonically but sub-dense.
    times = np.array([r[4] for r in rows])
    assert all(b > a for a, b in zip(times, times[1:]))
