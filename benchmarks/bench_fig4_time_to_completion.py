"""Fig. 4: time to completion of the synthetic instances.

The paper's observation: although Tflop/s drops with sparsity, "the time
to solution remains dominated by the number of operations; since the
latter decreases faster than the performance, the time to solution also
decreases with the density".
"""

from collections import defaultdict

from conftest import run_once

from repro.experiments.synthetic import fig4_table


def test_fig4_time_to_completion(benchmark, synthetic_points):
    points = run_once(benchmark, lambda: synthetic_points)
    print("\nFig. 4 — time to completion (16 nodes)")
    print(fig4_table(points))

    by_nk = defaultdict(dict)
    for p in points:
        by_nk[p.nk][p.density] = p

    # Sparser problems finish sooner at every size.
    for nk, dens_map in by_nk.items():
        ds = sorted(dens_map)
        for lo, hi in zip(ds, ds[1:]):
            assert dens_map[lo].parsec_time < dens_map[hi].parsec_time, (
                f"time ordering violated at N=K={nk}: d={lo} vs d={hi}"
            )

    # Larger problems take longer at fixed density.
    nks = sorted(by_nk)
    for d in by_nk[nks[0]]:
        assert by_nk[nks[-1]][d].parsec_time > by_nk[nks[0]][d].parsec_time
