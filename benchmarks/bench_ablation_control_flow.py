"""Ablation A4: the control-flow DAG (Section 4).

"The control flow ... increases performance by preventing the scheduler
of the runtime system to take wrong decisions (e.g., selecting a GEMM
that is ready but that requires to eject some data that could be reused
from that GPU memory)."  Without the control edges a greedy scheduler
thrashes the resident B block; this ablation prices that thrashing.
"""

from conftest import run_once

from repro.experiments.ablations import ablation_control_flow
from repro.experiments.c65h132 import problem
from repro.experiments.report import fmt_table
from repro.machine.spec import summit


def test_control_flow_dag(benchmark):
    prob = problem("v1")
    machine = summit(2)
    rows = run_once(
        benchmark, lambda: ablation_control_flow(prob.t_shape, prob.v_shape, machine)
    )
    print("\nAblation A4 — control DAG on/off (C65H132 v1, 2 nodes)")
    print(fmt_table(["configuration", "time (s)"], rows))

    slowdown = float(rows[-1][1].rstrip("x"))
    assert slowdown > 1.3, "control DAG should matter on an I/O-bound instance"
