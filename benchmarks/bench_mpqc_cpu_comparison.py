"""Section 5.2's CPU comparison: MPQC CPU-only vs the GPU implementation.

Paper: the CPU-only MPQC ABCD evaluation took {308, 158} s on {8, 16}
Summit nodes; the GPU implementation with tiling v3 on the same nodes
"would reduce the time to solution by a factor of ~10".
"""

from conftest import run_once

from repro.baselines.cpu_mpqc import PAPER_MEASURED, mpqc_cpu_time
from repro.experiments.c65h132 import traits
from repro.experiments.mpqc_compare import mpqc_comparison_rows, mpqc_comparison_text


def test_mpqc_cpu_model_matches_paper(benchmark):
    """The CPU model reproduces the paper's measured CPU-only times."""
    flops = run_once(benchmark, lambda: traits("v3").flops)
    for nodes, measured in PAPER_MEASURED.items():
        t = mpqc_cpu_time(flops, nodes)
        print(f"CPU-only ABCD on {nodes} nodes: model {t:.0f} s, paper {measured:.0f} s")
        # Within 40 % (our flop count itself differs ~20 % from the paper's).
        assert abs(t - measured) / measured < 0.40


def test_gpu_speedup_over_cpu(benchmark):
    rows = run_once(benchmark, lambda: mpqc_comparison_rows())
    print("\nSection 5.2 — CPU-only MPQC vs GPU (tiling v3)")
    print(mpqc_comparison_text())
    for row in rows:
        speedup = float(row[-1].rstrip("x"))
        # Paper: ~10x; our simulated GPU runs are faster than Summit's
        # measured ones (see EXPERIMENTS.md), so accept a broad band that
        # still proves the order-of-magnitude claim.
        assert 5.0 < speedup < 60.0
