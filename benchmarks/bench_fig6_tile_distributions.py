"""Fig. 6: tile-size (MB) distributions for tilings v1/v2/v3.

The paper histograms the matricized tile sizes: v1 concentrates around a
few MB, v2 spreads to ~40 MB, v3 to ~200 MB.  The same distributions are
regenerated and summarized here.
"""

import numpy as np
from conftest import run_once

from repro.experiments.c65h132 import fig6_tile_mb
from repro.tiling.stats import TileSizeStats


def test_fig6_tile_size_distributions(benchmark):
    samples = run_once(
        benchmark, lambda: {v: fig6_tile_mb(v) for v in ("v1", "v2", "v3")}
    )
    print("\nFig. 6 — matricized tile sizes (MB) of V per tiling")
    stats = {}
    for v, mb in samples.items():
        s = TileSizeStats.from_sample(mb)
        stats[v] = s
        print(f"  {v}: {s.row()}")
        # Coarse histogram like the paper's panels.
        counts, edges = np.histogram(mb, bins=10)
        bars = "".join(
            "#" if c > counts.max() * 0.5 else ("+" if c > 0 else ".") for c in counts
        )
        print(f"      histogram [{edges[0]:.1f}..{edges[-1]:.1f} MB]: {bars}")

    # Mean tile size grows by roughly an order of magnitude per variant
    # step, as in the paper (few MB -> tens of MB -> ~200 MB tails).
    assert stats["v1"].mean < stats["v2"].mean < stats["v3"].mean
    assert stats["v1"].maximum < 70
    assert stats["v2"].maximum > 20
    assert stats["v3"].maximum > 100
