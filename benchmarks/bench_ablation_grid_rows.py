"""Ablation A1: the grid-rows (p) trade-off of Section 3.1.

"Using p = 1 avoids the replication of B but increases the communication
volume of A; using p >= 2 requires p copies of each column of B but
decreases the communication volume of A by a factor p."  This ablation
sweeps p on a square synthetic instance (where A traffic matters most)
and verifies both sides of the trade-off.
"""

from conftest import run_once

from repro.experiments.ablations import ablation_grid_rows
from repro.experiments.report import fmt_table
from repro.machine.spec import summit
from repro.sparse.random_sparsity import random_shape_with_density
from repro.tiling.random import random_tiling


def _instance():
    machine = summit(8)
    rows = random_tiling(48_000, 512, 2048, seed=0)
    inner = random_tiling(96_000, 512, 2048, seed=1)
    a = random_shape_with_density(rows, inner, 1.0, seed=2)
    b = random_shape_with_density(inner, inner, 1.0, seed=3)
    return a, b, machine


def test_grid_rows_tradeoff(benchmark):
    a, b, machine = _instance()
    rows = run_once(benchmark, lambda: ablation_grid_rows(a, b, machine, (1, 2, 4, 8)))
    print("\nAblation A1 — grid rows p (dense 48k x 96k x 96k, 8 nodes)")
    print(fmt_table(["p", "time (s)", "Tflop/s", "A moved (GB)", "B gen (GB)"], rows))

    ps = [r[0] for r in rows]
    a_moved = [float(r[3]) for r in rows]
    b_gen = [float(r[4]) for r in rows]
    assert ps[0] == 1
    # A broadcast volume strictly decreases with p ...
    assert all(x > y for x, y in zip(a_moved, a_moved[1:]))
    # ... while B replication (generation volume) grows with p.
    assert all(x <= y * 1.001 for x, y in zip(b_gen, b_gen[1:]))
