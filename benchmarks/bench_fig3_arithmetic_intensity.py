"""Fig. 3: theoretical arithmetic intensity of the synthetic instances.

The paper's Fig. 3 plots flops / (aggregate size of A, B, C) — an upper
bound on attainable intensity — and uses it to explain Fig. 2: intensity
grows with N=K and collapses with density, which is why the sparse
problems are GPU-I/O bound.
"""

from collections import defaultdict

from conftest import run_once

from repro.experiments.synthetic import fig3_table


def test_fig3_intensity(benchmark, synthetic_points):
    points = run_once(benchmark, lambda: synthetic_points)
    print("\nFig. 3 — theoretical arithmetic intensity")
    print(fig3_table(points))

    by_nk = defaultdict(dict)
    for p in points:
        by_nk[p.nk][p.density] = p

    # Intensity decreases with sparsity at every size.
    for nk, dens_map in by_nk.items():
        ds = sorted(dens_map)
        for lo, hi in zip(ds, ds[1:]):
            assert dens_map[hi].intensity > dens_map[lo].intensity

    # Intensity grows with N=K at fixed density.
    nks = sorted(by_nk)
    for d in by_nk[nks[0]]:
        assert by_nk[nks[-1]][d].intensity > by_nk[nks[0]][d].intensity

    # Dense square case: AI of an (M, N, K) GEMM = 2MNK/8(MK+KN+MN);
    # with M = K = N = 48k that is N/12 = 4000 flop/byte.
    dense_sq = by_nk[48_000][1.0]
    assert abs(dense_sq.intensity - 4000) / 4000 < 0.05
