"""Fig. 8: performance per GPU for the C65H132 ABCD term.

Paper findings checked here: per-GPU performance follows an inverse trend
with tiling granularity (coarser tiles -> more flops per kernel -> higher
per-GPU rate, up to ~2.5 Tflop/s for v3 = ~35 % of the 7.2 Tflop/s
practical peak); it degrades as GPUs are added ("GPU I/O dominates"); and
it is far below peak throughout — the arithmetic intensity is too low.
"""

from conftest import run_once

from repro.experiments.report import fmt_table


def test_fig8_perf_per_gpu(benchmark, scaling_data):
    data = run_once(benchmark, lambda: scaling_data)
    rows = []
    for g_idx in range(len(data["v1"])):
        pts = [data[v][g_idx] for v in ("v1", "v2", "v3")]
        rows.append(
            [pts[0].gpus] + [f"{p.perf_per_gpu / 1e12:6.2f}" for p in pts]
        )
    print("\nFig. 8 — Tflop/s per GPU vs #GPUs")
    print(fmt_table(["#GPUs", "v1", "v2", "v3"], rows))
    from repro.experiments.figures import scaling_chart

    print(scaling_chart(data, "perf_per_gpu"))

    peak = 7.2e12
    for v, series in data.items():
        # Always well below the practical peak (paper: at most ~35 %).
        assert all(p.perf_per_gpu < 0.55 * peak for p in series), v
        # Degrades from few GPUs to many.
        assert series[-1].perf_per_gpu < series[0].perf_per_gpu, v

    # Inverse trend with tiling: coarse v3 beats fine v1 per GPU.
    for g_idx in range(len(data["v1"])):
        assert (
            data["v3"][g_idx].perf_per_gpu >= data["v1"][g_idx].perf_per_gpu
        ), f"v3 not >= v1 at index {g_idx}"

    # v3's few-GPU point lands in the paper's band (~2.5 Tflop/s).
    assert 1.2e12 < data["v3"][0].perf_per_gpu < 3.5e12
