"""Fig. 7: time to completion of the C65H132 ABCD term vs #GPUs.

The paper runs 3..108 V100s for the three tilings, with a perfect-scaling
reference from the 3-GPU point, and reports: time decreases throughout;
parallel efficiency is well below 1 at 108 GPUs and worst for the
finest tiling v1; v2 and v3 complete in similar time although v3 executes
~30 % more flops.
"""

from conftest import run_once

from repro.experiments.c65h132 import PAPER_FIG7_ANCHORS
from repro.experiments.report import fmt_table


def test_fig7_time_to_completion(benchmark, scaling_data):
    data = run_once(benchmark, lambda: scaling_data)
    rows = []
    for g_idx in range(len(data["v1"])):
        p1, p2, p3 = (data[v][g_idx] for v in ("v1", "v2", "v3"))
        rows.append(
            [p1.gpus, f"{p1.time:8.1f}", f"{p2.time:8.1f}", f"{p3.time:8.1f}",
             f"{p1.ideal_time:8.1f}"]
        )
    print("\nFig. 7 — time to completion (s) vs #GPUs")
    print(fmt_table(["#GPUs", "v1", "v2", "v3", "ideal(v1)"], rows))
    print(f"paper anchors: v1@3 = {PAPER_FIG7_ANCHORS[('v1', 3)]} s, "
          f"v1@108 = {PAPER_FIG7_ANCHORS[('v1', 108)]} s")
    from repro.experiments.figures import scaling_chart

    print(scaling_chart(data, "time"))

    for v, series in data.items():
        # Time decreases with GPU count (a <= 6 % uphill step is allowed:
        # column-assignment granularity can make one extra node unhelpful,
        # e.g. v2 at 96 -> 108 GPUs).
        times = [p.time for p in series]
        assert all(b < a * 1.06 for a, b in zip(times, times[1:])), f"{v} not monotone"
        assert times[-1] < times[0] / 4
        # Efficiency below 1 away from the baseline.
        assert series[-1].efficiency < 0.9

    # v1's 3-GPU point lands in the paper's band (272 s there).
    v1_3 = data["v1"][0]
    assert v1_3.gpus == 3
    assert 130 < v1_3.time < 420

    # v2 and v3 are within ~40 % of each other despite v3's extra flops.
    for p2, p3 in zip(data["v2"], data["v3"]):
        assert 0.5 < p2.time / p3.time < 2.0

    # The finest tiling scales worst (the paper: 21 % vs ~36 %).
    assert data["v1"][-1].efficiency <= data["v3"][-1].efficiency
