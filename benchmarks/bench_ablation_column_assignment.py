"""Ablation A2: column-assignment policies (Section 3.2.1).

The paper deals flop-sorted columns in a *mirrored* cyclic order "to
compensate the imbalance due to the initial forward pass".  This ablation
quantifies that on the C65H132 v1 instance (4225 B columns over q = 16
processors, the paper's regime of many columns per processor): mirrored
dealing balances better than plain cyclic dealing and close to the greedy
LPT bound.
"""

from conftest import run_once

from repro.experiments.ablations import ablation_column_assignment
from repro.experiments.c65h132 import problem
from repro.experiments.report import fmt_table


def test_column_assignment_policies(benchmark):
    prob = problem("v1")
    rows = run_once(
        benchmark,
        lambda: ablation_column_assignment(prob.t_shape, prob.v_shape, q=16),
    )
    print("\nAblation A2 — column assignment imbalance (max/mean), C65H132 v1, q = 16")
    print(fmt_table(["policy", "imbalance"], rows))

    imb = {r[0]: float(r[1]) for r in rows}
    # Reproduction finding worth recording: on this *heavy-tailed* flop
    # distribution the mirrored pass lands within a few percent of plain
    # cyclic (and can slightly lose); its guaranteed advantage shows on
    # smooth distributions (next test).  LPT bounds both from below.
    assert imb["lpt"] <= imb["mirrored"] + 1e-9
    assert imb["mirrored"] < 1.05
    assert imb["mirrored"] <= imb["lpt"] * 1.04


def test_mirrored_needs_many_columns_per_processor():
    """The mirroring advantage is a many-blocks effect: with only a few
    dealing rounds the truncated final reverse pass can lose to plain
    cyclic dealing — worth knowing when q approaches the column count."""
    import numpy as np

    from repro.core.column_assignment import assign_columns

    rng = np.random.default_rng(0)
    f = np.sort(rng.uniform(0.1, 1.0, 2400))
    m = assign_columns(f, 16, "mirrored").imbalance
    c = assign_columns(f, 16, "cyclic").imbalance
    assert m <= c
