"""Shared fixtures for the benchmark suite.

Expensive artifacts (the synthetic sweep, the C65H132 scaling runs) are
built once per session and shared across the per-figure benchmarks, the
same way the paper's figures share runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.c65h132 import GPU_COUNTS, scaling_series, traits
from repro.experiments.synthetic import fig2_sweep

#: Reduced GPU-count grid for the default benchmark run (the full paper
#: grid is GPU_COUNTS; override with --paper-scale).
QUICK_GPU_COUNTS = (3, 6, 12, 48, 108)


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the full paper-size parameter sweeps (slower)",
    )


@pytest.fixture(scope="session")
def paper_scale(request) -> bool:
    return request.config.getoption("--paper-scale")


@pytest.fixture(scope="session")
def synthetic_points(paper_scale):
    """The (N=K) x density sweep shared by Figs. 2, 3 and 4."""
    return fig2_sweep(scale="paper" if paper_scale else "quick", seed=0)


@pytest.fixture(scope="session")
def gpu_counts(paper_scale):
    return GPU_COUNTS if paper_scale else QUICK_GPU_COUNTS


@pytest.fixture(scope="session")
def scaling_data(gpu_counts):
    """Strong-scaling series per tiling variant (Figs. 7, 8, 9)."""
    return {v: scaling_series(v, gpu_counts=gpu_counts) for v in ("v1", "v2", "v3")}


@pytest.fixture(scope="session")
def all_traits():
    """Table 1 traits per tiling variant."""
    return {v: traits(v) for v in ("v1", "v2", "v3")}


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The benchmarks regenerate paper tables from simulations; repeating
    them only re-measures the simulator, so one round suffices.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
