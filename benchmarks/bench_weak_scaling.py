"""Weak scaling: growing molecules on growing partitions.

The paper evaluates strong scaling only; its future work asks to "extend
the experiments to larger problems".  Weak scaling is the natural probe:
grow the alkane with the node count so each node keeps a similar flop
share, and watch the completion time.  For a perfectly scalable algorithm
the time would stay flat; the A broadcast (which grows with *both* the
molecule and the consumer count) makes it drift — the same limiter the
paper identifies in strong scaling.
"""

import numpy as np
from conftest import run_once

from repro.chem import TilingVariant, alkane, build_abcd_problem
from repro.core import psgemm_simulate
from repro.experiments.report import fmt_table
from repro.machine.spec import summit
from repro.sparse.shape_algebra import gemm_flops


def test_weak_scaling(benchmark):
    # Chain length chosen so flops/node is roughly constant: the screened
    # flop count grows ~ N^2.4 (see bench_system_size_scaling), so N is
    # picked ~ nodes^(1/2.4).
    points = [(1, 24), (2, 33), (4, 44), (8, 59)]

    def run():
        rows = []
        for nodes, n_carbons in points:
            prob = build_abcd_problem(
                alkane(n_carbons),
                TilingVariant(f"n{n_carbons}", max(3, n_carbons // 8), n_carbons),
                seed=0,
            )
            flops = gemm_flops(prob.t_shape, prob.v_shape)
            _, rep = psgemm_simulate(prob.t_shape, prob.v_shape, summit(nodes), p=1)
            rows.append((nodes, n_carbons, flops, rep.makespan, rep.perf))
        return rows

    rows = run_once(benchmark, run)
    print("\nWeak scaling — alkane size grown with the partition")
    print(fmt_table(
        ["nodes", "chain", "Tflop", "flops/node (T)", "time (s)", "Tflop/s"],
        [
            [nd, f"C{nc}", f"{f / 1e12:7.1f}", f"{f / nd / 1e12:7.1f}",
             f"{t:8.2f}", f"{p / 1e12:7.1f}"]
            for nd, nc, f, t, p in rows
        ],
    ))

    flops_per_node = np.array([r[2] / r[0] for r in rows])
    times = np.array([r[3] for r in rows])
    # Work per node held within a factor ~2 across the sweep.
    assert flops_per_node.max() / flops_per_node.min() < 2.0
    # Weak-scaling time drift stays bounded (within 3x of the first point)
    # while aggregate throughput grows with the partition.
    assert times.max() / times[0] < 3.0
    perfs = [r[4] for r in rows]
    assert perfs[-1] > perfs[0]
