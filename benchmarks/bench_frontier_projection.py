"""Exascale projection: the paper's algorithm on a Frontier-like machine.

The introduction frames the work against the "forthcoming Frontier
exascale system ... announced with four AMD Radeon GPUs per node".  This
benchmark runs the C65H132 contraction on matched-GPU-count Summit and
Frontier-like partitions and asks the forward-looking question the paper
raises: when per-GPU compute grows ~3x but feeding bandwidth grows less,
does the block-sparse contraction become even more I/O-bound?
"""

from conftest import run_once

from repro.core import psgemm_simulate
from repro.experiments.c65h132 import problem
from repro.experiments.report import fmt_table
from repro.machine.spec import frontier, summit


def test_frontier_projection(benchmark):
    prob = problem("v3")

    def run():
        rows = []
        for label, mach in (
            ("Summit, 2 nodes / 12 GPUs", summit(2)),
            ("Frontier-like, 3 nodes / 12 GPUs", frontier(3)),
        ):
            plan, rep = psgemm_simulate(prob.t_shape, prob.v_shape, mach, p=1)
            peak = mach.aggregate_gemm_peak
            rows.append(
                (label, rep.makespan, rep.perf, rep.perf / peak, peak)
            )
        return rows

    rows = run_once(benchmark, run)
    print("\nExascale projection — C65H132 v3 at 12 GPUs")
    print(fmt_table(
        ["machine", "time (s)", "Tflop/s", "% of GEMM peak"],
        [
            [label, f"{t:8.2f}", f"{p / 1e12:7.1f}", f"{frac:7.1%}"]
            for label, t, p, frac, _ in rows
        ],
    ))

    t_summit, t_frontier = rows[0][1], rows[1][1]
    eff_summit, eff_frontier = rows[0][3], rows[1][3]
    # Absolute time improves on the bigger-GPU machine ...
    assert t_frontier < t_summit
    # ... but a *smaller fraction* of its GEMM peak is attained — the
    # compute/bandwidth scissors the paper's HPCG framing warns about.
    assert eff_frontier < eff_summit
