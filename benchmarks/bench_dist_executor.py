"""Serial executor vs the real multi-process executor on a synthetic plan.

Times :func:`repro.runtime.numeric.execute_plan` against
:func:`repro.dist.execute_plan_distributed` at 1, 2 and 4 workers on one
synthetic block-sparse problem (results are crosschecked bit-for-bit
against the serial run, which is the oracle).  Prints the wall-clock
speedup and the per-rank GEMM-task balance — the observable twin of the
paper's strong-scaling story: real speedup comes from real processes, and
it is bounded by how evenly the column assignment deals out tasks.

On a single-core host the speedup column tops out below 1.0x (N workers
time-slice one CPU and pay the scatter/gather overhead); the balance
column and the bit-for-bit crosscheck are the machine-independent signal.

Standalone mode: ``python benchmarks/bench_dist_executor.py --json
BENCH_dist.json [--small]`` runs the same sweep outside pytest and writes
a machine-readable result file that :mod:`benchmarks.compare` gates CI
against (exact task counts, speedups within a tolerance).
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core import inspect
from repro.dist import execute_plan_distributed
from repro.experiments.report import fmt_table
from repro.machine import summit
from repro.runtime import execute_plan
from repro.sparse import random_block_sparse
from repro.tiling import random_tiling

#: Worker counts to sweep (one worker per planned rank; p=N, q=1 grids).
WORKER_COUNTS = (1, 2, 4)

#: The reduced sweep ``--small`` (and ``make bench-smoke``) runs.
SMALL_WORKER_COUNTS = (1, 2)


def _problem(seed=0, small=False):
    # Fat tiles so each GEMM is BLAS-bound: per-task interpreter overhead
    # and the fixed multi-process costs (fork + scatter + shared-memory
    # packing) must be amortized for the speedup column to mean anything.
    # The small variant keeps the same shape at smoke-test cost.
    if small:
        rows = random_tiling(800, 120, 240, seed=seed)
        inner = random_tiling(3200, 120, 240, seed=seed + 1)
    else:
        rows = random_tiling(1200, 150, 300, seed=seed)
        inner = random_tiling(4800, 150, 300, seed=seed + 1)
    a = random_block_sparse(rows, inner, 0.6, seed=seed + 2)
    b = random_block_sparse(inner, inner, 0.6, seed=seed + 3)
    return a, b


def _sweep(small=False, repeats=1):
    a, b = _problem(small=small)
    a_shape, b_shape = a.sparse_shape(), b.sparse_shape()
    points = []
    for nworkers in SMALL_WORKER_COUNTS if small else WORKER_COUNTS:
        plan = inspect(a_shape, b_shape, summit(nworkers), p=nworkers)
        # Best-of-N timing: scheduler noise on a loaded host only ever
        # slows a run down, so the minimum is the honest measurement.
        t_serial = t_dist = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            c_serial, _ = execute_plan(plan, a, b)
            t_serial = min(t_serial, time.perf_counter() - t0)
            t0 = time.perf_counter()
            c_dist, report = execute_plan_distributed(plan, a, b)
            t_dist = min(t_dist, time.perf_counter() - t0)
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
        points.append((nworkers, t_serial, t_dist, report))
    return points


def sweep_payload(small=False) -> dict:
    """Run the sweep and shape it for ``BENCH_dist.json``.

    Wall-clock seconds are recorded for the human reading the file; the
    regression gate (:mod:`benchmarks.compare`) checks the task counts
    exactly and the serial/dist speedup ratio within a tolerance — the
    two signals that survive a change of host.
    """
    points = []
    for nworkers, t_serial, t_dist, report in _sweep(small=small, repeats=3):
        tasks = report.stats.per_proc_tasks
        points.append(
            {
                "workers": nworkers,
                "serial_s": round(t_serial, 4),
                "dist_s": round(t_dist, 4),
                "speedup": round(t_serial / t_dist, 4),
                "ntasks": report.stats.ntasks,
                "tasks_per_rank": {str(r): tasks[r] for r in sorted(tasks)},
                "heartbeats": report.health.heartbeats if report.health else 0,
            }
        )
    return {"bench": "dist_executor", "small": bool(small), "points": points}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="serial vs multi-process executor sweep (regression data)"
    )
    ap.add_argument("--json", metavar="PATH", default="BENCH_dist.json",
                    help="result file to write (default BENCH_dist.json)")
    ap.add_argument("--small", action="store_true",
                    help="smoke-test problem size (the make bench-smoke mode)")
    args = ap.parse_args(argv)
    payload = sweep_payload(small=args.small)
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for pt in payload["points"]:
        print(f"workers {pt['workers']}: serial {pt['serial_s']:.2f}s, "
              f"dist {pt['dist_s']:.2f}s, speedup {pt['speedup']:.2f}x, "
              f"{pt['ntasks']} tasks")
    print(f"wrote {args.json}: {len(payload['points'])} point(s)")
    return 0


def test_dist_executor_speedup(benchmark):
    from conftest import run_once  # pytest-only dependency; standalone mode skips it

    points = run_once(benchmark, _sweep)
    rows = []
    for nworkers, t_serial, t_dist, report in points:
        tasks = report.stats.per_proc_tasks
        balance = max(tasks.values()) / max(min(tasks.values()), 1)
        util = report.rank_utilization()
        qwait = report.queue_wait_seconds()
        rows.append(
            [nworkers, f"{t_serial:7.2f}", f"{t_dist:7.2f}",
             f"{t_serial / t_dist:6.2f}x", f"{balance:6.2f}",
             " ".join(f"{util.get(r, 0.0):.0%}" for r in sorted(tasks)),
             f"{sum(qwait.values()):6.2f}",
             " ".join(str(tasks[r]) for r in sorted(tasks))]
        )
    print("\nSerial execute_plan vs multi-process executor (same plan, exact match)")
    print(fmt_table(
        ["workers", "serial (s)", "dist (s)", "speedup", "max/min",
         "busy per rank", "qwait (s)", "tasks per rank"],
        rows,
    ))

    for nworkers, _, _, report in points:
        tasks = report.stats.per_proc_tasks
        assert len(tasks) == nworkers
        # Every rank got real work: the flop-sorted mirrored-cyclic dealing
        # keeps the task imbalance within a small factor.
        assert all(n > 0 for n in tasks.values())
        assert max(tasks.values()) <= 3 * min(tasks.values())


if __name__ == "__main__":
    sys.exit(main())
