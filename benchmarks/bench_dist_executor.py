"""Serial executor vs the real multi-process executor on a synthetic plan.

Times :func:`repro.runtime.numeric.execute_plan` against
:func:`repro.dist.execute_plan_distributed` at 1, 2 and 4 workers on one
synthetic block-sparse problem (results are crosschecked bit-for-bit
against the serial run, which is the oracle).  Prints the wall-clock
speedup and the per-rank GEMM-task balance — the observable twin of the
paper's strong-scaling story: real speedup comes from real processes, and
it is bounded by how evenly the column assignment deals out tasks.

On a single-core host the speedup column tops out below 1.0x (N workers
time-slice one CPU and pay the scatter/gather overhead); the balance
column and the bit-for-bit crosscheck are the machine-independent signal.

Standalone mode: ``python benchmarks/bench_dist_executor.py --json
BENCH_dist.json [--small]`` runs the same sweep outside pytest and writes
a machine-readable result file that :mod:`benchmarks.compare` gates CI
against (exact task counts, speedups within a tolerance).
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core import inspect
from repro.dist import FaultPlan, execute_plan_distributed
from repro.experiments.report import fmt_table
from repro.machine import summit
from repro.runtime import execute_plan
from repro.sparse import random_block_sparse
from repro.tiling import random_tiling

#: Worker counts to sweep (one worker per planned rank; p=N, q=1 grids).
WORKER_COUNTS = (1, 2, 4)

#: The reduced sweep ``--small`` (and ``make bench-smoke``) runs.
SMALL_WORKER_COUNTS = (1, 2)


def _problem(seed=0, small=False):
    # Fat tiles so each GEMM is BLAS-bound: per-task interpreter overhead
    # and the fixed multi-process costs (fork + scatter + shared-memory
    # packing) must be amortized for the speedup column to mean anything.
    # The small variant keeps the same shape at smoke-test cost.
    if small:
        rows = random_tiling(800, 120, 240, seed=seed)
        inner = random_tiling(3200, 120, 240, seed=seed + 1)
    else:
        rows = random_tiling(1200, 150, 300, seed=seed)
        inner = random_tiling(4800, 150, 300, seed=seed + 1)
    a = random_block_sparse(rows, inner, 0.6, seed=seed + 2)
    b = random_block_sparse(inner, inner, 0.6, seed=seed + 3)
    return a, b


def _sweep(small=False, repeats=1):
    a, b = _problem(small=small)
    a_shape, b_shape = a.sparse_shape(), b.sparse_shape()
    points = []
    for nworkers in SMALL_WORKER_COUNTS if small else WORKER_COUNTS:
        plan = inspect(a_shape, b_shape, summit(nworkers), p=nworkers)
        # Best-of-N timing: scheduler noise on a loaded host only ever
        # slows a run down, so the minimum is the honest measurement.
        t_serial = t_dist = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            c_serial, _ = execute_plan(plan, a, b)
            t_serial = min(t_serial, time.perf_counter() - t0)
            t0 = time.perf_counter()
            c_dist, report = execute_plan_distributed(plan, a, b)
            t_dist = min(t_dist, time.perf_counter() - t0)
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
        points.append((nworkers, t_serial, t_dist, report))
    return points


def sweep_payload(small=False) -> dict:
    """Run the sweep and shape it for ``BENCH_dist.json``.

    Wall-clock seconds are recorded for the human reading the file; the
    regression gate (:mod:`benchmarks.compare`) checks the task counts
    exactly and the serial/dist speedup ratio within a tolerance — the
    two signals that survive a change of host.
    """
    points = []
    for nworkers, t_serial, t_dist, report in _sweep(small=small, repeats=3):
        tasks = report.stats.per_proc_tasks
        # Whole-trace busy seconds per blame bucket (gemm, qwait, ...): the
        # regression gate prints their growth when the speedup regresses,
        # so a CI failure names the culprit instead of just the ratio.
        buckets = report.attribution().trace_buckets
        points.append(
            {
                "workers": nworkers,
                "serial_s": round(t_serial, 4),
                "dist_s": round(t_dist, 4),
                "speedup": round(t_serial / t_dist, 4),
                "ntasks": report.stats.ntasks,
                "tasks_per_rank": {str(r): tasks[r] for r in sorted(tasks)},
                "heartbeats": report.health.heartbeats if report.health else 0,
                "buckets": {b: round(s, 4) for b, s in sorted(buckets.items())},
            }
        )
    return {"bench": "dist_executor", "small": bool(small), "points": points}


def skew_payload(repeats=2) -> dict:
    """The skewed-plan scenario: one dragging rank, rebalance off vs on.

    Rank 0 sleeps a fixed delay on every GEMM task (the ``slow`` fault),
    so without rebalancing the makespan is pinned to the straggler.  With
    ``rebalance=True`` the coordinator steals its unstarted blocks and
    hands them to the ranks that finished — the measured
    ``makespan_ratio`` (off/on) is the benefit.  Sleep-dominated timing
    makes the ratio far more host-stable than raw seconds; the gate
    checks the ratio shows a real reduction and that blocks actually
    moved.
    """
    rows = random_tiling(300, 20, 80, seed=0)
    inner = random_tiling(900, 20, 80, seed=1)
    a = random_block_sparse(rows, inner, 0.5, seed=2)
    b = random_block_sparse(inner, inner, 0.5, seed=3)
    plan = inspect(a.sparse_shape(), b.sparse_shape(), summit(3), p=3)
    delay_s = 0.02
    kwargs = dict(
        fault_plan=FaultPlan.slow(0, at_task=1, seconds=delay_s),
        heartbeat_interval=0.05,
        straggler_fraction=0.5,
    )
    c_serial, _ = execute_plan(plan, a, b)
    t_off = t_on = float("inf")
    rebalanced = handoffs = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        c_dist, _ = execute_plan_distributed(plan, a, b, **kwargs)
        t_off = min(t_off, time.perf_counter() - t0)
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
        t0 = time.perf_counter()
        c_dist, report = execute_plan_distributed(
            plan, a, b, rebalance=True, **kwargs
        )
        t_on = min(t_on, time.perf_counter() - t0)
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
        rebalanced = max(rebalanced, report.blocks_rebalanced)
        handoffs = max(handoffs, report.handoffs)
    return {
        "workers": 3,
        "slow_rank": 0,
        "delay_s": delay_s,
        "ntasks": report.stats.ntasks,
        "off_s": round(t_off, 4),
        "on_s": round(t_on, 4),
        "makespan_ratio": round(t_off / t_on, 4),
        "blocks_rebalanced": rebalanced,
        "handoffs": handoffs,
    }


def serve_payload(repeats=2) -> dict:
    """The serving-layer scenario: cold first job vs warm repeat job.

    Two identical jobs run back to back through one
    :class:`~repro.serve.ContractionService`.  B is a
    :class:`~repro.runtime.DelayedGeneratedCollection` whose per-tile
    generation sleeps a fixed delay, standing in for expensive integral
    evaluation: the cold job pays every sleep, the warm job reads the
    tiles from the pool workers' process-lifetime caches and pays none.
    Sleep-dominated timing makes ``warm_speedup`` (cold/warm wall time)
    host-stable; the gate requires >= 1.5x plus actual warm hits and no
    respawned processes.
    """
    from repro.runtime import DelayedGeneratedCollection
    from repro.serve import ContractionService

    rows = random_tiling(200, 20, 80, seed=0)
    inner = random_tiling(600, 20, 80, seed=1)
    a = random_block_sparse(rows, inner, 0.5, seed=2)
    b_shape = random_block_sparse(inner, inner, 0.5, seed=3).sparse_shape()
    delay_s = 0.02
    b = DelayedGeneratedCollection(b_shape, seed=4, gen_delay_s=delay_s)
    plan = inspect(a.sparse_shape(), b.shape, summit(2), p=1)
    c_serial, _ = execute_plan(plan, a, b.empty_clone())
    t_cold = t_warm = float("inf")
    warm_hits = spawns = 0
    for _ in range(repeats):
        svc = ContractionService(plan.grid.nprocs)
        try:
            t0 = time.perf_counter()
            out, _ = svc.result(svc.submit(plan, a, b.empty_clone()), timeout=300)
            t_cold = min(t_cold, time.perf_counter() - t0)
            assert np.array_equal(c_serial.to_dense(), out.to_dense())
            t0 = time.perf_counter()
            out, report = svc.result(
                svc.submit(plan, a, b.empty_clone()), timeout=300
            )
            t_warm = min(t_warm, time.perf_counter() - t0)
            assert np.array_equal(c_serial.to_dense(), out.to_dense())
            warm_hits = max(warm_hits, report.b_store_hits)
            spawns = svc.pool.spawns
        finally:
            svc.shutdown()
    return {
        "workers": plan.grid.nprocs,
        "gen_delay_s": delay_s,
        "ntasks": report.stats.ntasks,
        "cold_s": round(t_cold, 4),
        "warm_s": round(t_warm, 4),
        "warm_speedup": round(t_cold / t_warm, 4),
        "warm_b_hits": warm_hits,
        "spawns": spawns,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="serial vs multi-process executor sweep (regression data)"
    )
    ap.add_argument("--json", metavar="PATH", default="BENCH_dist.json",
                    help="result file to write (default BENCH_dist.json)")
    ap.add_argument("--small", action="store_true",
                    help="smoke-test problem size (the make bench-smoke mode)")
    args = ap.parse_args(argv)
    payload = sweep_payload(small=args.small)
    payload["skew"] = skew_payload()
    payload["serve"] = serve_payload()
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for pt in payload["points"]:
        print(f"workers {pt['workers']}: serial {pt['serial_s']:.2f}s, "
              f"dist {pt['dist_s']:.2f}s, speedup {pt['speedup']:.2f}x, "
              f"{pt['ntasks']} tasks")
    sk = payload["skew"]
    print(f"skew (rank {sk['slow_rank']} slowed {sk['delay_s']}s/task): "
          f"rebalance off {sk['off_s']:.2f}s, on {sk['on_s']:.2f}s, "
          f"makespan {sk['makespan_ratio']:.2f}x, "
          f"{sk['blocks_rebalanced']} block(s) over {sk['handoffs']} "
          f"handoff(s)")
    sv = payload["serve"]
    print(f"serve (B generation slowed {sv['gen_delay_s']}s/tile): "
          f"cold {sv['cold_s']:.2f}s, warm {sv['warm_s']:.2f}s, "
          f"warm speedup {sv['warm_speedup']:.2f}x, "
          f"{sv['warm_b_hits']} warm B hit(s), {sv['spawns']} spawn(s)")
    print(f"wrote {args.json}: {len(payload['points'])} point(s)")
    return 0


def test_dist_executor_speedup(benchmark):
    from conftest import run_once  # pytest-only dependency; standalone mode skips it

    points = run_once(benchmark, _sweep)
    rows = []
    for nworkers, t_serial, t_dist, report in points:
        tasks = report.stats.per_proc_tasks
        balance = max(tasks.values()) / max(min(tasks.values()), 1)
        util = report.rank_utilization()
        qwait = report.queue_wait_seconds()
        rows.append(
            [nworkers, f"{t_serial:7.2f}", f"{t_dist:7.2f}",
             f"{t_serial / t_dist:6.2f}x", f"{balance:6.2f}",
             " ".join(f"{util.get(r, 0.0):.0%}" for r in sorted(tasks)),
             f"{sum(qwait.values()):6.2f}",
             " ".join(str(tasks[r]) for r in sorted(tasks))]
        )
    print("\nSerial execute_plan vs multi-process executor (same plan, exact match)")
    print(fmt_table(
        ["workers", "serial (s)", "dist (s)", "speedup", "max/min",
         "busy per rank", "qwait (s)", "tasks per rank"],
        rows,
    ))

    for nworkers, _, _, report in points:
        tasks = report.stats.per_proc_tasks
        assert len(tasks) == nworkers
        # Every rank got real work: the flop-sorted mirrored-cyclic dealing
        # keeps the task imbalance within a small factor.
        assert all(n > 0 for n in tasks.values())
        assert max(tasks.values()) <= 3 * min(tasks.values())


if __name__ == "__main__":
    sys.exit(main())
