"""Serial executor vs the real multi-process executor on a synthetic plan.

Times :func:`repro.runtime.numeric.execute_plan` against
:func:`repro.dist.execute_plan_distributed` at 1, 2 and 4 workers on one
synthetic block-sparse problem (results are crosschecked bit-for-bit
against the serial run, which is the oracle).  Prints the wall-clock
speedup and the per-rank GEMM-task balance — the observable twin of the
paper's strong-scaling story: real speedup comes from real processes, and
it is bounded by how evenly the column assignment deals out tasks.

On a single-core host the speedup column tops out below 1.0x (N workers
time-slice one CPU and pay the scatter/gather overhead); the balance
column and the bit-for-bit crosscheck are the machine-independent signal.
"""

import time

import numpy as np

from conftest import run_once

from repro.core import inspect
from repro.dist import execute_plan_distributed
from repro.experiments.report import fmt_table
from repro.machine import summit
from repro.runtime import execute_plan
from repro.sparse import random_block_sparse
from repro.tiling import random_tiling

#: Worker counts to sweep (one worker per planned rank; p=N, q=1 grids).
WORKER_COUNTS = (1, 2, 4)


def _problem(seed=0):
    # Fat tiles so each GEMM is BLAS-bound: per-task interpreter overhead
    # and the fixed multi-process costs (fork + scatter + shared-memory
    # packing) must be amortized for the speedup column to mean anything.
    rows = random_tiling(1200, 150, 300, seed=seed)
    inner = random_tiling(4800, 150, 300, seed=seed + 1)
    a = random_block_sparse(rows, inner, 0.6, seed=seed + 2)
    b = random_block_sparse(inner, inner, 0.6, seed=seed + 3)
    return a, b


def _sweep():
    a, b = _problem()
    a_shape, b_shape = a.sparse_shape(), b.sparse_shape()
    points = []
    for nworkers in WORKER_COUNTS:
        plan = inspect(a_shape, b_shape, summit(nworkers), p=nworkers)
        t0 = time.perf_counter()
        c_serial, _ = execute_plan(plan, a, b)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        c_dist, report = execute_plan_distributed(plan, a, b)
        t_dist = time.perf_counter() - t0
        assert np.array_equal(c_serial.to_dense(), c_dist.to_dense())
        points.append((nworkers, t_serial, t_dist, report))
    return points


def test_dist_executor_speedup(benchmark):
    points = run_once(benchmark, _sweep)
    rows = []
    for nworkers, t_serial, t_dist, report in points:
        tasks = report.stats.per_proc_tasks
        balance = max(tasks.values()) / max(min(tasks.values()), 1)
        util = report.rank_utilization()
        qwait = report.queue_wait_seconds()
        rows.append(
            [nworkers, f"{t_serial:7.2f}", f"{t_dist:7.2f}",
             f"{t_serial / t_dist:6.2f}x", f"{balance:6.2f}",
             " ".join(f"{util.get(r, 0.0):.0%}" for r in sorted(tasks)),
             f"{sum(qwait.values()):6.2f}",
             " ".join(str(tasks[r]) for r in sorted(tasks))]
        )
    print("\nSerial execute_plan vs multi-process executor (same plan, exact match)")
    print(fmt_table(
        ["workers", "serial (s)", "dist (s)", "speedup", "max/min",
         "busy per rank", "qwait (s)", "tasks per rank"],
        rows,
    ))

    for nworkers, _, _, report in points:
        tasks = report.stats.per_proc_tasks
        assert len(tasks) == nworkers
        # Every rank got real work: the flop-sorted mirrored-cyclic dealing
        # keeps the task imbalance within a small factor.
        assert all(n > 0 for n in tasks.values())
        assert max(tasks.values()) <= 3 * min(tasks.values())
