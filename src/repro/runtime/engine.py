"""Discrete-event simulation engine.

A minimal but faithful list-scheduling simulator: tasks with dependency
edges (dataflow *and* control flow — the engine does not distinguish, just
like PaRSEC's scheduler sees one merged precedence relation) are executed
on named :class:`Resource` s with integer capacity.  A task becomes ready
when all predecessors finished; each resource runs up to ``capacity``
tasks at once, picking ready tasks by ``(priority, id)``.

The engine is deliberately generic — the plan-specific structure lives in
:mod:`repro.runtime.dag` — so tests can exercise it with hand-built graphs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.runtime.tracing import Trace
from repro.util.validation import require


@dataclass
class SimTask:
    """A simulated task.

    Attributes
    ----------
    name:
        Unique identifier.
    resource:
        Name of the resource it occupies while running.
    duration:
        Seconds of resource occupancy.
    deps:
        Names of tasks that must finish first.
    priority:
        Lower runs first among ready tasks on the same resource.
    """

    name: str
    resource: str
    duration: float
    deps: tuple[str, ...] = ()
    priority: int = 0


@dataclass
class Resource:
    """A named execution resource with integer capacity."""

    name: str
    capacity: int = 1

    def __post_init__(self) -> None:
        require(self.capacity >= 1, "capacity must be >= 1")


class DiscreteEventEngine:
    """Executes a task graph and records a :class:`Trace`."""

    def __init__(self, resources: list[Resource]):
        self.resources = {r.name: r for r in resources}
        require(len(self.resources) == len(resources), "duplicate resource names")
        self._tasks: dict[str, SimTask] = {}

    def add_task(self, task: SimTask) -> None:
        require(task.name not in self._tasks, f"duplicate task {task.name!r}")
        require(task.resource in self.resources, f"unknown resource {task.resource!r}")
        require(task.duration >= 0, "duration must be >= 0")
        self._tasks[task.name] = task

    def add_tasks(self, tasks) -> None:
        for t in tasks:
            self.add_task(t)

    @property
    def ntasks(self) -> int:
        return len(self._tasks)

    def tasks(self) -> dict[str, SimTask]:
        """A snapshot of the loaded tasks by name (read-only view for
        static analysis; mutating the returned dict does not affect the
        engine)."""
        return dict(self._tasks)

    def run(self, metrics=None) -> Trace:
        """Simulate to completion; raises on cycles or missing deps.

        ``metrics`` (a :class:`repro.runtime.metrics.MetricsRegistry`)
        makes the engine emit the same series the real executor does —
        ``repro_sim_tasks_total`` and the per-task
        ``repro_sim_task_seconds`` histogram — so simulated and measured
        runs of one plan expose comparable metrics.
        """
        tasks = self._tasks
        indeg: dict[str, int] = {}
        succ: dict[str, list[str]] = {name: [] for name in tasks}
        for t in tasks.values():
            cnt = 0
            for d in t.deps:
                require(d in tasks, f"task {t.name!r} depends on unknown {d!r}")
                succ[d].append(t.name)
                cnt += 1
            indeg[t.name] = cnt

        ready: dict[str, list[tuple[int, int, str]]] = {r: [] for r in self.resources}
        seq = itertools.count()
        for name, t in tasks.items():
            if indeg[name] == 0:
                heapq.heappush(ready[t.resource], (t.priority, next(seq), name))

        in_flight: dict[str, int] = {r: 0 for r in self.resources}
        completions: list[tuple[float, int, str]] = []
        trace = Trace(
            capacities={name: r.capacity for name, r in self.resources.items()}
        )
        now = 0.0
        done = 0

        def launch(res_name: str) -> None:
            res = self.resources[res_name]
            q = ready[res_name]
            while q and in_flight[res_name] < res.capacity:
                _, _, name = heapq.heappop(q)
                t = tasks[name]
                in_flight[res_name] += 1
                end = now + t.duration
                heapq.heappush(completions, (end, next(seq), name))
                trace.add(name, res_name, now, end)

        for r in self.resources:
            launch(r)

        while completions:
            now, _, name = heapq.heappop(completions)
            t = tasks[name]
            in_flight[t.resource] -= 1
            done += 1
            for s in succ[name]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    st = tasks[s]
                    heapq.heappush(ready[st.resource], (st.priority, next(seq), s))
            # Drain every resource: a completion may both free a slot here
            # and ready tasks elsewhere.
            for r in self.resources:
                launch(r)

        if done != len(tasks):
            stuck = [n for n, d in indeg.items() if d > 0]
            raise ValueError(
                f"task graph has a dependency cycle; {len(stuck)} tasks never ran "
                f"(e.g. {stuck[:5]})"
            )
        if metrics is not None and metrics.enabled:
            counter = metrics.counter(
                "repro_sim_tasks_total", "simulated tasks executed"
            )
            hist = metrics.histogram(
                "repro_sim_task_seconds", "simulated task durations"
            )
            counter.inc(done)
            for e in trace.events:
                hist.observe(e.duration)
            metrics.gauge(
                "repro_sim_makespan_seconds", "simulated makespan", agg="max"
            ).set(trace.makespan)
        return trace
