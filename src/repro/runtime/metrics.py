"""A process-local metrics registry with a snapshot/merge protocol.

The live-telemetry layer's vocabulary: **counters** (monotone totals),
**gauges** (instantaneous values with a declared merge aggregation), and
**fixed-bucket histograms** (latency distributions), owned by one
:class:`MetricsRegistry` per process.  The registry is shared by the
simulator (:mod:`repro.runtime.engine`) and the real executor
(:mod:`repro.dist`): both sides increment the same metric names, so a
simulated run and a real run of one plan expose comparable series.

Design constraints, in order:

* **zero-cost when disabled** — a disabled registry hands out a single
  no-op metric object; the hot loops pay one attribute lookup and an
  empty call, never a dict update or clock read;
* **picklable snapshots** — workers cannot ship live metric objects
  across processes, so :meth:`MetricsRegistry.snapshot` freezes the
  registry into a :class:`MetricsSnapshot` (plain dicts and tuples) that
  rides inside heartbeats and worker reports;
* **merge-able** — :meth:`MetricsSnapshot.merge` combines per-rank
  snapshots into fleet totals: counters sum, gauges aggregate by their
  declared ``agg`` (``max`` for high-watermarks, ``sum`` for additive
  levels, ``last`` for configuration stamps), histogram buckets add
  elementwise (same buckets required — bucket layouts are part of the
  metric's identity);
* **Prometheus text exposition** — :meth:`MetricsSnapshot.to_prometheus`
  renders the standard ``# HELP`` / ``# TYPE`` / sample format, with
  ``_bucket{le="..."}`` / ``_sum`` / ``_count`` series per histogram, so
  ``repro metrics`` output can be scraped or diffed by stock tooling.

Naming convention (enforced loosely, documented in
``docs/architecture.md``): ``repro_<area>_<name>[_total|_bytes|_seconds]``
— counters end in ``_total``, byte gauges in ``_bytes``, duration
histograms in ``_seconds``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

#: Default histogram buckets (seconds): ~100 us .. ~10 s latencies.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Gauge merge aggregations.
GAUGE_AGGS = ("max", "sum", "last")


class Counter:
    """A monotone total.  ``inc`` only; negative increments are rejected."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n


class Gauge:
    """An instantaneous value with a declared cross-rank aggregation."""

    __slots__ = ("name", "help", "agg", "value")

    def __init__(self, name: str, help: str = "", agg: str = "max"):
        if agg not in GAUGE_AGGS:
            raise ValueError(f"gauge agg must be one of {GAUGE_AGGS}, got {agg!r}")
        self.name = name
        self.help = help
        self.agg = agg
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def set_max(self, v: float) -> None:
        """High-watermark update: keep the larger of the two."""
        if v > self.value:
            self.value = float(v)


class Histogram:
    """A fixed-bucket histogram (cumulative counts computed at snapshot).

    ``buckets`` are the upper bounds of the finite buckets, strictly
    increasing; observations above the last bound land only in the
    implicit ``+Inf`` bucket.  ``observe`` is one ``bisect`` plus one
    list increment — cheap enough for per-chunk instrumentation.
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(set(buckets)):
            raise ValueError(f"histogram buckets must be strictly increasing: {buckets}")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # trailing slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.buckets, v)] += 1
        self.sum += v
        self.count += 1


class _NullMetric:
    """The one no-op metric a disabled registry hands out for every name."""

    __slots__ = ()

    def inc(self, n: float = 1.0) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def set_max(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass


_NULL = _NullMetric()


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen histogram state: per-bucket counts (not yet cumulative)."""

    buckets: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float
    count: int


@dataclass
class MetricsSnapshot:
    """A picklable freeze of one registry (or a merge of several).

    ``gauge_aggs`` remembers each gauge's declared aggregation so a later
    merge applies the right combiner; ``helps`` carries the help strings
    into the Prometheus exposition.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    gauge_aggs: dict[str, str] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)
    helps: dict[str, str] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def get(self, name: str, default: float = 0.0) -> float:
        """Convenience lookup across counters and gauges."""
        if name in self.counters:
            return self.counters[name]
        return self.gauges.get(name, default)

    @classmethod
    def merge(cls, parts) -> "MetricsSnapshot":
        """Combine snapshots: counters sum, gauges by ``agg``, buckets add."""
        out = cls()
        for snap in parts:
            if snap is None:
                continue
            for name, v in snap.counters.items():
                out.counters[name] = out.counters.get(name, 0.0) + v
            for name, v in snap.gauges.items():
                agg = snap.gauge_aggs.get(name, "max")
                out.gauge_aggs[name] = agg
                if name not in out.gauges:
                    out.gauges[name] = v
                elif agg == "sum":
                    out.gauges[name] += v
                elif agg == "last":
                    out.gauges[name] = v
                else:  # max
                    out.gauges[name] = max(out.gauges[name], v)
            for name, h in snap.histograms.items():
                prev = out.histograms.get(name)
                if prev is None:
                    out.histograms[name] = h
                else:
                    if prev.buckets != h.buckets:
                        raise ValueError(
                            f"histogram {name!r} merged with mismatched "
                            f"buckets; bucket layout is part of the metric"
                        )
                    out.histograms[name] = HistogramSnapshot(
                        buckets=prev.buckets,
                        counts=tuple(a + b for a, b in zip(prev.counts, h.counts)),
                        sum=prev.sum + h.sum,
                        count=prev.count + h.count,
                    )
            out.helps.update(snap.helps)
        return out

    def to_prometheus(self) -> str:
        """The standard text exposition format (version 0.0.4).

        One ``# HELP`` + ``# TYPE`` header per metric family, samples
        below it; histograms expose cumulative ``_bucket{le="..."}``
        series ending at ``le="+Inf"``, plus ``_sum`` and ``_count``.
        """
        lines: list[str] = []

        def header(name: str, kind: str) -> None:
            help_text = self.helps.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        for name in sorted(self.counters):
            header(name, "counter")
            lines.append(f"{name} {_fmt(self.counters[name])}")
        for name in sorted(self.gauges):
            header(name, "gauge")
            lines.append(f"{name} {_fmt(self.gauges[name])}")
        for name in sorted(self.histograms):
            h = self.histograms[name]
            header(name, "histogram")
            cum = 0
            for bound, n in zip(h.buckets, h.counts):
                cum += n
                lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cum}')
            cum += h.counts[-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cum}')
            lines.append(f"{name}_sum {_fmt(h.sum)}")
            lines.append(f"{name}_count {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(v: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


class MetricsRegistry:
    """The per-process home of every live metric.

    Metric constructors are idempotent by name (the first call fixes the
    help/agg/buckets; later calls return the same object), so independent
    subsystems can ask for ``registry.counter("repro_x_total")`` without
    coordinating creation order.  A disabled registry returns the shared
    no-op metric and snapshots to an empty :class:`MetricsSnapshot`.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, help: str = ""):
        if not self.enabled:
            return _NULL
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name, help)
        return c

    def gauge(self, name: str, help: str = "", agg: str = "max"):
        if not self.enabled:
            return _NULL
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name, help, agg)
        return g

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if not self.enabled:
            return _NULL
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, help, buckets)
        return h

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the registry into a picklable, merge-able snapshot."""
        snap = MetricsSnapshot()
        if not self.enabled:
            return snap
        for name, c in self._counters.items():
            snap.counters[name] = c.value
            if c.help:
                snap.helps[name] = c.help
        for name, g in self._gauges.items():
            snap.gauges[name] = g.value
            snap.gauge_aggs[name] = g.agg
            if g.help:
                snap.helps[name] = g.help
        for name, h in self._histograms.items():
            snap.histograms[name] = HistogramSnapshot(
                buckets=h.buckets, counts=tuple(h.counts), sum=h.sum, count=h.count
            )
            if h.help:
                snap.helps[name] = h.help
        return snap
