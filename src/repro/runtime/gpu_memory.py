"""GPU memory manager.

PaRSEC enforces the paper's memory strategy indirectly through control
edges; here the same invariants are enforced directly: a
:class:`GpuMemory` tracks named reservations against a capacity and raises
on overflow, and records the high-water mark so tests can assert that the
50 % block + 25 % chunk + 25 % prefetch discipline never exceeds device
memory.
"""

from __future__ import annotations

from repro.util.units import fmt_bytes


class GpuMemoryError(RuntimeError):
    """A reservation would exceed GPU memory."""


class GpuMemory:
    """Byte-granular reservation tracker for one GPU."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity_bytes)
        self._used = 0
        self._peak = 0
        self._reservations: dict[str, int] = {}

    @property
    def used(self) -> int:
        """Currently reserved bytes."""
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    @property
    def peak(self) -> int:
        """High-water mark over the object's lifetime."""
        return self._peak

    def reserve(self, name: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``name``; raises on overflow/duplicate."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("reservation must be non-negative")
        if name in self._reservations:
            raise GpuMemoryError(f"reservation {name!r} already held")
        if self._used + nbytes > self.capacity:
            raise GpuMemoryError(
                f"reserving {fmt_bytes(nbytes)} for {name!r} exceeds capacity: "
                f"{fmt_bytes(self._used)} used of {fmt_bytes(self.capacity)}"
            )
        self._reservations[name] = nbytes
        self._used += nbytes
        self._peak = max(self._peak, self._used)

    def release(self, name: str) -> None:
        """Release the reservation ``name``."""
        try:
            nbytes = self._reservations.pop(name)
        except KeyError:
            raise GpuMemoryError(f"no reservation named {name!r}") from None
        self._used -= nbytes

    def holds(self, name: str) -> bool:
        return name in self._reservations

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GpuMemory(used={fmt_bytes(self._used)}/{fmt_bytes(self.capacity)}, "
            f"peak={fmt_bytes(self._peak)})"
        )
