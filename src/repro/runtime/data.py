"""Tile sources: concrete matrices and on-demand generated collections.

The paper's B is never stored: "generation functions allow to instantiate
any tile when needed", with the runtime caching each tile "as long as [it
is] needed by any task, and discarded after this", and the algorithm
guaranteeing each tile is "instantiated at most once per node".

:class:`GeneratedCollection` reproduces that life-cycle, *including* the
reproducibility property: tile values depend only on ``(seed, tile id)``
(per-tile child RNGs), never on instantiation order, so the numeric result
of a run is schedule-independent.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Protocol

import numpy as np

from repro.sparse.matrix import BlockSparseMatrix
from repro.sparse.shape import SparseShape
from repro.util.rng import resolve_rng, spawn_rng


class TileSource(Protocol):
    """Anything the numeric executor can pull B tiles from."""

    def has_tile(self, k: int, j: int) -> bool:
        """Whether tile ``(k, j)`` exists (is structurally nonzero)."""
        ...

    def tile(self, proc: int, k: int, j: int) -> np.ndarray:
        """The tile's data, materialized for process ``proc``."""
        ...

    def tile_nbytes(self, k: int, j: int) -> int:
        """Byte size of the tile."""
        ...


class MatrixSource:
    """Adapter exposing a concrete :class:`BlockSparseMatrix` as a source."""

    def __init__(self, matrix: BlockSparseMatrix):
        self.matrix = matrix
        self.access_counts: Counter = Counter()

    def has_tile(self, k: int, j: int) -> bool:
        return self.matrix.has_tile(k, j)

    def tile(self, proc: int, k: int, j: int) -> np.ndarray:
        self.access_counts[(proc, k, j)] += 1
        return self.matrix.get_tile(k, j)

    def tile_nbytes(self, k: int, j: int) -> int:
        return self.matrix.get_tile(k, j).nbytes

    def sparse_shape(self, with_norms: bool = False) -> SparseShape:
        return self.matrix.sparse_shape(with_norms=with_norms)


class GeneratedCollection:
    """An on-demand tile collection with per-process caching.

    Parameters
    ----------
    shape:
        The occupancy of the virtual matrix.
    fill:
        ``"random"`` (standard normal) or ``"ones"``.
    seed:
        Determines all tile values, independent of instantiation order.
    """

    def __init__(self, shape: SparseShape, fill: str = "random", seed=None):
        if fill not in ("random", "ones"):
            raise ValueError(f"unknown fill {fill!r}; use 'random' or 'ones'")
        self.shape = shape
        self.fill = fill
        self._rng = resolve_rng(seed)
        self._cache: dict[tuple[int, int, int], np.ndarray] = {}
        self.instantiations: Counter = Counter()

    def has_tile(self, k: int, j: int) -> bool:
        return self.shape.has_tile(k, j)

    def tile_shape(self, k: int, j: int) -> tuple[int, int]:
        return (self.shape.rows.tile_size(k), self.shape.cols.tile_size(j))

    def tile_nbytes(self, k: int, j: int) -> int:
        m, n = self.tile_shape(k, j)
        return m * n * 8

    def tile(self, proc: int, k: int, j: int) -> np.ndarray:
        """Materialize tile ``(k, j)`` on process ``proc`` (cached)."""
        if not self.has_tile(k, j):
            raise KeyError(f"tile ({k},{j}) is structurally zero")
        key = (proc, k, j)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        data = self._generate(k, j)
        self._cache[key] = data
        self.instantiations[key] += 1
        return data

    def generate_tile(self, k: int, j: int) -> np.ndarray:
        """A fresh copy of tile ``(k, j)``'s values, bypassing the cache.

        Deterministic in ``(seed, tile id)`` only, so any process holding an
        equal-state collection (e.g. a distributed worker that received one
        by pickling) produces bit-identical tiles.
        """
        if not self.has_tile(k, j):
            raise KeyError(f"tile ({k},{j}) is structurally zero")
        return self._generate(k, j)

    def _generate(self, k: int, j: int) -> np.ndarray:
        tshape = self.tile_shape(k, j)
        if self.fill == "ones":
            return np.ones(tshape)
        child = spawn_rng(self._rng, k * self.shape.ntile_cols + j)
        return child.standard_normal(tshape)

    def evict(self, proc: int, k: int, j: int) -> None:
        """Discard the cached tile (the end of its PaRSEC life-cycle)."""
        self._cache.pop((proc, k, j), None)

    def generated_tiles(self, proc: int | None = None) -> int:
        """Number of tiles instantiated (optionally for one process)."""
        if proc is None:
            return sum(self.instantiations.values())
        return sum(v for (p, _, _), v in self.instantiations.items() if p == proc)

    def max_instantiations_per_proc_tile(self) -> int:
        """The paper's invariant: must be 1 after any run."""
        return max(self.instantiations.values(), default=0)

    def empty_clone(self) -> "GeneratedCollection":
        """An equal-state collection with an empty cache.

        Shares the parent's generator state (generation never advances it),
        so clones — including ones pickled to worker processes — hand out
        bit-identical tiles in any order.  This is what the distributed
        executor scatters to each rank.
        """
        return GeneratedCollection(self.shape, fill=self.fill, seed=self._rng)

    def as_matrix(self) -> BlockSparseMatrix:
        """Materialize the whole collection (tests / small shapes only).

        Values match what :meth:`tile` hands out, because both derive from
        the same per-tile child RNGs.
        """
        out = BlockSparseMatrix(self.shape.rows, self.shape.cols)
        ii, jj = self.shape.nonzero_tiles()
        for k, j in zip(ii.tolist(), jj.tolist()):
            out.set_tile(k, j, self._generate(k, j))
        return out


class DelayedGeneratedCollection(GeneratedCollection):
    """A :class:`GeneratedCollection` whose generation costs wall time.

    Each :meth:`_generate` sleeps ``gen_delay_s`` before producing the
    tile, standing in for the expensive integral/tensor evaluation the
    paper's generation functions perform.  Values are bit-identical to a
    plain collection with the same seed — only the cost differs — so the
    operand fingerprint (and therefore every warm-cache key) matches the
    undelayed twin.  Benchmarks use this to measure cache effectiveness
    with a host-stable, sleep-dominated signal: a warm run skips the
    sleeps, a cold one pays them.
    """

    def __init__(self, shape: SparseShape, fill: str = "random", seed=None,
                 gen_delay_s: float = 0.0):
        super().__init__(shape, fill=fill, seed=seed)
        self.gen_delay_s = gen_delay_s

    def _generate(self, k: int, j: int) -> np.ndarray:
        if self.gen_delay_s > 0.0:
            time.sleep(self.gen_delay_s)
        return super()._generate(k, j)

    def empty_clone(self) -> "DelayedGeneratedCollection":
        return DelayedGeneratedCollection(
            self.shape, fill=self.fill, seed=self._rng,
            gen_delay_s=self.gen_delay_s,
        )
