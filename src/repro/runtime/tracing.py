"""Execution traces, span recording, and utilization queries.

Two producers feed one consumer vocabulary:

* the discrete-event engine (:mod:`repro.runtime.engine`) emits a
  :class:`Trace` of simulated task intervals;
* the real multi-process executor (:mod:`repro.dist`) records *measured*
  spans per rank through a :class:`SpanRecorder` (monotonic clock, bounded
  memory, zero-cost when disabled) and the coordinator merges the per-rank
  :class:`SpanStream` s into the same :class:`Trace`.

Because both ends speak the same ``(task, resource, start, end)`` tuples,
``to_chrome_trace()``, ``utilization()`` and makespan queries work
unchanged on simulated and real runs alike.

Clock alignment: monotonic clocks are not comparable across processes, so
each :class:`SpanRecorder` samples the wall clock *once* at its origin
(``wall_origin``).  The coordinator shifts a rank's spans by
``rank.wall_origin - coordinator.wall_origin`` to place them on the run's
shared timeline; every measured *interval* stays purely monotonic.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.util.units import fmt_time


def rank_of_resource(resource: str) -> int | None:
    """The process rank a resource name encodes, or ``None``.

    The executor's resource vocabulary carries the rank in its second
    dot-field — ``gpu.<rank>.<g>.comp``, ``net.<rank>``, ``cpu.<rank>`` —
    with ``-1`` for the coordinator.  Simulated node-shared resources
    (``net.n0``, ``cpu.n1``) and foreign names return ``None``.
    """
    parts = resource.split(".")
    if len(parts) < 2 or parts[0] not in ("gpu", "net", "cpu"):
        return None
    try:
        return int(parts[1])
    except ValueError:
        return None


@dataclass(frozen=True)
class TraceEvent:
    """One executed task: name, resource, and its time interval."""

    task: str
    resource: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SpanStream:
    """One process's recorded spans plus its clock-alignment sample.

    ``spans`` are ``(task, resource, start, end)`` tuples on the
    recorder's monotonic clock (seconds since its origin); ``wall_origin``
    is the wall-clock instant of that origin, used only to align streams
    from different processes.  ``dropped`` counts spans discarded once the
    recorder's memory bound was hit; the seconds those spans covered are
    accumulated per resource under ``counters["dropped.<resource>"]`` so a
    truncated stream's utilization reads as flagged, not silently low.
    """

    spans: list[tuple[str, str, float, float]] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    dropped: int = 0
    wall_origin: float = 0.0


class SpanRecorder:
    """A per-process span recorder on a monotonic clock.

    Designed for the distributed executor's hot loop:

    * **monotonic** — ``now()`` is ``time.monotonic()`` relative to the
      recorder's origin, so an NTP step can never produce negative
      durations or skewed deadlines;
    * **bounded** — at most ``max_spans`` spans are retained; further
      ``record`` calls bump ``dropped`` and accumulate the lost duration
      per resource in ``counters`` (key ``dropped.<resource>``);
    * **zero-cost when disabled** — ``record``/``count`` return
      immediately, and callers can branch on ``enabled`` to skip clock
      reads entirely.

    Exactly one wall-clock sample is taken (at construction) to stamp
    ``wall_origin`` for cross-process alignment and report labeling.
    """

    __slots__ = ("enabled", "max_spans", "spans", "counters", "dropped",
                 "_origin", "wall_origin")

    def __init__(self, enabled: bool = True, max_spans: int = 200_000,
                 origin: float | None = None):
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: list[tuple[str, str, float, float]] = []
        self.counters: dict[str, float] = {}
        self.dropped = 0
        mono = time.monotonic()
        self._origin = mono if origin is None else origin
        # The one wall-clock read: the wall instant of the monotonic origin.
        self.wall_origin = time.time() - (mono - self._origin)

    @property
    def origin(self) -> float:
        """The monotonic instant spans are measured relative to."""
        return self._origin

    def now(self) -> float:
        """Seconds since the recorder's origin (monotonic)."""
        return time.monotonic() - self._origin

    def record(self, task: str, resource: str, start: float, end: float) -> None:
        """Store one span; drops (and counts) beyond the memory bound.

        A dropped span still charges its duration to the per-resource
        ``dropped.<resource>`` counter, so busy time lost to truncation is
        reported instead of silently deflating utilization.
        """
        if not self.enabled:
            return
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            key = f"dropped.{resource}"
            self.counters[key] = self.counters.get(key, 0.0) + (end - start)
            return
        self.spans.append((task, resource, start, end))

    @contextmanager
    def span(self, task: str, resource: str):
        """Record the duration of a ``with`` body as one span."""
        if not self.enabled:
            yield
            return
        start = self.now()
        try:
            yield
        finally:
            self.record(task, resource, start, self.now())

    def count(self, name: str, n: float = 1) -> None:
        """Bump a named counter (B-service hits, drops, ...)."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + n

    def stream(self) -> SpanStream:
        """A pickle-able snapshot to ship home in a worker report."""
        return SpanStream(
            spans=list(self.spans),
            counters=dict(self.counters),
            dropped=self.dropped,
            wall_origin=self.wall_origin,
        )


@dataclass
class Trace:
    """An ordered record of executed tasks with utilization queries.

    ``capacities`` maps resource names to their parallel capacity
    (defaulting to 1); ``busy_time`` and ``utilization`` normalize by it so
    a capacity-4 resource running 4 tasks at once reports a busy fraction
    of 1.0, not 4.0.
    """

    events: list[TraceEvent] = field(default_factory=list)
    capacities: dict[str, int] = field(default_factory=dict)

    def add(self, task: str, resource: str, start: float, end: float) -> None:
        self.events.append(TraceEvent(task, resource, start, end))

    def extend(self, spans, offset: float = 0.0) -> None:
        """Merge ``(task, resource, start, end)`` tuples, shifted by ``offset``.

        This is how the coordinator folds a rank's :class:`SpanStream` into
        the run trace: ``offset`` re-bases the rank's clock origin onto the
        coordinator's.
        """
        for task, resource, start, end in spans:
            self.events.append(TraceEvent(task, resource, start + offset, end + offset))

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def _capacity(self, resource: str, override) -> int:
        if override is not None and resource in override:
            cap = override[resource]
        else:
            cap = self.capacities.get(resource, 1)
        # A zero/negative capacity entry (e.g. a degenerate machine spec)
        # must degrade to unnormalized busy time, not ZeroDivisionError.
        return max(cap, 1)

    def busy_time(self, resource: str, capacity: int | None = None) -> float:
        """Capacity-normalized busy seconds of a resource.

        With ``capacity`` (or a stored ``capacities`` entry) ``c``, the sum
        of event durations is divided by ``c`` — the time an equivalent
        capacity-1 resource would have been busy.
        """
        cap = capacity if capacity is not None else self.capacities.get(resource, 1)
        cap = max(cap, 1)
        return sum(e.duration for e in self.events if e.resource == resource) / cap

    def utilization(self, capacities: dict[str, int] | None = None) -> dict[str, float]:
        """Busy fraction per resource over the makespan.

        Normalized by each resource's capacity (from ``capacities``, then
        the trace's stored map, then 1), so fractions never exceed 1.0 for
        a correctly simulated multi-capacity resource.
        """
        span = self.makespan
        if span <= 0:
            return {}
        busy: dict[str, float] = defaultdict(float)
        for e in self.events:
            busy[e.resource] += e.duration
        return {
            r: b / (span * self._capacity(r, capacities))
            for r, b in sorted(busy.items())
        }

    def to_chrome_trace(self) -> list[dict]:
        """Chrome ``chrome://tracing`` / Perfetto event list.

        Each task becomes a complete ("X") event with its resource as the
        thread; dump with ``json.dump({"traceEvents": trace.to_chrome_trace()}, f)``
        and load in any trace viewer.

        When resources carry ranks (the executor vocabulary —
        ``gpu.<rank>.<g>.comp``, ``net.<rank>``, ...), each rank becomes
        its own Perfetto process (pid = rank + 1, the coordinator's
        ``-1`` mapping to pid 0) and ``process_name``/``thread_name``
        metadata ("M") events label the lanes, so the viewer shows
        "rank 2 / gpu.2.0.comp" instead of bare numeric ids.  Traces with
        no rank-bearing resources keep the flat single-pid layout.
        """
        resources = sorted({e.resource for e in self.events})
        tids = {r: i for i, r in enumerate(resources)}
        ranks = {r: rank_of_resource(r) for r in resources}
        labeled = any(v is not None for v in ranks.values())
        pids = {
            r: 0 if ranks[r] is None else ranks[r] + 1 for r in resources
        }
        out: list[dict] = []
        if labeled:
            names: dict[int, str] = {}
            for r in resources:
                rank = ranks[r]
                names.setdefault(
                    pids[r],
                    "coordinator" if rank in (None, -1) else f"rank {rank}",
                )
            for pid in sorted(names):
                out.append({"name": "process_name", "ph": "M", "pid": pid,
                            "tid": 0, "args": {"name": names[pid]}})
                out.append({"name": "process_sort_index", "ph": "M",
                            "pid": pid, "tid": 0, "args": {"sort_index": pid}})
            for r in resources:
                out.append({"name": "thread_name", "ph": "M", "pid": pids[r],
                            "tid": tids[r], "args": {"name": r}})
        for e in self.events:
            out.append(
                {
                    "name": e.task,
                    "cat": e.task.split(".")[0],
                    "ph": "X",
                    "ts": e.start * 1e6,
                    "dur": e.duration * 1e6,
                    "pid": pids[e.resource] if labeled else 0,
                    "tid": tids[e.resource],
                    "args": {"resource": e.resource},
                }
            )
        return out

    def gantt(self, width: int = 60) -> str:
        """A coarse text Gantt chart (one line per resource)."""
        span = self.makespan
        if span <= 0:
            return "(empty trace)"
        rows: dict[str, list[str]] = {}
        for e in self.events:
            row = rows.setdefault(e.resource, [" "] * width)
            lo = int(e.start / span * (width - 1))
            hi = max(lo + 1, int(e.end / span * (width - 1)) + 1)
            for x in range(lo, min(hi, width)):
                row[x] = "#"
        lines = [f"makespan {fmt_time(span)}"]
        for r in sorted(rows):
            lines.append(f"{r:>16s} |{''.join(rows[r])}|")
        return "\n".join(lines)
