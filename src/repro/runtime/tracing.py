"""Execution traces from the discrete-event engine."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.util.units import fmt_time


@dataclass(frozen=True)
class TraceEvent:
    """One executed task: name, resource, and its time interval."""

    task: str
    resource: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """An ordered record of executed tasks with utilization queries."""

    events: list[TraceEvent] = field(default_factory=list)

    def add(self, task: str, resource: str, start: float, end: float) -> None:
        self.events.append(TraceEvent(task, resource, start, end))

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def busy_time(self, resource: str) -> float:
        """Total busy seconds of a resource (capacity-1 resources only)."""
        return sum(e.duration for e in self.events if e.resource == resource)

    def utilization(self) -> dict[str, float]:
        """Busy fraction per resource over the makespan."""
        span = self.makespan
        if span <= 0:
            return {}
        busy: dict[str, float] = defaultdict(float)
        for e in self.events:
            busy[e.resource] += e.duration
        return {r: b / span for r, b in sorted(busy.items())}

    def to_chrome_trace(self) -> list[dict]:
        """Chrome ``chrome://tracing`` / Perfetto event list.

        Each task becomes a complete ("X") event with its resource as the
        thread; dump with ``json.dump({"traceEvents": trace.to_chrome_trace()}, f)``
        and load in any trace viewer.
        """
        tids = {r: i for i, r in enumerate(sorted({e.resource for e in self.events}))}
        out = []
        for e in self.events:
            out.append(
                {
                    "name": e.task,
                    "cat": e.task.split(".")[0],
                    "ph": "X",
                    "ts": e.start * 1e6,
                    "dur": e.duration * 1e6,
                    "pid": 0,
                    "tid": tids[e.resource],
                    "args": {"resource": e.resource},
                }
            )
        return out

    def gantt(self, width: int = 60) -> str:
        """A coarse text Gantt chart (one line per resource)."""
        span = self.makespan
        if span <= 0:
            return "(empty trace)"
        rows: dict[str, list[str]] = {}
        for e in self.events:
            row = rows.setdefault(e.resource, [" "] * width)
            lo = int(e.start / span * (width - 1))
            hi = max(lo + 1, int(e.end / span * (width - 1)) + 1)
            for x in range(lo, min(hi, width)):
                row[x] = "#"
        lines = [f"makespan {fmt_time(span)}"]
        for r in sorted(rows):
            lines.append(f"{r:>16s} |{''.join(rows[r])}|")
        return "\n".join(lines)
