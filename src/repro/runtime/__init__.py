"""A PaRSEC-flavoured task runtime, in miniature.

The paper executes its plan through the PaRSEC runtime: tasks connected by
a *dataflow* DAG (correctness) plus a *control-flow* DAG (performance —
forcing the scheduler to respect the block/chunk memory strategy), with
data collections that can generate tiles on demand.  This package rebuilds
those pieces at the fidelity a simulation needs:

* :mod:`~repro.runtime.data` — tile sources, including the on-demand
  generated B collection with its at-most-once-per-process life-cycle;
* :mod:`~repro.runtime.gpu_memory` — a GPU memory manager enforcing the
  50/25/25 budget split;
* :mod:`~repro.runtime.numeric` — in-process *numerical* execution of an
  :class:`~repro.core.plan.ExecutionPlan`: real tiles, real GEMMs, real
  memory accounting — proving the plan computes exactly ``C + A @ B``;
* :mod:`~repro.runtime.engine` — a discrete-event simulator that executes
  the two-DAG task graph on modelled resources (GPU streams, host links,
  core pools, NICs) for fine-grained timing of small instances;
* :mod:`~repro.runtime.dag` — builds the dataflow + control DAGs from a
  plan (the generic PTG of Section 4);
* :mod:`~repro.runtime.tracing` — execution traces and utilization.
"""

from repro.runtime.data import (
    DelayedGeneratedCollection,
    GeneratedCollection,
    MatrixSource,
    TileSource,
)
from repro.runtime.gpu_memory import GpuMemory, GpuMemoryError
from repro.runtime.metrics import MetricsRegistry, MetricsSnapshot
from repro.runtime.numeric import NumericStats, execute_plan
from repro.runtime.engine import DiscreteEventEngine, Resource, SimTask
from repro.runtime.dag import build_task_graph
from repro.runtime.tracing import SpanRecorder, SpanStream, Trace, TraceEvent

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "TileSource",
    "DelayedGeneratedCollection",
    "GeneratedCollection",
    "MatrixSource",
    "GpuMemory",
    "GpuMemoryError",
    "NumericStats",
    "execute_plan",
    "DiscreteEventEngine",
    "Resource",
    "SimTask",
    "build_task_graph",
    "SpanRecorder",
    "SpanStream",
    "Trace",
    "TraceEvent",
]
