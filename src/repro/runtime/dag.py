"""Build the two-DAG task graph of an execution plan.

Section 4 of the paper describes the algorithm as "the superposition of two
DAGs, having the same nodes (the tasks) but different sets of edges": the
*dataflow* DAG (GEMMs depend on their tile transfers, transfers on
generation/reception) and the *control* DAG (architecture-specific edges
that keep the scheduler inside the memory strategy: blocking block loads,
two-deep chunk prefetch).  This module materializes both over the
:class:`~repro.runtime.engine.DiscreteEventEngine` resources:

* ``net.n<node>`` — the node's NIC (A broadcast arrival), shared by
  co-located processes;
* ``cpu.n<node>`` — the node's core pool generating B tiles, likewise
  shared;
* ``gpu.<rank>.<g>.link`` / ``gpu.<rank>.<g>.comp`` — each GPU's
  host-device channel and compute stream.

Granularity ``"chunk"`` aggregates each chunk's GEMMs into one compute
task (the coarse model's resolution); ``"task"`` emits one task per tile
GEMM — the faithful PTG expansion, for small instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import ExecutionPlan
from repro.machine.kernels import GemmKernelModel, GenerationModel
from repro.machine.links import LinkModel, effective_stream_bandwidth
from repro.machine.network import NetworkModel
from repro.machine.spec import MachineSpec
from repro.runtime.engine import DiscreteEventEngine, Resource, SimTask
from repro.util.validation import require_in


@dataclass(frozen=True)
class TaskGraph:
    """An engine loaded with the plan's tasks, plus edge-set metadata."""

    engine: DiscreteEventEngine
    dataflow_edges: int
    control_edges: int
    ntasks: int


def build_task_graph(
    plan: ExecutionPlan,
    machine: MachineSpec,
    granularity: str = "chunk",
) -> TaskGraph:
    """Expand ``plan`` into a simulatable task graph on ``machine``."""
    require_in(granularity, {"chunk", "task"}, "granularity")
    grid = plan.grid
    gpu = machine.gpu
    node = machine.node

    host_aggregate = node.host_link_aggregate / grid.procs_per_node
    h2d_bw = effective_stream_bandwidth(
        gpu.h2d_bandwidth, host_aggregate, max(1, grid.gpus_per_proc)
    )
    link = LinkModel(bandwidth=h2d_bw, latency=node.h2d_latency_s)
    kernel = GemmKernelModel(gpu)
    gen = GenerationModel(node)
    # NIC and core-pool contention between co-located processes is
    # modelled by the shared per-node resources below, so the models use
    # the full node bandwidths here.
    net = NetworkModel(bandwidth=machine.net_bandwidth, latency=machine.net_latency)

    # Co-located processes share their node's NIC and core pool — one
    # resource per *node*, addressed by every resident process.
    def node_of(rank: int) -> int:
        return rank // grid.procs_per_node

    resources: list[Resource] = []
    seen_nodes: set[int] = set()
    for proc in plan.procs:
        r = proc.rank
        n = node_of(r)
        if n not in seen_nodes:
            seen_nodes.add(n)
            resources.append(Resource(f"net.n{n}"))
            resources.append(Resource(f"cpu.n{n}"))
        for g in range(grid.gpus_per_proc):
            resources.append(Resource(f"gpu.{r}.{g}.link"))
            resources.append(Resource(f"gpu.{r}.{g}.comp"))
    engine = DiscreteEventEngine(resources)

    m_sizes = plan.a_shape.rows.sizes
    k_sizes = plan.a_shape.cols.sizes
    n_sizes = plan.b_shape.cols.sizes
    b_csr = plan.b_shape.csr

    df_edges = 0
    cf_edges = 0

    for proc in plan.procs:
        r = proc.rank
        recv_name = f"recv_a.{r}"
        engine.add_task(
            SimTask(
                name=recv_name,
                resource=f"net.n{node_of(r)}",
                duration=net.exchange_time(proc.a_send_bytes, proc.a_recv_bytes),
            )
        )
        for g in range(grid.gpus_per_proc):
            link_res = f"gpu.{r}.{g}.link"
            comp_res = f"gpu.{r}.{g}.comp"
            prev_block_done: str | None = None
            for bi, block in enumerate(proc.gpu_blocks(g)):
                base = f"p{r}.g{g}.b{bi}"
                gen_name = f"gen.{base}"
                engine.add_task(
                    SimTask(
                        name=gen_name,
                        resource=f"cpu.n{node_of(r)}",
                        duration=gen.time(block.b_bytes),
                    )
                )
                load_bc = f"load_bc.{base}"
                deps = [gen_name]
                df_edges += 1
                if prev_block_done is not None:
                    # CONTROL: blocking block streaming — next block's B/C
                    # cannot move until the previous block fully finished.
                    deps.append(prev_block_done)
                    cf_edges += 1
                engine.add_task(
                    SimTask(
                        name=load_bc,
                        resource=link_res,
                        duration=link.time(block.b_bytes, block.b_tile_count),
                        deps=tuple(deps),
                    )
                )

                compute_dones: list[str] = []
                chunk_compute_names: list[list[str]] = []
                for ci, chunk in enumerate(block.chunks):
                    load_a = f"load_a.{base}.c{ci}"
                    deps = [load_bc, recv_name]
                    df_edges += 2
                    if ci >= 2:
                        # CONTROL: two-deep prefetch — chunk ci's tiles may
                        # only arrive once chunk ci-2's GEMMs freed their
                        # quarter of device memory.
                        deps.extend(chunk_compute_names[ci - 2])
                        cf_edges += len(chunk_compute_names[ci - 2])
                    engine.add_task(
                        SimTask(
                            name=load_a,
                            resource=link_res,
                            duration=link.time(chunk.a_bytes, chunk.ntiles),
                            deps=tuple(deps),
                            priority=ci,
                        )
                    )

                    names: list[str] = []
                    if granularity == "chunk":
                        name = f"gemm.{base}.c{ci}"
                        engine.add_task(
                            SimTask(
                                name=name,
                                resource=comp_res,
                                duration=chunk.device_seconds
                                + gpu.kernel_launch_s * chunk.ntasks,
                                deps=(load_a,),
                                priority=ci,
                            )
                        )
                        df_edges += 1
                        names.append(name)
                    else:
                        block_cols = set(block.columns.tolist())
                        t = 0
                        for i, k in zip(chunk.a_rows.tolist(), chunk.a_cols.tolist()):
                            row = b_csr.indices[b_csr.indptr[k] : b_csr.indptr[k + 1]]
                            for j in row.tolist():
                                if j not in block_cols:
                                    continue
                                name = f"gemm.{base}.c{ci}.t{t}"
                                engine.add_task(
                                    SimTask(
                                        name=name,
                                        resource=comp_res,
                                        duration=float(
                                            kernel.time(
                                                m_sizes[i], n_sizes[j], k_sizes[k]
                                            )
                                        ),
                                        deps=(load_a,),
                                        priority=ci,
                                    )
                                )
                                df_edges += 1
                                names.append(name)
                                t += 1
                    chunk_compute_names.append(names)
                    compute_dones.extend(names)

                store_c = f"store_c.{base}"
                engine.add_task(
                    SimTask(
                        name=store_c,
                        resource=link_res,
                        duration=link.time(block.c_bytes, block.c_tile_count),
                        deps=tuple(compute_dones) if compute_dones else (load_bc,),
                        priority=10_000,
                    )
                )
                df_edges += max(len(compute_dones), 1)
                prev_block_done = store_c

    return TaskGraph(
        engine=engine,
        dataflow_edges=df_edges,
        control_edges=cf_edges,
        ntasks=engine.ntasks,
    )


def simulate_des(
    plan: ExecutionPlan, machine: MachineSpec, granularity: str = "chunk"
):
    """Build and run the task graph; returns ``(trace, makespan)``."""
    graph = build_task_graph(plan, machine, granularity=granularity)
    trace = graph.engine.run()
    return trace, trace.makespan
