"""Numeric execution of an :class:`~repro.core.plan.ExecutionPlan`.

This executor walks the plan exactly as the GPUs would — per process, per
GPU, per block, per chunk — but with real NumPy tiles, enforcing the memory
discipline through :class:`~repro.runtime.gpu_memory.GpuMemory` and the
generated-B life-cycle through the tile source.  It proves two things the
performance model alone cannot:

1. **correctness** — the planned task set computes exactly ``C + A @ B``
   (tests compare against the dense reference down to roundoff);
2. **the invariants the paper's control DAG encodes** — block residency
   never exceeds 50 % of GPU memory, a chunk plus its prefetch never
   exceed the other 50 %, B tiles are instantiated at most once per
   process, and every C tile is produced by exactly one process.

The per-process body (:func:`execute_proc_plan`) is shared with the real
multi-process executor in :mod:`repro.dist`: both walk blocks, chunks and
GEMMs in the identical order with identical floating-point operations, so
the distributed result is bit-for-bit the serial result and this executor
doubles as the distributed executor's crosscheck oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.plan import Block, ExecutionPlan, ProcPlan
from repro.runtime.data import MatrixSource, TileSource
from repro.runtime.gpu_memory import GpuMemory
from repro.sparse.matrix import BlockSparseMatrix
from repro.util.validation import require


@dataclass
class NumericStats:
    """Observed execution statistics.

    Attributes
    ----------
    ntasks:
        GEMM tasks actually executed.
    flops:
        Their flop count (2*m*n*k each).
    h2d_bytes, d2h_bytes:
        Host->device traffic (B blocks + A chunks) and C writeback.
    b_tiles_generated:
        Tiles pulled from the B source, summed over processes.
    gpu_peak_bytes:
        Maximum device-memory high-water mark over all GPUs.
    per_proc_tasks:
        Task counts per process (load-balance checks).
    """

    ntasks: int = 0
    flops: float = 0.0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    b_tiles_generated: int = 0
    gpu_peak_bytes: int = 0
    per_proc_tasks: dict[int, int] = field(default_factory=dict)

    @classmethod
    def merge(cls, parts: Iterable["NumericStats"]) -> "NumericStats":
        """Combine per-process (or per-attempt) statistics into a total.

        Counters are summed, ``gpu_peak_bytes`` is the max over parts (each
        part tracks a disjoint set of GPUs), and ``per_proc_tasks`` is the
        union of the per-rank task counts (summed on the rare key overlap,
        e.g. a rank re-executed after a fault).
        """
        out = cls()
        for s in parts:
            out.ntasks += s.ntasks
            out.flops += s.flops
            out.h2d_bytes += s.h2d_bytes
            out.d2h_bytes += s.d2h_bytes
            out.b_tiles_generated += s.b_tiles_generated
            out.gpu_peak_bytes = max(out.gpu_peak_bytes, s.gpu_peak_bytes)
            for rank, n in s.per_proc_tasks.items():
                out.per_proc_tasks[rank] = out.per_proc_tasks.get(rank, 0) + n
        return out


def block_cols_of_k(block: Block, b_csr) -> dict[int, list[int]]:
    """Per-inner-tile list of this block's present B columns, in CSR order."""
    block_cols = set(block.columns.tolist())
    cols_of_k: dict[int, list[int]] = {}
    for k in block.k_tiles.tolist():
        row = b_csr.indices[b_csr.indptr[k] : b_csr.indptr[k + 1]]
        cols_of_k[k] = [j for j in row.tolist() if j in block_cols]
    return cols_of_k


def execute_block(
    block: Block,
    block_name: str,
    *,
    rank: int,
    a_get_tile: Callable[[int, int], np.ndarray],
    b: TileSource,
    cols_of_k: dict[int, list[int]],
    mem: GpuMemory,
    stats: NumericStats,
    tau: float | None,
    alpha: float = 1.0,
    fetch_chunk: Callable[[int, object], list[np.ndarray]] | None = None,
    on_task: Callable[[], None] | None = None,
    on_event: Callable[[str, str, float, float], None] | None = None,
    resource: str = "",
    clock: Callable[[], float] | None = None,
) -> dict[tuple[int, int], np.ndarray]:
    """Run one resident block's chunk stream; returns the device C tiles.

    ``fetch_chunk(ci, chunk)`` may supply prefetched A tiles (in chunk tile
    order) — the distributed worker's double-buffered prefetch thread —
    otherwise tiles come from ``a_get_tile``.  The GEMM order is identical
    either way, which is what makes serial and distributed runs bit-equal.
    """
    c_dev: dict[tuple[int, int], np.ndarray] = {}
    prev_chunk: str | None = None
    for ci, chunk in enumerate(block.chunks):
        chunk_name = f"{block_name}.chunk{ci}"
        # Prefetch discipline: next chunk reserved while the previous is
        # still resident, then the previous freed.
        mem.reserve(chunk_name, chunk.a_bytes)
        if prev_chunk is not None:
            mem.release(prev_chunk)
        prev_chunk = chunk_name
        stats.h2d_bytes += chunk.a_bytes

        a_tiles = fetch_chunk(ci, chunk) if fetch_chunk is not None else None
        t_start = clock() if on_event is not None and clock is not None else 0.0
        for ti, (i, k) in enumerate(zip(chunk.a_rows.tolist(), chunk.a_cols.tolist())):
            a_tile = a_tiles[ti] if a_tiles is not None else a_get_tile(i, k)
            a_norm = np.linalg.norm(a_tile) if tau is not None else None
            for j in cols_of_k[k]:
                b_tile = b.tile(rank, k, j)
                if tau is not None:
                    if a_norm * np.linalg.norm(b_tile) <= tau:
                        continue
                contrib = a_tile @ b_tile
                if alpha != 1.0:
                    contrib *= alpha
                acc = c_dev.get((i, j))
                if acc is None:
                    c_dev[(i, j)] = contrib
                else:
                    acc += contrib
                stats.ntasks += 1
                stats.flops += 2.0 * a_tile.shape[0] * b_tile.shape[1] * a_tile.shape[1]
                if on_task is not None:
                    on_task()
        if on_event is not None and clock is not None:
            on_event(f"{block_name}.chunk{ci}.gemm", resource, t_start, clock())
    if prev_chunk is not None:
        mem.release(prev_chunk)
    return c_dev


def execute_proc_plan(
    proc: ProcPlan,
    a_get_tile: Callable[[int, int], np.ndarray],
    b: TileSource,
    *,
    gpus_per_proc: int,
    gpu_memory_bytes: int,
    b_csr,
    tau: float | None,
    alpha: float = 1.0,
    chunk_fetcher: Callable[[int, int, Block], Callable] | None = None,
    on_task: Callable[[], None] | None = None,
    on_event: Callable[[str, str, float, float], None] | None = None,
    clock: Callable[[], float] | None = None,
    restore_block: Callable[[int, int, Block], dict | None] | None = None,
    on_block: Callable[[int, int, Block, dict], None] | None = None,
    skip_block: Callable[[int, int, Block], bool] | None = None,
) -> tuple[dict[tuple[int, int], np.ndarray], NumericStats]:
    """Execute everything one process rank does; returns ``(C tiles, stats)``.

    This is the unit of work a distributed worker runs for its rank, and the
    loop body the serial :func:`execute_plan` runs once per rank.  B tiles
    are evicted at the end of each block's life-cycle (``b.evict``), C tiles
    are counted as written back (d2h) once per block, exactly as PaRSEC's
    control DAG forces on the real machine.

    Checkpoint hooks: ``restore_block(g, bi, block)`` may return the
    block's finished ``{(i, j): tile}`` dict — the whole block is then
    skipped (no GEMMs, no stats) and the tiles enter ``produced`` as-is;
    ``on_block(g, bi, block, c_dev)`` fires after each *executed* block's
    writeback, which is where the distributed worker journals completed
    work.  Restored blocks are exactly the journaled ones, and journaled
    tiles are bit-identical to recomputed ones, so a resumed run's C
    equals an uninterrupted run's C bit for bit.

    ``skip_block(g, bi, block)`` is the rebalancer's yield point, checked
    *before* the restore hook at every block boundary: a ``True`` return
    drops the block entirely (someone else now owns it — its tiles arrive
    through that owner, so producing them here would violate the
    one-producer-per-tile reduction invariant).
    """
    stats = NumericStats()
    produced: dict[tuple[int, int], np.ndarray] = {}
    for g in range(gpus_per_proc):
        mem = GpuMemory(gpu_memory_bytes)
        resource = f"gpu.{proc.rank}.{g}.comp"
        for bi, block in enumerate(proc.gpu_blocks(g)):
            block_name = f"block{bi}"
            if skip_block is not None and skip_block(g, bi, block):
                continue
            if restore_block is not None:
                restored = restore_block(g, bi, block)
                if restored is not None:
                    produced.update(restored)
                    continue
            mem.reserve(block_name, block.b_bytes + block.c_bytes)
            stats.h2d_bytes += block.b_bytes
            cols_of_k = block_cols_of_k(block, b_csr)
            fetch = chunk_fetcher(g, bi, block) if chunk_fetcher is not None else None
            c_dev = execute_block(
                block,
                block_name,
                rank=proc.rank,
                a_get_tile=a_get_tile,
                b=b,
                cols_of_k=cols_of_k,
                mem=mem,
                stats=stats,
                tau=tau,
                alpha=alpha,
                fetch_chunk=fetch,
                on_task=on_task,
                on_event=on_event,
                resource=resource,
                clock=clock,
            )

            # Writeback: C tiles leave the device once per block.  Within a
            # process, blocks hold disjoint column sets, so no key collides.
            for (i, j), tile in c_dev.items():
                produced[(i, j)] = tile
                stats.d2h_bytes += tile.nbytes
            if on_block is not None:
                on_block(g, bi, block, c_dev)

            # Evict the block's B tiles at end of life-cycle.
            if hasattr(b, "evict"):
                for k, js in cols_of_k.items():
                    for j in js:
                        b.evict(proc.rank, k, j)

            mem.release(block_name)
        stats.gpu_peak_bytes = max(stats.gpu_peak_bytes, mem.peak)
    stats.per_proc_tasks[proc.rank] = stats.ntasks
    return produced, stats


def execute_plan(
    plan: ExecutionPlan,
    a: BlockSparseMatrix,
    b: TileSource | BlockSparseMatrix,
    c: BlockSparseMatrix | None = None,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> tuple[BlockSparseMatrix, NumericStats]:
    """Run the plan numerically; returns ``(C, stats)``.

    ``C <- beta * C + alpha * A @ B`` — the full GEMM semantics the paper
    states (``C <- alpha A B + beta C``); ``c`` (if given) supplies the
    input C.  The result's tilings are ``(a.rows, B cols)``.
    """
    if isinstance(b, BlockSparseMatrix):
        b = MatrixSource(b)
    require(a.rows == plan.a_shape.rows and a.cols == plan.a_shape.cols, "A tilings differ from plan")
    b_rows = plan.b_shape.rows
    b_cols = plan.b_shape.cols
    require(a.cols == b_rows, "A and B do not conform")

    out = BlockSparseMatrix(a.rows, b_cols)
    if c is not None:
        require(c.rows == a.rows and c.cols == b_cols, "C tilings do not conform")
        for (i, j), tile in c.items():
            out.set_tile(i, j, beta * tile)

    b_csr = plan.b_shape.csr  # occupancy for per-k column lists
    produced_by: dict[tuple[int, int], int] = {}
    parts: list[NumericStats] = []

    for proc in plan.procs:
        produced, proc_stats = execute_proc_plan(
            proc,
            a.get_tile,
            b,
            gpus_per_proc=plan.grid.gpus_per_proc,
            gpu_memory_bytes=plan.gpu_memory_bytes,
            b_csr=b_csr,
            tau=plan.options.screen_threshold,
            alpha=alpha,
        )
        parts.append(proc_stats)
        for (i, j), tile in produced.items():
            prev = produced_by.setdefault((i, j), proc.rank)
            require(
                prev == proc.rank,
                f"C tile ({i},{j}) produced by two processes ({prev}, {proc.rank})",
            )
            out.accumulate_tile(i, j, tile)

    stats = NumericStats.merge(parts)
    if hasattr(b, "generated_tiles"):
        stats.b_tiles_generated = b.generated_tiles()
    elif isinstance(b, MatrixSource):
        stats.b_tiles_generated = len(b.access_counts)
    return out, stats
