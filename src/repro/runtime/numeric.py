"""Numeric execution of an :class:`~repro.core.plan.ExecutionPlan`.

This executor walks the plan exactly as the GPUs would — per process, per
GPU, per block, per chunk — but with real NumPy tiles, enforcing the memory
discipline through :class:`~repro.runtime.gpu_memory.GpuMemory` and the
generated-B life-cycle through the tile source.  It proves two things the
performance model alone cannot:

1. **correctness** — the planned task set computes exactly ``C + A @ B``
   (tests compare against the dense reference down to roundoff);
2. **the invariants the paper's control DAG encodes** — block residency
   never exceeds 50 % of GPU memory, a chunk plus its prefetch never
   exceed the other 50 %, B tiles are instantiated at most once per
   process, and every C tile is produced by exactly one process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.plan import ExecutionPlan
from repro.runtime.data import MatrixSource, TileSource
from repro.runtime.gpu_memory import GpuMemory
from repro.sparse.matrix import BlockSparseMatrix
from repro.util.validation import require


@dataclass
class NumericStats:
    """Observed execution statistics.

    Attributes
    ----------
    ntasks:
        GEMM tasks actually executed.
    flops:
        Their flop count (2*m*n*k each).
    h2d_bytes, d2h_bytes:
        Host->device traffic (B blocks + A chunks) and C writeback.
    b_tiles_generated:
        Tiles pulled from the B source, summed over processes.
    gpu_peak_bytes:
        Maximum device-memory high-water mark over all GPUs.
    per_proc_tasks:
        Task counts per process (load-balance checks).
    """

    ntasks: int = 0
    flops: float = 0.0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    b_tiles_generated: int = 0
    gpu_peak_bytes: int = 0
    per_proc_tasks: dict[int, int] = field(default_factory=dict)


def execute_plan(
    plan: ExecutionPlan,
    a: BlockSparseMatrix,
    b: TileSource | BlockSparseMatrix,
    c: BlockSparseMatrix | None = None,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> tuple[BlockSparseMatrix, NumericStats]:
    """Run the plan numerically; returns ``(C, stats)``.

    ``C <- beta * C + alpha * A @ B`` — the full GEMM semantics the paper
    states (``C <- alpha A B + beta C``); ``c`` (if given) supplies the
    input C.  The result's tilings are ``(a.rows, B cols)``.
    """
    if isinstance(b, BlockSparseMatrix):
        b = MatrixSource(b)
    require(a.rows == plan.a_shape.rows and a.cols == plan.a_shape.cols, "A tilings differ from plan")
    b_rows = plan.b_shape.rows
    b_cols = plan.b_shape.cols
    require(a.cols == b_rows, "A and B do not conform")

    out = BlockSparseMatrix(a.rows, b_cols)
    if c is not None:
        require(c.rows == a.rows and c.cols == b_cols, "C tilings do not conform")
        for (i, j), tile in c.items():
            out.set_tile(i, j, beta * tile)

    tau = plan.options.screen_threshold
    stats = NumericStats()
    b_csr = plan.b_shape.csr  # occupancy for per-k column lists

    produced_by: dict[tuple[int, int], int] = {}

    for proc in plan.procs:
        proc_tasks = 0
        for g in range(plan.grid.gpus_per_proc):
            mem = GpuMemory(plan.gpu_memory_bytes)
            for bi, block in enumerate(proc.gpu_blocks(g)):
                block_name = f"block{bi}"
                mem.reserve(block_name, block.b_bytes + block.c_bytes)
                stats.h2d_bytes += block.b_bytes

                # Per-inner-tile list of present block columns.
                block_cols = set(block.columns.tolist())
                cols_of_k: dict[int, list[int]] = {}
                for k in block.k_tiles.tolist():
                    row = b_csr.indices[b_csr.indptr[k] : b_csr.indptr[k + 1]]
                    cols_of_k[k] = [j for j in row.tolist() if j in block_cols]

                # Device-resident C accumulator for the block.
                c_dev: dict[tuple[int, int], np.ndarray] = {}

                prev_chunk: str | None = None
                for ci, chunk in enumerate(block.chunks):
                    chunk_name = f"block{bi}.chunk{ci}"
                    # Prefetch discipline: next chunk reserved while the
                    # previous is still resident, then the previous freed.
                    mem.reserve(chunk_name, chunk.a_bytes)
                    if prev_chunk is not None:
                        mem.release(prev_chunk)
                    prev_chunk = chunk_name
                    stats.h2d_bytes += chunk.a_bytes

                    for i, k in zip(chunk.a_rows.tolist(), chunk.a_cols.tolist()):
                        a_tile = a.get_tile(i, k)
                        a_norm = np.linalg.norm(a_tile) if tau is not None else None
                        for j in cols_of_k[k]:
                            b_tile = b.tile(proc.rank, k, j)
                            if tau is not None:
                                if a_norm * np.linalg.norm(b_tile) <= tau:
                                    continue
                            contrib = a_tile @ b_tile
                            if alpha != 1.0:
                                contrib *= alpha
                            acc = c_dev.get((i, j))
                            if acc is None:
                                c_dev[(i, j)] = contrib
                            else:
                                acc += contrib
                            proc_tasks += 1
                            stats.flops += 2.0 * a_tile.shape[0] * b_tile.shape[1] * a_tile.shape[1]
                if prev_chunk is not None:
                    mem.release(prev_chunk)

                # Writeback: C tiles leave the device once per block.
                for (i, j), tile in c_dev.items():
                    prev = produced_by.setdefault((i, j), proc.rank)
                    require(
                        prev == proc.rank,
                        f"C tile ({i},{j}) produced by two processes ({prev}, {proc.rank})",
                    )
                    out.accumulate_tile(i, j, tile)
                    stats.d2h_bytes += tile.nbytes

                # Evict the block's B tiles at end of life-cycle.
                if hasattr(b, "evict"):
                    for k, js in cols_of_k.items():
                        for j in js:
                            b.evict(proc.rank, k, j)

                mem.release(block_name)
            stats.gpu_peak_bytes = max(stats.gpu_peak_bytes, mem.peak)
        stats.per_proc_tasks[proc.rank] = proc_tasks
        stats.ntasks += proc_tasks

    if hasattr(b, "generated_tiles"):
        stats.b_tiles_generated = b.generated_tiles()
    elif isinstance(b, MatrixSource):
        stats.b_tiles_generated = len(b.access_counts)
    return out, stats
