"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's evaluation artifacts:

* ``traits``     — Table 1 (C65H132 traits vs paper);
* ``synthetic``  — Figs. 2/3/4 (synthetic sweep incl. libDBCSR);
* ``scaling``    — Figs. 7/8/9 (C65H132 strong scaling);
* ``mpqc``       — the Section 5.2 CPU comparison;
* ``advise``     — the tiling advisor (the paper's future work);
* ``selftest``   — numeric end-to-end check of the distributed plan;
* ``trace``      — run a problem on the real multi-process executor and
  write its merged per-rank Chrome trace plus a metrics summary;
* ``explain``    — performance attribution of a traced run: critical-path
  blame buckets, model-vs-measured roofline audit, and (with
  ``--baseline``) a run-to-run diff of what got slower;
* ``monitor``    — render a run's live per-rank health table from its
  ``run-events.jsonl`` event log (``--follow`` tails a running job;
  ``--run-id`` selects one job's scoped log from a shared directory);
* ``serve``      — run a batch of contraction jobs from a spec file
  through one persistent :class:`~repro.serve.ContractionService`
  (warm worker pool, priority queue, per-job artifacts);
* ``metrics``    — run a small distributed job and print its merged
  metrics in Prometheus text exposition format;
* ``analyze``    — static plan verifier + task-graph checks (CI gate);
* ``store``      — inspect (``stats``) or garbage-collect (``gc``) a
  persistent tile store;
* ``lint``       — AST concurrency lint over the source tree (CI gate).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_traits(args) -> int:
    from repro.experiments.c65h132 import table1_text

    print(table1_text(seed=args.seed))
    return 0


def _cmd_synthetic(args) -> int:
    from repro.experiments.synthetic import fig2_sweep, fig2_table, fig3_table, fig4_table

    points = fig2_sweep(
        scale="paper" if args.paper_scale else "quick",
        seed=args.seed,
        with_dbcsr=not args.no_dbcsr,
    )
    print("Fig. 2 — performance (16 nodes / 96 GPUs)")
    print(fig2_table(points))
    print("\nFig. 3 — arithmetic intensity")
    print(fig3_table(points))
    print("\nFig. 4 — time to completion")
    print(fig4_table(points))
    return 0


def _cmd_scaling(args) -> int:
    from repro.experiments.c65h132 import GPU_COUNTS, scaling_series
    from repro.experiments.report import fmt_table

    counts = tuple(args.gpus) if args.gpus else GPU_COUNTS
    for v in args.variants:
        series = scaling_series(v, gpu_counts=counts, seed=args.seed)
        rows = [
            [p.gpus, f"{p.time:8.1f}", f"{p.perf / 1e12:7.1f}",
             f"{p.perf_per_gpu / 1e12:6.2f}", f"{p.efficiency:6.1%}"]
            for p in series
        ]
        print(f"\nC65H132 strong scaling — tiling {v}")
        print(fmt_table(["#GPUs", "time (s)", "Tflop/s", "Tf/GPU", "eff"], rows))
    return 0


def _cmd_mpqc(args) -> int:
    from repro.experiments.mpqc_compare import mpqc_comparison_text

    print(mpqc_comparison_text(variant=args.variant, seed=args.seed))
    return 0


def _cmd_advise(args) -> int:
    from repro.chem import TilingVariant, build_abcd_problem
    from repro.core.advisor import recommend_tiling
    from repro.experiments.report import fmt_table
    from repro.machine import summit

    targets = [tuple(map(int, t.split("x"))) for t in args.targets]

    def build(cand):
        occ, ao = cand
        prob = build_abcd_problem(
            variant=TilingVariant(f"{occ}x{ao}", occ, ao), seed=args.seed
        )
        return prob.t_shape, prob.v_shape

    rec = recommend_tiling(
        build,
        targets,
        summit(args.nodes),
        labels=[f"{o}x{a}" for o, a in targets],
    )
    print(fmt_table(["occ x ao", "Tflop", "#tasks", "time (s)", ""], rec.table_rows()))
    print(f"\nrecommended: {rec.best.label} ({rec.best.time:.2f} s)")
    return 0


def _cmd_selftest(args) -> int:
    if args.deep:
        from repro.core.crosscheck import random_crosscheck

        report = random_crosscheck(seed=args.seed)
        print(report.summary())
        return 0 if report.ok else 1

    import numpy as np

    from repro.core import psgemm_numeric
    from repro.machine import summit
    from repro.sparse import random_block_sparse
    from repro.tiling import random_tiling

    if args.procs:
        # Multi-process path: N worker processes (p = N grid rows of one
        # process each), crosschecked bit-for-bit against the serial
        # executor and against the dense reference.
        from repro.core import psgemm_distributed
        from repro.dist import DistExecutionError, FaultPlan

        fault_plan = (
            FaultPlan.parse(args.inject_fault, nranks=args.procs)
            if args.inject_fault else None
        )
        rows = random_tiling(400, 30, 120, seed=args.seed)
        inner = random_tiling(1200, 30, 120, seed=args.seed + 1)
        a = random_block_sparse(rows, inner, 0.5, seed=args.seed + 2)
        b = random_block_sparse(inner, inner, 0.5, seed=args.seed + 3)
        machine = summit(args.procs)
        dist_kwargs = {}
        persist = getattr(args, "checkpoint", None) or getattr(args, "store_dir", None)
        if persist:
            # The persistent tiers only engage for on-demand B: a concrete
            # B travels by shared memory, bypassing the store.  Swap B for
            # a generated collection over the same sparse shape — the
            # serial oracle uses the identical collection, so bit-parity
            # still holds.
            from repro.runtime.data import GeneratedCollection

            b_shape = b.sparse_shape()
            b = GeneratedCollection(b_shape, seed=args.seed + 3)
            dist_kwargs["b_shape"] = b_shape
            c_serial, _ = psgemm_numeric(
                a, b, machine, p=args.procs, b_shape=b_shape
            )
        else:
            c_serial, _ = psgemm_numeric(a, b, machine, p=args.procs)
        if getattr(args, "checkpoint", None):
            dist_kwargs["checkpoint_dir"] = args.checkpoint
        if getattr(args, "store_dir", None):
            dist_kwargs["store_dir"] = args.store_dir
        if getattr(args, "events", None):
            dist_kwargs["events_path"] = args.events
        if fault_plan is not None and any(
            inj.kind == "stall" for inj in fault_plan.injections
        ):
            # Tighten the heartbeat cadence so an injected stall is caught
            # in about a second instead of the production-default window.
            dist_kwargs.update(heartbeat_interval=0.1, stall_after_beats=5)
        if getattr(args, "rebalance", False):
            # Act on stragglers: tight patrol cadence and a permissive
            # rate threshold so an injected slow rank is flagged — and
            # its unstarted blocks handed off — within the run.
            dist_kwargs.update(rebalance=True, heartbeat_interval=0.05,
                               straggler_fraction=0.5)
        try:
            c_dist, report = psgemm_distributed(
                a, b, machine, p=args.procs, fault_plan=fault_plan, **dist_kwargs
            )
        except DistExecutionError as e:
            aborted = fault_plan is not None and any(
                inj.kind == "abort" for inj in fault_plan.injections
            )
            if aborted and getattr(args, "checkpoint", None):
                print(f"run aborted: {e}")
                print(f"resumable: re-run with --resume --checkpoint "
                      f"{args.checkpoint} (journaled blocks will be skipped)")
                return 3
            raise
        exact = np.array_equal(c_dist.to_dense(), c_serial.to_dense())
        print(f"distributed executor ran {report.summary()}")
        print(f"per-rank tasks: {dict(sorted(report.stats.per_proc_tasks.items()))}")
        if getattr(args, "trace", None):
            _write_artifact(
                args.trace, report,
                meta={
                    "command": "selftest", "procs": args.procs,
                    "seed": args.seed, "fault": args.inject_fault or "",
                },
            )
            print(f"wrote run artifact {args.trace} "
                  f"(analyze with: repro explain --trace {args.trace})")
        if persist:
            # Generated B has no dense reference to compare against; the
            # bit-exact serial oracle (same collection) is the check.
            ok = exact
            print(f"persistent tiers: restored {report.blocks_restored} "
                  f"block(s), skipped {report.tasks_skipped} task(s); "
                  f"store {report.store_hits} hit(s) / "
                  f"{report.store_misses} miss(es) / {report.store_puts} put(s)")
            if getattr(args, "resume", False):
                # A resume that restored nothing recomputed everything: the
                # journal (or its tiles) went missing, which is exactly
                # what this flag exists to catch.
                resumed = report.blocks_restored > 0
                print(f"resume restored journaled work: {resumed}")
                ok = ok and resumed
            print(f"matches serial executor bit-for-bit: {exact}; "
                  f"overall: {ok}")
            return 0 if ok else 1
        ok = exact and np.allclose(c_dist.to_dense(), a.to_dense() @ b.to_dense())
        print(f"matches serial executor bit-for-bit: {exact}; "
              f"matches dense reference: {ok}")
        return 0 if ok else 1

    rows = random_tiling(600, 40, 160, seed=args.seed)
    inner = random_tiling(3000, 40, 160, seed=args.seed + 1)
    a = random_block_sparse(rows, inner, 0.5, seed=args.seed + 2)
    b = random_block_sparse(inner, inner, 0.5, seed=args.seed + 3)
    c, stats = psgemm_numeric(a, b, summit(2), p=2, gpus_per_proc=3)
    ok = np.allclose(c.to_dense(), a.to_dense() @ b.to_dense())
    print(f"distributed plan executed {stats.ntasks} GEMM tasks; "
          f"matches dense reference: {ok}")
    return 0 if ok else 1


def _write_artifact(path: str, report, meta: dict) -> None:
    """Write a run's enriched Chrome-trace artifact from its DistReport."""
    from repro.perf import write_run_artifact

    write_run_artifact(
        path,
        report.trace,
        model=report.model,
        comm_link_bytes=dict(report.comm.link_bytes),
        meta=meta,
    )


def _cmd_trace(args) -> int:
    import json

    from repro.core import psgemm_distributed
    from repro.machine import summit
    from repro.sparse import random_block_sparse
    from repro.tiling import random_tiling

    rows = random_tiling(args.m, 20, 80, seed=args.seed)
    inner = random_tiling(args.k, 20, 80, seed=args.seed + 1)
    a = random_block_sparse(rows, inner, 0.5, seed=args.seed + 2)
    b = random_block_sparse(inner, inner, 0.5, seed=args.seed + 3)
    _, report = psgemm_distributed(
        a, b, summit(args.procs), p=args.procs, trace=True
    )
    _write_artifact(
        args.output, report,
        meta={"command": "trace", "procs": args.procs, "seed": args.seed},
    )
    # Parse the artifact back: a trace that Perfetto cannot load is a bug.
    # Metadata ("M") events label rank lanes; the spans are the "X" events.
    with open(args.output, encoding="utf-8") as fh:
        parsed = json.load(fh)
    events = parsed["traceEvents"]
    spans = [ev for ev in events if ev.get("ph") == "X"]
    if not spans or any(
        ev.get("ph") not in ("X", "M") for ev in events
    ) or any("ts" not in ev or "dur" not in ev for ev in spans):
        print(f"error: {args.output} is not a valid Chrome trace")
        return 1
    print(f"wrote {args.output}: {len(spans)} span(s) across "
          f"{report.nworkers} rank(s)")
    print(report.observability_summary())
    return 0


def _parse_band(text: str) -> tuple[float, float]:
    lo, _, hi = text.partition(":")
    try:
        band = (float(lo), float(hi))
    except ValueError:
        raise SystemExit(f"error: --band must be LO:HI, got {text!r}")
    if band[0] > band[1]:
        raise SystemExit(f"error: --band lower bound exceeds upper ({text!r})")
    return band


def _events_digest(path: str) -> str:
    """A one-screen life-cycle digest of a run's JSONL event log."""
    from collections import Counter

    from repro.dist import read_events

    events = read_events(path)
    if not events:
        return f"{path}: no events"
    kinds = Counter(ev.get("event", "?") for ev in events)
    span = events[-1].get("t", 0.0) - events[0].get("t", 0.0)
    lines = [
        f"{path}: {len(events)} event(s) over {span:.2f} s — "
        + ", ".join(f"{k} x{n}" for k, n in sorted(kinds.items()))
    ]
    for ev in events:
        if ev.get("event") in ("stalled", "retry", "reassigned", "handoff"):
            lines.append(
                f"  t={ev.get('t', 0.0):.2f}s {ev['event']}: "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(ev.items())
                    if k not in ("event", "t")
                )
            )
    return "\n".join(lines)


def _cmd_explain(args) -> int:
    import json

    from repro.perf import (
        attribute,
        audit_run,
        diff_attributions,
        html_report,
        read_run_artifact,
        text_report,
    )

    band = _parse_band(args.band) if args.band else None
    art = read_run_artifact(args.trace)
    if not art.trace.events:
        print(f"error: {args.trace} holds no spans (was the run traced?)")
        return 1
    attribution = attribute(art.trace)
    audit = audit_run(
        art.trace, art.model,
        comm_link_bytes=art.links or None,
        **({"band": band} if band else {}),
    )
    trace_diff = None
    if args.baseline:
        base = read_run_artifact(args.baseline)
        if not base.trace.events:
            print(f"error: baseline {args.baseline} holds no spans")
            return 1
        trace_diff = diff_attributions(
            attribute(base.trace), attribution,
            base_hash=base.plan_hash, cur_hash=art.plan_hash,
        )
    print(text_report(attribution, audit, trace_diff, title=args.trace))
    if args.events:
        print()
        print(_events_digest(args.events))
    if args.json:
        payload = {
            "trace": args.trace,
            "attribution": attribution.to_dict(),
            "audit": audit.to_dict(),
            "diff": trace_diff.to_dict() if trace_diff else None,
            "meta": art.meta,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
        print(f"wrote {args.json}")
    if args.html:
        page = html_report(
            art.trace, attribution, audit, trace_diff, title=args.trace
        )
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(page)
        print(f"wrote {args.html}")
    return 0


def _cmd_monitor(args) -> int:
    import os
    import time

    from repro.dist import read_events, replay_health, resolve_events_path

    run_id = getattr(args, "run_id", None)
    path = resolve_events_path(args.events, run_id)

    def render() -> tuple[str, bool]:
        if not os.path.exists(path):
            return f"(waiting for {path})", False
        events = read_events(path, run_id=run_id)
        health = replay_health(events)
        finished = any(ev.get("event") == "done" for ev in events)
        last = events[-1]["t"] if events else None
        table = health.table(now=last)
        head = f"{path}: {len(events)} event(s)" + (
            " — run complete" if finished else ""
        )
        return head + "\n" + table, finished

    if not args.follow:
        text, _ = render()
        print(text)
        return 0 if os.path.exists(path) else 1

    while True:
        text, finished = render()
        print(text, flush=True)
        if finished:
            return 0
        time.sleep(args.interval)


def _serve_operands(job: dict):
    """Operands for one spec-file job (seed-deterministic, B generated)."""
    from repro.runtime import DelayedGeneratedCollection, GeneratedCollection
    from repro.sparse import random_block_sparse
    from repro.tiling import random_tiling

    m = int(job.get("m", 200))
    k = int(job.get("k", 600))
    seed = int(job.get("seed", 0))
    density = float(job.get("density", 0.5))
    rows = random_tiling(m, 20, 80, seed=seed)
    inner = random_tiling(k, 20, 80, seed=seed + 1)
    a = random_block_sparse(rows, inner, density, seed=seed + 2)
    b_shape = random_block_sparse(inner, inner, density, seed=seed + 3).sparse_shape()
    delay = float(job.get("gen_delay_s", 0.0))
    if delay > 0.0:
        b = DelayedGeneratedCollection(b_shape, seed=seed + 4, gen_delay_s=delay)
    else:
        b = GeneratedCollection(b_shape, seed=seed + 4)
    return a, b


def _serve_table(snapshots: list[dict]) -> str:
    head = f"{'job':<14} {'state':<9} {'prio':>4} {'queued_s':>9} {'run_s':>7}"
    lines = [head, "-" * len(head)]
    for s in snapshots:
        run_s = f"{s['run_s']:.3f}" if s["run_s"] is not None else "-"
        lines.append(
            f"{s['job_id']:<14} {s['state']:<9} {s['priority']:>4} "
            f"{s['queued_s']:>9.3f} {run_s:>7}"
        )
    return "\n".join(lines)


def _cmd_serve(args) -> int:
    import json
    import time

    from repro.core import inspect
    from repro.machine import summit
    from repro.serve import ContractionService, JobFailedError

    with open(args.spec, encoding="utf-8") as fh:
        spec = json.load(fh)
    jobs = spec.get("jobs", [])
    if not jobs:
        print(f"{args.spec}: no jobs in spec", file=sys.stderr)
        return 1
    procs = args.procs or int(spec.get("procs", 2))
    svc = ContractionService(
        procs,
        artifacts_dir=args.artifacts,
        queue_limit=args.queue_limit,
        verify=args.verify,
    )
    submitted: list[str] = []
    failures = 0
    try:
        for i, job in enumerate(jobs):
            a, b = _serve_operands(job)
            plan = inspect(
                a.sparse_shape(), b.shape, summit(procs), p=int(job.get("p", 1))
            )
            job_id = svc.submit(plan, a, b, priority=int(job.get("priority", 0)))
            submitted.append(job_id)
            print(f"submitted {job_id} (spec job {i}, "
                  f"priority {job.get('priority', 0)})")
            if job.get("wait"):
                # Sequential phase boundary: later jobs must see this
                # one's warm state (or its failure) before they queue.
                try:
                    svc.result(job_id, timeout=args.timeout)
                except JobFailedError as exc:
                    failures += 1
                    print(f"job {job_id} FAILED: {exc}", file=sys.stderr)
        while any(s["state"] in ("queued", "running") for s in svc.jobs()):
            print(_serve_table(svc.jobs()), flush=True)
            time.sleep(args.interval)
        for job_id in submitted:
            try:
                svc.result(job_id, timeout=args.timeout)
            except JobFailedError as exc:
                failures += 1
                print(f"job {job_id} FAILED: {exc}", file=sys.stderr)
        print(_serve_table(svc.jobs()))
        reports = [svc.report(j) for j in submitted]
        warm_hits = sum(r.b_store_hits for r in reports if r is not None)
        print(
            f"{len(submitted)} job(s), {failures} failure(s); pool spawned "
            f"{svc.pool.spawns} process(es) for {procs} rank(s); "
            f"warm B-tile hits: {warm_hits}"
        )
        if args.artifacts:
            print(f"per-job artifacts under {args.artifacts}/ "
                  f"(run-events.<id>.jsonl, trace.<id>.json, metrics.<id>.prom)")
        return 1 if failures else 0
    finally:
        svc.shutdown()


def _cmd_metrics(args) -> int:
    from repro.core import psgemm_distributed
    from repro.machine import summit
    from repro.sparse import random_block_sparse
    from repro.tiling import random_tiling

    rows = random_tiling(args.m, 20, 80, seed=args.seed)
    inner = random_tiling(args.k, 20, 80, seed=args.seed + 1)
    a = random_block_sparse(rows, inner, 0.5, seed=args.seed + 2)
    b = random_block_sparse(inner, inner, 0.5, seed=args.seed + 3)
    _, report = psgemm_distributed(
        a, b, summit(args.procs), p=args.procs,
        heartbeat_interval=args.heartbeat_interval,
    )
    text = report.metrics.to_prometheus()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output}: {len(text.splitlines())} line(s)")
    else:
        print(text, end="")
    return 0


def _cmd_store(args) -> int:
    from repro.store import TileStore, read_store_stats

    if args.store_command == "stats":
        s = read_store_stats(args.root)
        print(f"tile store {args.root}")
        print(f"  objects:       {s.objects} ({s.disk_bytes} B on disk)")
        print(f"  hits:          {s.hits}")
        print(f"  misses:        {s.misses}")
        print(f"  hit rate:      {s.hit_rate:.1%}")
        print(f"  puts:          {s.puts}")
        print(f"  evictions:     {s.evictions}")
        print(f"  corrupt:       {s.corrupt}")
        print(f"  bytes written: {s.bytes_written}")
        print(f"  bytes read:    {s.bytes_read}")
        return 0

    # gc
    store = TileStore(args.root)
    try:
        evicted, freed = store.gc(args.budget)
        left = store.stats()
    finally:
        store.close()
    print(f"evicted {evicted} object(s), freed {freed} B; "
          f"{left.objects} object(s), {left.disk_bytes} B remain "
          f"(budget {args.budget} B)")
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis import check_task_graph, verify_plan
    from repro.core import psgemm_plan
    from repro.machine import summit
    from repro.sparse import random_block_sparse
    from repro.tiling import random_tiling

    rows = random_tiling(400, 30, 120, seed=args.seed)
    inner = random_tiling(1200, 30, 120, seed=args.seed + 1)
    a = random_block_sparse(rows, inner, 0.5, seed=args.seed + 2)
    b = random_block_sparse(inner, inner, 0.5, seed=args.seed + 3)
    machine = summit(args.nodes)
    plan = psgemm_plan(a.sparse_shape(), b.sparse_shape(), machine, p=args.procs)

    report = verify_plan(plan)
    report.extend(check_task_graph(plan, machine))
    if args.checkpoint or args.store_dir:
        from repro.analysis import verify_store_setup

        report.extend(verify_store_setup(
            plan,
            checkpoint_dir=args.checkpoint,
            store_dir=args.store_dir,
            store_budget_bytes=args.store_budget,
        ))
    print(f"analyzed plan: {plan.grid.nprocs} rank(s), "
          f"{sum(len(pp.blocks) for pp in plan.procs)} block(s)")
    if args.model_check:
        from repro.analysis import (
            build_protocol_model,
            check_protocol,
            check_protocol_conformance,
            default_scenarios,
        )

        model = build_protocol_model()
        result = check_protocol(
            model, default_scenarios(max_ranks=args.max_ranks)
        )
        print(result.summary())
        report.extend(result.report)
        report.extend(check_protocol_conformance(model))
    print(report.render())
    if args.sarif:
        from repro.analysis import write_sarif

        print(f"sarif: {write_sarif(report, args.sarif)}")
    return report.exit_code()


def _cmd_lint(args) -> int:
    import os

    import repro
    from repro.analysis import lint_paths

    paths = args.paths or [os.path.dirname(repro.__file__)]
    report = lint_paths(paths)
    if report.files_scanned == 0:
        # An empty match is almost always a typo'd path or glob; succeed
        # (nothing is wrong with the code) but never silently.
        print(f"warning: no files matched {' '.join(paths)!s}; "
              f"nothing was linted")
    print(report.render())
    if args.sarif:
        from repro.analysis import write_sarif

        print(f"sarif: {write_sarif(report, args.sarif, tool_name='repro-lint')}")
    return report.exit_code()


def _cmd_rules(args) -> int:
    from repro.analysis import (
        check_rule_catalog,
        rule_catalog_markdown,
        write_rule_catalog,
    )

    if args.check:
        if check_rule_catalog(args.check):
            print(f"{args.check} is up to date with the rule registry")
            return 0
        print(f"{args.check} has drifted from the rule registry; "
              f"regenerate with: make docs-rules")
        return 1
    if args.output:
        path = write_rule_catalog(args.output)
        print(f"wrote {path}")
        return 0
    print(rule_catalog_markdown(), end="")
    return 0


def _cmd_export(args) -> int:
    from repro.experiments.export import export_all

    data = export_all(
        args.output,
        scale="paper" if args.paper_scale else "quick",
        gpu_counts=args.gpus,
        seed=args.seed,
    )
    print(f"wrote {args.output}: "
          f"{len(data['fig2'])} fig2 points, "
          f"{sum(len(v) for v in data['fig7'].values())} scaling points")
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    ap.add_argument("--seed", type=int, default=0)
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("traits", help="Table 1").set_defaults(func=_cmd_traits)

    syn = sub.add_parser("synthetic", help="Figs. 2/3/4")
    syn.add_argument("--paper-scale", action="store_true")
    syn.add_argument("--no-dbcsr", action="store_true")
    syn.set_defaults(func=_cmd_synthetic)

    sc = sub.add_parser("scaling", help="Figs. 7/8/9")
    sc.add_argument("--variants", nargs="+", default=["v1", "v2", "v3"],
                    choices=["v1", "v2", "v3"])
    sc.add_argument("--gpus", nargs="+", type=int)
    sc.set_defaults(func=_cmd_scaling)

    mp = sub.add_parser("mpqc", help="CPU comparison (Section 5.2)")
    mp.add_argument("--variant", default="v3", choices=["v1", "v2", "v3"])
    mp.set_defaults(func=_cmd_mpqc)

    adv = sub.add_parser("advise", help="tiling advisor")
    adv.add_argument("--targets", nargs="+",
                     default=["8x65", "7x48", "6x32", "5x22"],
                     help="occ x ao cluster targets, e.g. 6x32")
    adv.add_argument("--nodes", type=int, default=4)
    adv.set_defaults(func=_cmd_advise)

    st = sub.add_parser("selftest", help="numeric end-to-end check")
    st.add_argument("--deep", action="store_true",
                    help="cross-validate all three executors (numeric, DES, analytic)")
    st.add_argument("--procs", type=int, metavar="N",
                    help="run the plan across N real worker processes and "
                         "crosscheck bit-for-bit against the serial executor")
    st.add_argument("--inject-fault",
                    metavar="RANK:TASK[:kill|delay|stall|slow|abort]",
                    help="with --procs: sabotage worker RANK after TASK GEMM "
                         "tasks (stall hangs it silently until the missed-"
                         "heartbeat detector fires; slow drags every "
                         "subsequent task so the straggler patrol flags it; "
                         "abort tears the run down unrecoverably — exit 3 "
                         "when resumable via --checkpoint) and verify the "
                         "retry/reassign recovery still produces the exact "
                         "result")
    st.add_argument("--rebalance", action="store_true",
                    help="with --procs: act on flagged stragglers — ask them "
                         "to relinquish unstarted blocks and hand the work "
                         "to finished ranks (pairs with --inject-fault "
                         "R:T:slow; result stays bit-identical)")
    st.add_argument("--events", metavar="PATH",
                    help="with --procs: append the run's life-cycle events "
                         "(heartbeats, stalls, retries) to PATH as JSONL")
    st.add_argument("--checkpoint", metavar="DIR",
                    help="with --procs: journal completed blocks to DIR so a "
                         "killed run resumes bit-for-bit (switches B to an "
                         "on-demand generated collection, the tier the "
                         "persistent store backs)")
    st.add_argument("--resume", action="store_true",
                    help="with --checkpoint: require that the run restored "
                         "at least one journaled block (fail if it had to "
                         "recompute everything)")
    st.add_argument("--store-dir", metavar="DIR",
                    help="with --procs: persist generated B tiles to a "
                         "content-addressed store at DIR (second run hits "
                         "instead of regenerating)")
    st.add_argument("--trace", metavar="PATH",
                    help="with --procs: write the run's enriched Chrome-trace "
                         "artifact (spans + roofline model + comm bytes) to "
                         "PATH for `repro explain`")
    st.set_defaults(func=_cmd_selftest)

    tr = sub.add_parser(
        "trace",
        help="run the multi-process executor and write its Chrome trace",
    )
    tr.add_argument("--procs", type=int, default=2,
                    help="number of real worker processes (default 2)")
    tr.add_argument("-o", "--output", default="trace.json",
                    help="Chrome-trace JSON path (load in Perfetto / "
                         "chrome://tracing)")
    tr.add_argument("--m", type=int, default=300,
                    help="rows of A (problem size)")
    tr.add_argument("--k", type=int, default=900,
                    help="inner dimension (problem size)")
    tr.set_defaults(func=_cmd_trace)

    exp = sub.add_parser(
        "explain",
        help="attribute a traced run: critical path, blame buckets, "
             "model-vs-measured audit, optional run-to-run diff",
    )
    exp.add_argument("--trace", required=True, metavar="PATH",
                     help="run artifact to analyze (from `repro trace -o` or "
                          "`repro selftest --trace`)")
    exp.add_argument("--baseline", metavar="PATH",
                     help="a second run artifact of the same plan to diff "
                          "against (attributes the makespan delta to "
                          "buckets/ranks)")
    exp.add_argument("--events", metavar="PATH",
                     help="also digest the run's JSONL life-cycle event log")
    exp.add_argument("--band", metavar="LO:HI",
                     help="relative roofline band; tasks/ranks outside "
                          "median*LO..median*HI are flagged (default 0.5:2.0)")
    exp.add_argument("--json", metavar="PATH",
                     help="write the full analysis as JSON to PATH")
    exp.add_argument("--html", metavar="PATH",
                     help="write a self-contained HTML report (timeline with "
                          "the critical path, bucket bars, audit table)")
    exp.set_defaults(func=_cmd_explain)

    mo = sub.add_parser(
        "monitor",
        help="render a run's per-rank health table from its event log",
    )
    mo.add_argument("events", nargs="?", default="run-events.jsonl",
                    help="path to the run's JSONL event log "
                         "(default run-events.jsonl)")
    mo.add_argument("--follow", action="store_true",
                    help="keep re-rendering until the run's 'done' event")
    mo.add_argument("--interval", type=float, default=1.0,
                    help="seconds between --follow refreshes (default 1)")
    mo.add_argument("--run-id",
                    help="select one job's run-scoped log "
                         "(run-events.<run-id>.jsonl next to EVENTS) and "
                         "filter its records to that run")
    mo.set_defaults(func=_cmd_monitor)

    se = sub.add_parser(
        "serve",
        help="run a batch of jobs through one warm contraction service",
    )
    se.add_argument("spec",
                    help="JSON spec: {\"procs\": N, \"jobs\": [{\"m\", \"k\", "
                         "\"seed\", \"priority\", \"gen_delay_s\", \"wait\"}]}")
    se.add_argument("--procs", type=int, default=0,
                    help="worker ranks in the pool (default: spec's, else 2)")
    se.add_argument("--artifacts", default="serve-artifacts",
                    help="directory for per-job event/trace/metrics files "
                         "(default serve-artifacts)")
    se.add_argument("--queue-limit", type=int, default=8,
                    help="max jobs queued or running (default 8)")
    se.add_argument("--timeout", type=float, default=300.0,
                    help="per-job result timeout in seconds (default 300)")
    se.add_argument("--interval", type=float, default=0.5,
                    help="seconds between queue-table refreshes (default 0.5)")
    se.add_argument("--verify", action="store_true",
                    help="run the full static plan verifier inside each job")
    se.set_defaults(func=_cmd_serve)

    me = sub.add_parser(
        "metrics",
        help="run a small distributed job and print Prometheus metrics",
    )
    me.add_argument("--procs", type=int, default=2,
                    help="number of real worker processes (default 2)")
    me.add_argument("--m", type=int, default=200,
                    help="rows of A (problem size)")
    me.add_argument("--k", type=int, default=600,
                    help="inner dimension (problem size)")
    me.add_argument("--heartbeat-interval", type=float, default=0.1,
                    help="worker heartbeat cadence in seconds (default 0.1)")
    me.add_argument("-o", "--output",
                    help="write the exposition text to a file instead of stdout")
    me.set_defaults(func=_cmd_metrics)

    an = sub.add_parser(
        "analyze",
        help="statically verify an inspector-built plan and its task graph",
    )
    an.add_argument("--procs", type=int, default=3,
                    help="grid rows (ranks) for the analyzed plan")
    an.add_argument("--nodes", type=int, default=3,
                    help="machine size (Summit-like nodes)")
    an.add_argument("--checkpoint", metavar="DIR",
                    help="also pre-flight a checkpoint directory against the "
                         "analyzed plan (P121) and its store capacity (P122)")
    an.add_argument("--store-dir", metavar="DIR",
                    help="also pre-flight the tile store at DIR (P122)")
    an.add_argument("--store-budget", type=int, metavar="BYTES",
                    help="GC budget assumed for the store pre-flight")
    an.add_argument("--model-check", action="store_true",
                    help="also model-check the distributed executor protocol "
                         "(bounded exhaustive exploration, M4xx rules) and "
                         "run the dist-tree conformance pass")
    an.add_argument("--max-ranks", type=int, default=2,
                    help="largest rank count the model check explores "
                         "(default 2; 3 is exhaustive but slower)")
    an.add_argument("--sarif", metavar="PATH",
                    help="also write the findings as SARIF 2.1.0 to PATH")
    an.set_defaults(func=_cmd_analyze)

    so = sub.add_parser(
        "store",
        help="inspect or garbage-collect a persistent tile store",
    )
    so_sub = so.add_subparsers(dest="store_command", required=True)
    so_stats = so_sub.add_parser(
        "stats", help="cumulative hit/miss/put counters and on-disk totals"
    )
    so_stats.add_argument("root", help="store directory (e.g. ckpt/store)")
    so_stats.set_defaults(func=_cmd_store)
    so_gc = so_sub.add_parser(
        "gc", help="evict least-recently-used objects down to a byte budget"
    )
    so_gc.add_argument("root", help="store directory (e.g. ckpt/store)")
    so_gc.add_argument("--budget", type=int, required=True, metavar="BYTES",
                       help="target on-disk size after eviction")
    so_gc.set_defaults(func=_cmd_store)

    li = sub.add_parser("lint", help="AST concurrency lint (nonzero exit on findings)")
    li.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: the installed "
                         "repro package tree)")
    li.add_argument("--sarif", metavar="PATH",
                    help="also write the findings as SARIF 2.1.0 to PATH")
    li.set_defaults(func=_cmd_lint)

    ru = sub.add_parser(
        "rules",
        help="the analysis rule catalog, generated from the registry",
    )
    ru.add_argument("-o", "--output", metavar="PATH",
                    help="write the Markdown catalog to PATH "
                         "(default: print to stdout)")
    ru.add_argument("--check", metavar="PATH",
                    help="exit 1 if the committed catalog at PATH drifts "
                         "from the registry (CI drift gate)")
    ru.set_defaults(func=_cmd_rules)

    ex = sub.add_parser("export", help="dump all experiment data as JSON")
    ex.add_argument("-o", "--output", default="results.json")
    ex.add_argument("--paper-scale", action="store_true")
    ex.add_argument("--gpus", nargs="+", type=int)
    ex.set_defaults(func=_cmd_export)
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
