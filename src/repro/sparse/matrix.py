"""Block-sparse matrices with dense NumPy tiles.

:class:`BlockSparseMatrix` is the numeric twin of
:class:`~repro.sparse.shape.SparseShape`: a dictionary of dense tiles keyed
by tile coordinates.  It exists so that the *same* execution plans the
inspector produces for the performance models can also be run numerically
(see :mod:`repro.runtime.numeric`) and checked against a dense reference.

Tile data is always C-contiguous ``float64`` (the paper's runs are double
precision); tile shapes are validated against the tilings on insertion so a
mis-shaped tile can never silently corrupt a contraction.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.sparse.shape import SparseShape
from repro.tiling.tiling import Tiling
from repro.util.validation import require

TileKey = Tuple[int, int]


class BlockSparseMatrix:
    """An irregularly tiled block-sparse matrix with dense tiles.

    Parameters
    ----------
    rows, cols:
        Tilings of the two index ranges.
    tiles:
        Optional initial ``{(i, j): ndarray}`` mapping; arrays are validated
        and converted to C-contiguous float64.
    """

    __slots__ = ("rows", "cols", "_tiles")

    def __init__(
        self,
        rows: Tiling,
        cols: Tiling,
        tiles: Dict[TileKey, np.ndarray] | None = None,
    ) -> None:
        self.rows = rows
        self.cols = cols
        self._tiles: Dict[TileKey, np.ndarray] = {}
        if tiles:
            for (i, j), data in tiles.items():
                self.set_tile(i, j, data)

    # -- element-level geometry ---------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """Element-level shape ``(M, N)``."""
        return (self.rows.extent, self.cols.extent)

    @property
    def tile_grid(self) -> tuple[int, int]:
        """Tile-level shape ``(ntile_rows, ntile_cols)``."""
        return (self.rows.ntiles, self.cols.ntiles)

    def tile_shape(self, i: int, j: int) -> tuple[int, int]:
        """Element shape of tile ``(i, j)`` whether present or not."""
        return (self.rows.tile_size(i), self.cols.tile_size(j))

    # -- tile access ---------------------------------------------------------

    @property
    def nnz_tiles(self) -> int:
        """Number of stored tiles."""
        return len(self._tiles)

    @property
    def nbytes(self) -> int:
        """Bytes of stored tile data."""
        return sum(t.nbytes for t in self._tiles.values())

    def has_tile(self, i: int, j: int) -> bool:
        return (i, j) in self._tiles

    def get_tile(self, i: int, j: int) -> np.ndarray:
        """The stored tile ``(i, j)``; raises :class:`KeyError` if absent."""
        return self._tiles[(i, j)]

    def tile_or_zeros(self, i: int, j: int) -> np.ndarray:
        """The stored tile, or a fresh zero tile of the right shape."""
        t = self._tiles.get((i, j))
        return t if t is not None else np.zeros(self.tile_shape(i, j))

    def set_tile(self, i: int, j: int, data: np.ndarray) -> None:
        """Insert/overwrite tile ``(i, j)`` after shape validation."""
        expected = self.tile_shape(i, j)
        arr = np.ascontiguousarray(data, dtype=np.float64)
        require(
            arr.shape == expected,
            f"tile ({i},{j}) has shape {arr.shape}, expected {expected}",
        )
        self._tiles[(i, j)] = arr

    def accumulate_tile(self, i: int, j: int, data: np.ndarray) -> None:
        """``tile += data``, creating the tile if absent."""
        cur = self._tiles.get((i, j))
        if cur is None:
            self.set_tile(i, j, data)
        else:
            cur += data

    def drop_tile(self, i: int, j: int) -> None:
        """Remove tile ``(i, j)`` if present."""
        self._tiles.pop((i, j), None)

    def items(self) -> Iterator[tuple[TileKey, np.ndarray]]:
        """Iterate over stored ``((i, j), tile)`` pairs."""
        return iter(self._tiles.items())

    def keys(self) -> Iterator[TileKey]:
        return iter(self._tiles.keys())

    # -- conversions ----------------------------------------------------------

    def sparse_shape(self, with_norms: bool = False) -> SparseShape:
        """The tile-occupancy shape of this matrix.

        With ``with_norms=True`` the shape carries per-tile Frobenius norms,
        which the screened ("opt") planners consume.
        """
        if not self._tiles:
            return SparseShape.empty(self.rows, self.cols)
        ii = np.fromiter((k[0] for k in self._tiles), dtype=np.int64, count=len(self._tiles))
        jj = np.fromiter((k[1] for k in self._tiles), dtype=np.int64, count=len(self._tiles))
        norms = None
        if with_norms:
            norms = np.fromiter(
                (np.linalg.norm(t) for t in self._tiles.values()),
                dtype=np.float64,
                count=len(self._tiles),
            )
            norms = np.maximum(norms, 1e-300)  # keep occupancy for zero tiles
        return SparseShape.from_coo(self.rows, self.cols, ii, jj, norms)

    def to_dense(self) -> np.ndarray:
        """Materialize the full dense matrix (tests / small problems only)."""
        out = np.zeros(self.shape)
        for (i, j), tile in self._tiles.items():
            out[self.rows.tile_slice(i), self.cols.tile_slice(j)] = tile
        return out

    # -- algebra ---------------------------------------------------------------

    def copy(self) -> "BlockSparseMatrix":
        """Deep copy."""
        out = BlockSparseMatrix(self.rows, self.cols)
        for (i, j), tile in self._tiles.items():
            out._tiles[(i, j)] = tile.copy()
        return out

    def transpose(self) -> "BlockSparseMatrix":
        """The transposed matrix (tiles transposed and re-keyed)."""
        out = BlockSparseMatrix(self.cols, self.rows)
        for (i, j), tile in self._tiles.items():
            out._tiles[(j, i)] = np.ascontiguousarray(tile.T)
        return out

    def scale(self, alpha: float) -> "BlockSparseMatrix":
        """In-place scaling by ``alpha``; returns self for chaining."""
        for tile in self._tiles.values():
            tile *= alpha
        return self

    def axpy(self, alpha: float, other: "BlockSparseMatrix") -> "BlockSparseMatrix":
        """In-place ``self += alpha * other`` (union of occupancies)."""
        require(
            self.rows == other.rows and self.cols == other.cols,
            "axpy operands live on different tile grids",
        )
        for (i, j), tile in other._tiles.items():
            cur = self._tiles.get((i, j))
            if cur is None:
                self.set_tile(i, j, alpha * tile)
            else:
                cur += alpha * tile
        return self

    def norm_fro(self) -> float:
        """Frobenius norm of the whole matrix."""
        return float(np.sqrt(sum(float(np.vdot(t, t)) for t in self._tiles.values())))

    def allclose(self, other: "BlockSparseMatrix", rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Numerical equality treating absent tiles as zeros."""
        if self.rows != other.rows or self.cols != other.cols:
            return False
        for key in set(self._tiles) | set(other._tiles):
            a = self._tiles.get(key)
            b = other._tiles.get(key)
            if a is None:
                a = np.zeros_like(b)
            if b is None:
                b = np.zeros_like(a)
            if not np.allclose(a, b, rtol=rtol, atol=atol):
                return False
        return True

    def prune(self, tol: float = 0.0) -> "BlockSparseMatrix":
        """Drop tiles whose max-abs entry is ``<= tol`` (in place)."""
        dead = [k for k, t in self._tiles.items() if (t.size == 0 or np.max(np.abs(t)) <= tol)]
        for k in dead:
            del self._tiles[k]
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockSparseMatrix({self.shape[0]}x{self.shape[1]} elements, "
            f"{self.tile_grid[0]}x{self.tile_grid[1]} tiles, nnz={self.nnz_tiles})"
        )
