"""Constructors for :class:`~repro.sparse.matrix.BlockSparseMatrix`."""

from __future__ import annotations

import numpy as np

from repro.sparse.matrix import BlockSparseMatrix
from repro.sparse.random_sparsity import random_shape_with_density
from repro.sparse.shape import SparseShape
from repro.tiling.tiling import Tiling
from repro.util.rng import resolve_rng, spawn_rng


def zeros(rows: Tiling, cols: Tiling) -> BlockSparseMatrix:
    """A matrix with no stored tiles (identically zero)."""
    return BlockSparseMatrix(rows, cols)


def from_dense(
    dense: np.ndarray,
    rows: Tiling,
    cols: Tiling,
    drop_tol: float | None = 0.0,
) -> BlockSparseMatrix:
    """Tile a dense array; tiles with max-abs ``<= drop_tol`` are omitted.

    Pass ``drop_tol=None`` to keep every tile including all-zero ones.
    """
    if dense.shape != (rows.extent, cols.extent):
        raise ValueError(f"dense shape {dense.shape} != ({rows.extent}, {cols.extent})")
    out = BlockSparseMatrix(rows, cols)
    for i in range(rows.ntiles):
        ri = rows.tile_slice(i)
        for j in range(cols.ntiles):
            tile = dense[ri, cols.tile_slice(j)]
            if drop_tol is None or np.max(np.abs(tile), initial=0.0) > drop_tol:
                out.set_tile(i, j, tile)
    return out


def from_shape(
    shape: SparseShape,
    fill: str = "random",
    seed: int | None | np.random.Generator = None,
) -> BlockSparseMatrix:
    """Materialize numeric tiles for every present tile of ``shape``.

    ``fill`` is ``"random"`` (standard normal entries), ``"ones"``, or
    ``"zeros"``.  Tile data is derived from a per-tile child RNG keyed by the
    tile id, so the same seed produces the same matrix regardless of
    instantiation order — the property the paper's on-demand B generator
    relies on.
    """
    rng = resolve_rng(seed)
    out = BlockSparseMatrix(shape.rows, shape.cols)
    ii, jj = shape.nonzero_tiles()
    ntc = shape.ntile_cols
    for i, j in zip(ii.tolist(), jj.tolist()):
        tshape = (shape.rows.tile_size(i), shape.cols.tile_size(j))
        if fill == "random":
            child = spawn_rng(rng, i * ntc + j)
            out.set_tile(i, j, child.standard_normal(tshape))
        elif fill == "ones":
            out.set_tile(i, j, np.ones(tshape))
        elif fill == "zeros":
            out.set_tile(i, j, np.zeros(tshape))
        else:
            raise ValueError(f"unknown fill {fill!r}")
    return out


def random_full(
    rows: Tiling,
    cols: Tiling,
    seed: int | None | np.random.Generator = None,
) -> BlockSparseMatrix:
    """A fully dense random matrix (every tile present)."""
    return from_shape(SparseShape.full(rows, cols), fill="random", seed=seed)


def random_block_sparse(
    rows: Tiling,
    cols: Tiling,
    density: float,
    seed: int | None | np.random.Generator = None,
) -> BlockSparseMatrix:
    """A random matrix with the paper's synthetic sparsity at ``density``.

    The occupancy comes from the iterative elimination generator
    (:func:`~repro.sparse.random_sparsity.random_shape_with_density`);
    tile values are standard normal.
    """
    rng = resolve_rng(seed)
    shape = random_shape_with_density(rows, cols, density, seed=rng)
    return from_shape(shape, fill="random", seed=rng)
