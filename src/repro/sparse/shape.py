"""Tile-level sparsity shapes.

A :class:`SparseShape` records *which* tiles of an irregularly tiled matrix
are present, independent of their data.  Everything the inspector and the
performance models need — flop counts, per-column weights, communication
volumes, densities for Table 1 — is computed from shapes with vectorized
:mod:`scipy.sparse` algebra, so paper-scale instances (the C65H132 ``V``
matrix has 17.8 M potential tiles, ~430 k present) are handled in
milliseconds without materializing any numeric data.

Shapes may optionally carry per-tile Frobenius norms, which the screened
("opt") variants of the contraction use to drop numerically negligible
products, as in [Calvin, Lewis, Valeev 2015].
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.tiling.tiling import Tiling
from repro.util.validation import require


class SparseShape:
    """Occupancy (and optional norms) of a block-sparse matrix.

    Parameters
    ----------
    rows, cols:
        Tilings of the row and column index ranges.
    mask:
        ``(ntile_rows, ntile_cols)`` occupancy, any scipy-sparse or dense
        boolean-like array.  Stored canonically as CSR ``float64`` whose
        values are the per-tile norms (1.0 when no norms are supplied);
        explicit zeros are pruned.
    """

    __slots__ = ("rows", "cols", "_csr")

    def __init__(self, rows: Tiling, cols: Tiling, mask) -> None:
        self.rows = rows
        self.cols = cols
        csr = sp.csr_matrix(mask, dtype=np.float64, copy=True)
        require(
            csr.shape == (rows.ntiles, cols.ntiles),
            f"mask shape {csr.shape} != tile grid ({rows.ntiles}, {cols.ntiles})",
        )
        csr.eliminate_zeros()
        csr.sum_duplicates()
        self._csr = csr

    # -- constructors ------------------------------------------------------

    @classmethod
    def full(cls, rows: Tiling, cols: Tiling) -> "SparseShape":
        """A fully dense shape (every tile present, norm 1)."""
        return cls(rows, cols, np.ones((rows.ntiles, cols.ntiles)))

    @classmethod
    def empty(cls, rows: Tiling, cols: Tiling) -> "SparseShape":
        """A shape with no tiles present."""
        return cls(rows, cols, sp.csr_matrix((rows.ntiles, cols.ntiles)))

    @classmethod
    def from_coo(
        cls,
        rows: Tiling,
        cols: Tiling,
        tile_rows: np.ndarray,
        tile_cols: np.ndarray,
        norms: np.ndarray | None = None,
    ) -> "SparseShape":
        """Shape from coordinate lists of present tiles."""
        vals = np.ones(len(tile_rows)) if norms is None else np.asarray(norms, dtype=np.float64)
        mat = sp.coo_matrix(
            (vals, (tile_rows, tile_cols)), shape=(rows.ntiles, cols.ntiles)
        )
        return cls(rows, cols, mat)

    # -- basic queries -----------------------------------------------------

    @property
    def csr(self) -> sp.csr_matrix:
        """The canonical CSR (values = per-tile norms, 1.0 by default)."""
        return self._csr

    @property
    def ntile_rows(self) -> int:
        return self.rows.ntiles

    @property
    def ntile_cols(self) -> int:
        return self.cols.ntiles

    @property
    def nnz_tiles(self) -> int:
        """Number of present tiles."""
        return int(self._csr.nnz)

    @property
    def tile_density(self) -> float:
        """Fraction of the tile grid that is present."""
        return self.nnz_tiles / (self.ntile_rows * self.ntile_cols)

    @property
    def element_nnz(self) -> int:
        """Total element count of all present tiles."""
        i, j = self.nonzero_tiles()
        return int(np.sum(self.rows.sizes[i] * self.cols.sizes[j]))

    @property
    def element_density(self) -> float:
        """Element-wise fill fraction (what the paper calls *density*)."""
        return self.element_nnz / (self.rows.extent * self.cols.extent)

    @property
    def nbytes(self) -> int:
        """Bytes of tile data a double-precision matrix of this shape holds."""
        return self.element_nnz * 8

    def nonzero_tiles(self) -> tuple[np.ndarray, np.ndarray]:
        """``(i, j)`` arrays of present tile coordinates (row-major order)."""
        coo = self._csr.tocoo()
        return coo.row.astype(np.int64), coo.col.astype(np.int64)

    def max_tile_nbytes(self, dtype_bytes: int = 8) -> int:
        """Bytes of the largest *present* tile (0 for an empty shape)."""
        i, j = self.nonzero_tiles()
        if i.size == 0:
            return 0
        return int((self.rows.sizes[i] * self.cols.sizes[j]).max()) * dtype_bytes

    def has_tile(self, i: int, j: int) -> bool:
        """Whether tile ``(i, j)`` is present."""
        return bool(self._csr[i, j] != 0)

    def tile_norms(self) -> sp.csr_matrix:
        """Per-tile norms as CSR (values of the canonical matrix)."""
        return self._csr

    def tile_bytes(self, dtype_bytes: int = 8) -> sp.csr_matrix:
        """CSR whose values are per-tile byte sizes of the present tiles."""
        i, j = self.nonzero_tiles()
        vals = (self.rows.sizes[i] * self.cols.sizes[j] * dtype_bytes).astype(np.float64)
        return sp.csr_matrix((vals, (i, j)), shape=self._csr.shape)

    def column_element_counts(self) -> np.ndarray:
        """Per tile-column total element count of present tiles."""
        pattern = self.pattern()
        col_rows = pattern.T @ self.rows.sizes.astype(np.float64)  # sum of row sizes per col
        return (col_rows * self.cols.sizes).astype(np.int64)

    def row_element_counts(self) -> np.ndarray:
        """Per tile-row total element count of present tiles."""
        pattern = self.pattern()
        row_cols = pattern @ self.cols.sizes.astype(np.float64)
        return (row_cols * self.rows.sizes).astype(np.int64)

    def pattern(self) -> sp.csr_matrix:
        """0/1 CSR occupancy (norms stripped)."""
        pat = self._csr.copy()
        pat.data = np.ones_like(pat.data)
        return pat

    # -- algebra -----------------------------------------------------------

    def transpose(self) -> "SparseShape":
        """Shape of the transposed matrix."""
        return SparseShape(self.cols, self.rows, self._csr.T.tocsr())

    def with_norms(self, norms: sp.spmatrix) -> "SparseShape":
        """Same occupancy, values replaced by ``norms`` (restricted to it)."""
        pat = self.pattern()
        new = pat.multiply(sp.csr_matrix(norms))
        # Keep occupancy even where the supplied norm is 0 (treat as tiny).
        new = new + pat.multiply(1e-300)
        return SparseShape(self.rows, self.cols, new)

    def intersect(self, other: "SparseShape") -> "SparseShape":
        """Tiles present in both (norms multiplied)."""
        self._check_same_grid(other)
        return SparseShape(self.rows, self.cols, self._csr.multiply(other._csr))

    def union(self, other: "SparseShape") -> "SparseShape":
        """Tiles present in either (norms added — used for accumulation)."""
        self._check_same_grid(other)
        return SparseShape(self.rows, self.cols, self._csr + other._csr)

    def restrict_rows(self, tile_rows: np.ndarray) -> "SparseShape":
        """Shape of the horizontal slice made of the given tile rows."""
        sel = np.asarray(tile_rows, dtype=np.int64)
        sub = self._csr[sel, :]
        return SparseShape(self.rows.restrict(sel), self.cols, sub)

    def restrict_cols(self, tile_cols: np.ndarray) -> "SparseShape":
        """Shape of the vertical slice made of the given tile columns."""
        sel = np.asarray(tile_cols, dtype=np.int64)
        sub = self._csr[:, sel]
        return SparseShape(self.rows, self.cols.restrict(sel), sub)

    def _check_same_grid(self, other: "SparseShape") -> None:
        require(
            self.rows == other.rows and self.cols == other.cols,
            "shapes live on different tile grids",
        )

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseShape):
            return NotImplemented
        if self.rows != other.rows or self.cols != other.cols:
            return False
        return (self.pattern() != other.pattern()).nnz == 0

    def __hash__(self) -> int:  # pragma: no cover - shapes used as values
        raise TypeError("SparseShape is not hashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseShape({self.rows.extent}x{self.cols.extent} elements, "
            f"{self.ntile_rows}x{self.ntile_cols} tiles, nnz={self.nnz_tiles}, "
            f"density={self.element_density:.3f})"
        )
