"""Block-sparse matrices over irregular tilings.

The paper's kernel is ``C <- C + A @ B`` where all three matrices are
*block-sparse*: a tile is either entirely absent (zero) or a dense NumPy
array.  Two representations coexist:

* :class:`~repro.sparse.shape.SparseShape` — tile-level occupancy (and
  optional per-tile norms) without data.  All the planning, screening, flop
  counting and performance modelling at paper scale (hundreds of thousands
  to millions of tiles) runs on shapes only, via vectorized sparse algebra
  in :mod:`~repro.sparse.shape_algebra`.
* :class:`~repro.sparse.matrix.BlockSparseMatrix` — shape plus actual tile
  data, used by the numeric execution path and by the tests that prove the
  distributed plan computes the exact same result as a dense reference.
"""

from repro.sparse.shape import SparseShape
from repro.sparse.matrix import BlockSparseMatrix
from repro.sparse.construct import (
    from_dense,
    random_block_sparse,
    random_full,
    zeros,
)
from repro.sparse.gemm_ref import block_gemm_reference
from repro.sparse.shape_algebra import (
    gemm_flops,
    gemm_task_count,
    per_column_flops,
    per_column_task_counts,
    product_shape,
    screened_product,
)
from repro.sparse.random_sparsity import random_shape_with_density
from repro.sparse.lowrank import ClrMatrix, LowRankTile, clr_gemm, compress_tile

__all__ = [
    "SparseShape",
    "BlockSparseMatrix",
    "from_dense",
    "random_block_sparse",
    "random_full",
    "zeros",
    "block_gemm_reference",
    "gemm_flops",
    "gemm_task_count",
    "per_column_flops",
    "per_column_task_counts",
    "product_shape",
    "screened_product",
    "random_shape_with_density",
    "ClrMatrix",
    "LowRankTile",
    "clr_gemm",
    "compress_tile",
]
