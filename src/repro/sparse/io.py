"""Save/load block-sparse matrices and shapes as ``.npz`` archives.

Archives are self-describing: tilings, tile coordinates, and a flat data
buffer with per-tile offsets.  Useful for caching the generated chemistry
problems between benchmark runs.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.matrix import BlockSparseMatrix
from repro.sparse.shape import SparseShape
from repro.tiling.tiling import Tiling


def save_matrix(path: str, mat: BlockSparseMatrix) -> None:
    """Serialize ``mat`` to ``path`` (a ``.npz`` file)."""
    keys = sorted(mat.keys())
    ii = np.array([k[0] for k in keys], dtype=np.int64)
    jj = np.array([k[1] for k in keys], dtype=np.int64)
    sizes = np.array(
        [mat.get_tile(i, j).size for i, j in keys], dtype=np.int64
    )
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    buf = np.empty(int(offsets[-1]), dtype=np.float64)
    for t, (i, j) in enumerate(keys):
        buf[offsets[t] : offsets[t + 1]] = mat.get_tile(i, j).ravel()
    np.savez_compressed(
        path,
        row_offsets=mat.rows.offsets,
        col_offsets=mat.cols.offsets,
        tile_i=ii,
        tile_j=jj,
        data_offsets=offsets,
        data=buf,
    )


def load_matrix(path: str) -> BlockSparseMatrix:
    """Load a matrix previously written by :func:`save_matrix`."""
    with np.load(path) as z:
        rows = Tiling(z["row_offsets"])
        cols = Tiling(z["col_offsets"])
        ii = z["tile_i"]
        jj = z["tile_j"]
        offsets = z["data_offsets"]
        buf = z["data"]
        mat = BlockSparseMatrix(rows, cols)
        for t in range(len(ii)):
            i, j = int(ii[t]), int(jj[t])
            shape = (rows.tile_size(i), cols.tile_size(j))
            mat.set_tile(i, j, buf[offsets[t] : offsets[t + 1]].reshape(shape))
    return mat


def save_shape(path: str, shape: SparseShape) -> None:
    """Serialize a shape (occupancy + norms) to ``path``."""
    coo = shape.csr.tocoo()
    np.savez_compressed(
        path,
        row_offsets=shape.rows.offsets,
        col_offsets=shape.cols.offsets,
        tile_i=coo.row.astype(np.int64),
        tile_j=coo.col.astype(np.int64),
        norms=coo.data,
    )


def load_shape(path: str) -> SparseShape:
    """Load a shape previously written by :func:`save_shape`."""
    with np.load(path) as z:
        rows = Tiling(z["row_offsets"])
        cols = Tiling(z["col_offsets"])
        return SparseShape.from_coo(rows, cols, z["tile_i"], z["tile_j"], z["norms"])
