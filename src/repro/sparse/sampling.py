"""Task-population statistics for screened planning.

The "opt" variants of Table 1 drop the weakest ~3 % of tile GEMMs by
norm-product.  Picking the threshold requires the distribution of
``||A_ik|| * ||B_kj||`` over the *task* population (i, k, j); this module
computes exact quantiles of that distribution with one vectorized pass
per inner tile.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.shape import SparseShape
from repro.sparse.shape_algebra import _check_conformable


def task_norm_products(
    a: SparseShape, b: SparseShape, max_samples: int | None = None, seed: int = 0
) -> np.ndarray:
    """All (or a uniform sample of) task norm-products of ``A @ B``.

    With ``max_samples`` set, inner tiles are subsampled proportionally so
    the result stays bounded on huge instances.
    """
    _check_conformable(a, b)
    a_csc = a.csr.tocsc()
    b_csr = b.csr
    nK = a.cols.ntiles
    total = 0
    chunks: list[np.ndarray] = []
    rng = np.random.default_rng(seed)
    for k in range(nK):
        an = a_csc.data[a_csc.indptr[k] : a_csc.indptr[k + 1]]
        if an.size == 0:
            continue
        bn = b_csr.data[b_csr.indptr[k] : b_csr.indptr[k + 1]]
        if bn.size == 0:
            continue
        prod = (an[:, None] * bn[None, :]).ravel()
        total += prod.size
        chunks.append(prod)
    if not chunks:
        return np.empty(0)
    out = np.concatenate(chunks)
    if max_samples is not None and out.size > max_samples:
        out = rng.choice(out, size=max_samples, replace=False)
    return out


def task_norm_product_quantile(
    a: SparseShape, b: SparseShape, q: float, max_samples: int | None = 2_000_000
) -> float:
    """The ``q``-quantile of the task norm-product distribution.

    Screening at this threshold drops (approximately) fraction ``q`` of
    the tile GEMMs — the paper's "opt" plans use q ~ 0.03.
    """
    products = task_norm_products(a, b, max_samples=max_samples)
    if products.size == 0:
        return 0.0
    return float(np.quantile(products, q))
