"""Clustered low-rank (CLR) tile compression.

The paper's opening sentence motivates tensors "sometimes with additional
structure (recursive hierarchy, rank sparsity, etc.)", and its tilings
come from the Clustered Low-Rank framework [Lewis, Calvin, Valeev 2016]:
within a block-sparse matrix, individual dense tiles whose singular
spectrum decays are stored as rank-r factors ``U @ V.T`` instead of full
matrices, cutting both memory and GEMM flops.

This module adds that representation on top of
:class:`~repro.sparse.matrix.BlockSparseMatrix`:

* :func:`compress_tile` — truncated-SVD compression with an absolute
  Frobenius tolerance, kept only when it actually saves storage;
* :class:`ClrMatrix` — a mixed container (dense and low-rank tiles) with
  exact byte accounting;
* :func:`clr_gemm` — block GEMM over mixed tiles, using the factored
  forms to reduce work (``(U1 V1ᵀ)(U2 V2ᵀ) = U1 (V1ᵀ U2) V2ᵀ``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

import numpy as np

from repro.sparse.matrix import BlockSparseMatrix
from repro.tiling.tiling import Tiling
from repro.util.validation import require

TileKey = Tuple[int, int]


@dataclass(frozen=True)
class LowRankTile:
    """A tile stored as ``u @ v.T`` with ``u: (m, r)`` and ``v: (n, r)``."""

    u: np.ndarray
    v: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        return (self.u.shape[0], self.v.shape[0])

    @property
    def rank(self) -> int:
        return self.u.shape[1]

    @property
    def nbytes(self) -> int:
        return self.u.nbytes + self.v.nbytes

    def to_dense(self) -> np.ndarray:
        return self.u @ self.v.T


AnyTile = Union[np.ndarray, LowRankTile]


def compress_tile(
    data: np.ndarray, tol: float, only_if_smaller: bool = True
) -> AnyTile:
    """Compress one dense tile to the smallest rank within ``tol``.

    The truncation satisfies ``||data - u vᵀ||_F <= tol``.  When the
    factored form would not be smaller than the dense tile (and
    ``only_if_smaller``), the dense array is returned unchanged.
    """
    require(tol >= 0, "tol must be non-negative")
    m, n = data.shape
    if min(m, n) == 0:
        return data
    u, s, vt = np.linalg.svd(data, full_matrices=False)
    # err(r) = ||discarded s[r:]||_2, decreasing in r; keep the smallest
    # rank whose truncation error is within tol.
    err = np.sqrt(np.cumsum((s**2)[::-1]))[::-1]
    keep = int(np.sum(err > tol))
    if keep == 0:
        # Entire tile below tolerance: rank-0, represent as empty factors.
        return LowRankTile(u=np.zeros((m, 0)), v=np.zeros((n, 0)))
    lr = LowRankTile(
        u=np.ascontiguousarray(u[:, :keep] * s[:keep]),
        v=np.ascontiguousarray(vt[:keep].T),
    )
    if only_if_smaller and lr.nbytes >= data.nbytes:
        return np.ascontiguousarray(data)
    return lr


class ClrMatrix:
    """A block-sparse matrix whose tiles may be dense or low-rank."""

    __slots__ = ("rows", "cols", "tiles")

    def __init__(self, rows: Tiling, cols: Tiling):
        self.rows = rows
        self.cols = cols
        self.tiles: Dict[TileKey, AnyTile] = {}

    @classmethod
    def compress(
        cls, matrix: BlockSparseMatrix, tol: float
    ) -> "ClrMatrix":
        """Compress every tile of ``matrix`` within absolute tolerance
        ``tol`` (per tile, Frobenius)."""
        out = cls(matrix.rows, matrix.cols)
        for key, data in matrix.items():
            out.tiles[key] = compress_tile(data, tol)
        return out

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self.tiles.values())

    @property
    def nnz_tiles(self) -> int:
        return len(self.tiles)

    def compression_ratio(self) -> float:
        """Dense bytes of the stored tiles divided by actual bytes."""
        dense = sum(
            self.rows.tile_size(i) * self.cols.tile_size(j) * 8
            for (i, j) in self.tiles
        )
        return dense / self.nbytes if self.nbytes else float("inf")

    def average_rank(self) -> float:
        """Mean rank of the low-rank tiles (dense tiles count full rank)."""
        ranks = []
        for (i, j), t in self.tiles.items():
            if isinstance(t, LowRankTile):
                ranks.append(t.rank)
            else:
                ranks.append(min(t.shape))
        return float(np.mean(ranks)) if ranks else 0.0

    def to_block_sparse(self) -> BlockSparseMatrix:
        """Decompress to a plain block-sparse matrix."""
        out = BlockSparseMatrix(self.rows, self.cols)
        for (i, j), t in self.tiles.items():
            data = t.to_dense() if isinstance(t, LowRankTile) else t
            out.set_tile(i, j, data)
        return out

    def to_dense(self) -> np.ndarray:
        return self.to_block_sparse().to_dense()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClrMatrix({self.rows.extent}x{self.cols.extent}, nnz={self.nnz_tiles}, "
            f"compression {self.compression_ratio():.1f}x)"
        )


def _tile_product(a: AnyTile, b: AnyTile) -> tuple[np.ndarray | None, LowRankTile | None]:
    """Product of two mixed tiles; returns (dense, low_rank) — one is None.

    Uses the cheapest association for each of the four combinations.
    """
    a_lr = isinstance(a, LowRankTile)
    b_lr = isinstance(b, LowRankTile)
    if a_lr and b_lr:
        if a.rank == 0 or b.rank == 0:
            return None, LowRankTile(
                u=np.zeros((a.shape[0], 0)), v=np.zeros((b.shape[1], 0))
            )
        core = a.v.T @ b.u  # (ra, rb)
        if a.rank <= b.rank:
            return None, LowRankTile(u=a.u, v=b.v @ core.T)
        return None, LowRankTile(u=a.u @ core, v=b.v)
    if a_lr:
        if a.rank == 0:
            return None, LowRankTile(u=np.zeros((a.shape[0], 0)), v=np.zeros((b.shape[1], 0)))
        return None, LowRankTile(u=a.u, v=b.T @ a.v)
    if b_lr:
        if b.rank == 0:
            return None, LowRankTile(u=np.zeros((a.shape[0], 0)), v=np.zeros((b.shape[1], 0)))
        return None, LowRankTile(u=a @ b.u, v=b.v)
    return a @ b, None


def clr_gemm(a: ClrMatrix, b: ClrMatrix) -> BlockSparseMatrix:
    """``C = A @ B`` over mixed dense/low-rank tiles (C dense tiles).

    Accumulation rounds every contribution to dense — recompressing the
    accumulator is the natural extension and is left dense here so the
    result is exactly comparable to the plain block GEMM.
    """
    require(a.cols == b.rows, "inner tilings differ")
    from collections import defaultdict

    b_by_k: dict[int, list[tuple[int, AnyTile]]] = defaultdict(list)
    for (k, j), tile in b.tiles.items():
        b_by_k[k].append((j, tile))

    c = BlockSparseMatrix(a.rows, b.cols)
    for (i, k), a_tile in a.tiles.items():
        for j, b_tile in b_by_k.get(k, ()):
            dense, lr = _tile_product(a_tile, b_tile)
            contrib = dense if dense is not None else lr.to_dense()
            c.accumulate_tile(i, j, contrib)
    return c


def clr_flops(a: ClrMatrix, b: ClrMatrix) -> float:
    """Flop count of :func:`clr_gemm` exploiting the factored forms."""
    from collections import defaultdict

    b_by_k: dict[int, list[tuple[int, AnyTile]]] = defaultdict(list)
    for (k, j), tile in b.tiles.items():
        b_by_k[k].append((j, tile))

    total = 0.0
    for (i, k), at in a.tiles.items():
        m = at.shape[0]
        kk = at.shape[1]
        for j, bt in b_by_k.get(k, ()):
            n = bt.shape[1]
            a_lr = isinstance(at, LowRankTile)
            b_lr = isinstance(bt, LowRankTile)
            if a_lr and b_lr:
                ra, rb = at.rank, bt.rank
                total += 2.0 * (ra * kk * rb + min(ra, rb) * (m if ra <= rb else n) * max(ra, rb))
                total += 2.0 * m * min(ra, rb) * n  # final expansion
            elif a_lr:
                total += 2.0 * at.rank * kk * n + 2.0 * m * at.rank * n
            elif b_lr:
                total += 2.0 * m * kk * bt.rank + 2.0 * m * bt.rank * n
            else:
                total += 2.0 * m * kk * n
    return total
