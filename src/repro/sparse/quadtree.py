"""Hierarchical (quad-tree) block-sparse representation and Z-order layout.

The paper's related work (Section 6.2) discusses Chunks-and-Tasks
[Rubensson & Rudberg 2016] and the hierarchic sparse matrix format
[Rubensson et al. 2007]: "the key advantage of using quad-trees is to
preserve data locality while reducing communications".  This module
implements both ingredients at tile granularity so the claim can be
quantified against the paper's flat 2D-cyclic layout:

* :class:`QuadTree` — a recursive quadrant decomposition of the tile
  grid, with empty quadrants pruned (the memory-overhead reduction the
  related work targets);
* :func:`morton_order` / :func:`zorder_owners` — the space-filling-curve
  tile->process assignment hierarchical formats induce;
* :func:`distribution_traffic` — A-broadcast volume of the paper's
  algorithm under an arbitrary initial owner map, so Z-order and
  2D-cyclic initial placements can be compared on equal terms
  (``bench_related_zorder.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.plan import ExecutionPlan
from repro.sparse.shape import SparseShape
from repro.util.validation import require


@dataclass
class QuadNode:
    """One node of the quad-tree: a rectangle of the tile grid.

    Leaves carry the indices (into the shape's nonzero list) of the tiles
    they contain; internal nodes carry up to four children.
    """

    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int
    children: list["QuadNode"] = field(default_factory=list)
    tile_idx: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.tile_idx is not None

    @property
    def nnz(self) -> int:
        if self.is_leaf:
            return int(self.tile_idx.size)
        return sum(c.nnz for c in self.children)


class QuadTree:
    """Quad-tree over a :class:`SparseShape`'s tile grid.

    Parameters
    ----------
    shape:
        The block-sparse occupancy to index.
    leaf_tiles:
        Stop subdividing when a quadrant spans at most this many tile
        rows *and* columns.
    """

    def __init__(self, shape: SparseShape, leaf_tiles: int = 8):
        require(leaf_tiles >= 1, "leaf_tiles must be >= 1")
        self.shape = shape
        self.leaf_tiles = leaf_tiles
        ii, jj = shape.nonzero_tiles()
        self._ii = ii
        self._jj = jj
        self.root = self._build(
            0, shape.ntile_rows, 0, shape.ntile_cols, np.arange(ii.size)
        )

    def _build(self, rlo, rhi, clo, chi, idx) -> QuadNode:
        node = QuadNode(rlo, rhi, clo, chi)
        span = max(rhi - rlo, chi - clo)
        if span <= self.leaf_tiles or idx.size == 0:
            node.tile_idx = idx
            return node
        rmid = (rlo + rhi + 1) // 2
        cmid = (clo + chi + 1) // 2
        ii, jj = self._ii[idx], self._jj[idx]
        for rl, rh in ((rlo, rmid), (rmid, rhi)):
            for cl, ch in ((clo, cmid), (cmid, chi)):
                if rh <= rl or ch <= cl:
                    continue
                sub = idx[(ii >= rl) & (ii < rh) & (jj >= cl) & (jj < ch)]
                if sub.size:
                    node.children.append(self._build(rl, rh, cl, ch, sub))
        if not node.children:  # all quadrants empty
            node.tile_idx = idx
        return node

    # -- statistics ----------------------------------------------------------

    @property
    def nnz_tiles(self) -> int:
        return self.root.nnz

    def depth(self) -> int:
        def d(node: QuadNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(d(c) for c in node.children)

        return d(self.root)

    def node_count(self) -> int:
        def cnt(node: QuadNode) -> int:
            return 1 + sum(cnt(c) for c in node.children)

        return cnt(self.root)

    def leaves(self) -> list[QuadNode]:
        out: list[QuadNode] = []

        def walk(node: QuadNode) -> None:
            if node.is_leaf:
                out.append(node)
            else:
                for c in node.children:
                    walk(c)

        walk(self.root)
        return out

    def occupancy_savings(self) -> float:
        """Fraction of the full tile grid never indexed (pruned quadrants).

        The related work's memory-overhead argument: a flat index stores
        every (i, j) cell; the quad-tree skips empty quadrants wholesale.
        """
        covered = sum(
            (l.row_hi - l.row_lo) * (l.col_hi - l.col_lo) for l in self.leaves()
        )
        total = self.shape.ntile_rows * self.shape.ntile_cols
        return 1.0 - covered / total if total else 0.0


# -- Z-order (Morton) tile distribution ---------------------------------------


def _interleave_bits(x: np.ndarray, y: np.ndarray, bits: int = 16) -> np.ndarray:
    """Morton code of (x, y) pairs (vectorized)."""
    code = np.zeros(x.shape, dtype=np.int64)
    for b in range(bits):
        code |= ((x >> b) & 1) << (2 * b + 1)
        code |= ((y >> b) & 1) << (2 * b)
    return code


def morton_order(ii: np.ndarray, jj: np.ndarray) -> np.ndarray:
    """Permutation sorting tile coordinates along the Z-curve."""
    return np.argsort(_interleave_bits(np.asarray(ii), np.asarray(jj)), kind="stable")


def zorder_owners(ii: np.ndarray, jj: np.ndarray, nprocs: int) -> np.ndarray:
    """Owner process per tile: contiguous equal-count spans of the Z-curve.

    This is the locality-preserving distribution hierarchical formats
    induce (each process gets a compact 2-D patch of tiles).
    """
    order = morton_order(ii, jj)
    owners = np.empty(len(order), dtype=np.int64)
    bounds = np.linspace(0, len(order), nprocs + 1).astype(np.int64)
    for p in range(nprocs):
        owners[order[bounds[p] : bounds[p + 1]]] = p
    return owners


def distribution_traffic(plan: ExecutionPlan, owner_of_tile) -> int:
    """Internode A traffic (bytes) of the plan under an owner map.

    ``owner_of_tile(i, k) -> rank`` gives the *initial* placement of every
    A tile; each consumer process receives the needed tiles it does not
    own.  With the paper's 2D-cyclic map this reproduces the plan's
    recorded volumes; with a Z-order map it prices the related-work
    layout under the same consumer set.
    """
    nK = plan.a_shape.ntile_cols
    m = plan.a_shape.rows.sizes.astype(np.int64)
    k = plan.a_shape.cols.sizes.astype(np.int64)
    total = 0
    for proc in plan.procs:
        owners = owner_of_tile(proc.a_needed_rows, proc.a_needed_cols)
        nbytes = m[proc.a_needed_rows] * k[proc.a_needed_cols] * 8
        total += int(nbytes[np.asarray(owners) != proc.rank].sum())
    return total
