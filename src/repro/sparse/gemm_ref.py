"""Reference (serial, in-process) block-sparse GEMM.

This is the ground truth the distributed execution plans are validated
against: a straightforward ``C <- beta*C + alpha*A@B`` looping over present
tile pairs, with each tile product a dense NumPy GEMM.  The loop is ordered
k-outermost so each B tile row is visited once — the same traversal the
paper's per-column chains use, which makes numerical summation order match
the planned execution closely (exactly, for single-processor plans).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.sparse.matrix import BlockSparseMatrix
from repro.util.validation import require


def block_gemm_reference(
    a: BlockSparseMatrix,
    b: BlockSparseMatrix,
    c: BlockSparseMatrix | None = None,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> BlockSparseMatrix:
    """Compute ``C <- beta*C + alpha * A @ B`` tile-by-tile.

    Parameters
    ----------
    a, b:
        Conforming block-sparse operands (``a.cols == b.rows``).
    c:
        Optional accumulator; a zero matrix of the right tilings is created
        when omitted.  Returned (the accumulation is in place).
    alpha, beta:
        The usual GEMM scalars.
    """
    require(a.cols == b.rows, "inner tilings of A and B differ")
    if c is None:
        c = BlockSparseMatrix(a.rows, b.cols)
    else:
        require(
            c.rows == a.rows and c.cols == b.cols,
            "C tilings do not conform to A @ B",
        )
        if beta != 1.0:
            c.scale(beta)

    # Group A tiles by inner index k so each B tile row is streamed once.
    a_by_k: dict[int, list[tuple[int, np.ndarray]]] = defaultdict(list)
    for (i, k), tile in a.items():
        a_by_k[k].append((i, tile))

    b_by_k: dict[int, list[tuple[int, np.ndarray]]] = defaultdict(list)
    for (k, j), tile in b.items():
        b_by_k[k].append((j, tile))

    for k, a_list in a_by_k.items():
        b_list = b_by_k.get(k)
        if not b_list:
            continue
        for i, a_tile in a_list:
            for j, b_tile in b_list:
                contrib = a_tile @ b_tile
                if alpha != 1.0:
                    contrib *= alpha
                c.accumulate_tile(i, j, contrib)
    return c


def gemm_against_dense(
    a: BlockSparseMatrix, b: BlockSparseMatrix, c0: BlockSparseMatrix | None = None
) -> np.ndarray:
    """Dense NumPy result of ``C0 + A @ B`` for verification."""
    dense = a.to_dense() @ b.to_dense()
    if c0 is not None:
        dense = dense + c0.to_dense()
    return dense
