"""Vectorized shape algebra: product shapes, task counts, flop counts.

These are the quantities Section 3.2.4 of the paper calls the *inspection
phase* outputs and what Table 1 reports: given the shapes of ``A`` (M x K
tiles) and ``B`` (K x N tiles),

* the shape of ``C = A @ B`` is the boolean product of the occupancies,
* the number of GEMM tasks is ``sum_{i,j} |{k : A[i,k] and B[k,j]}|``,
* the flop count is ``2 * sum_{i,k,j} m_i * k_k * n_j`` over present pairs,
* the per-column flop weights ``f_j`` drive the load balancer (3.2.1).

Everything is a weighted sparse matrix product, so paper-scale instances
(1.9 M GEMM tasks for C65H132 tiling v1) cost milliseconds.

The ``screened_*`` variants implement norm-based screening ("opt" rows of
Table 1): a tile product contributes only when ``||A_ik|| * ||B_kj|| > tau``
[Calvin, Lewis, Valeev 2015].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.sparse.shape import SparseShape
from repro.util.validation import require


def _check_conformable(a: SparseShape, b: SparseShape) -> None:
    require(
        a.cols == b.rows,
        f"inner tilings differ: A has {a.cols.ntiles} tile cols over extent "
        f"{a.cols.extent}, B has {b.rows.ntiles} tile rows over extent {b.rows.extent}",
    )


def product_shape(a: SparseShape, b: SparseShape) -> SparseShape:
    """Occupancy of ``C = A @ B`` (a tile is present when any k contributes)."""
    _check_conformable(a, b)
    c = (a.pattern() @ b.pattern()).tocsr()
    c.data = np.ones_like(c.data)
    return SparseShape(a.rows, b.cols, c)


def pair_count_matrix(a: SparseShape, b: SparseShape) -> sp.csr_matrix:
    """CSR whose entry ``(i, j)`` is the number of contributing ``k`` tiles."""
    _check_conformable(a, b)
    return (a.pattern() @ b.pattern()).tocsr()


def gemm_task_count(a: SparseShape, b: SparseShape) -> int:
    """Total number of tile-level GEMM tasks in ``C = A @ B``."""
    return int(pair_count_matrix(a, b).sum())


def flop_matrix(a: SparseShape, b: SparseShape) -> sp.csr_matrix:
    """CSR whose entry ``(i, j)`` is the flop count of C tile ``(i, j)``.

    ``flops[i,j] = 2 * m_i * n_j * sum_k [A_ik][B_kj] * k_k`` — computed as
    one sparse product with the inner tile sizes folded into A's values.
    """
    _check_conformable(a, b)
    k_sizes = a.cols.sizes.astype(np.float64)
    a_scaled = a.pattern().multiply(k_sizes[None, :]).tocsr()
    inner = (a_scaled @ b.pattern()).tocsr()  # (i,j) -> sum_k k_k
    coo = inner.tocoo()
    m = a.rows.sizes.astype(np.float64)
    n = b.cols.sizes.astype(np.float64)
    vals = 2.0 * m[coo.row] * coo.data * n[coo.col]
    return sp.csr_matrix((vals, (coo.row, coo.col)), shape=inner.shape)


def gemm_flops(a: SparseShape, b: SparseShape) -> float:
    """Total flop count of the block-sparse product."""
    return float(flop_matrix(a, b).sum())


def per_column_flops(a: SparseShape, b: SparseShape) -> np.ndarray:
    """Flop weight ``f_j`` of every tile column of B (length ``N^(t)``).

    This is the quantity the column-assignment phase (3.2.1) sorts and deals
    out to the ``q`` processors of a grid row.
    """
    fm = flop_matrix(a, b)
    return np.asarray(fm.sum(axis=0)).ravel()


def per_column_task_counts(a: SparseShape, b: SparseShape) -> np.ndarray:
    """Number of GEMM tasks per tile column of B."""
    pc = pair_count_matrix(a, b)
    return np.asarray(pc.sum(axis=0)).ravel().astype(np.int64)


def per_column_gpu_bytes(
    a: SparseShape, b: SparseShape, c: SparseShape | None = None, dtype_bytes: int = 8
) -> np.ndarray:
    """Bytes each B column (plus its C tiles) occupies on a GPU.

    This is the memory weight the block-partition phase (3.2.2) packs into
    half-GPU-memory blocks: the present B tiles of the column and the C
    tiles the column produces.
    """
    if c is None:
        c = product_shape(a, b)
    b_col = np.asarray(b.tile_bytes(dtype_bytes).sum(axis=0)).ravel()
    c_col = np.asarray(c.tile_bytes(dtype_bytes).sum(axis=0)).ravel()
    return b_col + c_col


# -- screened ("opt") variants ------------------------------------------------


@dataclass(frozen=True)
class ScreenedProduct:
    """Outputs of a norm-screened contraction plan.

    Attributes
    ----------
    shape:
        Occupancy of the screened ``C`` (tiles with at least one surviving
        contribution).
    task_count:
        Number of surviving tile GEMMs.
    flops:
        Flop count of the surviving tile GEMMs.
    dropped_tasks:
        Number of tile GEMMs removed by screening.
    """

    shape: SparseShape
    task_count: int
    flops: float
    dropped_tasks: int


def screened_product(
    a: SparseShape, b: SparseShape, threshold: float = 0.0
) -> ScreenedProduct:
    """Norm-screened product: keep triple ``(i,k,j)`` iff
    ``||A_ik|| * ||B_kj|| > threshold``.

    Runs one pass over the inner tile index ``k``; each pass is a vectorized
    outer combination of A's column-k nonzeros with B's row-k nonzeros, so
    the total work is proportional to the number of surviving + screened
    triples (1.9 M for C65H132 v1), all in NumPy.
    """
    _check_conformable(a, b)
    a_csc = a.csr.tocsc()
    b_csr = b.csr
    m = a.rows.sizes.astype(np.float64)
    n = b.cols.sizes.astype(np.float64)
    k_sz = a.cols.sizes.astype(np.float64)

    nK = a.cols.ntiles
    total_tasks = 0
    dropped = 0
    flops = 0.0
    # Accumulate surviving C occupancy as per-k contributions.
    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []

    for k in range(nK):
        ai = a_csc.indices[a_csc.indptr[k] : a_csc.indptr[k + 1]]
        if ai.size == 0:
            continue
        bj = b_csr.indices[b_csr.indptr[k] : b_csr.indptr[k + 1]]
        if bj.size == 0:
            continue
        an = a_csc.data[a_csc.indptr[k] : a_csc.indptr[k + 1]]
        bn = b_csr.data[b_csr.indptr[k] : b_csr.indptr[k + 1]]
        prod = an[:, None] * bn[None, :]
        keep = prod > threshold
        nkeep = int(keep.sum())
        total_tasks += nkeep
        dropped += prod.size - nkeep
        if nkeep == 0:
            continue
        ii, jj = np.nonzero(keep)
        rows_out.append(ai[ii])
        cols_out.append(bj[jj])
        flops += float(2.0 * k_sz[k] * np.sum(m[ai[ii]] * n[bj[jj]]))

    if rows_out:
        rr = np.concatenate(rows_out)
        cc = np.concatenate(cols_out)
        occ = sp.coo_matrix(
            (np.ones(rr.size), (rr, cc)), shape=(a.rows.ntiles, b.cols.ntiles)
        ).tocsr()
        occ.data = np.ones_like(occ.data)
        shape = SparseShape(a.rows, b.cols, occ)
    else:
        shape = SparseShape.empty(a.rows, b.cols)

    return ScreenedProduct(
        shape=shape, task_count=total_tasks, flops=flops, dropped_tasks=dropped
    )


def arithmetic_intensity(
    a: SparseShape, b: SparseShape, c: SparseShape | None = None, dtype_bytes: int = 8
) -> float:
    """Maximum arithmetic intensity (flop/byte) of the contraction.

    Paper Fig. 3: total flops divided by the aggregate size of A, B and C —
    an upper bound realized only if every matrix were loaded to device
    memory exactly once.
    """
    if c is None:
        c = product_shape(a, b)
    flops = gemm_flops(a, b)
    size = (a.element_nnz + b.element_nnz + c.element_nnz) * dtype_bytes
    return flops / size if size else 0.0
