"""The paper's synthetic-sparsity generator.

Paper, Section 5.1: "To decide which tiles are zero in A and B, an iterative
algorithm selects uniformly a non-zero tile to eliminate, until eliminating
another tile would draw the density of the matrix (element-wise) under the
threshold."

The literal loop is O(ntiles) Python iterations; this implementation is an
exactly equivalent vectorized form: visit tiles in one uniformly random
permutation and eliminate each visited tile unless doing so would cross the
element-wise density threshold.  (Visiting in a fixed random permutation and
sampling-without-replacement uniformly at each step induce the same
distribution over elimination orders.)
"""

from __future__ import annotations

import numpy as np

from repro.sparse.shape import SparseShape
from repro.tiling.tiling import Tiling
from repro.util.rng import resolve_rng
from repro.util.validation import require


def random_shape_with_density(
    rows: Tiling,
    cols: Tiling,
    density: float,
    seed: int | None | np.random.Generator = None,
) -> SparseShape:
    """A random shape with element-wise density as close above ``density``
    as tile granularity permits.

    Starts fully dense and eliminates uniformly random tiles while the
    element-wise density stays ``>= density``; tiles whose removal would
    cross the threshold are skipped (the paper's stopping rule, applied per
    candidate so the final density is the closest achievable from above).
    """
    require(0.0 < density <= 1.0, f"density must be in (0, 1], got {density}")
    rng = resolve_rng(seed)

    nr, nc = rows.ntiles, cols.ntiles
    total = rows.extent * cols.extent
    budget = total * (1.0 - density)  # elements we may remove

    if budget <= 0:
        return SparseShape.full(rows, cols)

    # Element count of every tile, visited in one random permutation.
    sizes = np.multiply.outer(rows.sizes, cols.sizes).reshape(-1).astype(np.float64)
    perm = rng.permutation(nr * nc)
    psizes = sizes[perm]

    # Greedy prefix: remove while cumulative removal stays within budget.
    cum = np.cumsum(psizes)
    ncut = int(np.searchsorted(cum, budget, side="right"))
    removed = np.zeros(nr * nc, dtype=bool)
    removed[perm[:ncut]] = True
    spent = float(cum[ncut - 1]) if ncut > 0 else 0.0

    # Tail: later candidates may still fit the remaining budget (smaller
    # tiles than the one that crossed it); continue scanning the permutation.
    for p in range(ncut, nr * nc):
        s = psizes[p]
        if spent + s <= budget:
            removed[perm[p]] = True
            spent += s
    # Never remove every tile: keep at least one so the matrix participates.
    if removed.all():
        removed[perm[-1]] = False

    mask = (~removed).reshape(nr, nc).astype(np.float64)
    return SparseShape(rows, cols, mask)
