"""Process grids and data ownership.

The algorithm runs on a ``p x q`` grid of *processes* (MPI ranks in the
paper), each driving ``g`` GPUs.  Matrix ``A`` is distributed 2D-cyclic at
tile granularity over the grid; grid row ``r`` works on the slice ``A^(r)``
(tile rows ``i`` with ``i mod p == r``) against the full, replicated ``B``.
On Summit the paper ran one process per node (6 GPUs) for the application
case and two processes per node (3 GPUs each) for the synthetic comparison
against single-GPU-per-process libDBCSR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.spec import MachineSpec
from repro.util.validation import require


@dataclass(frozen=True)
class ProcessGrid:
    """A ``p x q`` logical process grid with ``gpus_per_proc`` GPUs each.

    Ranks are row-major: rank = ``r * q + l`` for grid coordinates
    ``(r, l)``.
    """

    p: int
    q: int
    gpus_per_proc: int
    procs_per_node: int = 1

    def __post_init__(self) -> None:
        require(self.p >= 1 and self.q >= 1, "grid dimensions must be >= 1")
        require(self.gpus_per_proc >= 1, "gpus_per_proc must be >= 1")
        require(self.procs_per_node >= 1, "procs_per_node must be >= 1")

    @property
    def nprocs(self) -> int:
        return self.p * self.q

    @property
    def total_gpus(self) -> int:
        return self.nprocs * self.gpus_per_proc

    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinates ``(row, col)`` of ``rank``."""
        require(0 <= rank < self.nprocs, f"rank {rank} out of grid")
        return rank // self.q, rank % self.q

    def rank(self, row: int, col: int) -> int:
        """Rank at grid coordinates ``(row, col)``."""
        require(0 <= row < self.p and 0 <= col < self.q, "coords out of grid")
        return row * self.q + col

    def row_ranks(self, row: int) -> list[int]:
        """All ranks of grid row ``row`` (they share the slice ``A^(row)``)."""
        return [self.rank(row, l) for l in range(self.q)]

    def slice_tile_rows(self, row: int, ntile_rows: int) -> np.ndarray:
        """Global A tile-row indices belonging to slice ``A^(row)``."""
        return np.arange(row, ntile_rows, self.p, dtype=np.int64)

    def a_owner(self, i, k):
        """Owner rank of A tile ``(i, k)`` under the 2D-cyclic distribution
        (vectorized)."""
        return (np.asarray(i) % self.p) * self.q + (np.asarray(k) % self.q)

    def c_owner(self, i, j):
        """Final owner rank of C tile ``(i, j)`` (2D-cyclic, like A)."""
        return (np.asarray(i) % self.p) * self.q + (np.asarray(j) % self.q)


def make_grid(
    machine: MachineSpec,
    p: int = 1,
    gpus_per_proc: int | None = None,
) -> ProcessGrid:
    """Build the largest ``p x q`` grid the machine supports.

    ``q = floor(P / p)`` where ``P`` is the number of processes the machine
    hosts (one per ``gpus_per_proc`` GPUs), exactly the paper's
    ``q = floor(P / p)`` with ``pq <= P``.
    """
    g = machine.node.ngpus if gpus_per_proc is None else gpus_per_proc
    require(1 <= g <= machine.node.ngpus, "gpus_per_proc exceeds the node")
    require(machine.node.ngpus % g == 0, "gpus_per_proc must divide node GPUs")
    nprocs_total = machine.nnodes * (machine.node.ngpus // g)
    require(p <= nprocs_total, f"p={p} exceeds {nprocs_total} processes")
    q = nprocs_total // p
    return ProcessGrid(
        p=p, q=q, gpus_per_proc=g, procs_per_node=machine.node.ngpus // g
    )
