"""Column assignment: flop-sorted mirrored-cyclic dealing (paper 3.2.1).

The ``N^(t)`` tile columns of B are sorted by non-decreasing flop weight
``f_k`` and dealt to the ``q`` processors of a grid row in a *mirrored
cyclic* (boustrophedon) order: the first ``q`` columns forward, the next
``q`` in reverse, repeating every ``2q`` columns — the reverse pass
compensates the imbalance of the forward pass.

Two alternative policies (plain cyclic, greedy LPT) are provided for the
A2 ablation benchmark.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.util.validation import require, require_in


@dataclass(frozen=True)
class ColumnAssignment:
    """Result of dealing columns to ``q`` processors.

    Attributes
    ----------
    columns:
        Per-processor arrays of global tile-column indices (sorted
        ascending within each processor for reproducibility).
    flops:
        Per-processor total flop weight.
    """

    columns: list[np.ndarray]
    flops: np.ndarray

    @property
    def q(self) -> int:
        return len(self.columns)

    @property
    def imbalance(self) -> float:
        """``max / mean`` processor load; 1.0 is perfect balance."""
        mean = self.flops.mean()
        return float(self.flops.max() / mean) if mean > 0 else 1.0


def assign_columns(
    col_flops: np.ndarray, q: int, policy: str = "mirrored"
) -> ColumnAssignment:
    """Deal tile columns to ``q`` processors balancing flop weight.

    Parameters
    ----------
    col_flops:
        Flop weight of every tile column (from
        :func:`repro.sparse.per_column_flops`).  Zero-weight columns are
        dealt too (they may still own C tiles) but cost nothing.
    q:
        Number of processors in the grid row.
    policy:
        ``"mirrored"`` (the paper's), ``"cyclic"`` (plain forward dealing)
        or ``"lpt"`` (greedy longest-processing-time) for ablations.
    """
    require(q >= 1, "q must be >= 1")
    require_in(policy, {"mirrored", "cyclic", "lpt"}, "policy")
    f = np.asarray(col_flops, dtype=np.float64)
    n = f.size
    require(n >= 1, "no columns to assign")

    order = np.argsort(f, kind="stable")  # non-decreasing, ties by index
    owner = np.empty(n, dtype=np.int64)

    if policy == "mirrored":
        pos = np.arange(n)
        within = pos % q
        block = pos // q
        owner_sorted = np.where(block % 2 == 0, within, q - 1 - within)
        owner[order] = owner_sorted
    elif policy == "cyclic":
        owner[order] = np.arange(n) % q
    else:  # lpt: heaviest first onto the least-loaded processor
        heap = [(0.0, proc) for proc in range(q)]
        heapq.heapify(heap)
        for col in order[::-1]:
            load, proc = heapq.heappop(heap)
            owner[col] = proc
            heapq.heappush(heap, (load + f[col], proc))

    columns = [np.flatnonzero(owner == proc) for proc in range(q)]
    flops = np.array([f[c].sum() for c in columns])
    return ColumnAssignment(columns=columns, flops=flops)
