"""Block partitioning: worst-fit packing into GPU-memory blocks (3.2.2).

On each processor, its assigned B columns are sorted by non-increasing
memory footprint (B tiles of the column plus the local C tiles it
produces) and packed with a *worst-fit* heuristic into blocks whose total
footprint fits in ``block_fraction`` (default 50 %) of one GPU's memory.
Each GPU starts with one empty block; when a column fits in no existing
block, a new block is created and assigned to a GPU round-robin, so no GPU
ever holds more than one block more than any other.

Blocks are streamed to their GPU one at a time, blocking: a block's B and
C tiles are transferred exactly once and never flushed mid-block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.units import fmt_bytes
from repro.util.validation import require


class InfeasiblePartitionError(ValueError):
    """A single column exceeds the per-block GPU memory budget."""


@dataclass
class ColumnBlock:
    """A set of B columns resident together on one GPU.

    Attributes
    ----------
    gpu:
        Local GPU index within the processor.
    columns:
        Global tile-column indices, in packing order.
    bytes_used:
        Total footprint (B column tiles + local C tiles).
    """

    gpu: int
    columns: list[int] = field(default_factory=list)
    bytes_used: int = 0

    def remaining(self, budget: int) -> int:
        return budget - self.bytes_used


def partition_columns_into_blocks(
    columns: np.ndarray,
    column_bytes: np.ndarray,
    gpu_memory_bytes: int,
    ngpus: int,
    block_fraction: float = 0.5,
    allow_oversized: bool = True,
) -> list[ColumnBlock]:
    """Pack ``columns`` into per-GPU blocks with the paper's worst-fit rule.

    Parameters
    ----------
    columns:
        Global tile-column indices assigned to this processor.
    column_bytes:
        Footprint of each of those columns (same length/order), i.e. the
        B-column bytes plus the local C tiles it produces.
    gpu_memory_bytes, ngpus:
        The processor's GPU size and count.
    block_fraction:
        Fraction of one GPU's memory a block may occupy (paper: 50 %).
    allow_oversized:
        The paper's largest dense instances (``N = K = 750k`` with tiles up
        to 2048 wide) sit exactly at the edge where one B column plus its C
        tiles can exceed half a 16 GiB GPU.  With ``allow_oversized`` (the
        default) such a column becomes a *singleton* block — still resident
        alone, with the chunk budget shrunk by the executor to whatever
        memory remains.  With ``False`` the strict rule applies and the
        partition fails.

    Returns
    -------
    Blocks in creation order; ``block.gpu`` is round-robin, and every GPU
    processes its blocks in this order, one at a time.

    Raises
    ------
    InfeasiblePartitionError
        If a column can never be resident: larger than the block budget
        when ``allow_oversized=False``, or larger than ~the whole GPU
        (leaving no room to stream any A tile) regardless.
    """
    require(ngpus >= 1, "ngpus must be >= 1")
    require(0 < block_fraction <= 1.0, "block_fraction must be in (0, 1]")
    cols = np.asarray(columns, dtype=np.int64)
    cbytes = np.asarray(column_bytes, dtype=np.int64)
    require(cols.shape == cbytes.shape, "columns/bytes length mismatch")
    budget = int(gpu_memory_bytes * block_fraction)

    oversized = cbytes > budget
    hopeless = cbytes > int(gpu_memory_bytes * 0.95)
    if hopeless.any() or (oversized.any() and not allow_oversized):
        worst = int(cbytes.max())
        raise InfeasiblePartitionError(
            f"{int(oversized.sum())} column(s) exceed the block budget "
            f"({fmt_bytes(worst)} > {fmt_bytes(budget)}); refine the tiling "
            f"or increase GPU memory"
        )

    # One empty block per GPU to start, as the paper specifies.
    blocks: list[ColumnBlock] = [ColumnBlock(gpu=g) for g in range(ngpus)]
    next_gpu = 0  # round-robin cursor for newly created blocks

    # Non-increasing footprint; ties broken by column index for determinism.
    order = np.lexsort((cols, -cbytes))
    for idx in order:
        col = int(cols[idx])
        size = int(cbytes[idx])
        if size > budget:  # singleton block (allow_oversized fast path)
            blk = ColumnBlock(gpu=next_gpu)
            next_gpu = (next_gpu + 1) % ngpus
            blk.columns.append(col)
            blk.bytes_used = size
            blocks.append(blk)
            continue
        # Worst fit: the block with the most remaining space that fits.
        best = None
        best_remaining = -1
        for blk in blocks:
            rem = blk.remaining(budget)
            if rem >= size and rem > best_remaining:
                best = blk
                best_remaining = rem
        if best is None:
            best = ColumnBlock(gpu=next_gpu)
            next_gpu = (next_gpu + 1) % ngpus
            blocks.append(best)
        best.columns.append(col)
        best.bytes_used += size

    # Drop GPUs' initial blocks that stayed empty (fewer columns than GPUs).
    return [b for b in blocks if b.columns]


def blocks_per_gpu(blocks: list[ColumnBlock], ngpus: int) -> np.ndarray:
    """Number of blocks each GPU processes (for the balance invariant)."""
    counts = np.zeros(ngpus, dtype=np.int64)
    for b in blocks:
        counts[b.gpu] += 1
    return counts
