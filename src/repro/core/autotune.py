"""Grid-rows (``p``) autotuning.

Section 3.1 of the paper leaves ``p`` as "a trade-off parameter": ``p = 1``
avoids replicating B but maximizes the A broadcast volume; ``p >= 2``
replicates every B column ``p`` times in *host* memory (not GPU memory) and
divides the A traffic by ``p``.  :func:`tune_grid_rows` prices each
feasible ``p`` with the coarse model and picks the fastest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analytic import SimReport, simulate
from repro.core.inspector import inspect
from repro.core.plan import PlanOptions
from repro.machine.spec import MachineSpec
from repro.sparse.shape import SparseShape


@dataclass(frozen=True)
class TuneResult:
    """Outcome of the ``p`` sweep."""

    best_p: int
    reports: dict[int, SimReport]
    infeasible: dict[int, str]

    @property
    def best_report(self) -> SimReport:
        return self.reports[self.best_p]


def replication_feasible(
    b_shape: SparseShape, machine: MachineSpec, p: int, host_fraction: float = 0.8
) -> bool:
    """Whether ``p``-fold B replication fits in aggregate host memory.

    Each grid row holds one full copy of (the nonzero tiles of) B spread
    over its ``q`` processes; the machine's nodes must hold ``p`` copies
    plus A and C, hence the safety ``host_fraction``.
    """
    total_host = machine.nnodes * machine.node.host_memory_bytes * host_fraction
    return b_shape.nbytes * p <= total_host


def tune_grid_rows(
    a_shape: SparseShape,
    b_shape: SparseShape,
    machine: MachineSpec,
    candidates: list[int] | None = None,
    gpus_per_proc: int | None = None,
    options: PlanOptions | None = None,
    overlap_rho: float = 0.25,
) -> TuneResult:
    """Sweep ``p`` over ``candidates`` (default: 1, 2, 4, ... up to the
    process count) and return the fastest feasible configuration."""
    g = machine.node.ngpus if gpus_per_proc is None else gpus_per_proc
    nprocs = machine.nnodes * (machine.node.ngpus // g)
    if candidates is None:
        candidates = []
        p = 1
        while p <= nprocs:
            candidates.append(p)
            p *= 2

    reports: dict[int, SimReport] = {}
    infeasible: dict[int, str] = {}
    for p in candidates:
        if p > nprocs:
            infeasible[p] = f"p={p} exceeds {nprocs} processes"
            continue
        if p > a_shape.ntile_rows:
            infeasible[p] = f"p={p} exceeds {a_shape.ntile_rows} A tile rows"
            continue
        if not replication_feasible(b_shape, machine, p):
            infeasible[p] = f"p={p} B replication exceeds host memory"
            continue
        plan = inspect(
            a_shape, b_shape, machine, p=p, gpus_per_proc=gpus_per_proc, options=options
        )
        reports[p] = simulate(plan, machine, overlap_rho=overlap_rho)

    if not reports:
        raise ValueError(f"no feasible grid-rows candidate among {candidates}")
    best_p = min(reports, key=lambda p: reports[p].makespan)
    return TuneResult(best_p=best_p, reports=reports, infeasible=infeasible)
