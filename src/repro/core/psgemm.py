"""Top-level API: plan, numerically execute, or simulate the contraction.

``psgemm`` ("PaRSEC-style GEMM") is the user-facing entry point mirroring
the paper's driver: hand it block-sparse operands (or just their shapes), a
machine, and grid parameters, and get back either the exact numeric result
(in-process distributed execution) or a simulated-time report.
"""

from __future__ import annotations

from repro.core.analytic import SimReport, simulate
from repro.core.inspector import inspect
from repro.core.plan import ExecutionPlan, PlanOptions
from repro.machine.spec import MachineSpec
from repro.sparse.matrix import BlockSparseMatrix
from repro.sparse.shape import SparseShape


def psgemm_plan(
    a_shape: SparseShape,
    b_shape: SparseShape,
    machine: MachineSpec,
    p: int = 1,
    gpus_per_proc: int | None = None,
    options: PlanOptions | None = None,
) -> ExecutionPlan:
    """Inspect the contraction and return its execution plan."""
    return inspect(
        a_shape, b_shape, machine, p=p, gpus_per_proc=gpus_per_proc, options=options
    )


def psgemm_simulate(
    a_shape: SparseShape,
    b_shape: SparseShape,
    machine: MachineSpec,
    p: int = 1,
    gpus_per_proc: int | None = None,
    options: PlanOptions | None = None,
    overlap_rho: float = 0.25,
) -> tuple[ExecutionPlan, SimReport]:
    """Plan and price the contraction; returns ``(plan, report)``."""
    plan = psgemm_plan(
        a_shape, b_shape, machine, p=p, gpus_per_proc=gpus_per_proc, options=options
    )
    return plan, simulate(plan, machine, overlap_rho=overlap_rho)


def psgemm_numeric(
    a: BlockSparseMatrix,
    b,
    machine: MachineSpec,
    c: BlockSparseMatrix | None = None,
    p: int = 1,
    gpus_per_proc: int | None = None,
    options: PlanOptions | None = None,
    b_shape: SparseShape | None = None,
    alpha: float = 1.0,
    beta: float = 1.0,
):
    """Execute ``C <- beta*C + alpha*A @ B`` through the distributed plan.

    Parameters
    ----------
    a:
        The A operand with data.
    b:
        Either a :class:`BlockSparseMatrix` or an on-demand source
        (:class:`repro.runtime.data.GeneratedCollection`), mirroring the
        paper's generated-B driver.
    c:
        Optional accumulator (``C`` input); default empty.
    b_shape:
        Required when ``b`` is a generated collection without data.

    Returns
    -------
    ``(c, stats)`` where ``stats`` is
    :class:`repro.runtime.numeric.NumericStats` (bytes moved, peak GPU
    memory, B instantiation counts, ...).
    """
    from repro.runtime.numeric import execute_plan  # late import: avoid cycle

    if b_shape is None:
        b_shape = b.sparse_shape()
    plan = psgemm_plan(
        a.sparse_shape(with_norms=options.screen_threshold is not None if options else False),
        b_shape,
        machine,
        p=p,
        gpus_per_proc=gpus_per_proc,
        options=options,
    )
    return execute_plan(plan, a, b, c=c, alpha=alpha, beta=beta)


def psgemm_distributed(
    a: BlockSparseMatrix,
    b,
    machine: MachineSpec,
    c: BlockSparseMatrix | None = None,
    p: int = 1,
    gpus_per_proc: int | None = None,
    options: PlanOptions | None = None,
    b_shape: SparseShape | None = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    verify_plan: bool = False,
    trace: bool = True,
    **dist_kwargs,
):
    """Execute ``C <- beta*C + alpha*A @ B`` across real worker processes.

    The multi-process twin of :func:`psgemm_numeric`: the same inspector
    produces the plan, but :func:`repro.dist.execute_plan_distributed`
    runs it with one worker process per planned rank (shared-memory tiles,
    on-demand B service, prefetch overlap, fault recovery).  The result is
    bit-for-bit identical to :func:`psgemm_numeric` for the same seeds —
    the serial executor is the crosscheck oracle.

    With ``verify_plan=True`` the static plan verifier
    (:func:`repro.analysis.verify_plan`) audits the inspector's plan —
    coverage, memory budgets, comm consistency — and raises
    :class:`repro.analysis.PlanVerificationError` before any worker
    process is spawned if it finds a violation.

    ``trace`` (default on) makes every worker record monotonic spans —
    task execution, B generation, prefetch and queue waits, shm attach,
    writeback — which the coordinator merges into ``report.trace`` (a
    :class:`repro.runtime.tracing.Trace`, Chrome-trace exportable) with
    derived per-rank utilization and queue-wait metrics on the report.
    ``trace=False`` removes all span recording from the hot loops; the
    numeric result is identical either way.

    Extra keyword arguments (``fault_plan``, ``max_retries``,
    ``allow_reassign``, ``timeout``) pass through to the coordinator.

    Returns
    -------
    ``(c, report)`` where ``report`` is a
    :class:`repro.dist.DistReport` (merged :class:`NumericStats` in
    ``report.stats``, plus per-link comm bytes, the merged per-rank span
    trace, and recovery bookkeeping).
    """
    from repro.dist import execute_plan_distributed  # late import: avoid cycle

    if b_shape is None:
        b_shape = b.sparse_shape()
    plan = psgemm_plan(
        a.sparse_shape(with_norms=options.screen_threshold is not None if options else False),
        b_shape,
        machine,
        p=p,
        gpus_per_proc=gpus_per_proc,
        options=options,
    )
    return execute_plan_distributed(
        plan, a, b, c=c, alpha=alpha, beta=beta, verify_plan=verify_plan,
        trace=trace, **dist_kwargs
    )
