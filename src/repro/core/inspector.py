"""The inspector: shapes -> :class:`~repro.core.plan.ExecutionPlan`.

This is the inspection phase of Section 4: given the occupancy shapes of A
and B and a machine, it runs the three planning stages of Section 3.2 —
column assignment, block partitioning, chunk segmentation — for every
process of the grid, and records every aggregate the executors need.
Cost is ``O(N^t log N^t + nnz(B))`` per grid row, exactly the bound of
Section 3.2.4, and fully vectorized.

Norm screening (the "opt" variants of Table 1) is supported end-to-end:
with ``options.screen_threshold = tau``, a tile product ``(i, k, j)`` is
planned only when ``||A_ik|| * ||B_kj|| > tau``; A tiles, B tiles and C
tiles with no surviving product are not loaded/generated/allocated at all.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.block_partition import partition_columns_into_blocks
from repro.core.chunking import cyclic_tile_order, split_by_budget
from repro.core.column_assignment import assign_columns
from repro.core.grid import ProcessGrid, make_grid
from repro.core.plan import Block, Chunk, ExecutionPlan, PlanOptions, ProcPlan
from repro.machine.spec import MachineSpec
from repro.sparse.shape import SparseShape
from repro.sparse.shape_algebra import per_column_flops, product_shape, screened_product
from repro.util.validation import require

DTYPE_BYTES = 8  # double precision throughout, as in the paper


def _take_columns(csc: sp.csc_matrix, cols: np.ndarray):
    """Gather the nonzeros of the selected columns of a CSC matrix.

    Returns ``(row_idx, col_pos, data)`` where ``col_pos`` indexes into
    ``cols`` (not global column ids).  O(output) with no Python loop.
    """
    cols = np.asarray(cols, dtype=np.int64)
    counts = np.diff(csc.indptr)[cols]
    total = int(counts.sum())
    if total == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    col_pos = np.repeat(np.arange(cols.size), counts)
    seg_starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
    within = np.arange(total) - np.repeat(seg_starts, counts)
    src = csc.indptr[cols][col_pos] + within
    return csc.indices[src].astype(np.int64), col_pos, csc.data[src]


def inspect(
    a_shape: SparseShape,
    b_shape: SparseShape,
    machine: MachineSpec,
    p: int = 1,
    gpus_per_proc: int | None = None,
    options: PlanOptions | None = None,
    grid: ProcessGrid | None = None,
) -> ExecutionPlan:
    """Plan ``C <- C + A @ B`` on ``machine`` with ``p`` grid rows.

    Parameters
    ----------
    a_shape, b_shape:
        Occupancy (optionally norm-carrying) shapes of the operands.
    machine:
        Target machine; its GPU memory drives block/chunk budgets, its
        kernel model prices the chunks.
    p:
        Number of grid rows (the B-replication trade-off parameter).
    gpus_per_proc:
        GPUs each process drives (default: a whole node).
    options:
        Inspector knobs; see :class:`~repro.core.plan.PlanOptions`.
    grid:
        Pre-built grid (overrides ``p``/``gpus_per_proc``).
    """
    require(a_shape.cols == b_shape.rows, "A and B inner tilings differ")
    options = options or PlanOptions()
    if grid is None:
        grid = make_grid(machine, p=p, gpus_per_proc=gpus_per_proc)
    tau = options.screen_threshold

    if tau is None:
        c_shape = product_shape(a_shape, b_shape)
    else:
        c_shape = screened_product(a_shape, b_shape, tau).shape

    mt = a_shape.ntile_rows
    m_sizes = a_shape.rows.sizes.astype(np.int64)
    k_sizes = a_shape.cols.sizes.astype(np.int64)
    n_sizes = b_shape.cols.sizes.astype(np.int64)
    nK = a_shape.cols.ntiles

    b_csc = b_shape.csr.tocsc()
    c_csr = c_shape.csr

    gpu = machine.gpu
    h = gpu.eff_half_dim
    peak = gpu.gemm_peak
    block_budget = int(gpu.memory_bytes * options.block_fraction)
    chunk_budget = int(gpu.memory_bytes * options.chunk_fraction)

    procs: list[ProcPlan] = []
    for r in range(grid.p):
        slice_rows = grid.slice_tile_rows(r, mt)
        a_slice = a_shape.restrict_rows(slice_rows)
        a_slice_csc = a_slice.csr.tocsc()
        m_slice = m_sizes[slice_rows]

        # Per-inner-tile max A norm in this slice (for screened B pruning).
        if tau is not None:
            a_csc_abs = a_slice_csc.copy()
            max_a = np.zeros(nK)
            kk_idx = np.repeat(
                np.arange(nK), np.diff(a_csc_abs.indptr)
            )
            np.maximum.at(max_a, kk_idx, a_csc_abs.data)
        else:
            max_a = None

        # ---- 3.2.1: column assignment on this slice ----------------------
        col_flops = per_column_flops(a_slice, b_shape)
        assignment = assign_columns(col_flops, grid.q, options.assignment_policy)

        # Per-column footprints: B tiles (+ screened pruning) and local C.
        b_col_bytes = _column_bytes_b(b_csc, k_sizes, n_sizes, max_a, tau)
        c_slice = c_shape.restrict_rows(slice_rows)
        c_col_bytes = _column_bytes_c(c_slice, n_sizes)

        for l in range(grid.q):
            cols_l = assignment.columns[l]
            proc = _plan_process(
                rank=grid.rank(r, l),
                row=r,
                col=l,
                cols=cols_l,
                slice_rows=slice_rows,
                a_slice_csc=a_slice_csc,
                b_csc=b_csc,
                c_csr=c_csr,
                m_slice=m_slice,
                k_sizes=k_sizes,
                n_sizes=n_sizes,
                b_col_bytes=b_col_bytes,
                c_col_bytes=c_col_bytes,
                grid=grid,
                gpu_memory=gpu.memory_bytes,
                block_budget=block_budget,
                chunk_budget=chunk_budget,
                options=options,
                h=h,
                peak=peak,
                max_a=max_a,
            )
            procs.append(proc)

    plan = ExecutionPlan(
        grid=grid,
        options=options,
        a_shape=a_shape,
        b_shape=b_shape,
        c_shape=c_shape,
        procs=procs,
        gpu_memory_bytes=gpu.memory_bytes,
    )
    _fill_comm_volumes(plan)
    return plan


def _column_bytes_b(b_csc, k_sizes, n_sizes, max_a, tau) -> np.ndarray:
    """Per-column B footprint in bytes (screened tiles excluded)."""
    ntc = b_csc.shape[1]
    out = np.zeros(ntc, dtype=np.int64)
    kk = b_csc.indices
    col = np.repeat(np.arange(ntc), np.diff(b_csc.indptr))
    keep = np.ones(kk.size, dtype=bool)
    if tau is not None:
        keep = b_csc.data * max_a[kk] > tau
    sizes = k_sizes[kk[keep]] * n_sizes[col[keep]] * DTYPE_BYTES
    np.add.at(out, col[keep], sizes)
    return out


def _column_bytes_c(c_slice: SparseShape, n_sizes) -> np.ndarray:
    """Per-column local C footprint in bytes for one grid-row slice."""
    pat = c_slice.pattern()
    rows_per_col = pat.T @ c_slice.rows.sizes.astype(np.float64)
    return (rows_per_col * n_sizes * DTYPE_BYTES).astype(np.int64)


def _plan_process(
    rank,
    row,
    col,
    cols,
    slice_rows,
    a_slice_csc,
    b_csc,
    c_csr,
    m_slice,
    k_sizes,
    n_sizes,
    b_col_bytes,
    c_col_bytes,
    grid,
    gpu_memory,
    block_budget,
    chunk_budget,
    options,
    h,
    peak,
    max_a,
) -> ProcPlan:
    """Build one process's blocks and chunks."""
    tau = options.screen_threshold
    nK = b_csc.shape[0]

    # ---- 3.2.2: worst-fit block partition --------------------------------
    col_bytes = b_col_bytes[cols] + c_col_bytes[cols]
    col_blocks = partition_columns_into_blocks(
        cols, col_bytes, gpu_memory, grid.gpus_per_proc, options.block_fraction
    )

    blocks: list[Block] = []
    needed_keys: list[np.ndarray] = []
    b_gen_tiles = 0
    b_gen_bytes = 0
    c_bytes_total = 0

    # C occupancy of the slice, as CSC for fast per-column-set row queries.
    c_slice_csc = c_csr[slice_rows].tocsc()

    for cb in col_blocks:
        bcols = np.asarray(cb.columns, dtype=np.int64)

        # B tiles of the block (with screening applied).
        kk, col_pos, bnorm = _take_columns(b_csc, bcols)
        if tau is not None:
            keep = bnorm * max_a[kk] > tau
            kk, col_pos, bnorm = kk[keep], col_pos[keep], bnorm[keep]
        b_tile_count = kk.size
        b_bytes = int(np.sum(k_sizes[kk] * n_sizes[bcols[col_pos]]) * DTYPE_BYTES)

        # Per-inner-tile aggregates over the block's columns.
        cnt_k = np.zeros(nK, dtype=np.int64)
        nsum_k = np.zeros(nK, dtype=np.int64)
        np.add.at(cnt_k, kk, 1)
        np.add.at(nsum_k, kk, n_sizes[bcols[col_pos]])
        k_tiles = np.unique(kk)

        # C tiles of the block (local slice rows x block columns).
        crows, _, _ = _take_columns(c_slice_csc, bcols)
        c_tile_count = crows.size
        ccol_counts = np.diff(c_slice_csc.indptr)[bcols]
        ccols_rep = np.repeat(bcols, ccol_counts)
        c_bytes = int(np.sum(m_slice[crows] * n_sizes[ccols_rep]) * DTYPE_BYTES)
        c_bytes_total += c_bytes

        # Oversized singleton blocks (largest dense instances) shrink the
        # chunk budget to half of whatever device memory remains.
        resident = b_bytes + c_bytes
        block_chunk_budget = chunk_budget
        if resident > block_budget:
            block_chunk_budget = max((gpu_memory - resident) // 2, 1)

        # A tiles needed by the block: slice rows crossed with k_tiles.
        ai_local, k_pos, anorm = _take_columns(a_slice_csc, k_tiles)
        ak = k_tiles[k_pos]
        if tau is not None and ai_local.size:
            # Drop A tiles whose every product in this block is screened:
            # max over block columns of ||B_kj|| per k.
            max_b_k = np.zeros(nK)
            np.maximum.at(max_b_k, kk, bnorm)
            keep_a = anorm * max_b_k[ak] > tau
            ai_local, ak, anorm = ai_local[keep_a], ak[keep_a], anorm[keep_a]
        ai_global = slice_rows[ai_local]
        a_tile_bytes = (m_slice[ai_local] * k_sizes[ak] * DTYPE_BYTES).astype(np.int64)

        # Per-A-tile task aggregates.
        if tau is None:
            t_cnt = cnt_k[ak]
            t_nsum = nsum_k[ak]
        else:
            t_cnt, t_nsum = _screened_tile_aggregates(
                kk, bnorm, n_sizes[bcols[col_pos]], ak, anorm, tau, nK
            )
        t_flops = 2.0 * m_slice[ai_local] * k_sizes[ak] * t_nsum
        t_dev = (
            (2.0 / peak)
            * (m_slice[ai_local] + h)
            * (k_sizes[ak] + h)
            * (t_nsum + h * t_cnt)
        )

        # ---- 3.2.3: chunk segmentation ------------------------------------
        order = cyclic_tile_order(ai_global, ak)
        chunks: list[Chunk] = []
        if order.size:
            rows_o = ai_global[order]
            cols_o = ak[order]
            bytes_o = a_tile_bytes[order]
            flops_o = t_flops[order]
            dev_o = t_dev[order]
            cnt_o = t_cnt[order]
            for seg in split_by_budget(bytes_o, block_chunk_budget):
                chunks.append(
                    Chunk(
                        a_rows=rows_o[seg],
                        a_cols=cols_o[seg],
                        a_bytes=int(bytes_o[seg].sum()),
                        ntasks=int(cnt_o[seg].sum()),
                        flops=float(flops_o[seg].sum()),
                        device_seconds=float(dev_o[seg].sum()),
                    )
                )

        blocks.append(
            Block(
                gpu=cb.gpu,
                columns=bcols,
                b_bytes=b_bytes,
                c_bytes=c_bytes,
                b_tile_count=int(b_tile_count),
                c_tile_count=int(c_tile_count),
                k_tiles=k_tiles,
                chunks=chunks,
            )
        )
        b_gen_tiles += int(b_tile_count)
        b_gen_bytes += b_bytes
        if ai_global.size:
            needed_keys.append(ai_global * nK + ak)

    # Deduplicated A tiles this process touches.
    if needed_keys:
        uniq = np.unique(np.concatenate(needed_keys))
        a_rows_u = uniq // nK
        a_cols_u = uniq % nK
        a_needed_bytes = int(
            np.sum(
                m_slice[np.searchsorted(slice_rows, a_rows_u)]
                * k_sizes[a_cols_u]
                * DTYPE_BYTES
            )
        )
    else:
        a_rows_u = np.empty(0, dtype=np.int64)
        a_cols_u = np.empty(0, dtype=np.int64)
        a_needed_bytes = 0

    return ProcPlan(
        rank=rank,
        row=row,
        col=col,
        columns=np.sort(np.asarray(cols, dtype=np.int64)),
        blocks=blocks,
        a_slice_rows=slice_rows,
        a_needed_rows=a_rows_u,
        a_needed_cols=a_cols_u,
        a_needed_bytes=a_needed_bytes,
        b_gen_bytes=b_gen_bytes,
        b_gen_tiles=b_gen_tiles,
        c_bytes=c_bytes_total,
    )


def _screened_tile_aggregates(kk, bnorm, b_nwidths, ak, anorm, tau, nK):
    """Per-A-tile surviving-task count and summed output widths.

    For every A tile ``(i, k)`` with norm ``a``, the surviving block
    columns are those with ``||B_kj|| > tau / a``.  Sorting each inner
    tile's B norms once and binary-searching per A tile makes this
    O((nnzB + nnzA) log) per block.
    """
    order = np.lexsort((bnorm, kk))
    kk_s = kk[order]
    bn_s = bnorm[order]
    nw_s = b_nwidths[order].astype(np.float64)
    # Segment boundaries per inner tile.
    starts = np.zeros(nK + 1, dtype=np.int64)
    np.add.at(starts, kk_s + 1, 1)
    starts = np.cumsum(starts)
    # Suffix sums of widths within each segment (descending-norm side).
    csum = np.concatenate(([0.0], np.cumsum(nw_s)))

    t_cnt = np.zeros(ak.size, dtype=np.int64)
    t_nsum = np.zeros(ak.size, dtype=np.float64)
    if ak.size == 0:
        return t_cnt, t_nsum
    thr = tau / np.maximum(anorm, 1e-300)
    lo = starts[ak]
    hi = starts[ak + 1]
    # Position of first surviving norm within each (sorted asc) segment.
    # Vectorized per-segment searchsorted via global positions.
    pos = np.empty(ak.size, dtype=np.int64)
    for idx in range(ak.size):  # segments are tiny (columns per k in block)
        pos[idx] = lo[idx] + np.searchsorted(
            bn_s[lo[idx] : hi[idx]], thr[idx], side="right"
        )
    t_cnt = hi - pos
    t_nsum = csum[hi] - csum[pos]
    return t_cnt, t_nsum


def expected_comm_volumes(plan: ExecutionPlan) -> dict[int, dict[str, int]]:
    """Internode A/C traffic per rank implied by the plan (Section 3.2.4).

    Pure recomputation from the plan's needed-tile sets and shapes; the
    inspector assigns these onto the :class:`ProcPlan` s, and the plan
    verifier (:mod:`repro.analysis.plan_checks`) compares them against the
    stored values to detect aggregate drift.
    """
    grid = plan.grid
    nK = plan.a_shape.ntile_cols
    m = plan.a_shape.rows.sizes.astype(np.int64)
    k = plan.a_shape.cols.sizes.astype(np.int64)
    n = plan.b_shape.cols.sizes.astype(np.int64)

    out = {
        pp.rank: {"a_recv_bytes": 0, "a_send_bytes": 0,
                  "c_send_bytes": 0, "c_recv_bytes": 0}
        for pp in plan.procs
    }
    for r in range(grid.p):
        row_procs = [pp for pp in plan.procs if pp.row == r]
        # A: tiles needed but owned elsewhere in the grid row.
        for pp in row_procs:
            owner_col = pp.a_needed_cols % grid.q
            bytes_each = m[pp.a_needed_rows] * k[pp.a_needed_cols] * DTYPE_BYTES
            remote = owner_col != pp.col
            out[pp.rank]["a_recv_bytes"] = int(bytes_each[remote].sum())
        # Senders inject each owned tile into the broadcast *once* if any
        # remote process needs it (PaRSEC disseminates along a pipelined
        # tree, so forwarding is absorbed into the receivers' volumes).
        send = np.zeros(grid.q, dtype=np.int64)
        remote_keys: list[np.ndarray] = []
        for pp in row_procs:
            keys = pp.a_needed_rows * nK + pp.a_needed_cols
            owner_col = pp.a_needed_cols % grid.q
            remote_keys.append(keys[owner_col != pp.col])
        if remote_keys:
            uniq = np.unique(np.concatenate(remote_keys)) if any(
                rk.size for rk in remote_keys
            ) else np.empty(0, dtype=np.int64)
            if uniq.size:
                ui = uniq // nK
                uk = uniq % nK
                np.add.at(send, uk % grid.q, m[ui] * k[uk] * DTYPE_BYTES)
        for pp in row_procs:
            out[pp.rank]["a_send_bytes"] = int(send[pp.col])

        # C: produced at (r, l); final home is 2D-cyclic at (j mod q).
        recv_c = np.zeros(grid.q, dtype=np.int64)
        for pp in row_procs:
            c_sub = plan.c_shape.csr[pp.a_slice_rows][:, pp.columns].tocoo()
            if c_sub.nnz == 0:
                continue
            gi = pp.a_slice_rows[c_sub.row]
            gj = pp.columns[c_sub.col]
            bytes_each = m[gi] * n[gj] * DTYPE_BYTES
            home = gj % grid.q
            moved = home != pp.col
            out[pp.rank]["c_send_bytes"] = int(bytes_each[moved].sum())
            np.add.at(recv_c, home[moved], bytes_each[moved])
        for pp in row_procs:
            out[pp.rank]["c_recv_bytes"] = int(recv_c[pp.col])
    return out


def _fill_comm_volumes(plan: ExecutionPlan) -> None:
    """Assign the Section 3.2.4 traffic volumes onto every process plan."""
    volumes = expected_comm_volumes(plan)
    for pp in plan.procs:
        vols = volumes[pp.rank]
        pp.a_recv_bytes = vols["a_recv_bytes"]
        pp.a_send_bytes = vols["a_send_bytes"]
        pp.c_send_bytes = vols["c_send_bytes"]
        pp.c_recv_bytes = vols["c_recv_bytes"]
