"""Chunk segmentation of A tiles within a block (paper 3.2.3).

Within one resident column block, the GPU streams the needed A tiles in
*chunks*: tiles are taken "one per tile-row of A in a cyclic fashion"
(round-robin over the rows, so several GEMM chains progress in parallel)
until the chunk budget — 25 % of GPU memory — is exhausted; the remaining
25 % prefetches the next chunk, so A transfers overlap compute with double
buffering.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require


def cyclic_tile_order(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Permutation putting A tiles in one-per-row cyclic order.

    Tiles are first ordered within each tile row by column, then emitted in
    rounds: round ``r`` contains the ``r``-th tile of every row (rows in
    ascending order).  Returns indices into the input arrays.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    require(rows.shape == cols.shape, "rows/cols length mismatch")
    n = rows.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    by_row = np.lexsort((cols, rows))
    r_sorted = rows[by_row]
    # Rank of each tile within its row (0, 1, 2, ... per row).
    new_row = np.r_[True, r_sorted[1:] != r_sorted[:-1]]
    row_start = np.maximum.accumulate(np.where(new_row, np.arange(n), 0))
    rank = np.arange(n) - row_start
    # Emit by (rank, row).
    return by_row[np.lexsort((r_sorted, rank))]


def split_by_budget(sizes: np.ndarray, budget: int) -> list[slice]:
    """Greedy prefix splitting: consecutive segments whose byte sum stays
    within ``budget``; a single item larger than the budget gets its own
    segment (its transfer simply serializes).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    require(budget > 0, "budget must be positive")
    n = sizes.size
    if n == 0:
        return []
    cum = np.concatenate(([0], np.cumsum(sizes)))
    out: list[slice] = []
    start = 0
    while start < n:
        # Largest end with cum[end] - cum[start] <= budget.
        end = int(np.searchsorted(cum, cum[start] + budget, side="right")) - 1
        if end <= start:  # oversized single tile
            end = start + 1
        out.append(slice(start, end))
        start = end
    return out


def build_chunks(
    tile_rows: np.ndarray,
    tile_cols: np.ndarray,
    tile_bytes: np.ndarray,
    chunk_budget_bytes: int,
) -> list[tuple[np.ndarray, np.ndarray, int]]:
    """Segment a block's A tiles into chunks.

    Parameters
    ----------
    tile_rows, tile_cols:
        Coordinates of the A tiles the block needs (global tile indices).
    tile_bytes:
        Byte size of each tile.
    chunk_budget_bytes:
        The 25 %-of-GPU-memory chunk budget.

    Returns
    -------
    List of ``(rows, cols, bytes)`` per chunk, in execution order.
    """
    order = cyclic_tile_order(tile_rows, tile_cols)
    rows_o = np.asarray(tile_rows, dtype=np.int64)[order]
    cols_o = np.asarray(tile_cols, dtype=np.int64)[order]
    bytes_o = np.asarray(tile_bytes, dtype=np.int64)[order]
    return [
        (rows_o[s], cols_o[s], int(bytes_o[s].sum()))
        for s in split_by_budget(bytes_o, chunk_budget_bytes)
    ]
