"""Cross-executor consistency checking.

One plan, three executors (numeric, discrete-event, analytic) is the
design that keeps this reproduction honest; this module runs all three on
one instance and reports every invariant in one place:

* numeric result == dense reference (exactness);
* executed task/flop counts == planned counts == shape-algebra counts;
* GPU memory high-water mark within device capacity;
* B instantiations at most once per process;
* DES and analytic makespans within a stated agreement band.

``python -m repro selftest --deep`` runs it; CI-style tests assert on the
report fields.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analytic import simulate
from repro.core.inspector import inspect
from repro.machine.spec import MachineSpec, summit
from repro.runtime.data import GeneratedCollection
from repro.runtime.numeric import execute_plan
from repro.sparse.construct import from_shape
from repro.sparse.gemm_ref import block_gemm_reference
from repro.sparse.random_sparsity import random_shape_with_density
from repro.sparse.shape import SparseShape
from repro.sparse.shape_algebra import gemm_flops, gemm_task_count
from repro.tiling.random import random_tiling


@dataclass(frozen=True)
class ConsistencyReport:
    """Outcome of one cross-executor run."""

    numeric_exact: bool
    tasks_planned: int
    tasks_executed: int
    tasks_counted: int
    flops_planned: float
    flops_counted: float
    gpu_peak_bytes: int
    gpu_capacity_bytes: int
    b_max_instantiations: int
    des_makespan: float
    analytic_makespan: float

    @property
    def counts_consistent(self) -> bool:
        return self.tasks_planned == self.tasks_executed == self.tasks_counted

    @property
    def memory_safe(self) -> bool:
        return 0 < self.gpu_peak_bytes <= self.gpu_capacity_bytes

    @property
    def b_lifecycle_ok(self) -> bool:
        return self.b_max_instantiations <= 1

    @property
    def des_analytic_ratio(self) -> float:
        return self.des_makespan / self.analytic_makespan if self.analytic_makespan else 0.0

    @property
    def ok(self) -> bool:
        return (
            self.numeric_exact
            and self.counts_consistent
            and self.memory_safe
            and self.b_lifecycle_ok
            and 0.3 < self.des_analytic_ratio < 3.0
        )

    def summary(self) -> str:
        lines = [
            f"numeric exact vs dense reference : {self.numeric_exact}",
            f"task counts (plan/exec/algebra)  : {self.tasks_planned} / "
            f"{self.tasks_executed} / {self.tasks_counted}",
            f"GPU peak / capacity              : {self.gpu_peak_bytes} / "
            f"{self.gpu_capacity_bytes}",
            f"max B instantiations per proc    : {self.b_max_instantiations}",
            f"DES vs analytic makespan         : {self.des_makespan:.4g} s / "
            f"{self.analytic_makespan:.4g} s (ratio {self.des_analytic_ratio:.2f})",
            f"ALL CHECKS                       : {'PASS' if self.ok else 'FAIL'}",
        ]
        return "\n".join(lines)


def crosscheck(
    a_shape: SparseShape,
    b_shape: SparseShape,
    machine: MachineSpec,
    p: int = 1,
    gpus_per_proc: int | None = None,
    seed: int = 0,
) -> ConsistencyReport:
    """Run all three executors of one contraction and collect the report."""
    from repro.runtime.dag import simulate_des

    plan = inspect(a_shape, b_shape, machine, p=p, gpus_per_proc=gpus_per_proc)
    plan.validate()

    a_mat = from_shape(a_shape, fill="random", seed=seed)
    b_gen = GeneratedCollection(b_shape, seed=seed + 1)
    c, stats = execute_plan(plan, a_mat, b_gen)
    ref = block_gemm_reference(a_mat, b_gen.as_matrix())
    numeric_exact = c.allclose(ref)

    _, des_time = simulate_des(plan, machine)
    coarse = simulate(plan, machine)

    return ConsistencyReport(
        numeric_exact=numeric_exact,
        tasks_planned=plan.total_tasks,
        tasks_executed=stats.ntasks,
        tasks_counted=gemm_task_count(a_shape, b_shape),
        flops_planned=plan.total_flops,
        flops_counted=gemm_flops(a_shape, b_shape),
        gpu_peak_bytes=stats.gpu_peak_bytes,
        gpu_capacity_bytes=plan.gpu_memory_bytes,
        b_max_instantiations=b_gen.max_instantiations_per_proc_tile(),
        des_makespan=des_time,
        analytic_makespan=coarse.makespan,
    )


def random_crosscheck(
    seed: int = 0,
    machine: MachineSpec | None = None,
    p: int = 2,
    gpus_per_proc: int = 3,
) -> ConsistencyReport:
    """Cross-check a randomly generated instance (the deep self-test)."""
    rng = np.random.default_rng(seed)
    rows = random_tiling(int(rng.integers(300, 800)), 30, 120, seed=rng)
    inner = random_tiling(int(rng.integers(1200, 3000)), 30, 120, seed=rng)
    density = float(rng.uniform(0.2, 0.9))
    a = random_shape_with_density(rows, inner, density, seed=rng)
    b = random_shape_with_density(inner, inner, density, seed=rng)
    machine = machine or summit(2)
    p = min(p, rows.ntiles)
    return crosscheck(a, b, machine, p=p, gpus_per_proc=gpus_per_proc, seed=seed)
