"""Communication-volume analysis (paper Section 3.2.4).

The exact volumes are data-dependent and are filled into the plan by the
inspector; this module exposes them as a report and provides the paper's
closed-form *worst-case* (fully dense) bounds: on a ``p x q`` grid each A
tile is needed on ``q - 1`` remote processes and the entire C may move.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plan import ExecutionPlan
from repro.sparse.shape import SparseShape
from repro.util.units import fmt_bytes


@dataclass(frozen=True)
class CommReport:
    """Per-process and aggregate internode communication volumes (bytes)."""

    a_recv: np.ndarray
    a_send: np.ndarray
    c_send: np.ndarray
    c_recv: np.ndarray
    b_generated: np.ndarray

    @property
    def total_a(self) -> int:
        """Total A bytes crossing the network (counted at the receiver)."""
        return int(self.a_recv.sum())

    @property
    def total_c(self) -> int:
        """Total C bytes crossing the network."""
        return int(self.c_send.sum())

    @property
    def total_b_generated(self) -> int:
        """Total B bytes generated on demand (includes replication)."""
        return int(self.b_generated.sum())

    def summary(self) -> str:
        return (
            f"A moved {fmt_bytes(self.total_a)}, C moved {fmt_bytes(self.total_c)}, "
            f"B generated {fmt_bytes(self.total_b_generated)} "
            f"(max/proc: A recv {fmt_bytes(self.a_recv.max(initial=0))}, "
            f"A send {fmt_bytes(self.a_send.max(initial=0))})"
        )


def realized_a_recv_bytes(
    link_bytes: dict[tuple[int, int], int], nranks: int
) -> dict[int, int]:
    """Per-rank A bytes actually charged to worker->worker links.

    ``link_bytes`` is :attr:`repro.dist.comm.CommStats.link_bytes`:
    ``(src, dst)`` keyed byte counts where the coordinator is ``-1``.
    Worker->worker links carry the grid-row A broadcast (and nothing
    else), so summing a rank's incoming non-coordinator traffic yields
    its realized ``a_recv_bytes`` — the measured twin of the inspector's
    :func:`~repro.core.inspector.expected_comm_volumes` prediction the
    perf audit compares against.
    """
    out = {r: 0 for r in range(nranks)}
    for (src, dst), nbytes in link_bytes.items():
        if src >= 0 and 0 <= dst < nranks:
            out[dst] += int(nbytes)
    return out


def communication_volumes(plan: ExecutionPlan) -> CommReport:
    """Collect the exact volumes the inspector computed into a report."""
    procs = plan.procs
    return CommReport(
        a_recv=np.array([p.a_recv_bytes for p in procs], dtype=np.int64),
        a_send=np.array([p.a_send_bytes for p in procs], dtype=np.int64),
        c_send=np.array([p.c_send_bytes for p in procs], dtype=np.int64),
        c_recv=np.array([p.c_recv_bytes for p in procs], dtype=np.int64),
        b_generated=np.array([p.b_gen_bytes for p in procs], dtype=np.int64),
    )


@dataclass(frozen=True)
class WorstCaseVolumes:
    """The dense upper bounds of Section 3.2.4 (bytes)."""

    a_broadcast: int
    c_move: int
    b_replicated: int


def worst_case_volumes(
    a_shape: SparseShape, b_shape: SparseShape, p: int, q: int
) -> WorstCaseVolumes:
    """Fully dense bounds: A broadcast to ``q - 1`` peers per grid row,
    the whole C moved once, B replicated ``p`` times."""
    a_bytes = a_shape.rows.extent * a_shape.cols.extent * 8
    c_bytes = a_shape.rows.extent * b_shape.cols.extent * 8
    b_bytes = b_shape.rows.extent * b_shape.cols.extent * 8
    return WorstCaseVolumes(
        a_broadcast=int(a_bytes * (q - 1)),
        c_move=int(c_bytes),
        b_replicated=int(b_bytes * p),
    )


def exact_within_worst_case(plan: ExecutionPlan) -> bool:
    """Sanity invariant: the exact volumes never exceed the dense bounds."""
    report = communication_volumes(plan)
    wc = worst_case_volumes(plan.a_shape, plan.b_shape, plan.grid.p, plan.grid.q)
    return (
        report.total_a <= wc.a_broadcast
        and report.total_c <= wc.c_move
        and report.total_b_generated <= wc.b_replicated
    )
