"""NVLink device-to-device A-tile sharing (paper Section 4, last ¶).

"Implicit data movement allows the runtime system to select the 'best'
source of data ... when two GPU devices need the same tile of A, one GPU
needs to pull it from main memory ... but the second GPU may use the copy
residing on the first one, leveraging the fast NVlink ... thereby reducing
the pressure on the PCI-Express bus."

The coarse model prices this as a bandwidth blend: per process, the
fraction ``r`` of per-GPU A traffic that is *duplicated* across its GPUs
(the same tile needed by more than one of them) is served at the
uncontended device-to-device bandwidth, while the unique remainder pulls
through the contended host link:

    1 / bw_eff = (1 - r) / bw_host + r / bw_d2d

This is optimistic (it assumes the sibling copy is resident when needed)
and is therefore off by default; the A6 ablation quantifies the effect.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import ExecutionPlan, ProcPlan


def duplicated_traffic_fraction(proc: ProcPlan, nK: int, m: np.ndarray, k: np.ndarray, gpus: int) -> float:
    """Fraction of the process's per-GPU A traffic shared with siblings.

    Computed from tile-key sets: ``r = 1 - union_bytes / sum_gpu_bytes``
    where per-GPU bytes count each tile once (block-level re-streams on
    the *same* GPU cannot be served device-to-device — they are temporal,
    not spatial, reuse).
    """
    per_gpu_keys = []
    for g in range(gpus):
        keys = []
        for blk in proc.gpu_blocks(g):
            for ch in blk.chunks:
                keys.append(ch.a_rows * nK + ch.a_cols)
        if keys:
            per_gpu_keys.append(np.unique(np.concatenate(keys)))
    if not per_gpu_keys:
        return 0.0

    def key_bytes(keys: np.ndarray) -> float:
        return float(np.sum(m[keys // nK] * k[keys % nK]) * 8)

    total = sum(key_bytes(u) for u in per_gpu_keys)
    union = key_bytes(np.unique(np.concatenate(per_gpu_keys)))
    return 1.0 - union / total if total > 0 else 0.0


def d2d_effective_bandwidth(
    bw_host: float, bw_d2d: float, duplicated_fraction: float
) -> float:
    """Harmonic blend of host-link and NVLink service rates."""
    r = min(max(duplicated_fraction, 0.0), 1.0)
    return 1.0 / ((1.0 - r) / bw_host + r / bw_d2d)


def proc_d2d_bandwidths(
    plan: ExecutionPlan, bw_host: float, bw_d2d: float
) -> dict[int, float]:
    """Effective per-GPU A bandwidth per process rank with d2d sharing."""
    nK = plan.a_shape.ntile_cols
    m = plan.a_shape.rows.sizes.astype(np.int64)
    k = plan.a_shape.cols.sizes.astype(np.int64)
    out = {}
    for proc in plan.procs:
        r = duplicated_traffic_fraction(proc, nK, m, k, plan.grid.gpus_per_proc)
        out[proc.rank] = d2d_effective_bandwidth(bw_host, bw_d2d, r)
    return out
