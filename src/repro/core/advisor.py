"""Tiling advisor — the paper's stated future work, made runnable.

"Future work will aim at modeling the interactions between the tiling and
the performance, in order to increase the efficiency of the algorithm."
(Section 7.)  Section 5.2 shows why this is nontrivial: coarser tiles
raise per-kernel efficiency but cover more zeros (more flops), and the
optimum is data-dependent.

:func:`recommend_tiling` searches candidate granularities with the coarse
performance model — the exact trade-off study the paper performs manually
over v1/v2/v3, automated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.analytic import SimReport, simulate
from repro.core.inspector import inspect
from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class TilingCandidate:
    """One evaluated granularity."""

    label: str
    flops: float
    tasks: int
    report: SimReport

    @property
    def time(self) -> float:
        return self.report.makespan


@dataclass(frozen=True)
class TilingRecommendation:
    """Outcome of the advisor sweep."""

    best: TilingCandidate
    candidates: list[TilingCandidate]

    def table_rows(self) -> list[list[str]]:
        return [
            [
                c.label,
                f"{c.flops / 1e12:9.0f}",
                str(c.tasks),
                f"{c.time:9.2f}",
                "<== best" if c is self.best else "",
            ]
            for c in self.candidates
        ]


def recommend_tiling(
    build_shapes: Callable[[object], tuple],
    candidates: Sequence[object],
    machine: MachineSpec,
    labels: Sequence[str] | None = None,
    p: int = 1,
    use_d2d: bool = False,
) -> TilingRecommendation:
    """Evaluate candidate tilings and pick the fastest.

    Parameters
    ----------
    build_shapes:
        ``candidate -> (a_shape, b_shape)`` — typically a closure over
        :func:`repro.chem.build_abcd_problem` with varying cluster targets,
        but any generator of conforming shapes works.
    candidates:
        Opaque candidate descriptors passed to ``build_shapes``.
    machine, p, use_d2d:
        Pricing configuration.
    labels:
        Display labels (default ``str(candidate)``).
    """
    if not candidates:
        raise ValueError("no tiling candidates supplied")
    labels = list(labels) if labels is not None else [str(c) for c in candidates]
    evaluated: list[TilingCandidate] = []
    for cand, label in zip(candidates, labels):
        a_shape, b_shape = build_shapes(cand)
        plan = inspect(a_shape, b_shape, machine, p=p)
        report = simulate(plan, machine, use_d2d=use_d2d)
        evaluated.append(
            TilingCandidate(
                label=label,
                flops=plan.total_flops,
                tasks=plan.total_tasks,
                report=report,
            )
        )
    best = min(evaluated, key=lambda c: c.time)
    return TilingRecommendation(best=best, candidates=evaluated)
