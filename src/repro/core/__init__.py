"""The paper's contribution: the irregular block-sparse GEMM algorithm.

``C <- C + A @ B`` on a ``p x q`` process grid with stationary, replicated
``B`` (Section 3 of the paper):

* :mod:`~repro.core.grid` — process grid, A slicing, 2D-cyclic ownership;
* :mod:`~repro.core.column_assignment` — flop-sorted mirrored-cyclic
  dealing of B columns to the ``q`` processors of a grid row (3.2.1);
* :mod:`~repro.core.block_partition` — worst-fit packing of columns into
  half-GPU-memory blocks (3.2.2);
* :mod:`~repro.core.chunking` — greedy cyclic segmentation of A tiles into
  quarter-GPU-memory chunks with prefetch double-buffering (3.2.3);
* :mod:`~repro.core.inspector` — the inspector that turns shapes into an
  :class:`~repro.core.plan.ExecutionPlan` (the PTG input of Section 4);
* :mod:`~repro.core.comm_model` — exact and worst-case communication
  volumes (3.2.4);
* :mod:`~repro.core.analytic` — the vectorized coarse performance model
  that prices a plan on a machine (used for every paper-scale figure);
* :mod:`~repro.core.psgemm` — the user-facing plan/execute/simulate API;
* :mod:`~repro.core.autotune` — the grid-rows (``p``) trade-off tuner.
"""

from repro.core.grid import ProcessGrid, make_grid
from repro.core.plan import Block, Chunk, ExecutionPlan, PlanOptions, ProcPlan
from repro.core.column_assignment import assign_columns
from repro.core.block_partition import partition_columns_into_blocks
from repro.core.inspector import inspect
from repro.core.comm_model import CommReport, communication_volumes, worst_case_volumes
from repro.core.analytic import SimReport, simulate
from repro.core.psgemm import psgemm_distributed, psgemm_numeric, psgemm_plan, psgemm_simulate
from repro.core.autotune import tune_grid_rows

__all__ = [
    "ProcessGrid",
    "make_grid",
    "Block",
    "Chunk",
    "ExecutionPlan",
    "PlanOptions",
    "ProcPlan",
    "assign_columns",
    "partition_columns_into_blocks",
    "inspect",
    "CommReport",
    "communication_volumes",
    "worst_case_volumes",
    "SimReport",
    "simulate",
    "psgemm_plan",
    "psgemm_distributed",
    "psgemm_numeric",
    "psgemm_simulate",
    "tune_grid_rows",
]
