"""Execution-plan datastructures.

The inspector (Section 4 of the paper: "an inspector phase computes first
what tasks exist, and how the data must flow between them") produces an
:class:`ExecutionPlan`: per process, per GPU, the ordered blocks of B
columns, each block's chunks of A tiles, and the aggregate task/flop/byte
counts of every chunk.  The same plan is consumed by three executors:

* :func:`repro.runtime.numeric.execute_plan` — real data, exact numerics;
* :mod:`repro.runtime.engine` — fine-grained discrete-event simulation;
* :func:`repro.core.analytic.simulate` — vectorized coarse timing.

Plans never enumerate individual GEMM tasks (C65H132 tiling v1 has 1.9 M);
chunks carry the tile-coordinate arrays plus per-inner-tile aggregates from
which any executor can reconstruct what it needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.grid import ProcessGrid
from repro.sparse.shape import SparseShape


@dataclass(frozen=True)
class PlanOptions:
    """Inspector knobs (paper defaults; ablations vary them).

    Attributes
    ----------
    block_fraction:
        Fraction of GPU memory a resident B/C block may use (50 %).
    chunk_fraction:
        Fraction of GPU memory one A chunk may use (25 %; the mirror 25 %
        is the prefetch buffer).
    assignment_policy:
        Column dealing policy; see
        :func:`repro.core.column_assignment.assign_columns`.
    screen_threshold:
        Optional norm-product screening threshold producing the "opt"
        plans of Table 1; ``None`` disables screening.
    """

    block_fraction: float = 0.5
    chunk_fraction: float = 0.25
    assignment_policy: str = "mirrored"
    screen_threshold: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.block_fraction <= 1.0:
            raise ValueError(
                f"block_fraction must be in (0, 1], got "
                f"{self.block_fraction!r}; the paper default is 0.5"
            )
        if not 0.0 < self.chunk_fraction <= 0.5:
            raise ValueError(
                f"chunk_fraction must be in (0, 0.5], got "
                f"{self.chunk_fraction!r}; the paper default is 0.25 "
                f"(the mirror 25% is the prefetch buffer)"
            )
        if self.block_fraction + 2 * self.chunk_fraction > 1.0 + 1e-12:
            raise ValueError(
                f"block_fraction + 2*chunk_fraction must not exceed GPU "
                f"memory: {self.block_fraction} + 2*{self.chunk_fraction} = "
                f"{self.block_fraction + 2 * self.chunk_fraction:.3f} > 1; "
                f"shrink one so a resident block plus a double-buffered "
                f"chunk pair fits the device"
            )
        if self.screen_threshold is not None and self.screen_threshold <= 0:
            raise ValueError(
                f"screen_threshold must be positive (or None to disable "
                f"screening), got {self.screen_threshold!r}"
            )


@dataclass
class Chunk:
    """One chunk of A tiles streamed to the GPU for the enclosing block.

    Attributes
    ----------
    a_rows, a_cols:
        Global tile coordinates of the A tiles, in transfer order.
    a_bytes:
        Total bytes of those tiles.
    ntasks:
        GEMM tasks this chunk executes against the enclosing block.
    flops:
        Their total flop count.
    device_seconds:
        Kernel-model compute time of those tasks (excluding launch
        overhead), priced with the machine the plan was inspected for.
    """

    a_rows: np.ndarray
    a_cols: np.ndarray
    a_bytes: int
    ntasks: int
    flops: float
    device_seconds: float

    @property
    def ntiles(self) -> int:
        return int(self.a_rows.size)


@dataclass
class Block:
    """One resident set of B columns (and their C tiles) on one GPU.

    Attributes
    ----------
    gpu:
        Local GPU index within the process.
    columns:
        Global B tile-column indices, packing order.
    b_bytes, c_bytes:
        Footprints of the B column tiles and the local C tiles.
    b_tile_count, c_tile_count:
        Tile message counts (transfer-latency accounting).
    k_tiles:
        Sorted global inner tile indices with at least one B tile in the
        block.
    chunks:
        The A-tile chunks, in execution order.
    """

    gpu: int
    columns: np.ndarray
    b_bytes: int
    c_bytes: int
    b_tile_count: int
    c_tile_count: int
    k_tiles: np.ndarray
    chunks: list[Chunk] = field(default_factory=list)

    @property
    def ntasks(self) -> int:
        return sum(c.ntasks for c in self.chunks)

    @property
    def flops(self) -> float:
        return sum(c.flops for c in self.chunks)

    @property
    def a_bytes(self) -> int:
        """A traffic of the block (every needed A tile loaded once)."""
        return sum(c.a_bytes for c in self.chunks)


@dataclass
class ProcPlan:
    """Everything one process executes and communicates.

    Attributes
    ----------
    rank, row, col:
        Grid placement.
    columns:
        All B tile columns assigned to this process.
    blocks:
        Column blocks in creation order (each GPU runs its own subsequence
        in order).
    a_slice_rows:
        Global A tile rows of this grid row's slice.
    a_needed_rows / a_needed_cols / a_needed_bytes:
        Deduplicated A tiles this process touches (union over blocks) and
        their total bytes.
    a_recv_bytes, a_send_bytes:
        Internode A traffic under 2D-cyclic initial placement.
    c_send_bytes, c_recv_bytes:
        Internode C writeback traffic to the final 2D-cyclic placement.
    b_gen_bytes, b_gen_tiles:
        On-demand B generation work (each tile at most once per process).
    c_bytes:
        C tiles this process produces (bytes).
    """

    rank: int
    row: int
    col: int
    columns: np.ndarray
    blocks: list[Block]
    a_slice_rows: np.ndarray
    a_needed_rows: np.ndarray
    a_needed_cols: np.ndarray
    a_needed_bytes: int
    a_recv_bytes: int = 0
    a_send_bytes: int = 0
    c_send_bytes: int = 0
    c_recv_bytes: int = 0
    b_gen_bytes: int = 0
    b_gen_tiles: int = 0
    c_bytes: int = 0

    @property
    def ntasks(self) -> int:
        return sum(b.ntasks for b in self.blocks)

    @property
    def flops(self) -> float:
        return sum(b.flops for b in self.blocks)

    def gpu_blocks(self, gpu: int) -> list[Block]:
        """This process's blocks for local GPU ``gpu``, in order."""
        return [b for b in self.blocks if b.gpu == gpu]


@dataclass
class ExecutionPlan:
    """The full inspector output for one contraction on one machine."""

    grid: ProcessGrid
    options: PlanOptions
    a_shape: SparseShape
    b_shape: SparseShape
    c_shape: SparseShape
    procs: list[ProcPlan]
    gpu_memory_bytes: int

    @property
    def total_flops(self) -> float:
        return sum(p.flops for p in self.procs)

    @property
    def total_tasks(self) -> int:
        return sum(p.ntasks for p in self.procs)

    @property
    def total_blocks(self) -> int:
        return sum(len(p.blocks) for p in self.procs)

    @property
    def total_chunks(self) -> int:
        return sum(len(b.chunks) for p in self.procs for b in p.blocks)

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on breach.

        * every B tile column is assigned to exactly one process per grid
          row, and grid rows partition the A tile rows;
        * block footprints respect the block budget;
        * chunk footprints respect the chunk budget (single oversized tiles
          excepted);
        * no GPU holds more than one block more than any other (the paper's
          round-robin balance guarantee).
        """
        ntc = self.b_shape.ntile_cols
        block_budget = int(self.gpu_memory_bytes * self.options.block_fraction)
        chunk_budget = int(self.gpu_memory_bytes * self.options.chunk_fraction)
        for r in range(self.grid.p):
            row_procs = [p for p in self.procs if p.row == r]
            cols = np.concatenate([p.columns for p in row_procs]) if row_procs else []
            assert sorted(cols) == list(range(ntc)), "columns not partitioned"
        for p in self.procs:
            counts = np.zeros(self.grid.gpus_per_proc, dtype=int)
            for b in p.blocks:
                counts[b.gpu] += 1
                resident = b.b_bytes + b.c_bytes
                assert resident <= block_budget or len(b.columns) == 1, "block over budget"
                assert resident <= self.gpu_memory_bytes * 0.95, "block exceeds GPU"
                cb = chunk_budget
                if resident > block_budget:  # oversized singleton block
                    cb = max((self.gpu_memory_bytes - resident) // 2, 1)
                for ch in b.chunks:
                    assert ch.a_bytes <= cb or ch.ntiles == 1, "chunk over budget"
                    assert resident + 2 * ch.a_bytes <= self.gpu_memory_bytes or ch.ntiles == 1, (
                        "block + double-buffered chunks exceed GPU memory"
                    )
            nonempty = counts[counts > 0]
            if nonempty.size:
                assert counts.max() - max(counts.min(), 0) <= 1 or counts.min() == 0, (
                    "round-robin block balance violated"
                )

    def summary(self) -> str:
        """A short human-readable description of the plan."""
        from repro.util.units import fmt_bytes, fmt_count, fmt_flops

        return (
            f"ExecutionPlan: grid {self.grid.p}x{self.grid.q} "
            f"({self.grid.gpus_per_proc} GPU/proc), "
            f"{fmt_count(self.total_tasks)} GEMM tasks, "
            f"{fmt_flops(self.total_flops)}, "
            f"{self.total_blocks} blocks / {self.total_chunks} chunks, "
            f"A traffic {fmt_bytes(sum(p.a_needed_bytes for p in self.procs))}"
        )
