"""Coarse (vectorized) performance model: price a plan on a machine.

This is the model behind every paper-scale figure.  It walks the plan at
chunk granularity — never at task granularity — and composes the machine
models:

* per GPU: for each of its blocks, a blocking B/C host->device load, then
  the chunk pipeline with double buffering (chunk ``i+1``'s A transfer
  overlaps chunk ``i``'s GEMMs, as the 25 %+25 % memory split guarantees),
  then the C writeback.  Host-link contention counts only the *active*
  GPUs of each process (a process whose columns fit on one GPU leaves the
  other bricks idle);
* per node: co-located processes share the NIC and the host cores, but
  also share data — with ``p = 1`` both processes of a node need the same
  A tiles and PaRSEC ships one copy per node, so the model dedups the A
  broadcast volume and the on-demand B generation at node level (the
  paper's "each tile of B is instantiated at most once per node");
* activity streams (GPU pipelines, CPU generation, NIC traffic, inspector)
  overlap imperfectly: ``overlap_rho`` interpolates between perfect
  overlap (0) and full serialization (1), modelling the stalls the paper
  reports when local work cannot cover communication;
* makespan: the slowest node.

The per-chunk GEMM time uses the separable kernel model aggregated at
inspection time (``chunk.device_seconds``) plus per-task launch overhead.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.plan import Block, ExecutionPlan
from repro.machine.kernels import GenerationModel
from repro.machine.links import LinkModel, effective_stream_bandwidth
from repro.machine.network import NetworkModel
from repro.machine.spec import MachineSpec
from repro.util.units import fmt_rate, fmt_time

DTYPE_BYTES = 8


@dataclass(frozen=True)
class NodeTiming:
    """Per-node timing breakdown (seconds)."""

    node: int
    ranks: tuple[int, ...]
    gpu_busy: np.ndarray  # one entry per (proc, local gpu) on the node
    gen: float
    net: float
    inspect: float
    total: float


@dataclass(frozen=True)
class SimReport:
    """Simulated execution of one plan on one machine.

    Attributes
    ----------
    makespan:
        End-to-end simulated seconds (the paper's "time to completion").
    flops:
        Total flop count of the contraction.
    nodes:
        Per-node breakdowns.
    """

    makespan: float
    flops: float
    nodes: list[NodeTiming] = field(repr=False, default_factory=list)

    @property
    def perf(self) -> float:
        """Aggregate attained flop/s (the paper's Fig. 2 / Fig. 9 metric)."""
        return self.flops / self.makespan if self.makespan > 0 else 0.0

    def perf_per_gpu(self, total_gpus: int) -> float:
        """The paper's Fig. 8 metric."""
        return self.perf / total_gpus

    def parallel_efficiency(self, baseline: "SimReport", gpu_ratio: float) -> float:
        """Strong-scaling efficiency vs a baseline run (paper Fig. 7)."""
        return baseline.makespan / (self.makespan * gpu_ratio)

    def summary(self) -> str:
        return f"time {fmt_time(self.makespan)}, {fmt_rate(self.perf)}"


def _overlap(components: list[float], rho: float) -> float:
    """Combine concurrent activity streams with partial overlap.

    ``max`` of the streams plus ``rho`` times the rest: ``rho = 0`` is the
    perfect-overlap lower bound, ``rho = 1`` full serialization.
    """
    total = sum(components)
    peak = max(components) if components else 0.0
    return peak + rho * (total - peak)


def _gpu_time(blocks: list[Block], link: LinkModel, launch_s: float) -> float:
    """Time one GPU spends on its ordered blocks."""
    t = 0.0
    for blk in blocks:
        # Blocking B load — C starts empty in the paper's runs (allocated
        # on device), so only B moves in.
        t += link.time(blk.b_bytes, blk.b_tile_count)
        # Chunk pipeline with one-deep prefetch.
        comp = [c.device_seconds + launch_s * c.ntasks for c in blk.chunks]
        load = [link.time(c.a_bytes, c.ntiles) for c in blk.chunks]
        if load:
            t += load[0]
            for i in range(len(comp)):
                nxt = load[i + 1] if i + 1 < len(load) else 0.0
                t += max(comp[i], nxt)
        # C writeback, once per block.
        t += link.time(blk.c_bytes, blk.c_tile_count)
    return t


def simulate(
    plan: ExecutionPlan,
    machine: MachineSpec,
    overlap_rho: float = 0.25,
    use_d2d: bool = False,
) -> SimReport:
    """Price ``plan`` on ``machine``; returns the simulated run report.

    ``use_d2d`` enables the NVLink device-to-device A-tile sharing model
    (see :mod:`repro.core.d2d`): A traffic duplicated across a process's
    GPUs is served at NVLink speed instead of the contended host link.
    Off by default — it is an optimistic bound, quantified by the A6
    ablation benchmark.
    """
    grid = plan.grid
    gpu = machine.gpu
    node_spec = machine.node
    ppn = grid.procs_per_node

    dup_fraction: dict[int, float] = {}
    if use_d2d:
        from repro.core.d2d import duplicated_traffic_fraction

        m_sz = plan.a_shape.rows.sizes.astype(np.int64)
        k_sz = plan.a_shape.cols.sizes.astype(np.int64)
        for proc in plan.procs:
            dup_fraction[proc.rank] = duplicated_traffic_fraction(
                proc, plan.a_shape.ntile_cols, m_sz, k_sz, grid.gpus_per_proc
            )

    gen_model = GenerationModel(node_spec)
    net = NetworkModel(bandwidth=machine.net_bandwidth, latency=machine.net_latency)

    nK = plan.a_shape.ntile_cols
    m = plan.a_shape.rows.sizes.astype(np.int64)
    k = plan.a_shape.cols.sizes.astype(np.int64)

    # Per-column B footprint (for node-level generation dedup).
    b_col_bytes = np.asarray(plan.b_shape.tile_bytes().sum(axis=0)).ravel()

    nt_cols = plan.b_shape.ntile_cols
    inspect_tiles = plan.b_shape.nnz_tiles / max(1, grid.nprocs) + nt_cols * max(
        1.0, np.log2(max(nt_cols, 2))
    )
    t_inspect = inspect_tiles / machine.inspection_rate

    # Group processes onto nodes.
    by_node: dict[int, list] = defaultdict(list)
    for proc in plan.procs:
        by_node[proc.rank // ppn].append(proc)

    # Global A consumer map for node-level injection volumes.
    cons_keys: list[np.ndarray] = []
    cons_nodes: list[np.ndarray] = []
    for proc in plan.procs:
        keys = proc.a_needed_rows * nK + proc.a_needed_cols
        cons_keys.append(keys)
        cons_nodes.append(np.full(keys.size, proc.rank // ppn, dtype=np.int64))
    all_keys = np.concatenate(cons_keys) if cons_keys else np.empty(0, dtype=np.int64)
    all_nodes = np.concatenate(cons_nodes) if cons_nodes else np.empty(0, dtype=np.int64)
    # Unique (key, node) pairs.
    nnodes_used = max(by_node.keys(), default=0) + 1
    pair = all_keys * nnodes_used + all_nodes
    _, first = np.unique(pair, return_index=True)
    u_keys = all_keys[first]
    u_nodes = all_nodes[first]
    u_i = u_keys // nK
    u_k = u_keys % nK
    owner_rank = (u_i % grid.p) * grid.q + (u_k % grid.q)
    owner_node = owner_rank // ppn
    u_bytes = m[u_i] * k[u_k] * DTYPE_BYTES
    remote = owner_node != u_nodes
    # Receive volume per node; injected (send-once) volume per owner node.
    recv_node = np.zeros(max(by_node.keys(), default=0) + 1, dtype=np.int64)
    np.add.at(recv_node, u_nodes[remote], u_bytes[remote])
    # Per-tile software overhead of the background broadcasts.
    recv_msgs = np.zeros_like(recv_node)
    np.add.at(recv_msgs, u_nodes[remote], 1)
    inject_node = np.zeros_like(recv_node)
    if remote.any():
        rk = np.unique(u_keys[remote])
        ri = rk // nK
        rkk = rk % nK
        rb = m[ri] * k[rkk] * DTYPE_BYTES
        np.add.at(inject_node, ((ri % grid.p) * grid.q + (rkk % grid.q)) // ppn, rb)

    timings: list[NodeTiming] = []
    for node_id, procs in sorted(by_node.items()):
        gpu_busy_all: list[float] = []
        for proc in procs:
            # Host-link contention: only GPUs that actually stream count.
            active = sum(
                1 for g in range(grid.gpus_per_proc) if proc.gpu_blocks(g)
            )
            h2d_bw = effective_stream_bandwidth(
                gpu.h2d_bandwidth,
                node_spec.host_link_aggregate / ppn,
                max(1, active),
            )
            if use_d2d and dup_fraction.get(proc.rank, 0.0) > 0:
                from repro.core.d2d import d2d_effective_bandwidth

                h2d_bw = d2d_effective_bandwidth(
                    h2d_bw, gpu.d2d_bandwidth, dup_fraction[proc.rank]
                )
            link = LinkModel(bandwidth=h2d_bw, latency=node_spec.h2d_latency_s)
            for g in range(grid.gpus_per_proc):
                gpu_busy_all.append(
                    _gpu_time(proc.gpu_blocks(g), link, gpu.kernel_launch_s)
                )

        # Node-level B generation: columns deduped across co-located procs.
        cols_union = np.unique(np.concatenate([proc.columns for proc in procs]))
        gen_bytes = int(b_col_bytes[cols_union].sum())
        t_gen = gen_model.time(gen_bytes)

        c_send = sum(proc.c_send_bytes for proc in procs)
        c_recv = sum(proc.c_recv_bytes for proc in procs)
        t_net = net.exchange_time(
            int(inject_node[node_id]) + recv_node[node_id] + c_send,
            int(recv_node[node_id]) + c_recv,
        )
        t_net += float(recv_msgs[node_id]) * machine.net_message_overhead

        total = t_inspect + _overlap(
            [max(gpu_busy_all, default=0.0), t_gen, t_net], overlap_rho
        )
        timings.append(
            NodeTiming(
                node=node_id,
                ranks=tuple(proc.rank for proc in procs),
                gpu_busy=np.array(gpu_busy_all),
                gen=t_gen,
                net=t_net,
                inspect=t_inspect,
                total=total,
            )
        )

    makespan = max(t.total for t in timings)
    return SimReport(makespan=makespan, flops=plan.total_flops, nodes=timings)
