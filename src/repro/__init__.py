"""repro — block-sparse distributed multi-GPU tensor contraction.

A complete Python reproduction of Herault et al., *Distributed-memory
multi-GPU block-sparse tensor contraction for electronic structure*
(IPDPS 2021).  See README.md for the tour; the main entry points are:

* :func:`repro.core.psgemm_numeric` / :func:`repro.core.psgemm_simulate`
  — plan, execute and price ``C <- C + A @ B``;
* :func:`repro.chem.build_abcd_problem` — the C65H132 CCSD ABCD instance;
* :mod:`repro.experiments` — drivers for every paper table and figure;
* ``python -m repro`` — the command-line interface.
"""

__version__ = "1.0.0"

from repro.core import psgemm_numeric, psgemm_plan, psgemm_simulate  # noqa: F401
from repro.machine import summit  # noqa: F401
from repro.sparse import BlockSparseMatrix, SparseShape  # noqa: F401
from repro.tensor import BlockSparseTensor, contract  # noqa: F401
from repro.tiling import Tiling  # noqa: F401

__all__ = [
    "__version__",
    "psgemm_numeric",
    "psgemm_plan",
    "psgemm_simulate",
    "summit",
    "BlockSparseMatrix",
    "SparseShape",
    "BlockSparseTensor",
    "contract",
    "Tiling",
]
