"""The binary tile codec: one tile per object file, self-describing.

Object layout (little-endian), designed so a reader needs *nothing* but
the file itself:

* bytes ``0..4``   — magic ``b"RTS1"``;
* bytes ``4..6``   — format version (``u16``, currently 1);
* bytes ``6..8``   — flags (``u16``; bit 0 = zlib-compressed payload);
* bytes ``8..12``  — header size (``u32``): the payload offset, always a
  multiple of 64 so an uncompressed float64 payload is alignment-safe to
  map directly with :func:`numpy.frombuffer`;
* bytes ``12..20`` — payload byte length as stored on disk (``u64``);
* bytes ``20..28`` — decoded (uncompressed) payload byte length (``u64``);
* bytes ``28..32`` — CRC32 of the *decoded* payload (``u32``);
* bytes ``32..36`` — metadata JSON length (``u32``);
* bytes ``36..``   — metadata JSON (``{"ns", "key", "dtype", "shape"}``)
  followed by zero padding up to the header size.

The metadata carries the logical identity (namespace + key), so a store
index can always be rebuilt by scanning object headers, and the CRC makes
torn or bit-rotted payloads detectable — the checkpoint journal refuses to
trust a tile whose checksum does not match.

Only C-contiguous arrays are encoded; tiles are float64 in practice but
the codec round-trips any numpy dtype with a stable ``str`` form.
"""

from __future__ import annotations

import json
import struct
import zlib

import numpy as np

MAGIC = b"RTS1"
VERSION = 1
FLAG_COMPRESSED = 0x1

#: Fixed-width prefix before the metadata JSON: magic, version, flags,
#: header size, stored payload bytes, decoded payload bytes, payload CRC32,
#: metadata length.
_PREFIX = struct.Struct("<4sHHIQQII")

#: Header sizes are rounded up to this, keeping mapped payloads aligned.
ALIGN = 64


class CodecError(ValueError):
    """An object file is not a valid (or not an intact) encoded tile."""


def encode_tile(ns: str, key, arr: np.ndarray, *, compress: int | None = None) -> bytes:
    """Serialize one tile to the self-describing object format.

    ``compress`` is a zlib level (1..9) or ``None`` for raw payload bytes
    (raw objects can be read zero-copy via mmap; compressed ones cannot).
    """
    arr = np.ascontiguousarray(arr)
    raw = arr.tobytes()
    flags = 0
    payload = raw
    if compress is not None:
        payload = zlib.compress(raw, compress)
        flags |= FLAG_COMPRESSED
    meta = json.dumps(
        {"ns": ns, "key": list(key), "dtype": str(arr.dtype), "shape": list(arr.shape)},
        sort_keys=True,
    ).encode("utf-8")
    header_size = _PREFIX.size + len(meta)
    header_size += (-header_size) % ALIGN
    prefix = _PREFIX.pack(
        MAGIC, VERSION, flags, header_size,
        len(payload), len(raw), zlib.crc32(raw) & 0xFFFFFFFF, len(meta),
    )
    pad = b"\x00" * (header_size - _PREFIX.size - len(meta))
    return prefix + meta + pad + payload


def read_header(buf) -> dict:
    """Parse an object's header from a buffer (file prefix or full object).

    Returns ``{"ns", "key", "dtype", "shape", "flags", "header_size",
    "payload_bytes", "decoded_bytes", "crc32"}``.  Raises
    :class:`CodecError` on anything that is not an intact header.
    """
    if len(buf) < _PREFIX.size:
        raise CodecError("object shorter than the codec prefix")
    magic, version, flags, header_size, pbytes, dbytes, crc, mlen = _PREFIX.unpack_from(buf, 0)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r} (not an RTS1 tile object)")
    if version != VERSION:
        raise CodecError(f"unsupported tile-object version {version}")
    if len(buf) < _PREFIX.size + mlen:
        raise CodecError("object truncated inside the metadata block")
    try:
        meta = json.loads(bytes(buf[_PREFIX.size:_PREFIX.size + mlen]).decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as e:
        raise CodecError(f"corrupt metadata JSON: {e}") from None
    return {
        "ns": meta.get("ns", ""),
        "key": tuple(meta.get("key", ())),
        "dtype": meta.get("dtype", "float64"),
        "shape": tuple(meta.get("shape", ())),
        "flags": flags,
        "header_size": header_size,
        "payload_bytes": pbytes,
        "decoded_bytes": dbytes,
        "crc32": crc,
    }


def decode_tile(buf, *, verify: bool = True) -> tuple[dict, np.ndarray]:
    """Decode a full object buffer; returns ``(header, array)``.

    ``verify=True`` checks the payload CRC (mandatory for compressed
    payloads anyway, since zlib errors already surface corruption).
    Raises :class:`CodecError` on truncation or checksum mismatch.
    """
    header = read_header(buf)
    start = header["header_size"]
    end = start + header["payload_bytes"]
    if len(buf) < end:
        raise CodecError(
            f"object truncated: {len(buf)} B on disk, payload ends at {end} B"
        )
    payload = bytes(buf[start:end])
    if header["flags"] & FLAG_COMPRESSED:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as e:
            raise CodecError(f"corrupt compressed payload: {e}") from None
    if len(payload) != header["decoded_bytes"]:
        raise CodecError(
            f"decoded payload is {len(payload)} B, header says "
            f"{header['decoded_bytes']} B"
        )
    if verify and (zlib.crc32(payload) & 0xFFFFFFFF) != header["crc32"]:
        raise CodecError("payload CRC32 mismatch (torn write or bit rot)")
    arr = np.frombuffer(payload, dtype=np.dtype(header["dtype"]))
    return header, arr.reshape(header["shape"])


def map_tile(header: dict, buf) -> np.ndarray:
    """A zero-copy read-only array over an *uncompressed* object buffer.

    ``buf`` must stay alive (e.g. an open ``mmap``) as long as the view;
    the store owns that life-cycle.  Compressed objects cannot be mapped —
    callers fall back to :func:`decode_tile`.
    """
    if header["flags"] & FLAG_COMPRESSED:
        raise CodecError("compressed objects cannot be memory-mapped")
    arr = np.frombuffer(
        buf, dtype=np.dtype(header["dtype"]),
        count=int(np.prod(header["shape"], dtype=np.int64)) if header["shape"] else 1,
        offset=header["header_size"],
    )
    view = arr.reshape(header["shape"])
    view.flags.writeable = False
    return view
