"""The on-disk, content-addressed tile store.

A :class:`TileStore` persists tiles across process *and* run boundaries —
the second cache tier behind the per-rank B-service LRU, and the durable
home of checkpointed C tiles.  Layout under the store root::

    objects/ab/abcdef...tile   one codec-encoded tile per file
    index.jsonl                append-only {digest, ns, key, nbytes} records
    stats.jsonl                one session-counter record per closed session

Properties the distributed executor leans on:

* **content addressing** — an object's file name is the SHA-256 of its
  logical identity ``(namespace, key)``.  Namespaces fold in the operand
  fingerprint (B generator seed/shape, or the run hash for checkpointed C
  tiles), so two runs over identical inputs share bytes and two runs over
  different inputs can never collide;
* **crash consistency** — objects are written to a temporary file in the
  same directory, fsynced, then :func:`os.replace`\\ d into place.  A
  reader sees either nothing or a complete object, never a torn one; the
  codec CRC catches anything the filesystem still manages to mangle;
* **zero-copy reads** — uncompressed objects are memory-mapped and handed
  out as read-only NumPy views (the store keeps the maps alive until
  :meth:`close`); compressed objects are decoded into fresh arrays;
* **size-bounded GC** — :meth:`gc` evicts least-recently-used objects
  (access bumps an object's mtime) until the store fits a byte budget;
  with a ``budget_bytes`` every :meth:`put` triggers the same sweep;
* **concurrent writers** — many ranks on one filesystem can put the same
  object simultaneously: each writes its own temp file and the last
  ``os.replace`` wins with identical bytes.  Index/stats appends are
  single short writes in append mode (atomic on POSIX for one line).

The store is deliberately dependency-free: stdlib ``mmap``/``zlib`` and
NumPy only.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.store.codec import CodecError, decode_tile, encode_tile, map_tile, read_header

_OBJ_SUFFIX = ".tile"
_TMP_SUFFIX = ".tmp"

#: Temp files younger than this are presumed to belong to a live writer in
#: another process and are left alone by :meth:`TileStore.scan`'s sweep.
_TMP_SWEEP_SECONDS = 60.0


def object_digest(ns: str, key) -> str:
    """The content address of a tile: SHA-256 over ``(namespace, key)``."""
    ident = json.dumps([ns, list(key)], sort_keys=True).encode("utf-8")
    return hashlib.sha256(ident).hexdigest()


@dataclass
class StoreStats:
    """One store session's counters plus the on-disk totals."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    objects: int = 0
    disk_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits, "misses": self.misses, "puts": self.puts,
            "evictions": self.evictions, "corrupt": self.corrupt,
            "bytes_written": self.bytes_written, "bytes_read": self.bytes_read,
        }


@dataclass
class ObjectInfo:
    """One on-disk object, as :meth:`TileStore.scan` reports it."""

    digest: str
    path: str
    nbytes: int
    mtime: float
    ns: str = ""
    key: tuple = ()


@dataclass
class _SessionCounters:
    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    closed: bool = field(default=False, repr=False)

    def as_dict(self) -> dict:
        return {
            "hits": self.hits, "misses": self.misses, "puts": self.puts,
            "evictions": self.evictions, "corrupt": self.corrupt,
            "bytes_written": self.bytes_written, "bytes_read": self.bytes_read,
        }


class TileStore:
    """A persistent tile store rooted at one directory.

    Parameters
    ----------
    root:
        Store directory (created on demand).
    budget_bytes:
        Optional size bound; exceeding it after a :meth:`put` triggers an
        LRU sweep back under budget.
    compress:
        Default zlib level for :meth:`put` (``None`` = raw, mappable).
    metrics:
        Optional :class:`~repro.runtime.metrics.MetricsRegistry`; the
        store feeds ``repro_store_*`` counters and gauges when given.
    """

    def __init__(self, root: str, *, budget_bytes: int | None = None,
                 compress: int | None = None, metrics=None):
        self.root = root
        self.budget_bytes = budget_bytes
        self.compress = compress
        self._objects_dir = os.path.join(root, "objects")
        os.makedirs(self._objects_dir, exist_ok=True)
        self._maps: list[mmap.mmap] = []
        self._session = _SessionCounters()
        if metrics is None:
            from repro.runtime.metrics import MetricsRegistry
            metrics = MetricsRegistry(enabled=False)
        self._m_hits = metrics.counter(
            "repro_store_hits_total", "persistent tile-store hits"
        )
        self._m_misses = metrics.counter(
            "repro_store_misses_total", "persistent tile-store misses"
        )
        self._m_evictions = metrics.counter(
            "repro_store_evictions_total", "tile-store LRU evictions"
        )
        self._m_written = metrics.counter(
            "repro_store_written_bytes_total", "bytes written to the tile store"
        )
        self._m_read = metrics.counter(
            "repro_store_read_bytes_total", "bytes read from the tile store"
        )
        self._m_disk = metrics.gauge(
            "repro_store_disk_bytes", "bytes resident in the tile store", agg="max"
        )

    # -- paths ---------------------------------------------------------------

    def _path(self, digest: str) -> str:
        return os.path.join(self._objects_dir, digest[:2], digest + _OBJ_SUFFIX)

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "index.jsonl")

    @property
    def stats_path(self) -> str:
        return os.path.join(self.root, "stats.jsonl")

    # -- write ---------------------------------------------------------------

    def put(self, ns: str, key, arr: np.ndarray, *,
            compress: int | None = None) -> bool:
        """Store one tile; returns ``False`` if it was already present.

        Atomic: the object is written next to its final path and renamed
        in, so a killed writer leaves at most a ``*.tmp`` file (swept by
        :meth:`gc`) and never a torn object.
        """
        digest = object_digest(ns, key)
        path = self._path(digest)
        if os.path.exists(path):
            return False
        blob = encode_tile(ns, key, arr,
                           compress=self.compress if compress is None else compress)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.{os.getpid()}{_TMP_SUFFIX}"
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        try:
            os.replace(tmp, path)
        except FileNotFoundError:
            # Another process's sweep mistook our in-flight temp file for a
            # dead writer's leftover (possible when a writer outlives
            # _TMP_SWEEP_SECONDS).  The content is deterministic, so just
            # write it again; second loss in a row means something is
            # actually deleting our files.
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        self._session.puts += 1
        self._session.bytes_written += len(blob)
        self._m_written.inc(len(blob))
        self._append_index(digest, ns, key, len(blob))
        if self.budget_bytes is not None:
            self.gc(self.budget_bytes)
        return True

    def _append_index(self, digest: str, ns: str, key, nbytes: int) -> None:
        line = json.dumps(
            {"digest": digest, "ns": ns, "key": list(key), "nbytes": nbytes},
            sort_keys=True,
        )
        with open(self.index_path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")

    # -- read ----------------------------------------------------------------

    def contains(self, ns: str, key) -> bool:
        return os.path.exists(self._path(object_digest(ns, key)))

    def get(self, ns: str, key, *, verify: bool = False) -> np.ndarray | None:
        """Fetch a tile, or ``None`` when absent (or corrupt).

        Uncompressed objects come back as zero-copy read-only views over a
        private memory map the store keeps open until :meth:`close`;
        compressed (or ``verify=True``) reads decode a fresh array.  A
        corrupt object is counted, treated as a miss, and left in place
        for post-mortems (GC will age it out).
        """
        path = self._path(object_digest(ns, key))
        try:
            mm = self._open_map(path)
        except CodecError:  # zero-length file: torn beyond recognition
            self._corrupt()
            return None
        if mm is None:
            self._session.misses += 1
            self._m_misses.inc()
            return None
        try:
            if verify:
                with memoryview(mm) as view:
                    _, arr = decode_tile(view, verify=True)
                mm.close()  # decode copied the payload; the map can go
            else:
                header = read_header(mm)
                if header["flags"] & 0x1:  # compressed: decode a copy
                    with memoryview(mm) as view:
                        _, arr = decode_tile(view, verify=False)
                    mm.close()
                else:
                    end = header["header_size"] + header["payload_bytes"]
                    if len(mm) < end:
                        raise CodecError("object truncated")
                    arr = map_tile(header, mm)
                    self._maps.append(mm)  # must outlive the view
        except CodecError:
            mm.close()
            self._corrupt()
            return None
        self._session.hits += 1
        self._session.bytes_read += arr.nbytes
        self._m_hits.inc()
        self._m_read.inc(arr.nbytes)
        self._touch(path)
        return arr

    @staticmethod
    def _open_map(path: str) -> mmap.mmap | None:
        """Map one object read-only; ``None`` when absent.

        The file handle is released immediately — the mapping survives it
        (POSIX mmap semantics) and its life-cycle belongs to the caller.
        Raises :class:`CodecError` for a zero-length (torn) file.
        """
        try:
            with open(path, "rb") as fh:
                try:
                    return mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                except ValueError:
                    raise CodecError("zero-length object file") from None
        except FileNotFoundError:
            return None

    def _corrupt(self) -> None:
        self._session.corrupt += 1
        self._session.misses += 1
        self._m_misses.inc()

    @staticmethod
    def _touch(path: str) -> None:
        """Bump the object's recency (mtime is the LRU clock)."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - raced against an eviction
            pass

    # -- scan / GC -----------------------------------------------------------

    def scan(self, *, with_headers: bool = False) -> list[ObjectInfo]:
        """Every object on disk, oldest (least recently used) first."""
        out: list[ObjectInfo] = []
        for sub in sorted(os.listdir(self._objects_dir)):
            subdir = os.path.join(self._objects_dir, sub)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                path = os.path.join(subdir, name)
                if not name.endswith(_OBJ_SUFFIX):
                    if name.endswith(_TMP_SUFFIX):
                        # A temp file is a dead writer's leftover only once
                        # it has gone stale: other ranks write (and rename
                        # away) their temps within moments, and sweeping a
                        # *live* writer's temp would fail its rename.
                        try:
                            stale = (
                                time.time() - os.stat(path).st_mtime
                                > _TMP_SWEEP_SECONDS
                            )
                        except FileNotFoundError:
                            stale = False  # renamed into place mid-scan
                        if stale:
                            _remove_quietly(path)
                    continue
                try:
                    st = os.stat(path)
                except FileNotFoundError:  # pragma: no cover - concurrent GC
                    continue
                info = ObjectInfo(
                    digest=name[:-len(_OBJ_SUFFIX)], path=path,
                    nbytes=st.st_size, mtime=st.st_mtime,
                )
                if with_headers:
                    try:
                        with open(path, "rb") as fh:
                            header = read_header(fh.read(4096))
                        info.ns, info.key = header["ns"], header["key"]
                    except (OSError, CodecError):
                        pass
                out.append(info)
        out.sort(key=lambda o: (o.mtime, o.digest))
        return out

    def disk_bytes(self) -> int:
        return sum(o.nbytes for o in self.scan())

    def gc(self, budget_bytes: int) -> tuple[int, int]:
        """Evict LRU objects until the store fits; returns ``(n, bytes)``."""
        objs = self.scan()
        total = sum(o.nbytes for o in objs)
        evicted = freed = 0
        for obj in objs:
            if total <= budget_bytes:
                break
            _remove_quietly(obj.path)
            total -= obj.nbytes
            freed += obj.nbytes
            evicted += 1
            self._session.evictions += 1
            self._m_evictions.inc()
        self._m_disk.set(total)
        return evicted, freed

    # -- stats / life-cycle --------------------------------------------------

    def stats(self) -> StoreStats:
        """This session's counters plus the current on-disk totals."""
        objs = self.scan()
        s = self._session
        return StoreStats(
            hits=s.hits, misses=s.misses, puts=s.puts, evictions=s.evictions,
            corrupt=s.corrupt, bytes_written=s.bytes_written,
            bytes_read=s.bytes_read, objects=len(objs),
            disk_bytes=sum(o.nbytes for o in objs),
        )

    def close(self) -> None:
        """Flush session counters to ``stats.jsonl`` and drop every map.

        Idempotent; a session with no activity appends nothing.  Maps
        still referenced by live views are left open (closing them would
        invalidate the views) — they die with the process.
        """
        if not self._session.closed:
            s = self._session
            if s.hits or s.misses or s.puts or s.evictions:
                record = {"t": time.time(), **s.as_dict()}
                with open(self.stats_path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._session.closed = True
        kept: list[mmap.mmap] = []
        for mm in self._maps:
            try:
                mm.close()
            except BufferError:  # a zero-copy view is still alive
                kept.append(mm)
        self._maps = kept


def read_store_stats(root: str) -> StoreStats:
    """Aggregate every recorded session of a store plus its disk state.

    This is what ``repro store stats`` renders: cumulative hit/miss/put
    counters across all runs that used the store (each session appends one
    record on close) and the current object count and byte total.  Torn
    trailing records — a killed run — are skipped, same policy as the
    run-event log.
    """
    total = StoreStats()
    stats_path = os.path.join(root, "stats.jsonl")
    if os.path.exists(stats_path):
        with open(stats_path, "rb") as fh:
            raw = fh.read()
        for line in raw.split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue  # torn final record of a killed session
            if not isinstance(rec, dict):
                continue
            total.hits += int(rec.get("hits", 0))
            total.misses += int(rec.get("misses", 0))
            total.puts += int(rec.get("puts", 0))
            total.evictions += int(rec.get("evictions", 0))
            total.corrupt += int(rec.get("corrupt", 0))
            total.bytes_written += int(rec.get("bytes_written", 0))
            total.bytes_read += int(rec.get("bytes_read", 0))
    if os.path.isdir(os.path.join(root, "objects")):
        store = TileStore(root)
        try:
            objs = store.scan()
            total.objects = len(objs)
            total.disk_bytes = sum(o.nbytes for o in objs)
        finally:
            store.close()
    return total


def _remove_quietly(path: str) -> None:
    try:
        os.remove(path)
    except FileNotFoundError:  # pragma: no cover - raced with another GC
        pass
