"""Persistent tile store and checkpoint/resume (the out-of-core layer).

Two services live here, both backed by the same content-addressed on-disk
object store:

* a **persistent B-tile cache tier** — :class:`TileStore` sits between the
  B-service's in-memory LRU and the generator, so tiles generated in one
  run (or by one rank) are reused by later runs and by other ranks sharing
  a filesystem;
* **checkpoint/resume** — :class:`WritebackJournal` plus coordinator
  snapshots make ``psgemm_distributed(checkpoint_dir=...)`` survivable: a
  run killed at any instant resumes bit-for-bit identical to an
  uninterrupted serial run, recomputing only unjournaled blocks.

See ``docs/architecture.md`` ("Persistent storage & checkpointing") for
the object format, journal protocol, and resume walk-through.
"""

from repro.store.codec import (
    ALIGN,
    FLAG_COMPRESSED,
    MAGIC,
    CodecError,
    decode_tile,
    encode_tile,
    map_tile,
    read_header,
)
from repro.store.journal import (
    CompletedBlock,
    WritebackJournal,
    b_fingerprint,
    ckpt_namespace,
    ckpt_tile_key,
    journal_path,
    plan_fingerprint,
    read_journal,
    read_snapshot,
    run_fingerprint,
    validated_completed_blocks,
    write_snapshot,
)
from repro.store.tilestore import (
    ObjectInfo,
    StoreStats,
    TileStore,
    object_digest,
    read_store_stats,
)

__all__ = [
    "ALIGN",
    "FLAG_COMPRESSED",
    "MAGIC",
    "CodecError",
    "CompletedBlock",
    "ObjectInfo",
    "StoreStats",
    "TileStore",
    "WritebackJournal",
    "b_fingerprint",
    "ckpt_namespace",
    "ckpt_tile_key",
    "decode_tile",
    "encode_tile",
    "journal_path",
    "map_tile",
    "object_digest",
    "plan_fingerprint",
    "read_header",
    "read_journal",
    "read_snapshot",
    "read_store_stats",
    "run_fingerprint",
    "validated_completed_blocks",
    "write_snapshot",
]
