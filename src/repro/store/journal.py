"""Crash-consistent checkpointing: fingerprints, journal, snapshots.

Three cooperating pieces turn a checkpoint directory into a resumable run:

* **fingerprints** — :func:`plan_fingerprint` hashes everything an
  :class:`~repro.core.plan.ExecutionPlan` makes a worker do (grid,
  options, shapes, per-block column/chunk arrays); :func:`b_fingerprint`
  hashes the B operand's identity (generator seed state + occupancy, or a
  concrete matrix's tile bytes); :func:`run_fingerprint` folds both with
  ``alpha`` into the run hash that namespaces every checkpointed C tile.
  Two runs share checkpoint state *iff* their run hashes match — which is
  exactly the condition under which their per-block C tiles are
  bit-identical.
* **:class:`WritebackJournal`** — one append-only JSONL file per rank
  (``journal-rank<r>.jsonl``).  A record is appended (and fsynced) only
  *after* the block's C tiles are durably in the tile store, so a record
  is a promise: "these tiles exist and are intact".  The resume path
  still re-validates every promised tile against its stored CRC —
  write-then-journal ordering plus read-time validation is what makes a
  SIGKILL at any instant recoverable.
* **coordinator snapshot** — ``coordinator.json``, atomically replaced:
  run/plan hashes, operand fingerprint, and per-rank progress.  The
  resume path refuses a checkpoint directory whose hashes disagree with
  the plan in hand (analysis rule ``P121``) instead of silently splicing
  tiles from a different contraction into the output.

Journal reads tolerate a torn final line (a rank killed mid-append), the
same policy as :func:`repro.dist.health.read_events`.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import time
from dataclasses import dataclass

import numpy as np

#: Journal / snapshot format version, stamped into every record.
VERSION = 1

SNAPSHOT_NAME = "coordinator.json"


# ---- fingerprints ----------------------------------------------------------


def _hash_update_array(h, arr) -> None:
    a = np.ascontiguousarray(arr)
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())


def _hash_shape(h, shape) -> None:
    """Fold a :class:`~repro.sparse.shape.SparseShape` into the hash."""
    _hash_update_array(h, shape.rows.sizes)
    _hash_update_array(h, shape.cols.sizes)
    _hash_update_array(h, shape.csr.indptr)
    _hash_update_array(h, shape.csr.indices)


def plan_fingerprint(plan) -> str:
    """A stable SHA-256 over everything the plan tells workers to do.

    Built from the plan's semantic content (never ``pickle``, whose byte
    stream is an implementation detail): grid geometry, options, operand
    shapes, and each rank's block/chunk schedule.  Identical inspector
    inputs produce identical fingerprints across runs and processes.
    """
    h = hashlib.sha256(b"repro-plan-v1")
    g = plan.grid
    h.update(f"{g.p}|{g.q}|{g.gpus_per_proc}|{plan.gpu_memory_bytes}".encode())
    o = plan.options
    h.update(
        f"{o.block_fraction}|{o.chunk_fraction}|{o.assignment_policy}"
        f"|{o.screen_threshold}".encode()
    )
    _hash_shape(h, plan.a_shape)
    _hash_shape(h, plan.b_shape)
    for proc in plan.procs:
        h.update(f"proc|{proc.rank}|{proc.row}|{proc.col}".encode())
        _hash_update_array(h, proc.columns)
        for block in proc.blocks:
            h.update(f"block|{block.gpu}".encode())
            _hash_update_array(h, block.columns)
            for chunk in block.chunks:
                _hash_update_array(h, chunk.a_rows)
                _hash_update_array(h, chunk.a_cols)
    return h.hexdigest()


def b_fingerprint(b) -> str:
    """A stable SHA-256 of the B operand's *values* (not its storage).

    For a :class:`~repro.runtime.data.GeneratedCollection` the values are
    fully determined by ``(fill, RNG state, occupancy)``; for a concrete
    :class:`~repro.sparse.matrix.BlockSparseMatrix` every tile's bytes are
    folded in (checkpoint-scale operands are small enough to hash).
    """
    from repro.runtime.data import GeneratedCollection, MatrixSource
    from repro.util.rng import _state_entropy

    h = hashlib.sha256(b"repro-b-v1")
    if isinstance(b, MatrixSource):
        b = b.matrix
    if isinstance(b, GeneratedCollection):
        h.update(f"generated|{b.fill}|{_state_entropy(b._rng)}".encode())
        _hash_shape(h, b.shape)
    else:  # concrete BlockSparseMatrix
        h.update(b"matrix")
        for key in sorted(b.keys()):
            h.update(str(key).encode())
            _hash_update_array(h, b.get_tile(*key))
    return h.hexdigest()


def run_fingerprint(plan_hash: str, b_hash: str, alpha: float) -> str:
    """The namespace of one run's checkpointed C tiles."""
    h = hashlib.sha256(b"repro-run-v1")
    h.update(plan_hash.encode())
    h.update(b_hash.encode())
    h.update(repr(float(alpha)).encode())
    return h.hexdigest()


# ---- the writeback journal -------------------------------------------------


def ckpt_namespace(run_hash: str) -> str:
    """The tile-store namespace of a run's checkpointed C tiles."""
    return f"ckpt:{run_hash}"


def ckpt_tile_key(rank: int, gpu: int, block: int, i: int, j: int) -> tuple:
    """The store key of one checkpointed C tile."""
    return (rank, gpu, block, i, j)


@dataclass(frozen=True)
class CompletedBlock:
    """One journaled unit of finished work (scattered to resuming ranks)."""

    rank: int
    gpu: int
    block: int
    chunks: int
    ntasks: int
    tiles: tuple  # ((i, j), ...) C-tile keys the block produced


def journal_path(ckpt_dir: str, rank: int, suffix: str = "") -> str:
    return os.path.join(ckpt_dir, f"journal-rank{rank}{suffix}.jsonl")


def _sidecar_paths(ckpt_dir: str, rank: int) -> list[str]:
    """Handoff sidecar journals (``journal-rank<r>.h<id>.jsonl``), sorted.

    Rebalancing hands a straggler's unstarted blocks to a helper, which
    journals them under the *origin's* rank but in its own sidecar file —
    two processes must never append to one journal.  Resume reads the
    main journal plus every sidecar; record contents are identical.
    """
    pattern = os.path.join(ckpt_dir, f"journal-rank{rank}.h*.jsonl")
    return sorted(glob.glob(pattern))


class WritebackJournal:
    """One rank's append-only record of durably checkpointed blocks.

    The writer appends exactly one fsynced JSON line per completed block,
    *after* the block's C tiles hit the store — so every record the reader
    accepts describes work that never needs to run again.

    ``suffix`` names a handoff sidecar (``.h<id>``): a helper executing
    blocks reclaimed from ``rank`` journals them under the origin's rank
    without sharing the origin's file handle.
    """

    def __init__(self, ckpt_dir: str, rank: int, suffix: str = ""):
        self.path = journal_path(ckpt_dir, rank, suffix)
        self.rank = rank
        os.makedirs(ckpt_dir, exist_ok=True)
        # Append mode: a retried attempt extends its predecessor's journal
        # (earlier completed blocks stay valid — same plan, same tiles).
        self._fh = open(self.path, "a", encoding="utf-8")  # repro: noqa[L308] - handle owned by the journal, closed in close()
        self.appended = 0

    def record(self, run_hash: str, completed: CompletedBlock) -> None:
        line = json.dumps({
            "v": VERSION,
            "run": run_hash,
            "rank": completed.rank,
            "gpu": completed.gpu,
            "block": completed.block,
            "chunks": completed.chunks,
            "ntasks": completed.ntasks,
            "tiles": [list(t) for t in completed.tiles],
            "t": time.time(),  # labeling only
        }, sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_journal(ckpt_dir: str, rank: int, run_hash: str) -> list[CompletedBlock]:
    """Parse one rank's journal, keeping only intact records of this run.

    Tolerates a missing file, a torn final line (rank killed mid-append),
    torn multibyte characters, and records from other runs (a reused
    checkpoint directory after the operands changed — those are simply
    stale, not fatal; the run-hash namespace keeps their tiles separate).

    Handoff sidecars (``journal-rank<r>.h*.jsonl``) are folded in after
    the main journal: blocks a helper completed on the origin's behalf
    resume exactly as if the origin had journaled them itself.
    """
    out: list[CompletedBlock] = []
    paths = [journal_path(ckpt_dir, rank), *_sidecar_paths(ckpt_dir, rank)]
    for path in paths:
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            continue
        for line in raw.split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue  # torn line: the rank died mid-append
            if not isinstance(rec, dict) or rec.get("run") != run_hash:
                continue
            try:
                out.append(CompletedBlock(
                    rank=int(rec["rank"]),
                    gpu=int(rec["gpu"]),
                    block=int(rec["block"]),
                    chunks=int(rec.get("chunks", 0)),
                    ntasks=int(rec.get("ntasks", 0)),
                    tiles=tuple(
                        (int(i), int(j)) for i, j in rec.get("tiles", [])
                    ),
                ))
            except (KeyError, TypeError, ValueError):
                continue  # malformed record: recompute that block instead
    return out


def validated_completed_blocks(
    ckpt_dir: str, rank: int, run_hash: str, store
) -> dict[tuple[int, int], CompletedBlock]:
    """The rank's journaled blocks whose tiles all verify against the store.

    Keyed by ``(gpu, block)``.  A journal record whose tiles are missing
    or fail their CRC is dropped — the block is recomputed, which is
    always safe (the journal is an optimization, never the only copy of
    the truth until its tiles verify).  Duplicate records (a block
    completed on two attempts) collapse to the last one.
    """
    ns = ckpt_namespace(run_hash)
    out: dict[tuple[int, int], CompletedBlock] = {}
    for rec in read_journal(ckpt_dir, rank, run_hash):
        ok = all(
            store.get(ns, ckpt_tile_key(rec.rank, rec.gpu, rec.block, i, j),
                      verify=True) is not None
            for i, j in rec.tiles
        )
        if ok:
            out[(rec.gpu, rec.block)] = rec
    return out


# ---- coordinator snapshots -------------------------------------------------


def write_snapshot(ckpt_dir: str, payload: dict) -> None:
    """Atomically replace ``coordinator.json`` (write + fsync + rename)."""
    os.makedirs(ckpt_dir, exist_ok=True)
    path = os.path.join(ckpt_dir, SNAPSHOT_NAME)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_snapshot(ckpt_dir: str) -> dict | None:
    """The last coordinator snapshot, or ``None`` when absent/corrupt.

    A corrupt snapshot cannot happen under the atomic-replace discipline,
    but a hand-edited or foreign file should degrade to "no snapshot",
    not a crash (the journal is the source of truth for resume anyway).
    """
    path = os.path.join(ckpt_dir, SNAPSHOT_NAME)
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, UnicodeDecodeError, OSError):
        return None
    return data if isinstance(data, dict) else None
