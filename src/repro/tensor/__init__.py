"""Block-sparse tensors and their matricization.

The ABCD term ``R[i,j,a,b] = sum_cd T[i,j,c,d] V[c,d,a,b]`` is executed, as
in the paper, by *matricizing*: fusing index pairs so the order-4 contraction
becomes the block-sparse matrix product ``C <- C + A @ B``.  This package
provides the order-N block-sparse tensor container, the fusion machinery,
and a small contraction-spec parser that maps a binary einsum-like spec onto
a GEMM over matricized operands.
"""

from repro.tensor.tensor import BlockSparseTensor
from repro.tensor.matricize import matricize, unmatricize
from repro.tensor.contraction import ContractionSpec, contract, plan_contraction
from repro.tensor.distributed import contract_distributed

__all__ = [
    "BlockSparseTensor",
    "matricize",
    "unmatricize",
    "ContractionSpec",
    "contract",
    "plan_contraction",
    "contract_distributed",
]
