"""Distributed execution of tensor contractions.

Ties the order-4 tensor API to the distributed pipeline: the contraction
spec is matricized exactly as in :func:`repro.tensor.contraction.contract`,
but the GEMM runs through the full inspector/executor stack
(:func:`repro.core.psgemm_numeric`) instead of the serial reference —
the programming model a downstream electronic-structure code would use.
"""

from __future__ import annotations

from repro.core.plan import PlanOptions
from repro.core.psgemm import psgemm_numeric
from repro.machine.spec import MachineSpec
from repro.runtime.numeric import NumericStats
from repro.tensor.contraction import plan_contraction
from repro.tensor.tensor import BlockSparseTensor


def contract_distributed(
    spec: str,
    a: BlockSparseTensor,
    b: BlockSparseTensor,
    machine: MachineSpec,
    p: int = 1,
    gpus_per_proc: int | None = None,
    options: PlanOptions | None = None,
) -> tuple[BlockSparseTensor, NumericStats]:
    """Evaluate a binary contraction through the distributed plan.

    Parameters mirror :func:`repro.core.psgemm_numeric`; returns the
    result tensor and the execution statistics (tasks, traffic, peak GPU
    memory).
    """
    cplan = plan_contraction(spec, a, b)
    am = cplan.matricized_a()
    bm = cplan.matricized_b()
    cm, stats = psgemm_numeric(
        am, bm, machine, p=p, gpus_per_proc=gpus_per_proc, options=options
    )
    return cplan.result_from_matrix(cm), stats
