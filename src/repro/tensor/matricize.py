"""Matricization: fusing tensor modes into matrix rows/columns.

``matricize(T, "ij", "cd")`` turns the order-4 tensor ``T[i,j,c,d]`` into a
:class:`~repro.sparse.matrix.BlockSparseMatrix` whose rows are the fused
``ij`` range and columns the fused ``cd`` range — the exact transformation
Section 2 of the paper applies to map the ABCD contraction onto GEMM.  Tile
identities are preserved: tensor tile ``(ti, tj, tc, td)`` becomes matrix
tile ``(ti * nj + tj, tc * nd + td)`` with its data transposed to the
``(row modes..., col modes...)`` axis order and reshaped 2-D.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sparse.matrix import BlockSparseMatrix
from repro.tensor.tensor import BlockSparseTensor
from repro.tiling.tiling import Tiling
from repro.util.validation import require


def _fused_tiling(tilings: Sequence[Tiling]) -> Tiling:
    """Tiling of a fused mode group: sizes are the row-major outer product."""
    sizes = tilings[0].sizes
    for t in tilings[1:]:
        sizes = np.multiply.outer(sizes, t.sizes).reshape(-1)
    return Tiling.from_sizes(sizes)


def _ravel_key(key: Sequence[int], grid: Sequence[int]) -> int:
    """Row-major ravel of a tile-coordinate tuple."""
    out = 0
    for k, n in zip(key, grid):
        out = out * n + k
    return out


def _unravel_key(flat: int, grid: Sequence[int]) -> tuple[int, ...]:
    """Inverse of :func:`_ravel_key`."""
    out = []
    for n in reversed(grid):
        out.append(flat % n)
        flat //= n
    return tuple(reversed(out))


def matricize(tensor: BlockSparseTensor, row_modes: str, col_modes: str) -> BlockSparseMatrix:
    """Fuse ``row_modes`` into matrix rows and ``col_modes`` into columns.

    ``row_modes + col_modes`` must be a permutation of the tensor's modes.
    Tile data is permuted and reshaped; the result owns copies.
    """
    all_modes = row_modes + col_modes
    require(
        sorted(all_modes) == sorted(tensor.mode_names),
        f"modes {all_modes!r} are not a permutation of {''.join(tensor.mode_names)!r}",
    )
    row_axes = [tensor.mode_axis(m) for m in row_modes]
    col_axes = [tensor.mode_axis(m) for m in col_modes]
    row_tilings = [tensor.tilings[a] for a in row_axes]
    col_tilings = [tensor.tilings[a] for a in col_axes]
    rows = _fused_tiling(row_tilings)
    cols = _fused_tiling(col_tilings)
    row_grid = [t.ntiles for t in row_tilings]
    col_grid = [t.ntiles for t in col_tilings]

    out = BlockSparseMatrix(rows, cols)
    perm = row_axes + col_axes
    for key, tile in tensor.items():
        ri = _ravel_key([key[a] for a in row_axes], row_grid)
        cj = _ravel_key([key[a] for a in col_axes], col_grid)
        data = np.transpose(tile, perm)
        m = int(np.prod(data.shape[: len(row_axes)], dtype=np.int64))
        n = int(np.prod(data.shape[len(row_axes) :], dtype=np.int64))
        out.set_tile(ri, cj, data.reshape(m, n))
    return out


def unmatricize(
    matrix: BlockSparseMatrix,
    mode_names: str,
    tilings: Sequence[Tiling],
    row_modes: str,
    col_modes: str,
) -> BlockSparseTensor:
    """Inverse of :func:`matricize`: rebuild the tensor from a fused matrix.

    Parameters
    ----------
    matrix:
        A matrix whose rows/cols are the fusions of ``row_modes``/``col_modes``
        over ``tilings`` (given in ``mode_names`` order).
    mode_names, tilings:
        The target tensor's modes and their tilings.
    row_modes, col_modes:
        The fusion that produced ``matrix``.
    """
    require(
        sorted(row_modes + col_modes) == sorted(mode_names),
        "row/col modes are not a permutation of the tensor modes",
    )
    name_to_pos = {m: i for i, m in enumerate(mode_names)}
    row_tilings = [tilings[name_to_pos[m]] for m in row_modes]
    col_tilings = [tilings[name_to_pos[m]] for m in col_modes]
    require(
        matrix.rows == _fused_tiling(row_tilings) and matrix.cols == _fused_tiling(col_tilings),
        "matrix tilings do not match the fused mode tilings",
    )
    row_grid = [t.ntiles for t in row_tilings]
    col_grid = [t.ntiles for t in col_tilings]

    out = BlockSparseTensor(mode_names, tilings)
    # Position of each output mode within the (row_modes + col_modes) order.
    fused_order = row_modes + col_modes
    inv_perm = [fused_order.index(m) for m in mode_names]
    for (ri, cj), data in matrix.items():
        rkey = _unravel_key(ri, row_grid)
        ckey = _unravel_key(cj, col_grid)
        sizes = [t.tile_size(k) for t, k in zip(row_tilings, rkey)] + [
            t.tile_size(k) for t, k in zip(col_tilings, ckey)
        ]
        nd = data.reshape(sizes)
        key_by_fused = list(rkey) + list(ckey)
        key = tuple(key_by_fused[p] for p in inv_perm)
        out.set_tile(key, np.transpose(nd, inv_perm))
    return out
