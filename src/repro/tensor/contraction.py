"""Binary tensor contractions via matricized GEMM.

:func:`plan_contraction` parses an einsum-like spec (``"ijcd,cdab->ijab"``)
and determines the matricization of each operand; :func:`contract` executes
it numerically with the reference block GEMM.  The distributed planners in
:mod:`repro.core` consume the same :class:`ContractionSpec`, so the numeric
and simulated paths agree on the GEMM they run.

Supported contractions are the GEMM-shaped ones: every contracted mode
appears in both inputs and not in the output, every output mode comes from
exactly one input, and the output lists all A-side free modes before all
B-side free modes (in any internal order) — the form the ABCD term and all
CCSD terms reduce to after transposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sparse.gemm_ref import block_gemm_reference
from repro.sparse.matrix import BlockSparseMatrix
from repro.sparse.shape import SparseShape
from repro.tensor.matricize import matricize, unmatricize
from repro.tensor.tensor import BlockSparseTensor
from repro.util.validation import require


@dataclass(frozen=True)
class ContractionSpec:
    """A parsed binary contraction.

    Attributes
    ----------
    a_modes, b_modes, out_modes:
        Mode strings of the operands and result.
    a_free, b_free:
        Free (uncontracted) modes of each operand, in output order.
    contracted:
        Contracted modes, in the order they appear in ``a_modes``.
    """

    a_modes: str
    b_modes: str
    out_modes: str
    a_free: str
    b_free: str
    contracted: str

    @property
    def einsum(self) -> str:
        """The spec back in einsum syntax."""
        return f"{self.a_modes},{self.b_modes}->{self.out_modes}"


def parse_spec(spec: str) -> ContractionSpec:
    """Parse ``"ijcd,cdab->ijab"`` into a :class:`ContractionSpec`.

    Raises :class:`ValueError` for specs that are not GEMM-shaped (traces,
    Hadamard/batched modes, or interleaved output orders).
    """
    require("->" in spec and "," in spec, f"malformed contraction spec {spec!r}")
    inputs, out = spec.split("->")
    a_modes, b_modes = inputs.split(",")
    for name, modes in (("A", a_modes), ("B", b_modes), ("output", out)):
        require(len(set(modes)) == len(modes), f"repeated mode within {name}: {modes!r}")

    a_set, b_set, o_set = set(a_modes), set(b_modes), set(out)
    contracted = [m for m in a_modes if m in b_set]
    require(len(contracted) > 0, f"no contracted modes in {spec!r}")
    require(
        not (a_set & b_set & o_set),
        f"batched (Hadamard) modes not supported: {sorted(a_set & b_set & o_set)}",
    )
    require(o_set <= (a_set | b_set), f"output modes {o_set - a_set - b_set} come from nowhere")
    a_free = [m for m in out if m in a_set]
    b_free = [m for m in out if m in b_set]
    require(
        set(a_free) == a_set - b_set and set(b_free) == b_set - a_set,
        f"every free mode must appear in the output of {spec!r}",
    )
    require(
        out == "".join(a_free) + "".join(b_free),
        f"output must list all A-side free modes before B-side ones, got {out!r}",
    )
    return ContractionSpec(
        a_modes=a_modes,
        b_modes=b_modes,
        out_modes=out,
        a_free="".join(a_free),
        b_free="".join(b_free),
        contracted="".join(contracted),
    )


@dataclass(frozen=True)
class ContractionPlan:
    """Matricization recipe for a contraction over concrete tensors."""

    spec: ContractionSpec
    a: BlockSparseTensor
    b: BlockSparseTensor

    def matricized_a(self) -> BlockSparseMatrix:
        """A as (fused free) x (fused contracted)."""
        return matricize(self.a, self.spec.a_free, self.spec.contracted)

    def matricized_b(self) -> BlockSparseMatrix:
        """B as (fused contracted) x (fused free)."""
        return matricize(self.b, self.spec.contracted, self.spec.b_free)

    def result_from_matrix(self, c: BlockSparseMatrix) -> BlockSparseTensor:
        """Un-matricize the GEMM result back into the output tensor."""
        out_tilings = []
        for m in self.spec.out_modes:
            src = self.a if m in self.spec.a_modes else self.b
            out_tilings.append(src.tilings[src.mode_axis(m)])
        return unmatricize(
            c, self.spec.out_modes, out_tilings, self.spec.a_free, self.spec.b_free
        )

    def shapes(self) -> tuple[SparseShape, SparseShape]:
        """Occupancy shapes of the matricized operands (planning input)."""
        return (
            self.matricized_a().sparse_shape(),
            self.matricized_b().sparse_shape(),
        )


def plan_contraction(
    spec: str, a: BlockSparseTensor, b: BlockSparseTensor
) -> ContractionPlan:
    """Parse ``spec`` and validate it against the operand tensors."""
    parsed = parse_spec(spec)
    require(
        len(parsed.a_modes) == a.order, f"A order {a.order} != spec {parsed.a_modes!r}"
    )
    require(
        len(parsed.b_modes) == b.order, f"B order {b.order} != spec {parsed.b_modes!r}"
    )
    # Contracted tilings must agree between the two operands.
    for m in parsed.contracted:
        ta = a.tilings[parsed.a_modes.index(m)]
        tb = b.tilings[parsed.b_modes.index(m)]
        require(ta == tb, f"contracted mode {m!r} tiled differently in A and B")
    return ContractionPlan(spec=parsed, a=a, b=b)


def contract(
    spec: str, a: BlockSparseTensor, b: BlockSparseTensor
) -> BlockSparseTensor:
    """Numerically evaluate a binary contraction via matricized block GEMM."""
    plan = plan_contraction(spec, a, b)
    am = plan.matricized_a()
    bm = plan.matricized_b()
    cm = block_gemm_reference(am, bm)
    return plan.result_from_matrix(cm)
