"""Order-N block-sparse tensors.

A :class:`BlockSparseTensor` is the straightforward generalization of
:class:`~repro.sparse.matrix.BlockSparseMatrix` to N modes: one
:class:`~repro.tiling.Tiling` per mode and a dictionary of dense tiles keyed
by tile-coordinate tuples.  Only what the ABCD reproduction needs is
implemented — construction, dense round-trip, norms, and matricization
support — but with no arbitrary restriction to order 4.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence, Tuple

import numpy as np

from repro.tiling.tiling import Tiling
from repro.util.validation import require

TileKey = Tuple[int, ...]


class BlockSparseTensor:
    """An order-N block-sparse tensor with dense tiles.

    Parameters
    ----------
    mode_names:
        One label per mode, e.g. ``"ijcd"`` or a sequence of strings; labels
        must be unique (they are how contractions address modes).
    tilings:
        One :class:`Tiling` per mode.
    """

    __slots__ = ("mode_names", "tilings", "_tiles")

    def __init__(
        self,
        mode_names: Sequence[str],
        tilings: Sequence[Tiling],
        tiles: Dict[TileKey, np.ndarray] | None = None,
    ) -> None:
        names = list(mode_names)
        require(len(names) == len(tilings), "one tiling per mode required")
        require(len(set(names)) == len(names), f"duplicate mode names in {names}")
        require(len(names) >= 1, "tensor needs at least one mode")
        self.mode_names: tuple[str, ...] = tuple(names)
        self.tilings: tuple[Tiling, ...] = tuple(tilings)
        self._tiles: Dict[TileKey, np.ndarray] = {}
        if tiles:
            for key, data in tiles.items():
                self.set_tile(key, data)

    # -- geometry -----------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.tilings)

    @property
    def shape(self) -> tuple[int, ...]:
        """Element-level extents."""
        return tuple(t.extent for t in self.tilings)

    @property
    def tile_grid(self) -> tuple[int, ...]:
        """Tile counts per mode."""
        return tuple(t.ntiles for t in self.tilings)

    def tile_shape(self, key: TileKey) -> tuple[int, ...]:
        """Element shape of the tile at ``key``."""
        return tuple(t.tile_size(k) for t, k in zip(self.tilings, key))

    def mode_axis(self, name: str) -> int:
        """Axis position of mode ``name``."""
        try:
            return self.mode_names.index(name)
        except ValueError:
            raise KeyError(f"tensor has no mode {name!r}; modes are {self.mode_names}")

    # -- tiles ---------------------------------------------------------------

    @property
    def nnz_tiles(self) -> int:
        return len(self._tiles)

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self._tiles.values())

    def has_tile(self, key: TileKey) -> bool:
        return tuple(key) in self._tiles

    def get_tile(self, key: TileKey) -> np.ndarray:
        return self._tiles[tuple(key)]

    def set_tile(self, key: TileKey, data: np.ndarray) -> None:
        key = tuple(int(k) for k in key)
        require(len(key) == self.order, f"tile key {key} has wrong length")
        for t, k in zip(self.tilings, key):
            require(0 <= k < t.ntiles, f"tile key {key} out of the tile grid")
        expected = self.tile_shape(key)
        arr = np.ascontiguousarray(data, dtype=np.float64)
        require(arr.shape == expected, f"tile {key} shape {arr.shape} != {expected}")
        self._tiles[key] = arr

    def accumulate_tile(self, key: TileKey, data: np.ndarray) -> None:
        """``tile += data``, creating it if absent."""
        key = tuple(int(k) for k in key)
        cur = self._tiles.get(key)
        if cur is None:
            self.set_tile(key, data)
        else:
            cur += data

    def items(self) -> Iterator[tuple[TileKey, np.ndarray]]:
        return iter(self._tiles.items())

    def keys(self) -> Iterator[TileKey]:
        return iter(self._tiles.keys())

    # -- conversions -----------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialize the full dense array (small tensors only)."""
        out = np.zeros(self.shape)
        for key, tile in self._tiles.items():
            slices = tuple(t.tile_slice(k) for t, k in zip(self.tilings, key))
            out[slices] = tile
        return out

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        mode_names: Sequence[str],
        tilings: Sequence[Tiling],
        drop_tol: float | None = 0.0,
    ) -> "BlockSparseTensor":
        """Tile a dense array, omitting tiles with max-abs ``<= drop_tol``."""
        out = cls(mode_names, tilings)
        require(
            dense.shape == out.shape,
            f"dense shape {dense.shape} != tensor shape {out.shape}",
        )
        for key in np.ndindex(*out.tile_grid):
            slices = tuple(t.tile_slice(k) for t, k in zip(tilings, key))
            tile = dense[slices]
            if drop_tol is None or np.max(np.abs(tile), initial=0.0) > drop_tol:
                out.set_tile(key, tile)
        return out

    # -- algebra ----------------------------------------------------------------

    def copy(self) -> "BlockSparseTensor":
        out = BlockSparseTensor(self.mode_names, self.tilings)
        for key, tile in self._tiles.items():
            out._tiles[key] = tile.copy()
        return out

    def norm_fro(self) -> float:
        """Frobenius norm."""
        return float(np.sqrt(sum(float(np.vdot(t, t)) for t in self._tiles.values())))

    def allclose(self, other: "BlockSparseTensor", rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Numerical equality treating absent tiles as zero."""
        if self.tilings != other.tilings:
            return False
        for key in set(self._tiles) | set(other._tiles):
            a = self._tiles.get(key)
            b = other._tiles.get(key)
            if a is None:
                a = np.zeros_like(b)
            if b is None:
                b = np.zeros_like(a)
            if not np.allclose(a, b, rtol=rtol, atol=atol):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        modes = ",".join(self.mode_names)
        return (
            f"BlockSparseTensor([{modes}], shape={self.shape}, "
            f"grid={self.tile_grid}, nnz={self.nnz_tiles})"
        )
