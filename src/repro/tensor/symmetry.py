"""Permutational pair symmetry — the optimization the paper skips.

Footnote 1 of the paper: "The permutational symmetries of tensors T, V
and R, which are essential for proper physics as well as attaining the
optimal operation count, are neglected for simplicity."  This module
implements the leading such symmetry for the matricized ABCD term:

    T[(i,j),(c,d)] = T[(j,i),(d,c)],   V likewise  =>  R[(i,j),(a,b)] = R[(j,i),(b,a)]

so only the *canonical* row-pair tiles (``t1 <= t2``) of R need to be
computed; the rest follow by the pair transpose.  At tile granularity the
fold keeps the canonical ``n(n+1)/2`` of the ``n^2`` fused row tiles —
asymptotically halving rows, flops and A traffic — and
:func:`reconstruct_full` rebuilds the remaining tiles exactly.

All operations are exact (no approximation): tests verify that folding +
reconstruction reproduces the unfolded contraction to roundoff on
symmetric inputs.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.matrix import BlockSparseMatrix
from repro.sparse.shape import SparseShape
from repro.tiling.tiling import Tiling
from repro.util.validation import require


def canonical_pair_tiles(n: int) -> np.ndarray:
    """Fused ids ``t1 * n + t2`` with ``t1 <= t2``, ascending."""
    t1, t2 = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    mask = (t1 <= t2).ravel()
    return np.flatnonzero(mask)


def partner_pair(t: int | np.ndarray, n: int):
    """Fused id of the swapped pair: ``(t1, t2) -> (t2, t1)``."""
    return (np.asarray(t) % n) * n + (np.asarray(t) // n)


def pair_transpose_tile(
    data: np.ndarray,
    row_sizes: tuple[int, int],
    col_sizes: tuple[int, int],
) -> np.ndarray:
    """The tile of the swapped pairs: swap both constituent index pairs.

    A tile of fused rows ``(t1, t2)`` and fused columns ``(ta, tb)`` with
    element shape ``(s1*s2, sa*sb)`` becomes the tile of rows ``(t2, t1)``
    and columns ``(tb, ta)``: reshape to order-4, swap within each pair,
    reshape back.
    """
    s1, s2 = row_sizes
    sa, sb = col_sizes
    require(data.shape == (s1 * s2, sa * sb), "tile shape mismatch")
    nd = data.reshape(s1, s2, sa, sb)
    return np.ascontiguousarray(nd.transpose(1, 0, 3, 2).reshape(s2 * s1, sb * sa))


def symmetrize_pair_matrix(mat: BlockSparseMatrix, n_row: int, n_col: int) -> BlockSparseMatrix:
    """Project a pair-fused matrix onto its symmetric part.

    ``M <- (M + P M P) / 2`` where ``P`` is the pair swap on each side —
    produces test inputs with the physical symmetry exactly.
    """
    row_sizes = _constituent_sizes(mat.rows, n_row)
    col_sizes = _constituent_sizes(mat.cols, n_col)
    out = BlockSparseMatrix(mat.rows, mat.cols)
    for (r, c), tile in mat.items():
        pr = int(partner_pair(r, n_row))
        pc = int(partner_pair(c, n_col))
        partner = mat.tile_or_zeros(pr, pc)
        swapped = pair_transpose_tile(partner, row_sizes[pr], col_sizes[pc])
        out.set_tile(r, c, 0.5 * (tile + swapped))
    # Tiles present only at the partner position contribute their half too.
    for (r, c), tile in mat.items():
        pr = int(partner_pair(r, n_row))
        pc = int(partner_pair(c, n_col))
        if not out.has_tile(pr, pc):
            out.set_tile(
                pr, pc, pair_transpose_tile(out.get_tile(r, c), row_sizes[r], col_sizes[c])
            )
    return out


def _constituent_sizes(fused: Tiling, n: int) -> list[tuple[int, int]]:
    """Per fused tile, the (s1, s2) constituent sizes.

    The fused tiling must be the row-major pair fusion of an ``n``-tile
    base tiling; sizes are recovered from the diagonal tiles.
    """
    require(fused.ntiles == n * n, "tiling is not an n x n pair fusion")
    sizes = fused.sizes
    base = np.sqrt(sizes[np.arange(n) * n + np.arange(n)]).astype(np.int64)
    require(bool(np.all(base * base == sizes[np.arange(n) * n + np.arange(n)])),
            "diagonal fused tiles are not perfect squares")
    out = []
    for t in range(n * n):
        t1, t2 = t // n, t % n
        out.append((int(base[t1]), int(base[t2])))
    # Validate the factorization.
    expect = np.array([a * b for a, b in out])
    require(bool(np.all(expect == sizes)), "fused sizes inconsistent with base tiling")
    return out


def fold_rows(shape: SparseShape, n: int) -> tuple[SparseShape, np.ndarray]:
    """Restrict a pair-fused-row shape to its canonical row tiles.

    Returns the folded shape (rows re-packed) and the kept fused ids.
    """
    keep = canonical_pair_tiles(n)
    return shape.restrict_rows(keep), keep


def folded_flop_ratio(n: int) -> float:
    """Fraction of row tiles kept: ``(n+1) / (2n)`` — tends to 1/2."""
    return (n * (n + 1) / 2) / (n * n)


def reconstruct_full(
    c_folded: BlockSparseMatrix,
    kept_rows: np.ndarray,
    full_rows: Tiling,
    n_row: int,
    n_col: int,
) -> BlockSparseMatrix:
    """Rebuild the full pair-symmetric result from its canonical rows.

    ``c_folded`` holds the canonical row tiles (in ``kept_rows`` order)
    against the full column tiling; the non-canonical rows are the pair
    transposes: ``C[(t2,t1), (tb,ta)] = Pt(C[(t1,t2), (ta,tb)])``.
    """
    require(c_folded.rows.ntiles == kept_rows.size, "folded rows mismatch")
    col_sizes = _constituent_sizes(c_folded.cols, n_col)
    row_sizes = _constituent_sizes(full_rows, n_row)

    out = BlockSparseMatrix(full_rows, c_folded.cols)
    for (rf, c), tile in c_folded.items():
        r = int(kept_rows[rf])
        out.set_tile(r, c, tile)
        pr = int(partner_pair(r, n_row))
        if pr == r:
            continue
        pc = int(partner_pair(c, n_col))
        out.set_tile(pr, pc, pair_transpose_tile(tile, row_sizes[r], col_sizes[c]))
    return out
