"""Units and human-readable formatting.

The performance models traffic exclusively in SI base units (bytes, seconds,
flops).  These constants and formatters are the only place where scaling
prefixes appear, so a "GB/s vs GiB/s" confusion cannot creep into the models.
"""

from __future__ import annotations

# Binary byte units (memory capacities).
KIB = 1024
MIB = 1024**2
GIB = 1024**3

# Decimal units (rates, flop counts) — matches vendor GB/s and Tflop/s usage.
KILO = 10**3
MEGA = 10**6
GIGA = 10**9
TERA = 10**12
PETA = 10**15


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary prefix, e.g. ``1.50 GiB``."""
    n = float(n)
    for unit, div in (("TiB", GIB * 1024), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_count(n: float) -> str:
    """Format a plain count with a decimal prefix, e.g. ``1.90 M``."""
    n = float(n)
    for unit, div in (("G", GIGA), ("M", MEGA), ("k", KILO)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f}"


def fmt_flops(n: float) -> str:
    """Format a flop count, e.g. ``1.24 Pflop``."""
    n = float(n)
    for unit, div in (("Eflop", 10**18), ("Pflop", PETA), ("Tflop", TERA), ("Gflop", GIGA), ("Mflop", MEGA)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} flop"


def fmt_rate(flops_per_s: float) -> str:
    """Format a throughput, e.g. ``203.1 Tflop/s``."""
    n = float(flops_per_s)
    for unit, div in (("Pflop/s", PETA), ("Tflop/s", TERA), ("Gflop/s", GIGA), ("Mflop/s", MEGA)):
        if abs(n) >= div:
            return f"{n / div:.1f} {unit}"
    return f"{n:.0f} flop/s"


def fmt_time(seconds: float) -> str:
    """Format a duration, e.g. ``34.9 s`` or ``1.2 ms``."""
    s = float(seconds)
    if s >= 3600:
        return f"{s / 3600:.2f} h"
    if s >= 60:
        return f"{s / 60:.2f} min"
    if s >= 1:
        return f"{s:.3g} s"
    if s >= 1e-3:
        return f"{s * 1e3:.3g} ms"
    return f"{s * 1e6:.3g} us"
