"""Small shared utilities: RNG handling, units, validation, logging.

These helpers keep the numerical packages free of boilerplate.  Everything
here is dependency-light (NumPy only) and deterministic when seeded.
"""

from repro.util.rng import resolve_rng, spawn_rng
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    KILO,
    MEGA,
    GIGA,
    TERA,
    PETA,
    fmt_bytes,
    fmt_count,
    fmt_flops,
    fmt_rate,
    fmt_time,
)
from repro.util.validation import (
    require,
    require_in,
    require_nonnegative,
    require_positive,
)

__all__ = [
    "resolve_rng",
    "spawn_rng",
    "KIB",
    "MIB",
    "GIB",
    "KILO",
    "MEGA",
    "GIGA",
    "TERA",
    "PETA",
    "fmt_bytes",
    "fmt_count",
    "fmt_flops",
    "fmt_rate",
    "fmt_time",
    "require",
    "require_in",
    "require_nonnegative",
    "require_positive",
]
