"""Argument-validation helpers with informative error messages."""

from __future__ import annotations

from typing import Any, Collection


def require(cond: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``cond`` holds."""
    if not cond:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Raise unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_nonnegative(value: float, name: str) -> None:
    """Raise unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_in(value: Any, allowed: Collection[Any], name: str) -> None:
    """Raise unless ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(map(repr, allowed))}, got {value!r}")
