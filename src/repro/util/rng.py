"""Deterministic random-number-generator plumbing.

All stochastic code in :mod:`repro` accepts a ``seed`` argument that may be
``None``, an integer, or an existing :class:`numpy.random.Generator`.  Using
:func:`resolve_rng` at every entry point makes whole experiments exactly
reproducible from a single integer while still letting callers share one
generator across stages.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator"


def resolve_rng(seed: int | None | np.random.Generator = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a fresh seeded
        generator, or an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, key: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and an integer key.

    Children with distinct keys are statistically independent streams; the
    same ``(rng state, key)`` pair always yields the same child.  This is how
    per-matrix / per-tile generation stays reproducible regardless of the
    order in which tiles are instantiated (the paper generates B tiles *on
    demand*, so instantiation order is schedule-dependent).
    """
    seed = int(rng.integers(0, 2**63 - 1)) if key is None else None
    if seed is not None:  # pragma: no cover - defensive, key is never None
        return np.random.default_rng(seed)
    # Mix the key into fresh entropy drawn deterministically from the parent
    # state *without* advancing the parent (so sibling spawns commute).
    ss = np.random.SeedSequence(entropy=_state_entropy(rng), spawn_key=(key,))
    return np.random.default_rng(ss)


def _state_entropy(rng: np.random.Generator) -> int:
    """A stable integer fingerprint of ``rng``'s current state.

    Works across bit generators by folding whatever the state dict holds
    (nested dicts for PCG64, ``uint`` arrays for MT19937/SFC64, plain
    integers elsewhere) into one big integer.
    """

    def fold(value) -> int:
        if isinstance(value, dict):
            out = 0
            for k in sorted(value):
                out = (out * 1_000_003) ^ fold(value[k])
            return out
        if isinstance(value, np.ndarray):
            return int.from_bytes(value.tobytes()[:64], "little")
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, str):
            return int.from_bytes(value.encode()[:16], "little")
        return 0

    state = rng.bit_generator.state
    return fold(state.get("state", 0)) & (2**128 - 1)
