"""GPU GEMM kernel and CPU tile-generation time models.

The kernel model is the single most important calibration in the
reproduction: every figure's Tflop/s derives from it.  Its form is

    time(m, n, k) = launch + 2*m*n*k / (peak * eff(m, n, k))
    eff(m, n, k)  = m/(m+h) * n/(n+h) * k/(k+h)

which encodes the two facts the paper reports: (i) a practical peak of
7.2 Tflop/s for large resident tiles, and (ii) peak is effectively reached
at ~728^3 tiles while tiny DBCSR-style blocks run far below it.  The
*separable* efficiency is deliberate: the per-task "device seconds"
``flops / (peak * eff) = (2/peak) * (m+h)(n+h)(k+h)`` factorizes over the
three tile dimensions, so the coarse model in :mod:`repro.core.analytic`
can sum it over millions of tasks with the same shifted-size sparse
products it uses for flop counts.
"""

from __future__ import annotations

import numpy as np

from repro.machine.spec import GpuSpec, NodeSpec


class GemmKernelModel:
    """Execution-time model of dense tile GEMMs on one GPU."""

    def __init__(self, gpu: GpuSpec):
        self.gpu = gpu

    def efficiency(self, m, n, k):
        """Fraction of :attr:`GpuSpec.gemm_peak` attained (vectorized)."""
        h = self.gpu.eff_half_dim
        m = np.asarray(m, dtype=np.float64)
        n = np.asarray(n, dtype=np.float64)
        k = np.asarray(k, dtype=np.float64)
        return (m / (m + h)) * (n / (n + h)) * (k / (k + h))

    def device_seconds(self, m, n, k):
        """Pure compute time excluding launch overhead (vectorized).

        Equal to ``(2/peak) * (m+h)(n+h)(k+h)`` — see the module docstring.
        """
        h = self.gpu.eff_half_dim
        m = np.asarray(m, dtype=np.float64)
        n = np.asarray(n, dtype=np.float64)
        k = np.asarray(k, dtype=np.float64)
        return (2.0 / self.gpu.gemm_peak) * (m + h) * (n + h) * (k + h)

    def time(self, m, n, k):
        """Total kernel time including launch overhead (vectorized)."""
        return self.gpu.kernel_launch_s + self.device_seconds(m, n, k)

    def throughput(self, m, n, k):
        """Attained flop/s of one ``m x n x k`` kernel (vectorized)."""
        flops = 2.0 * np.asarray(m, dtype=np.float64) * np.asarray(n) * np.asarray(k)
        return flops / self.time(m, n, k)


class GenerationModel:
    """CPU-side on-demand B-tile generation cost.

    The paper's B tiles are synthesized on the host cores ("the generation
    routine does not have a CUDA implementation, these tasks are always
    executed on the CPUs") and each tile is instantiated at most once per
    node.  Generation throughput is modelled as memory-bandwidth-bound work
    spread over the node's cores.
    """

    def __init__(self, node: NodeSpec):
        self.node = node

    def time(self, nbytes: float) -> float:
        """Seconds the node's cores need to generate ``nbytes`` of tiles."""
        return float(nbytes) / self.node.gen_bandwidth

    def tile_time(self, nbytes) -> np.ndarray:
        """Per-tile generation time on a single core (vectorized) — used by
        the discrete-event engine where generation tasks are individually
        scheduled on the core pool."""
        return np.asarray(nbytes, dtype=np.float64) / self.node.gen_bandwidth_per_core
