"""CPU-only execution yardstick (the MPQC comparison of Section 5.2).

The paper measures the CPU-only MPQC evaluation of the ABCD term at
{308, 158} s on {8, 16} Summit nodes and estimates its efficiency at ~17 %
of a 2 Tflop/s per-node CPU peak.  :class:`CpuModel` encodes exactly that
throughput model so the comparison benchmark can report the same ~10x
GPU speedup on equal node counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive


@dataclass(frozen=True)
class CpuModel:
    """A CPU-only distributed run at fixed fraction of peak.

    Attributes
    ----------
    peak_per_node:
        Nominal CPU flop/s per node (paper assumes 2 Tflop/s).
    efficiency:
        Attained fraction of peak (paper estimates ~17 % for MPQC's ABCD
        term on POWER9 — its heuristics are tuned for x86).
    parallel_efficiency_decay:
        Per-doubling strong-scaling loss; the paper's two data points
        (308 s @ 8 nodes -> 158 s @ 16 nodes, i.e. 97 % step efficiency)
        pin this near 1.
    """

    peak_per_node: float = 2.0e12
    efficiency: float = 0.17
    parallel_efficiency_decay: float = 0.97

    def __post_init__(self) -> None:
        require_positive(self.peak_per_node, "peak_per_node")
        require_positive(self.efficiency, "efficiency")

    def throughput(self, nnodes: int) -> float:
        """Aggregate attained flop/s on ``nnodes`` nodes."""
        require_positive(nnodes, "nnodes")
        import math

        doublings = math.log2(nnodes) if nnodes > 1 else 0.0
        return (
            nnodes
            * self.peak_per_node
            * self.efficiency
            * (self.parallel_efficiency_decay**doublings)
        )

    def time(self, flops: float, nnodes: int) -> float:
        """Seconds to execute ``flops`` on ``nnodes`` nodes."""
        return float(flops) / self.throughput(nnodes)


#: The model calibrated to the paper's measurement (Section 5.2).
MPQC_CPU = CpuModel()
