"""Intra-node transfer links (host<->device, device<->device)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive


@dataclass(frozen=True)
class LinkModel:
    """An alpha-beta link: ``time = latency * nmessages + bytes / bandwidth``.

    ``latency`` covers per-transfer setup (cudaMemcpy enqueue, pinning);
    tile-granular transfers pay it per tile, which is why the paper fights
    to keep tiles from being re-transferred.
    """

    bandwidth: float
    latency: float = 4.0e-6

    def __post_init__(self) -> None:
        require_positive(self.bandwidth, "bandwidth")

    def time(self, nbytes: float, nmessages: int = 1) -> float:
        """Transfer time of ``nbytes`` split over ``nmessages`` messages."""
        if nbytes <= 0 and nmessages <= 0:
            return 0.0
        return self.latency * max(1, int(nmessages)) + float(nbytes) / self.bandwidth


def effective_stream_bandwidth(
    per_stream: float, aggregate: float, nstreams: int
) -> float:
    """Per-stream bandwidth when ``nstreams`` share an aggregate cap.

    Each GPU's NVLink bricks give it ``per_stream`` to the host, but all
    GPUs together cannot exceed the host-side aggregate (memory bandwidth
    shared with tile generation).  With 6 V100s at 45 GB/s against an
    80 GB/s aggregate, concurrent streaming runs at ~13 GB/s per GPU —
    the contention behind the paper's "GPU I/O dominates" observation.
    """
    require_positive(nstreams, "nstreams")
    return min(per_stream, aggregate / nstreams)
