"""Machine specifications (Summit defaults).

All bandwidths are bytes/second (decimal GB/s as vendors quote them);
memory capacities are bytes (binary GiB).  The default constants reflect
the paper's platform description (Section 5) and standard published Summit
characteristics; *effective* values are deliberately below nominal peaks to
account for protocol overheads and contention, and are the calibration
knobs recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.units import GIB
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class GpuSpec:
    """One NVIDIA V100 as the paper measured it.

    Attributes
    ----------
    memory_bytes:
        Device memory (16 GiB on Summit's V100s).
    gemm_peak:
        Practical DGEMM peak: 7.2 Tflop/s measured by the authors with
        cuBLAS on large resident matrices.
    kernel_launch_s:
        Per-kernel fixed overhead (launch + cuBLAS dispatch).
    eff_half_dim:
        Per-axis efficiency parameter ``h``: a GEMM of shape ``m x n x k``
        runs at ``peak * m/(m+h) * n/(n+h) * k/(k+h)``.  ``h = 128``
        matches measured V100 cuBLAS DGEMM behaviour: ~50 % of peak at
        512^3, ~65 % at 768^3, ~85 % at 2048^3 — the effect behind the
        paper's Fig. 8 gap between fine (v1) and coarse (v3) tilings.
    h2d_bandwidth:
        Host->device bandwidth of the GPU's dedicated dual-NVLink bricks
        (50 GB/s nominal; 45 GB/s effective).
    d2d_bandwidth:
        Device->device NVLink bandwidth within a socket group.
    """

    memory_bytes: int = 16 * GIB
    gemm_peak: float = 7.2e12
    kernel_launch_s: float = 7.0e-6
    eff_half_dim: float = 128.0
    h2d_bandwidth: float = 45.0e9
    d2d_bandwidth: float = 45.0e9

    def __post_init__(self) -> None:
        require_positive(self.memory_bytes, "memory_bytes")
        require_positive(self.gemm_peak, "gemm_peak")
        require_positive(self.eff_half_dim, "eff_half_dim")


@dataclass(frozen=True)
class NodeSpec:
    """One Summit node (IBM AC922).

    Attributes
    ----------
    ngpus:
        GPUs per node (6).
    cores:
        Cores available to the application (42 of 44).
    host_memory_bytes:
        Node DRAM (512 GiB).
    host_link_aggregate:
        Effective aggregate host<->device streaming bandwidth when all
        GPUs pull concurrently — bounded by host memory bandwidth shared
        with the CPU-side tile generation, not by the NVLink bricks.
        This is the dominant calibration knob: the paper's block-sparse
        runs are GPU-I/O bound ("GPU I/O dominates the execution time").
    gen_bandwidth_per_core:
        Bytes/s of B-tile generation per core (on-demand tile synthesis
        is memory-bandwidth-ish work on the POWER9).
    h2d_latency_s:
        Fixed per-tile host->device transfer overhead: cudaMemcpyAsync
        setup plus the runtime's per-tile data-management work (PaRSEC
        tracks each tile's life-cycle individually).  At fine tilings the
        plan moves millions of tiles, so this term — not bandwidth — is
        what separates the paper's v1 from v3 timings.
    """

    ngpus: int = 6
    cores: int = 42
    host_memory_bytes: int = 512 * GIB
    host_link_aggregate: float = 80.0e9
    gen_bandwidth_per_core: float = 0.40e9
    h2d_latency_s: float = 120.0e-6

    def __post_init__(self) -> None:
        require_positive(self.ngpus, "ngpus")
        require_positive(self.cores, "cores")

    @property
    def gen_bandwidth(self) -> float:
        """Aggregate CPU tile-generation bandwidth of the node."""
        return self.cores * self.gen_bandwidth_per_core


@dataclass(frozen=True)
class MachineSpec:
    """A distributed machine: ``nnodes`` identical multi-GPU nodes.

    Attributes
    ----------
    net_bandwidth:
        Effective per-node injection bandwidth (Summit: dual-rail EDR,
        25 GB/s nominal, ~21 GB/s effective for large messages).
    net_latency:
        Wire latency of one message.
    net_message_overhead:
        Per-*tile* software cost of the runtime's background broadcasts
        (PaRSEC activation, rendezvous, completion tracking).  Fine
        tilings move orders of magnitude more tiles, which is one of the
        scaling limits the paper observes for tiling v1.
    inspection_rate:
        Inspector throughput in tiles/second — the O(N^t log N^t + nnzB)
        phase of Section 3.2.4, charged once at startup.
    """

    name: str = "summit"
    nnodes: int = 1
    node: NodeSpec = field(default_factory=NodeSpec)
    gpu: GpuSpec = field(default_factory=GpuSpec)
    net_bandwidth: float = 21.0e9
    net_latency: float = 1.5e-6
    net_message_overhead: float = 40.0e-6
    inspection_rate: float = 25.0e6

    def __post_init__(self) -> None:
        require_positive(self.nnodes, "nnodes")

    @property
    def total_gpus(self) -> int:
        return self.nnodes * self.node.ngpus

    @property
    def aggregate_gemm_peak(self) -> float:
        """The paper's yardstick: ``#GPUs x 7.2 Tflop/s``."""
        return self.total_gpus * self.gpu.gemm_peak

    def with_nodes(self, nnodes: int) -> "MachineSpec":
        """The same machine scaled to ``nnodes`` nodes."""
        return replace(self, nnodes=nnodes)


SUMMIT_GPU = GpuSpec()
SUMMIT_NODE = NodeSpec()

#: A Frontier-like exascale node, as the paper's introduction anticipates
#: ("the forthcoming Frontier exascale system is announced with four AMD
#: Radeon GPUs per node").  Constants are public MI250X figures: ~45
#: Tflop/s FP64 (dual-GCD) of which ~24 attainable in DGEMM per package,
#: 128 GB HBM per package, Slingshot-11 at 4 x 25 GB/s per node.
FRONTIER_GPU = GpuSpec(
    memory_bytes=128 * GIB,
    gemm_peak=24.0e12,
    kernel_launch_s=6.0e-6,
    eff_half_dim=192.0,  # wider tiles needed to saturate the MI250X
    h2d_bandwidth=64.0e9,
    d2d_bandwidth=50.0e9,
)
FRONTIER_NODE = NodeSpec(
    ngpus=4,
    cores=56,
    host_memory_bytes=512 * GIB,
    host_link_aggregate=144.0e9,
    gen_bandwidth_per_core=0.45e9,
    h2d_latency_s=100.0e-6,
)


def frontier(nnodes: int = 16) -> MachineSpec:
    """A Frontier-like partition (the paper's exascale outlook).

    Four big-memory GPUs per node and ~3x Summit's per-node DGEMM rate;
    used by the cross-machine projection benchmark to ask how the paper's
    algorithm behaves when compute grows faster than bandwidth.
    """
    return MachineSpec(
        name="frontier",
        nnodes=nnodes,
        node=FRONTIER_NODE,
        gpu=FRONTIER_GPU,
        net_bandwidth=90.0e9,
        net_latency=1.5e-6,
        net_message_overhead=30.0e-6,
    )


def summit(nnodes: int = 16, gpus_per_node: int | None = None) -> MachineSpec:
    """A Summit partition with ``nnodes`` nodes.

    ``gpus_per_node`` (default 6) supports the paper's partial-node scaling
    points: the 3-GPU run of Fig. 7 is ``summit(1, gpus_per_node=3)``.
    The host-link aggregate scales with the GPU count so that a half-node
    keeps the per-GPU share of host bandwidth it would have on Summit
    (resource-set behaviour of ``jsrun``).
    """
    node = SUMMIT_NODE
    if gpus_per_node is not None:
        require(1 <= gpus_per_node <= 6, "gpus_per_node must be in [1, 6]")
        scale = gpus_per_node / node.ngpus
        node = replace(
            node,
            ngpus=gpus_per_node,
            cores=max(1, int(node.cores * scale)),
            host_link_aggregate=node.host_link_aggregate * scale,
        )
    return MachineSpec(name="summit", nnodes=nnodes, node=node, gpu=SUMMIT_GPU)
