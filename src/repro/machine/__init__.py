"""Hardware models: Summit nodes, V100 GEMM kernels, links, network, CPUs.

The paper's numbers come from Summit (IBM AC922: 2 POWER9 + 6 V100 per
node, dual NVLink 2.0 bricks at 25 GB/s each direction, dual-rail EDR
InfiniBand).  Because this reproduction runs without GPUs or MPI, every
hardware component is replaced by a calibrated analytic model:

* :class:`~repro.machine.kernels.GemmKernelModel` — time of a single
  ``m x n x k`` GEMM on one V100, with a separable efficiency curve
  ``eff = prod_d d/(d + h)`` anchored to the paper's measured 7.2 Tflop/s
  practical peak (the separable form lets the coarse performance model
  aggregate millions of tasks with sparse linear algebra, see
  :mod:`repro.core.analytic`);
* :class:`~repro.machine.links.LinkModel` — host<->device and
  device<->device transfers with per-stream and aggregate caps;
* :class:`~repro.machine.network.NetworkModel` — alpha-beta internode
  model with pipelined-broadcast and injection-bound exchange estimates;
* :class:`~repro.machine.cpu.CpuModel` — the CPU-only MPQC yardstick.

All constants live in :mod:`repro.machine.spec` dataclasses so ablation
benchmarks can vary them.
"""

from repro.machine.spec import (
    FRONTIER_GPU,
    FRONTIER_NODE,
    SUMMIT_GPU,
    SUMMIT_NODE,
    GpuSpec,
    MachineSpec,
    NodeSpec,
    frontier,
    summit,
)
from repro.machine.kernels import GemmKernelModel, GenerationModel
from repro.machine.links import LinkModel, effective_stream_bandwidth
from repro.machine.network import NetworkModel
from repro.machine.cpu import CpuModel, MPQC_CPU

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "MachineSpec",
    "SUMMIT_GPU",
    "SUMMIT_NODE",
    "summit",
    "FRONTIER_GPU",
    "FRONTIER_NODE",
    "frontier",
    "GemmKernelModel",
    "GenerationModel",
    "LinkModel",
    "effective_stream_bandwidth",
    "NetworkModel",
    "CpuModel",
    "MPQC_CPU",
]
