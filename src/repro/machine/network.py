"""Inter-node network model (alpha-beta with collective estimates)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import require_nonnegative, require_positive


@dataclass(frozen=True)
class NetworkModel:
    """Per-node injection-bandwidth network with alpha-beta point-to-point.

    Summit's fat tree is, at the scales used in the paper (<= 18 nodes),
    non-blocking: the binding constraint is each node's injection
    bandwidth, so collective estimates below are bandwidth-formulas plus a
    logarithmic latency term.
    """

    bandwidth: float
    latency: float = 1.5e-6

    def __post_init__(self) -> None:
        require_positive(self.bandwidth, "bandwidth")
        require_nonnegative(self.latency, "latency")

    def ptp_time(self, nbytes: float) -> float:
        """One point-to-point message."""
        if nbytes <= 0:
            return 0.0
        return self.latency + float(nbytes) / self.bandwidth

    def broadcast_time(self, nbytes: float, npeers: int) -> float:
        """Pipelined broadcast of ``nbytes`` to ``npeers`` receivers.

        Bandwidth-bound for large payloads (independent of ``npeers`` up to
        the log-latency term), which matches PaRSEC's background tile
        broadcasts along grid rows.
        """
        if npeers <= 0 or nbytes <= 0:
            return 0.0
        depth = max(1, math.ceil(math.log2(npeers + 1)))
        return self.latency * depth + float(nbytes) / self.bandwidth

    def exchange_time(self, send_bytes: float, recv_bytes: float, nmessages: int = 1) -> float:
        """Injection-bound time for a node that sends and receives in bulk.

        Links are full duplex, so the cost is the max of the two volumes.
        """
        vol = max(float(send_bytes), float(recv_bytes))
        if vol <= 0:
            return 0.0
        return self.latency * max(1, nmessages) + vol / self.bandwidth

    def reduction_time(self, nbytes: float, npeers: int) -> float:
        """Pipelined reduction of ``nbytes`` contributions from ``npeers``."""
        # Same asymptotics as broadcast on a full-duplex non-blocking fabric.
        return self.broadcast_time(nbytes, npeers)
