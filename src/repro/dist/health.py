"""Live run health: heartbeats, stall/straggler detection, event log.

The post-mortem observability layer (:mod:`repro.runtime.tracing`) tells
you what happened *after* a run finishes; this module is the live layer —
what the coordinator knows *while* workers run, and the only signal that
can save a multi-hour allocation from a hung rank.

Three pieces:

* :class:`HeartbeatMsg` — the wire format workers emit on the comm
  layer's telemetry channel every ``heartbeat_interval`` seconds: a
  monotone sequence number, the rank's task progress, and a cumulative
  :class:`~repro.runtime.metrics.MetricsSnapshot`.  Cumulative (not
  incremental) on purpose: a lost heartbeat costs freshness, never data.
* :class:`RunHealth` — the coordinator's aggregate: per-rank
  :class:`RankHealth` state machines fed by heartbeats and supervision
  events.  Two detectors run on it:

  - **stall** — a rank whose last signal (scatter or heartbeat) is older
    than ``stall_after_beats * heartbeat_interval`` is declared stalled.
    The coordinator feeds that flag into the *same* fault-recovery path a
    crashed worker takes (retry once, then reassign), so a hung worker's
    columns are re-executed, not waited on.  Before a rank's first beat
    of an attempt the window is widened by a startup grace (process
    spawn + interpreter import can dwarf the heartbeat interval).
  - **straggler** — a rank whose task-progress rate falls below
    ``straggler_fraction`` of the median rate across beating ranks is
    flagged (surfaced in the health table and the event log; unlike a
    stall it triggers no recovery — slow is not dead — but with
    ``rebalance=True`` the coordinator asks a flagged rank to relinquish
    its unstarted blocks).  The rate is *windowed* (the last
    ``rate_window_beats`` heartbeats), so a rank that was fast and then
    hit a wall decays to the threshold within a window, not over its
    whole uptime; finished ranks anchor the median at their final rate,
    so detection keeps working after the fast ranks complete.

* :class:`EventLog` — a structured JSONL stream (``run-events.jsonl``)
  of the run's life-cycle: ``plan_accepted``, ``worker_up``,
  ``heartbeat``, ``stall``, ``straggler``, ``retry``, ``reassign``,
  ``rank_done``, ``done``.  One writer (the coordinator), append-only,
  one JSON object per line — the attach point for ``repro monitor`` and
  the artifact CI uploads when a distributed test fails.

Clock policy: detection runs purely on ``time.monotonic()`` deltas; the
single wall-clock stamp per event exists only to label log lines for
humans (same policy as ``DistReport.started_at``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from statistics import median

from repro.runtime.metrics import MetricsSnapshot

#: Extra seconds granted before a rank's *first* heartbeat of an attempt
#: counts as missing (process spawn + import can dwarf the interval).
STARTUP_GRACE_SECONDS = 5.0


@dataclass(frozen=True)
class HeartbeatMsg:
    """One worker heartbeat (the telemetry channel's wire format).

    Attributes
    ----------
    rank:
        The emitting worker rank.
    attempt:
        The rank's 0-based attempt number (heartbeats from a stale
        attempt are discarded by the coordinator).
    seq:
        Monotone per-attempt sequence number (0 = the "worker up" beat,
        sent as soon as the scatter is received).
    tasks_done:
        GEMM tasks the rank has executed so far (cumulative).
    metrics:
        Cumulative registry snapshot (``None`` when metrics are off).
    uptime:
        Seconds since the worker's monotonic origin — labeling only.
    """

    rank: int
    attempt: int
    seq: int
    tasks_done: int
    metrics: MetricsSnapshot | None = None
    uptime: float = 0.0


@dataclass
class RankHealth:
    """One rank's live state as the coordinator sees it.

    ``last_signal``/``first_beat`` are coordinator-monotonic instants;
    ``state`` walks ``scattered -> up -> running -> done`` with
    ``stalled``/``straggler``/``retried``/``reassigned``/``failed``
    excursions.
    """

    rank: int
    tasks_total: int = 0
    state: str = "scattered"
    attempt: int = 0
    beats: int = 0
    seq: int = -1
    tasks_done: int = 0
    last_signal: float = 0.0
    first_beat: float | None = None
    stalls: int = 0
    #: Sliding window of ``(instant, tasks_done)`` heartbeat samples; the
    #: oldest retained sample is the baseline of :meth:`rate`.
    rate_window: int = 8
    samples: list = field(default_factory=list)

    @property
    def progress(self) -> float:
        """Fraction of the rank's planned tasks executed (0..1)."""
        if self.tasks_total <= 0:
            return 1.0 if self.state == "done" else 0.0
        return min(1.0, self.tasks_done / self.tasks_total)

    def rate(self, now: float) -> float:
        """Tasks per second over the last ``rate_window`` heartbeats.

        Baseline is the oldest sample still in the window (the first
        beat, until ``rate_window`` beats have arrived), so a rank that
        was fast and then hung decays toward zero within one window
        instead of coasting on its lifetime average.
        """
        if self.first_beat is None or not self.samples:
            return 0.0
        t0, tasks0 = self.samples[0]
        elapsed = now - t0
        if elapsed <= 0.0:
            return 0.0
        return (self.tasks_done - tasks0) / elapsed


class RunHealth:
    """Aggregated live health of one distributed run.

    Fed by the coordinator's supervise loop; queried by the stall and
    straggler detectors and rendered by :meth:`table` (the ``repro
    monitor`` view).  Picklable — it rides inside :class:`DistReport` so
    post-mortem consumers see the final health picture too.
    """

    def __init__(self, heartbeat_interval: float = 0.0,
                 stall_after_beats: int = 8,
                 straggler_fraction: float = 0.25,
                 rate_window_beats: int = 8):
        self.heartbeat_interval = heartbeat_interval
        self.stall_after_beats = stall_after_beats
        self.straggler_fraction = straggler_fraction
        self.rate_window_beats = max(2, rate_window_beats)
        self.ranks: dict[int, RankHealth] = {}
        self.heartbeats = 0

    @property
    def enabled(self) -> bool:
        return self.heartbeat_interval > 0.0

    def on_scatter(self, rank: int, tasks_total: int, attempt: int,
                   now: float) -> None:
        """A (re)scatter resets the rank's attempt-local signal state."""
        self.ranks[rank] = RankHealth(
            rank=rank,
            tasks_total=tasks_total,
            attempt=attempt,
            last_signal=now,
            stalls=self.ranks[rank].stalls if rank in self.ranks else 0,
            rate_window=self.rate_window_beats,
        )

    def on_heartbeat(self, hb: HeartbeatMsg, now: float) -> bool:
        """Fold one heartbeat in; returns False for stale or late beats."""
        rh = self.ranks.get(hb.rank)
        if rh is None or hb.attempt != rh.attempt:
            return False  # late beat from a terminated attempt
        if rh.state in ("done", "reassigned", "failed"):
            return False  # beat raced against the rank's final report
        rh.beats += 1
        rh.seq = max(rh.seq, hb.seq)
        rh.tasks_done = max(rh.tasks_done, hb.tasks_done)
        rh.last_signal = now
        if rh.first_beat is None:
            rh.first_beat = now
            rh.state = "up"
        rh.samples.append((now, rh.tasks_done))
        if len(rh.samples) > rh.rate_window:
            del rh.samples[0]
        # A flagged straggler stays flagged until the detector clears it
        # (the coordinator marks it back to "running" on recovery) — a
        # beat alone must not flicker the table back to "running" while
        # the rank is still below threshold.
        if hb.tasks_done > 0 and rh.state == "up":
            rh.state = "running"
        self.heartbeats += 1
        return True

    def on_done(self, rank: int, now: float) -> None:
        """Fold a rank's final report in: all tasks done, rate frozen.

        Appends a closing ``(now, tasks_total)`` sample so the rank's
        anchored rate reflects its actual finish — a fast rank that
        completed before its second heartbeat would otherwise anchor the
        straggler median at a meaningless 0.0 (one sample, zero elapsed).
        """
        rh = self.ranks.get(rank)
        if rh is None:
            return
        rh.state = "done"
        rh.tasks_done = rh.tasks_total
        if not rh.samples:
            # A rank so fast it finished before its first heartbeat:
            # synthesize the scatter instant as the baseline so it still
            # anchors the median (at its true lifetime rate) instead of
            # silently dropping out of the contributor count.
            rh.samples.append((rh.last_signal, 0))
        if rh.first_beat is None:
            rh.first_beat = now
        rh.samples.append((now, rh.tasks_done))
        if len(rh.samples) > rh.rate_window:
            del rh.samples[0]
        rh.last_signal = now

    def mark(self, rank: int, state: str) -> None:
        rh = self.ranks.get(rank)
        if rh is not None:
            rh.state = state
            if state == "stalled":
                rh.stalls += 1

    def stalled_ranks(self, now: float, pending) -> list[int]:
        """Ranks whose silence exceeds the missed-heartbeat window.

        ``pending`` restricts the check to ranks the coordinator is still
        waiting on.  Before a rank's first beat of the current attempt
        the window is widened by :data:`STARTUP_GRACE_SECONDS`.
        """
        if not self.enabled:
            return []
        window = self.stall_after_beats * self.heartbeat_interval
        out = []
        for rank in sorted(pending):
            rh = self.ranks.get(rank)
            if rh is None or rh.state in ("done", "reassigned", "failed"):
                continue
            allowed = window if rh.first_beat is not None else window + STARTUP_GRACE_SECONDS
            if now - rh.last_signal > allowed:
                out.append(rank)
        return out

    def straggler_ranks(self, now: float) -> list[int]:
        """Beating ranks whose windowed progress rate trails the median.

        Needs at least three beating contributors (a median of one or two
        is noise) and a nonzero median rate.  Finished ranks still anchor
        the median at their *final* rate — frozen at their last beat — so
        a slow rank stays detectable after the fast ranks complete (the
        exact moment rebalancing has idle helpers to offer).
        """
        active = [
            rh for rh in self.ranks.values()
            if rh.beats > 0 and rh.state in ("up", "running", "straggler")
        ]
        done = [
            rh for rh in self.ranks.values()
            if rh.samples and rh.state == "done"
        ]
        if not active or len(active) + len(done) < 3:
            return []
        rates = {rh.rank: rh.rate(now) for rh in active}
        anchors = [rh.rate(rh.last_signal) for rh in done]
        med = median(list(rates.values()) + anchors)
        if med <= 0.0:
            return []
        return sorted(
            r for r, v in rates.items() if v < self.straggler_fraction * med
        )

    def table(self, now: float | None = None) -> str:
        """The per-rank health table ``repro monitor`` renders."""
        if not self.ranks:
            return "(no ranks)"
        lines = [
            f"{'rank':>4s} {'state':<10s} {'att':>3s} {'beats':>5s} "
            f"{'tasks':>11s} {'prog':>6s} {'rate/s':>8s} {'silent':>7s}"
        ]
        for rank in sorted(self.ranks):
            rh = self.ranks[rank]
            silent = f"{now - rh.last_signal:6.1f}s" if now is not None else "     --"
            rate = f"{rh.rate(now):8.1f}" if now is not None else "      --"
            lines.append(
                f"{rank:>4d} {rh.state:<10s} {rh.attempt:>3d} {rh.beats:>5d} "
                f"{rh.tasks_done:>5d}/{rh.tasks_total:<5d} {rh.progress:>6.0%} "
                f"{rate} {silent}"
            )
        return "\n".join(lines)


def run_scoped_events_path(path: str, run_id: str) -> str:
    """The per-run event-log filename for a base path and a run id.

    ``run-events.jsonl`` + run ``r42`` becomes ``run-events.r42.jsonl``
    (the run id slots in before the extension); a path without a
    ``.jsonl`` suffix gets ``.<run_id>.jsonl`` appended.  Concurrent jobs
    each write their own file instead of clobbering one shared name.
    """
    if path.endswith(".jsonl"):
        return f"{path[:-len('.jsonl')]}.{run_id}.jsonl"
    return f"{path}.{run_id}.jsonl"


def resolve_events_path(path: str, run_id: str | None = None) -> str:
    """Pick the concrete event-log file a monitor should read.

    ``run_id`` selects that run's per-run file (``run-events.<id>.jsonl``)
    — unless ``path`` already names an existing file scoped to it.  With
    no run id, a ``path`` that exists wins (the classic single-run
    layout); otherwise the most recently modified per-run sibling is
    chosen, so ``repro monitor --follow`` attaches to the newest job of a
    serving pool without being told its id.  Falls back to ``path``
    verbatim when nothing matches yet (a monitor may start first).
    """
    import glob
    import os

    if run_id:
        scoped = run_scoped_events_path(path, run_id)
        if os.path.exists(path) and not os.path.exists(scoped):
            for ev in read_events(path):
                if ev.get("run") == run_id:
                    return path
        return scoped
    if os.path.exists(path):
        return path
    pattern = run_scoped_events_path(path, "*")
    siblings = glob.glob(pattern)
    if siblings:
        return max(siblings, key=os.path.getmtime)
    return path


class EventLog:
    """Append-only JSONL run events (``run-events.jsonl``).

    One JSON object per line: ``{"t": <wall seconds>, "event": <kind>,
    ...fields}``.  A ``path`` of ``None`` disables the log entirely (no
    file handle, ``emit`` is a no-op); the coordinator is the only
    writer, so lines are never interleaved.  Each ``emit`` flushes — a
    monitor tailing the file (or a human with ``tail -f``) sees events
    as they happen, and a crashed coordinator loses nothing.

    A ``run_id`` redirects the log to the per-run filename
    (:func:`run_scoped_events_path`) and stamps every record with a
    ``run`` field, so concurrent jobs sharing one events directory never
    clobber each other; ``path`` reports the file actually written.
    """

    def __init__(self, path: str | None, run_id: str | None = None):
        if path and run_id:
            path = run_scoped_events_path(path, run_id)
        self.path = path
        self.run_id = run_id
        self._fh = open(path, "w", encoding="utf-8") if path else None  # repro: noqa[L308] - handle owned by the log, closed in close()
        self.count = 0

    def emit(self, event: str, **fields) -> None:
        if self._fh is None:
            return
        record = {"t": time.time(), "event": event}  # repro: noqa[L306]
        if self.run_id:
            record["run"] = self.run_id
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_events(path: str, run_id: str | None = None) -> list[dict]:
    """Parse a ``run-events.jsonl`` file (skipping torn trailing lines).

    Crash consistency: a coordinator killed mid-``write`` leaves a torn
    final line — possibly cut *inside* a multibyte UTF-8 character — and a
    monitor replaying the log must shrug, not raise.  The file is read as
    bytes and each line decoded independently, so one mangled line (torn,
    invalid UTF-8, or valid JSON that is not an object) is skipped without
    poisoning the rest.

    Back-compat across the per-run split: legacy single-run logs (no
    ``run`` field) and per-run logs parse identically.  ``run_id``
    filters to one run's records; records without a ``run`` stamp pass
    the filter (a legacy log *is* its only run).
    """
    out: list[dict] = []
    with open(path, "rb") as fh:
        raw = fh.read()
    for line in raw.split(b"\n"):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue  # torn final line of a live (or killed) file
        if not isinstance(record, dict):
            continue
        if run_id is not None and record.get("run", run_id) != run_id:
            continue
        out.append(record)
    return out


def replay_health(events: list[dict]) -> RunHealth:
    """Rebuild a :class:`RunHealth` view from logged events.

    This is how ``repro monitor`` attaches to a run it does not own: the
    event log carries enough of the heartbeat stream to reconstruct the
    per-rank table (sequence numbers, task progress, state transitions).
    Wall timestamps in the log stand in for the coordinator's monotonic
    clock — fine for display, never used for detection.  Events whose
    fields do not parse (a half-flushed record from a killed coordinator)
    are skipped; replay never raises on a readable log.
    """
    health = RunHealth()
    for ev in events:
        try:
            _replay_event(health, ev)
        except (TypeError, ValueError, KeyError):
            continue  # malformed fields in a torn/foreign record
    return health


def _replay_event(health: RunHealth, ev: dict) -> None:
    kind = ev.get("event")
    rank = ev.get("rank")
    t = ev.get("t", 0.0)
    if kind == "plan_accepted":
        health.heartbeat_interval = ev.get("heartbeat_interval", 0.0)
        for r, total in (ev.get("tasks_per_rank") or {}).items():
            health.on_scatter(int(r), int(total), attempt=0, now=t)
    elif kind == "scatter" and rank is not None:
        prev = health.ranks.get(int(rank))
        health.on_scatter(
            int(rank),
            prev.tasks_total if prev else ev.get("tasks_total", 0),
            attempt=int(ev.get("attempt", 0)),
            now=t,
        )
    elif kind == "heartbeat" and rank is not None:
        health.on_heartbeat(
            HeartbeatMsg(
                rank=int(rank),
                attempt=int(ev.get("attempt", 0)),
                seq=int(ev.get("seq", 0)),
                tasks_done=int(ev.get("tasks_done", 0)),
            ),
            now=t,
        )
    elif kind == "worker_up" and rank is not None:
        health.mark(int(rank), "up")
    elif kind == "stall" and rank is not None:
        health.mark(int(rank), "stalled")
    elif kind == "straggler" and rank is not None:
        health.mark(int(rank), "straggler")
    elif kind == "retry" and rank is not None:
        health.mark(int(rank), "retried")
    elif kind == "reassign" and rank is not None:
        health.mark(int(rank), "reassigned")
    elif kind == "rank_done" and rank is not None:
        rh = health.ranks.get(int(rank))
        if rh is not None:
            rh.state = "done"
            rh.tasks_done = int(ev.get("tasks", rh.tasks_done))
