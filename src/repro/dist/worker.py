"""The per-rank worker process of the distributed executor.

Each worker is one planned process rank.  Life of a worker: receive one
:class:`ScatterMsg` from the coordinator, attach the shared-memory arenas,
execute its :class:`~repro.core.plan.ProcPlan` through the *same*
:func:`repro.runtime.numeric.execute_proc_plan` body the serial executor
uses (hence bit-identical numerics), write its C tiles into its output
arena, and send a :class:`WorkerReport` back.

The worker overlaps transfers with compute the way the paper's control DAG
does: a prefetch thread copies the *next* chunk's A tiles out of the shared
A arena (the "H2D" of the double-buffered 25 % staging area) while the main
thread runs the current chunk's GEMMs; a ``Queue(maxsize=1)`` is exactly
the one-chunk-ahead prefetch depth the 25/25 split allows.

Observability: when the scatter carries ``trace=True`` the worker records
spans through a :class:`~repro.runtime.tracing.SpanRecorder` on a
*monotonic* clock — inbox wait, shared-memory attach, per-chunk prefetch
and prefetch-queue wait, per-chunk GEMM, B-tile generation, C writeback —
and ships the :class:`~repro.runtime.tracing.SpanStream` home in its
report for the coordinator to merge.  With ``trace=False`` no clock is
read in the hot loop (``on_event`` is ``None``) and no spans are stored.

Fault injection lives here too: after the *k*-th GEMM task the worker
either dies abruptly (``os._exit`` — no report, no cleanup, like a crashed
MPI rank) or stalls, per the scattered :class:`~repro.dist.faults.FaultInjection`.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import traceback
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.grid import ProcessGrid
from repro.core.plan import Block, ProcPlan
from repro.dist.bservice import ArenaBSource, BService
from repro.dist.comm import COORDINATOR, Endpoint
from repro.dist.faults import FaultInjection
from repro.dist.tile_store import ArenaMeta, TileArena
from repro.runtime.numeric import NumericStats, execute_proc_plan
from repro.runtime.tracing import SpanRecorder, SpanStream


@dataclass(frozen=True)
class ScatterMsg:
    """Everything one rank needs to execute its slice of the plan."""

    proc: ProcPlan
    grid: ProcessGrid
    gpus_per_proc: int
    gpu_memory_bytes: int
    b_csr: object
    tau: float | None
    alpha: float
    a_meta: ArenaMeta
    b_spec: tuple
    c_meta: ArenaMeta | None
    fault: FaultInjection | None
    attempt: int
    trace: bool = True


@dataclass
class WorkerReport:
    """One rank's results: stats, C-tile index, span stream, link bytes."""

    rank: int
    attempt: int
    stats: NumericStats
    c_index: dict[tuple[int, int], tuple[int, int, int]]
    spans: SpanStream | None = None
    link_bytes: dict[tuple[int, int], int] = field(default_factory=dict)
    b_max_instantiations: int = 0
    b_hits: int = 0
    b_lru_evictions: int = 0


def modeled_a_link_bytes(
    proc: ProcPlan, grid: ProcessGrid, a_meta: ArenaMeta
) -> dict[tuple[int, int], int]:
    """Grid-row A-broadcast bytes charged to ``owner -> rank`` links.

    Mirrors the inspector's per-process ``a_recv_bytes`` (Section 3.2.4):
    each needed-but-remote A tile under the 2D-cyclic placement moves once.
    """
    links: Counter = Counter()
    for i, k in zip(proc.a_needed_rows.tolist(), proc.a_needed_cols.tolist()):
        owner_col = k % grid.q
        if owner_col != proc.col:
            owner = grid.rank(proc.row, owner_col)
            links[(owner, proc.rank)] += a_meta.tile_nbytes((i, k))
    return dict(links)


def _prefetching_fetcher(a_arena: TileArena, rec: SpanRecorder, rank: int):
    """A ``chunk_fetcher`` that double-buffers A chunks via a thread per block.

    With the recorder enabled, the producer thread records each chunk's
    copy-out as a ``prefetch`` span on the GPU's link resource, and the
    consumer records the time it blocked on the hand-off queue as a
    ``qwait`` span — the executor's measurable analogue of a starved H2D
    pipeline.  Disabled, neither side reads a clock.
    """

    def fetcher(g: int, bi: int, block: Block):
        chunk_q: queue.Queue = queue.Queue(maxsize=1)
        link = f"gpu.{rank}.{g}.link"
        wait = f"gpu.{rank}.{g}.wait"

        def produce() -> None:
            for ci, chunk in enumerate(block.chunks):
                t_start = rec.now() if rec.enabled else 0.0
                tiles = [
                    np.array(a_arena.get((i, k)))
                    for i, k in zip(chunk.a_rows.tolist(), chunk.a_cols.tolist())
                ]
                if rec.enabled:
                    rec.record(f"block{bi}.chunk{ci}.prefetch", link, t_start, rec.now())
                chunk_q.put(tiles)

        threading.Thread(target=produce, daemon=True).start()

        def fetch(ci: int, chunk) -> list[np.ndarray]:
            if not rec.enabled:
                return chunk_q.get()
            t_start = rec.now()
            tiles = chunk_q.get()
            rec.record(f"block{bi}.chunk{ci}.qwait", wait, t_start, rec.now())
            return tiles

        return fetch

    return fetcher


def run_rank(
    msg: ScatterMsg,
    *,
    origin: float | None = None,
    recv_done: float | None = None,
) -> WorkerReport:
    """Execute one scattered rank; returns the report (arena already written).

    ``origin``/``recv_done`` are monotonic instants bracketing the inbox
    wait in :func:`worker_main`; the recorder's clock is rooted at
    ``origin`` so the wait appears as the rank's first span.
    """
    rank = msg.proc.rank
    rec = SpanRecorder(enabled=msg.trace, origin=origin)
    if msg.trace and origin is not None and recv_done is not None:
        rec.record("inbox.wait", f"net.{rank}", 0.0, recv_done - origin)

    attached: list[TileArena] = []
    try:
        with rec.span("shm.attach", f"net.{rank}"):
            a_arena = TileArena.attach(msg.a_meta)
            attached.append(a_arena)

            kind, payload = msg.b_spec
            if kind == "arena":
                b_arena = TileArena.attach(payload)
                attached.append(b_arena)
                b_source = ArenaBSource(b_arena)
            else:
                b_source = BService(
                    payload, budget_bytes=msg.gpu_memory_bytes, recorder=rec
                )

            c_arena = TileArena.attach(msg.c_meta) if msg.c_meta is not None else None
            if c_arena is not None:
                attached.append(c_arena)

        fault = msg.fault
        executed = 0

        def on_task() -> None:
            nonlocal executed
            executed += 1
            if fault is not None and executed == fault.at_task:
                if fault.kind == "kill":
                    os._exit(99)
                time.sleep(fault.delay_seconds)

        produced, stats = execute_proc_plan(
            msg.proc,
            lambda i, k: a_arena.get((i, k)),
            b_source,
            gpus_per_proc=msg.gpus_per_proc,
            gpu_memory_bytes=msg.gpu_memory_bytes,
            b_csr=msg.b_csr,
            tau=msg.tau,
            alpha=msg.alpha,
            chunk_fetcher=_prefetching_fetcher(a_arena, rec, rank),
            on_task=on_task if fault is not None else None,
            on_event=rec.record if rec.enabled else None,
            clock=rec.now,
        )
        stats.b_tiles_generated = b_source.generated_tiles()

        c_index: dict[tuple[int, int], tuple[int, int, int]] = {}
        with rec.span(f"writeback.{rank}", f"net.{rank}"):
            for key, tile in produced.items():
                c_index[key] = c_arena.put(key, tile)

        return WorkerReport(
            rank=rank,
            attempt=msg.attempt,
            stats=stats,
            c_index=c_index,
            spans=rec.stream() if rec.enabled else None,
            link_bytes=modeled_a_link_bytes(msg.proc, msg.grid, msg.a_meta),
            b_max_instantiations=b_source.max_instantiations(),
            b_hits=b_source.hits,
            b_lru_evictions=b_source.lru_evictions,
        )
    finally:
        for arena in attached:
            arena.close()


def worker_main(rank: int, endpoint: Endpoint) -> None:
    """Process entry point: one scatter in, one report (or error) out."""
    t_spawn = time.monotonic()
    try:
        _, msg, _ = endpoint.recv()
        report = run_rank(msg, origin=t_spawn, recv_done=time.monotonic())
        endpoint.send(COORDINATOR, ("done", rank, report))
    except BaseException:  # noqa: BLE001 - ship the traceback to the coordinator
        try:
            endpoint.send(COORDINATOR, ("error", rank, traceback.format_exc()))
        except Exception:  # pragma: no cover - fabric itself broken
            pass
