"""The per-rank worker process of the distributed executor.

Each worker is one planned process rank.  Life of a worker: receive a
:class:`ScatterMsg` from the coordinator, attach the shared-memory arenas,
execute its :class:`~repro.core.plan.ProcPlan` through the *same*
:func:`repro.runtime.numeric.execute_proc_plan` body the serial executor
uses (hence bit-identical numerics), write its C tiles into its output
arena, and send a :class:`WorkerReport` back.  The process then stays in
its dispatch loop: a finished rank is the rebalancer's favourite helper,
ready to accept a :class:`~repro.dist.comm.HandoffMsg` of blocks
reclaimed from a straggler (executed through the same
:func:`~repro.runtime.numeric.execute_block` body, so handoff tiles are
bit-identical to the tiles the origin would have produced).

Rebalancing yield points: between blocks the worker polls its inbox; a
coordinator :class:`~repro.dist.comm.RelinquishMsg` makes it give up its
not-yet-started blocks (acked with their positions, skipped thereafter)
while the in-flight block finishes normally.  Completion of every block
is reported out-of-band as a :class:`~repro.dist.comm.BlockDoneMsg` on
the telemetry channel, so the coordinator knows which blocks are still
unstarted without perturbing control-plane traffic.

The worker overlaps transfers with compute the way the paper's control DAG
does: a prefetch thread copies the *next* chunk's A tiles out of the shared
A arena (the "H2D" of the double-buffered 25 % staging area) while the main
thread runs the current chunk's GEMMs; a ``Queue(maxsize=1)`` is exactly
the one-chunk-ahead prefetch depth the 25/25 split allows.

Observability: when the scatter carries ``trace=True`` the worker records
spans through a :class:`~repro.runtime.tracing.SpanRecorder` on a
*monotonic* clock — inbox wait, shared-memory attach, per-chunk prefetch
and prefetch-queue wait, per-chunk GEMM, B-tile generation, C writeback —
and ships the :class:`~repro.runtime.tracing.SpanStream` home in its
report for the coordinator to merge.  With ``trace=False`` no clock is
read in the hot loop (``on_event`` is ``None``) and no spans are stored.

Live telemetry: when the scatter carries a positive ``heartbeat_interval``
the worker runs a daemon heartbeat thread that ships a
:class:`~repro.dist.health.HeartbeatMsg` — sequence number, cumulative
task progress, a :class:`~repro.runtime.metrics.MetricsSnapshot` — to the
coordinator on the comm layer's out-of-band telemetry channel every
interval.  The first beat goes out immediately ("worker up"); the thread
stops when the rank finishes, errors, or is deliberately stalled.

Fault injection lives here too: after the *k*-th GEMM task the worker
either dies abruptly (``os._exit`` — no report, no cleanup, like a crashed
MPI rank), sleeps briefly (``delay``), or *stalls* — heartbeats stop and
the main thread hangs, the closest a test can get to a livelocked rank
that is alive to the OS but dead to the run.  Stalls are what the
coordinator's missed-heartbeat detector exists to catch.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import traceback
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.grid import ProcessGrid
from repro.core.plan import Block, ProcPlan
from repro.dist.bservice import ArenaBSource, BService, TieredBStore
from repro.dist.comm import (
    COORDINATOR,
    BlockDoneMsg,
    Empty,
    Endpoint,
    HandoffMsg,
    RelinquishMsg,
)
from repro.dist.faults import FaultInjection
from repro.dist.health import HeartbeatMsg
from repro.dist.tile_store import ArenaMeta, TileArena
from repro.runtime.gpu_memory import GpuMemory
from repro.runtime.metrics import MetricsRegistry, MetricsSnapshot
from repro.runtime.numeric import (
    NumericStats,
    block_cols_of_k,
    execute_block,
    execute_proc_plan,
)
from repro.runtime.tracing import SpanRecorder, SpanStream
from repro.store import (
    CompletedBlock,
    TileStore,
    WritebackJournal,
    ckpt_namespace,
    ckpt_tile_key,
)

#: Exit code of an ``abort`` fault — the coordinator reads it off the dead
#: process and fails the whole run instead of retrying the rank.
ABORT_EXIT_CODE = 98

#: How long a deliberately stalled worker sleeps (it is terminated by the
#: coordinator long before this elapses; the bound only guards against a
#: run with stall detection disabled wedging forever past its timeout).
STALL_SLEEP_SECONDS = 3600.0


@dataclass(frozen=True)
class ScatterMsg:
    """Everything one rank needs to execute its slice of the plan."""

    proc: ProcPlan
    grid: ProcessGrid
    gpus_per_proc: int
    gpu_memory_bytes: int
    b_csr: object
    tau: float | None
    alpha: float
    a_meta: ArenaMeta
    b_spec: tuple
    c_meta: ArenaMeta | None
    fault: FaultInjection | None
    attempt: int
    trace: bool = True
    max_spans: int = 200_000
    heartbeat_interval: float = 0.0  # seconds; <= 0 disables heartbeats
    metrics: bool = False
    #: Persistent-store / checkpoint wiring (all inert when left at their
    #: defaults): ``store_dir`` roots the B-tile persistence tier,
    #: ``ckpt_dir`` enables the writeback journal (and, when ``store_dir``
    #: is unset, hosts the store under ``<ckpt_dir>/store``), ``b_hash`` /
    #: ``run_hash`` are the coordinator-computed operand and run
    #: fingerprints, and ``completed`` lists the already-journaled blocks
    #: to restore instead of recompute: ``((gpu, block, ((i, j), ...)), ...)``.
    store_dir: str | None = None
    store_budget: int | None = None
    b_hash: str = ""
    ckpt_dir: str | None = None
    run_hash: str = ""
    completed: tuple = ()
    #: Block positions ``(gpu, index)`` this rank must *not* execute: they
    #: were relinquished to the rebalancer in an earlier attempt and are
    #: owned by a handoff now (producing them here would double-produce).
    excluded: tuple = ()
    #: Whether the rank honours relinquish requests between blocks (set by
    #: the coordinator's ``rebalance=True``; off, the inbox is never
    #: polled mid-run and the worker behaves exactly as before).
    rebalance: bool = False


@dataclass
class WorkerReport:
    """One rank's results: stats, C-tile index, span stream, link bytes."""

    rank: int
    attempt: int
    stats: NumericStats
    c_index: dict[tuple[int, int], tuple[int, int, int]]
    spans: SpanStream | None = None
    link_bytes: dict[tuple[int, int], int] = field(default_factory=dict)
    b_max_instantiations: int = 0
    b_hits: int = 0
    b_lru_evictions: int = 0
    metrics: MetricsSnapshot | None = None
    store_hits: int = 0
    store_misses: int = 0
    store_puts: int = 0
    #: B tiles the rank's B service read from *any* store tier (warm
    #: in-process cache or persistent disk store) instead of generating.
    #: This is the warm-reuse signal a serving pool's second job shows
    #: even when no disk store is configured.
    b_store_hits: int = 0
    blocks_restored: int = 0
    tasks_skipped: int = 0


def modeled_a_link_bytes(
    proc: ProcPlan, grid: ProcessGrid, a_meta: ArenaMeta
) -> dict[tuple[int, int], int]:
    """Grid-row A-broadcast bytes charged to ``owner -> rank`` links.

    Mirrors the inspector's per-process ``a_recv_bytes`` (Section 3.2.4):
    each needed-but-remote A tile under the 2D-cyclic placement moves once.
    """
    links: Counter = Counter()
    for i, k in zip(proc.a_needed_rows.tolist(), proc.a_needed_cols.tolist()):
        owner_col = k % grid.q
        if owner_col != proc.col:
            owner = grid.rank(proc.row, owner_col)
            links[(owner, proc.rank)] += a_meta.tile_nbytes((i, k))
    return dict(links)


def checkpoint_hooks(
    store: TileStore,
    journal: WritebackJournal,
    run_hash: str,
    rank: int,
    completed: dict[tuple[int, int], tuple],
    registry: MetricsRegistry,
):
    """Build the ``(restore_block, on_block, counters)`` checkpoint closures.

    Shared by the worker and the coordinator's inline-reassignment path so
    both journal and restore identically.  ``completed`` maps ``(gpu,
    block)`` to the journaled C-tile keys the coordinator already
    validated against the store.

    Crash-consistency ordering lives in ``on_block``: every C tile is
    durably in the store *before* the journal line is appended, so a kill
    between the two leaves an unreferenced (harmless) object, never a
    journal record promising tiles that do not exist.
    """
    ns = ckpt_namespace(run_hash)
    hist = registry.histogram(
        "repro_checkpoint_seconds", "per-block checkpoint writeback durations"
    )
    m_restored = registry.counter(
        "repro_checkpoint_blocks_restored_total",
        "blocks restored from the journal instead of recomputed",
    )
    m_skipped = registry.counter(
        "repro_checkpoint_tasks_skipped_total",
        "GEMM tasks skipped thanks to journaled blocks",
    )
    counters = {"blocks_restored": 0, "tasks_skipped": 0}

    def restore_block(g: int, bi: int, block) -> dict | None:
        tiles = completed.get((g, bi))
        if tiles is None:
            return None
        out: dict[tuple[int, int], np.ndarray] = {}
        for i, j in tiles:
            arr = store.get(ns, ckpt_tile_key(rank, g, bi, i, j))
            if arr is None:  # validated at scatter; lost to a racing GC since
                return None
            # Copy out of the store's read-only map: restored tiles must be
            # indistinguishable from freshly computed (writable) ones.
            out[(i, j)] = np.array(arr)
        counters["blocks_restored"] += 1
        counters["tasks_skipped"] += block.ntasks
        m_restored.inc()
        m_skipped.inc(block.ntasks)
        return out

    def on_block(g: int, bi: int, block, c_dev: dict) -> None:
        t_start = time.monotonic()
        tiles = tuple(sorted(c_dev))
        for i, j in tiles:
            store.put(ns, ckpt_tile_key(rank, g, bi, i, j), c_dev[(i, j)])
        journal.record(run_hash, CompletedBlock(
            rank=rank, gpu=g, block=bi, chunks=len(block.chunks),
            ntasks=block.ntasks, tiles=tiles,
        ))
        hist.observe(time.monotonic() - t_start)

    return restore_block, on_block, counters


class _Progress:
    """Task counter shared between the executing and heartbeat threads.

    A bare int attribute: the executing thread increments, the heartbeat
    thread reads.  Both are atomic under the GIL; a beat that reads one
    task too few is simply one interval stale.
    """

    __slots__ = ("tasks",)

    def __init__(self):
        self.tasks = 0


class _HeartbeatThread:
    """Emits one :class:`HeartbeatMsg` per interval on a daemon thread.

    Protocol:
        send heartbeat: worker -> coordinator [telemetry]

    The first beat goes out immediately (the coordinator's "worker up"
    signal), later beats every ``interval`` seconds.  ``suspend()`` stops
    emission *without* waiting for the thread — the stall fault calls it
    from the executing thread right before hanging, so the rank goes
    silent exactly the way a livelocked worker would.
    """

    def __init__(self, endpoint: Endpoint, rank: int, attempt: int,
                 interval: float, progress: _Progress,
                 registry: MetricsRegistry, rec: SpanRecorder):
        self._endpoint = endpoint
        self._rank = rank
        self._attempt = attempt
        self._interval = interval
        self._progress = progress
        self._registry = registry
        self._rec = rec
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def _loop(self) -> None:
        seq = 0
        while not self._stop.is_set():
            try:
                self._endpoint.send_telemetry(
                    HeartbeatMsg(
                        rank=self._rank,
                        attempt=self._attempt,
                        seq=seq,
                        tasks_done=self._progress.tasks,
                        metrics=self._registry.snapshot(),
                        uptime=self._rec.now(),
                    )
                )
            except Exception:  # pragma: no cover - fabric torn down mid-beat
                return
            seq += 1
            self._stop.wait(self._interval)

    def suspend(self) -> None:
        """Stop beating without joining (callable from any thread)."""
        self._stop.set()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


def _prefetching_fetcher(a_arena: TileArena, rec: SpanRecorder, rank: int):
    """A ``chunk_fetcher`` that double-buffers A chunks via a thread per block.

    With the recorder enabled, the producer thread records each chunk's
    copy-out as a ``prefetch`` span on the GPU's link resource, and the
    consumer records the time it blocked on the hand-off queue as a
    ``qwait`` span — the executor's measurable analogue of a starved H2D
    pipeline.  Disabled, neither side reads a clock.
    """

    return _instrumented_fetcher(a_arena, rec, rank, MetricsRegistry(enabled=False))


def _instrumented_fetcher(a_arena: TileArena, rec: SpanRecorder, rank: int,
                          registry: MetricsRegistry):
    """The prefetching fetcher plus live-metric observation.

    Prefetch copy-out and hand-off wait durations feed both the span
    recorder (post-mortem trace) and, when metrics are on, the
    ``repro_prefetch_seconds`` / ``repro_prefetch_qwait_seconds``
    histograms (live telemetry).  With both disabled no clock is read.
    """
    observe = registry.enabled
    prefetch_hist = registry.histogram(
        "repro_prefetch_seconds", "A-chunk prefetch copy-out durations"
    )
    qwait_hist = registry.histogram(
        "repro_prefetch_qwait_seconds", "time blocked on the prefetch hand-off"
    )
    timed = rec.enabled or observe

    def fetcher(g: int, bi: int, block: Block):
        chunk_q: queue.Queue = queue.Queue(maxsize=1)
        link = f"gpu.{rank}.{g}.link"
        wait = f"gpu.{rank}.{g}.wait"

        def produce() -> None:
            for ci, chunk in enumerate(block.chunks):
                t_start = rec.now() if timed else 0.0
                tiles = [
                    np.array(a_arena.get((i, k)))
                    for i, k in zip(chunk.a_rows.tolist(), chunk.a_cols.tolist())
                ]
                if timed:
                    t_end = rec.now()
                    rec.record(f"block{bi}.chunk{ci}.prefetch", link, t_start, t_end)
                    if observe:
                        prefetch_hist.observe(t_end - t_start)
                chunk_q.put(tiles)

        threading.Thread(target=produce, daemon=True).start()

        def fetch(ci: int, chunk) -> list[np.ndarray]:
            if not timed:
                return chunk_q.get()
            t_start = rec.now()
            tiles = chunk_q.get()
            t_end = rec.now()
            rec.record(f"block{bi}.chunk{ci}.qwait", wait, t_start, t_end)
            if observe:
                qwait_hist.observe(t_end - t_start)
            return tiles

        return fetch

    return fetcher


def _b_store(tile_cache, store, b_hash: str):
    """Compose the B service's store tier(s) for one scattered attempt.

    ``tile_cache`` is a process-lifetime in-memory warm cache a serving
    pool injected at worker spawn; it layers in front of the per-run disk
    store so a pooled worker's second job over the same B fingerprint is
    served from memory.  Without a fingerprint the cache is skipped —
    there is no namespace to key it by, and serving another operand's
    tiles would be a correctness bug, not a cache miss.
    """
    if tile_cache is None or not b_hash:
        return store
    return TieredBStore(tile_cache, store)


def run_rank(
    msg: ScatterMsg,
    *,
    origin: float | None = None,
    recv_done: float | None = None,
    endpoint: Endpoint | None = None,
    tile_cache=None,
) -> WorkerReport:
    """Execute one scattered rank; returns the report (arena already written).

    ``origin``/``recv_done`` are monotonic instants bracketing the inbox
    wait in :func:`worker_main`; the recorder's clock is rooted at
    ``origin`` so the wait appears as the rank's first span.  ``endpoint``
    carries heartbeats out on the telemetry channel; without one (or with
    ``msg.heartbeat_interval <= 0``) the rank runs silently as before.
    ``tile_cache`` is a serving pool's process-lifetime warm B-tile cache
    (see :func:`_b_store`); ``None`` reproduces the one-shot behaviour.
    """
    rank = msg.proc.rank
    rec = SpanRecorder(enabled=msg.trace, max_spans=msg.max_spans, origin=origin)
    if msg.trace and origin is not None and recv_done is not None:
        rec.record("inbox.wait", f"net.{rank}", 0.0, recv_done - origin)
    registry = MetricsRegistry(enabled=msg.metrics)
    progress = _Progress()

    hb: _HeartbeatThread | None = None
    if endpoint is not None and msg.heartbeat_interval > 0.0:
        hb = _HeartbeatThread(
            endpoint, rank, msg.attempt, msg.heartbeat_interval,
            progress, registry, rec,
        )
        hb.start()

    store: TileStore | None = None
    journal: WritebackJournal | None = None
    restore_block = on_block = None
    ckpt_counters = {"blocks_restored": 0, "tasks_skipped": 0}
    attached: list[TileArena] = []
    try:
        if msg.store_dir is not None or msg.ckpt_dir is not None:
            root = msg.store_dir or os.path.join(msg.ckpt_dir, "store")
            store = TileStore(
                root, budget_bytes=msg.store_budget, metrics=registry
            )
        if msg.ckpt_dir is not None:
            journal = WritebackJournal(msg.ckpt_dir, rank)
            restore_block, on_block, ckpt_counters = checkpoint_hooks(
                store, journal, msg.run_hash, rank,
                {(g, bi): tiles for g, bi, tiles in msg.completed},
                registry,
            )

        with rec.span("shm.attach", f"net.{rank}"):
            a_arena = TileArena.attach(msg.a_meta)
            attached.append(a_arena)

            kind, payload = msg.b_spec
            if kind == "arena":
                b_arena = TileArena.attach(payload)
                attached.append(b_arena)
                b_source = ArenaBSource(b_arena, metrics=registry)
            else:
                b_source = BService(
                    payload, budget_bytes=msg.gpu_memory_bytes, recorder=rec,
                    metrics=registry,
                    store=_b_store(tile_cache, store, msg.b_hash),
                    store_ns=f"b:{msg.b_hash}",
                )

            c_arena = TileArena.attach(msg.c_meta) if msg.c_meta is not None else None
            if c_arena is not None:
                attached.append(c_arena)
        registry.gauge(
            "repro_shm_attached_bytes", "shared-memory bytes attached", agg="sum"
        ).set(sum(arena.size for arena in attached))

        fault = msg.fault
        tasks_counter = registry.counter(
            "repro_gemm_tasks_total", "GEMM tasks executed"
        )

        def on_task() -> None:
            progress.tasks += 1
            tasks_counter.inc()
            if fault is None:
                return
            if fault.kind == "slow":
                # A live straggler: every task from at_task on is slow.
                if progress.tasks >= fault.at_task:
                    time.sleep(fault.delay_seconds)
                return
            if progress.tasks == fault.at_task:
                if fault.kind == "kill":
                    os._exit(99)
                if fault.kind == "abort":
                    os._exit(ABORT_EXIT_CODE)
                if fault.kind == "stall":
                    # Go silent the way a livelocked rank would: stop the
                    # heartbeat thread, then hang the executing thread.
                    if hb is not None:
                        hb.suspend()
                    time.sleep(STALL_SLEEP_SECONDS)
                else:
                    time.sleep(fault.delay_seconds)

        need_on_task = fault is not None or hb is not None or registry.enabled
        gemm_hist = registry.histogram(
            "repro_chunk_gemm_seconds", "per-chunk GEMM stream durations"
        )

        if rec.enabled or registry.enabled:
            observe = registry.enabled

            def on_event(task: str, resource: str, start: float, end: float) -> None:
                rec.record(task, resource, start, end)
                if observe and task.endswith(".gemm"):
                    gemm_hist.observe(end - start)
        else:
            on_event = None

        # ---- rebalancing yield points -------------------------------
        # ``skipped`` holds block positions this rank must not execute:
        # the coordinator's exclusions from earlier attempts, plus any
        # positions relinquished mid-run.  ``skip_block`` doubles as the
        # inbox poll at every block boundary.
        skipped: set[tuple[int, int]] = set(msg.excluded)
        skip_block = None
        telemetry_on = endpoint is not None and msg.heartbeat_interval > 0.0
        if skipped or (msg.rebalance and endpoint is not None):
            positions = [
                (g, bi)
                for g in range(msg.gpus_per_proc)
                for bi in range(len(msg.proc.gpu_blocks(g)))
            ]
            pos_index = {p: n for n, p in enumerate(positions)}
            restored_positions = {(g, bi) for g, bi, _ in msg.completed}

            def skip_block(g: int, bi: int, block) -> bool:
                """Poll the inbox at a block boundary; honour relinquishes.

                A current-attempt :class:`RelinquishMsg` yields every
                position not yet started (including this one) that is
                neither journaled nor already skipped; the positions are
                acked back so the coordinator knows exactly which blocks
                it now owns.  A stale request is acked empty.

                Protocol:
                    recv relinquish: coordinator -> worker [data]
                    send relinquished: worker -> coordinator [data]
                """
                if msg.rebalance and endpoint is not None:
                    while True:
                        try:
                            _, req, _ = endpoint.recv_nowait()
                        except Empty:
                            break
                        if not isinstance(req, RelinquishMsg):
                            continue  # foreign message; not ours mid-run
                        if req.attempt != msg.attempt:
                            endpoint.send(
                                COORDINATOR,
                                ("relinquished", rank, req.attempt, ()),
                            )
                            continue
                        here = pos_index[(g, bi)]
                        remaining = tuple(
                            p for p in positions[here:]
                            if p not in skipped
                            and p not in restored_positions
                        )
                        skipped.update(remaining)
                        endpoint.send(
                            COORDINATOR,
                            ("relinquished", rank, msg.attempt, remaining),
                        )
                return (g, bi) in skipped

        ckpt_on_block = on_block
        if telemetry_on:

            def on_block(g: int, bi: int, block, c_dev: dict) -> None:
                """Report block completion out-of-band.

                Protocol:
                    send block_done: worker -> coordinator [telemetry]
                """
                if ckpt_on_block is not None:
                    ckpt_on_block(g, bi, block, c_dev)
                try:
                    endpoint.send_telemetry(BlockDoneMsg(
                        rank=rank, attempt=msg.attempt, gpu=g, block=bi,
                        ntasks=block.ntasks,
                    ))
                except Exception:  # pragma: no cover - fabric torn down
                    pass

        produced, stats = execute_proc_plan(
            msg.proc,
            lambda i, k: a_arena.get((i, k)),
            b_source,
            gpus_per_proc=msg.gpus_per_proc,
            gpu_memory_bytes=msg.gpu_memory_bytes,
            b_csr=msg.b_csr,
            tau=msg.tau,
            alpha=msg.alpha,
            chunk_fetcher=_instrumented_fetcher(a_arena, rec, rank, registry),
            on_task=on_task if need_on_task else None,
            on_event=on_event,
            clock=rec.now,
            restore_block=restore_block,
            on_block=on_block,
            skip_block=skip_block,
        )
        stats.b_tiles_generated = b_source.generated_tiles()

        c_index: dict[tuple[int, int], tuple[int, int, int]] = {}
        with rec.span(f"writeback.{rank}", f"net.{rank}"):
            for key, tile in produced.items():
                c_index[key] = c_arena.put(key, tile)
        if rec.enabled:
            rec.count("bytes.writeback", sum(t.nbytes for t in produced.values()))

        if registry.enabled:
            registry.counter(
                "repro_gemm_flops_total", "floating-point operations executed"
            ).inc(stats.flops)
            registry.gauge(
                "repro_gpu_peak_bytes", "peak device-memory high-water mark"
            ).set(stats.gpu_peak_bytes)
            registry.counter(
                "repro_spans_dropped_total",
                "trace spans discarded at the recorder bound",
            ).inc(rec.dropped)

        store_stats = store.stats() if store is not None else None
        return WorkerReport(
            rank=rank,
            attempt=msg.attempt,
            stats=stats,
            c_index=c_index,
            spans=rec.stream() if rec.enabled else None,
            link_bytes=modeled_a_link_bytes(msg.proc, msg.grid, msg.a_meta),
            b_max_instantiations=b_source.max_instantiations(),
            b_hits=b_source.hits,
            b_lru_evictions=b_source.lru_evictions,
            metrics=registry.snapshot() if registry.enabled else None,
            store_hits=store_stats.hits if store_stats else 0,
            store_misses=store_stats.misses if store_stats else 0,
            store_puts=store_stats.puts if store_stats else 0,
            b_store_hits=getattr(b_source, "store_hits", 0),
            blocks_restored=ckpt_counters["blocks_restored"],
            tasks_skipped=ckpt_counters["tasks_skipped"],
        )
    finally:
        if hb is not None:
            hb.suspend()
        if journal is not None:
            journal.close()
        if store is not None:
            store.close()
        for arena in attached:
            arena.close()


def execute_handoff_blocks(
    blocks,
    a_get_tile,
    b_source,
    *,
    origin: int,
    gpu_memory_bytes: int,
    b_csr,
    tau: float | None,
    alpha: float,
    on_block=None,
):
    """Execute blocks reclaimed from rank ``origin``; returns ``(C, stats)``.

    The single body behind both handoff paths — a finished worker rank
    and the coordinator's inline spare — mirroring the per-block section
    of :func:`~repro.runtime.numeric.execute_proc_plan` exactly (same
    :func:`~repro.runtime.numeric.execute_block` call, same CSR column
    order, same eviction and memory discipline), so a handed-off block's
    C tiles are bit-identical to the tiles the origin would have written.

    ``blocks`` are ``(gpu, position, Block)`` triples in the origin's
    plan coordinates; ``on_block`` receives them unchanged, so handoff
    journal records land under the origin's identity.  Stats (including
    ``per_proc_tasks``) are attributed to the origin: the merged run
    totals must match the serial oracle regardless of who computed what.
    """
    stats = NumericStats()
    produced: dict[tuple[int, int], np.ndarray] = {}
    for g, bi, block in blocks:
        mem = GpuMemory(gpu_memory_bytes)
        block_name = f"block{bi}"
        mem.reserve(block_name, block.b_bytes + block.c_bytes)
        stats.h2d_bytes += block.b_bytes
        cols_of_k = block_cols_of_k(block, b_csr)
        c_dev = execute_block(
            block,
            block_name,
            rank=origin,
            a_get_tile=a_get_tile,
            b=b_source,
            cols_of_k=cols_of_k,
            mem=mem,
            stats=stats,
            tau=tau,
            alpha=alpha,
        )
        for (i, j), tile in c_dev.items():
            produced[(i, j)] = tile
            stats.d2h_bytes += tile.nbytes
        if on_block is not None:
            on_block(g, bi, block, c_dev)
        if hasattr(b_source, "evict"):
            for k, js in cols_of_k.items():
                for j in js:
                    b_source.evict(origin, k, j)
        mem.release(block_name)
        stats.gpu_peak_bytes = max(stats.gpu_peak_bytes, mem.peak)
    stats.per_proc_tasks[origin] = stats.ntasks
    return produced, stats


def run_handoff(msg, tile_cache=None) -> tuple[dict, NumericStats]:
    """Execute one :class:`~repro.dist.comm.HandoffMsg` on a helper rank.

    Attaches the shared A arena and the handoff's dedicated C arena,
    rebuilds the B source the origin would have used, and (when the run
    checkpoints) journals each completed block under the *origin's* rank
    into a ``.h<id>`` sidecar journal — store keys and record contents
    identical to what the origin itself would have written, which is what
    lets a resumed run replay the ownership transfer transparently.
    """
    registry = MetricsRegistry(enabled=False)
    store = None
    journal = None
    attached: list[TileArena] = []
    try:
        if msg.store_dir is not None or msg.ckpt_dir is not None:
            root = msg.store_dir or os.path.join(msg.ckpt_dir, "store")
            store = TileStore(root, budget_bytes=msg.store_budget,
                              metrics=registry)
        on_block = None
        if msg.ckpt_dir is not None:
            journal = WritebackJournal(
                msg.ckpt_dir, msg.origin, suffix=f".h{msg.handoff_id}"
            )
            _, on_block, _ = checkpoint_hooks(
                store, journal, msg.run_hash, msg.origin, {}, registry
            )

        a_arena = TileArena.attach(msg.a_meta)
        attached.append(a_arena)
        kind, payload = msg.b_spec
        if kind == "arena":
            b_arena = TileArena.attach(payload)
            attached.append(b_arena)
            b_source = ArenaBSource(b_arena, metrics=registry)
        else:
            b_source = BService(
                payload, budget_bytes=msg.gpu_memory_bytes, metrics=registry,
                store=_b_store(tile_cache, store, msg.b_hash),
                store_ns=f"b:{msg.b_hash}",
            )
        c_arena = TileArena.attach(msg.c_meta)
        attached.append(c_arena)

        produced, stats = execute_handoff_blocks(
            msg.blocks,
            lambda i, k: a_arena.get((i, k)),
            b_source,
            origin=msg.origin,
            gpu_memory_bytes=msg.gpu_memory_bytes,
            b_csr=msg.b_csr,
            tau=msg.tau,
            alpha=msg.alpha,
            on_block=on_block,
        )
        stats.b_tiles_generated = b_source.generated_tiles()
        c_index = {key: c_arena.put(key, tile) for key, tile in produced.items()}
        return c_index, stats
    finally:
        if journal is not None:
            journal.close()
        if store is not None:
            store.close()
        for arena in attached:
            arena.close()


def worker_main(rank: int, endpoint: Endpoint, tile_cache=None,
                pooled: bool = False) -> None:
    """Process entry point: a dispatch loop over coordinator messages.

    The first message is normally this rank's :class:`ScatterMsg`; after
    reporting ``done`` the process stays in the loop as a rebalance
    helper, ready to execute a :class:`~repro.dist.comm.HandoffMsg` of
    blocks reclaimed from a straggler, until the coordinator terminates
    it at teardown.  A :class:`~repro.dist.comm.RelinquishMsg` landing
    here (rather than at a mid-run block boundary) raced against this
    rank's completion or respawn — it is acked empty so the coordinator
    can retire the request.

    Pooled lifetime: under a :class:`~repro.dist.pool.WorkerPool`
    (``pooled=True``) the same loop serves one :class:`ScatterMsg` *per
    job*, process outliving run; ``tile_cache`` (pickled empty at spawn,
    populated here) is the process-lifetime warm B-tile cache that makes
    job N+1 over the same B fingerprint start hot.  Any unrecognised
    directive — the serving layer's shutdown pill included — exits the
    loop quietly.

    Protocol:
        recv scatter: coordinator -> worker [data]
        send done: worker -> coordinator [data]
        send error: worker -> coordinator [data]
        recv relinquish: coordinator -> worker [data]
        send relinquished: worker -> coordinator [data]
        recv handoff: coordinator -> worker [data]
        send handoff_done: worker -> coordinator [data]

    The ``error`` message carries the attempt number of the scatter it
    was executing (``-1`` if the failure preceded the scatter), so the
    coordinator can discard reports from superseded attempts instead of
    recovering a rank it already recovered.  A failed handoff is reported
    as a ``handoff_done`` with a ``None`` C index — the coordinator
    re-executes those blocks on its inline spare.
    """
    t_spawn = time.monotonic()
    attempt = -1
    try:
        while True:
            _, msg, _ = endpoint.recv()
            if isinstance(msg, ScatterMsg):
                attempt = msg.attempt
                # A pooled worker roots each job's trace at scatter
                # receipt: its idle stretch between jobs (and every
                # previous job's spans) must not bleed into this job's
                # inbox-wait accounting.  One-shot workers keep the
                # spawn-rooted origin so process startup stays visible.
                report = run_rank(
                    msg,
                    origin=None if pooled else t_spawn,
                    recv_done=None if pooled else time.monotonic(),
                    endpoint=endpoint, tile_cache=tile_cache,
                )
                endpoint.send(COORDINATOR, ("done", rank, report))
            elif isinstance(msg, RelinquishMsg):
                endpoint.send(
                    COORDINATOR, ("relinquished", rank, msg.attempt, ())
                )
            elif isinstance(msg, HandoffMsg):
                try:
                    c_index, stats = run_handoff(msg, tile_cache=tile_cache)
                except Exception:  # noqa: BLE001 - helper failure is recoverable
                    endpoint.send(
                        COORDINATOR,
                        ("handoff_done", rank, msg.handoff_id, None, None),
                    )
                else:
                    endpoint.send(
                        COORDINATOR,
                        ("handoff_done", rank, msg.handoff_id, c_index, stats),
                    )
            else:
                return  # unknown directive (incl. the serve pool's shutdown pill): exit quietly
    except BaseException:  # noqa: BLE001 - ship the traceback to the coordinator
        try:
            endpoint.send(
                COORDINATOR, ("error", rank, attempt, traceback.format_exc())
            )
        except Exception:  # pragma: no cover - fabric itself broken
            pass
