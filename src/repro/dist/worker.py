"""The per-rank worker process of the distributed executor.

Each worker is one planned process rank.  Life of a worker: receive one
:class:`ScatterMsg` from the coordinator, attach the shared-memory arenas,
execute its :class:`~repro.core.plan.ProcPlan` through the *same*
:func:`repro.runtime.numeric.execute_proc_plan` body the serial executor
uses (hence bit-identical numerics), write its C tiles into its output
arena, and send a :class:`WorkerReport` back.

The worker overlaps transfers with compute the way the paper's control DAG
does: a prefetch thread copies the *next* chunk's A tiles out of the shared
A arena (the "H2D" of the double-buffered 25 % staging area) while the main
thread runs the current chunk's GEMMs; a ``Queue(maxsize=1)`` is exactly
the one-chunk-ahead prefetch depth the 25/25 split allows.

Fault injection lives here too: after the *k*-th GEMM task the worker
either dies abruptly (``os._exit`` — no report, no cleanup, like a crashed
MPI rank) or stalls, per the scattered :class:`~repro.dist.faults.FaultInjection`.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import traceback
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.grid import ProcessGrid
from repro.core.plan import Block, ProcPlan
from repro.dist.bservice import ArenaBSource, BService
from repro.dist.comm import COORDINATOR, Endpoint
from repro.dist.faults import FaultInjection
from repro.dist.tile_store import ArenaMeta, TileArena
from repro.runtime.numeric import NumericStats, execute_proc_plan


@dataclass(frozen=True)
class ScatterMsg:
    """Everything one rank needs to execute its slice of the plan."""

    proc: ProcPlan
    grid: ProcessGrid
    gpus_per_proc: int
    gpu_memory_bytes: int
    b_csr: object
    tau: float | None
    alpha: float
    a_meta: ArenaMeta
    b_spec: tuple
    c_meta: ArenaMeta | None
    fault: FaultInjection | None
    attempt: int
    t0: float


@dataclass
class WorkerReport:
    """One rank's results: stats, C-tile index, trace events, link bytes."""

    rank: int
    attempt: int
    stats: NumericStats
    c_index: dict[tuple[int, int], tuple[int, int, int]]
    events: list[tuple[str, str, float, float]] = field(default_factory=list)
    link_bytes: dict[tuple[int, int], int] = field(default_factory=dict)
    b_max_instantiations: int = 0
    b_lru_evictions: int = 0


def modeled_a_link_bytes(
    proc: ProcPlan, grid: ProcessGrid, a_meta: ArenaMeta
) -> dict[tuple[int, int], int]:
    """Grid-row A-broadcast bytes charged to ``owner -> rank`` links.

    Mirrors the inspector's per-process ``a_recv_bytes`` (Section 3.2.4):
    each needed-but-remote A tile under the 2D-cyclic placement moves once.
    """
    links: Counter = Counter()
    for i, k in zip(proc.a_needed_rows.tolist(), proc.a_needed_cols.tolist()):
        owner_col = k % grid.q
        if owner_col != proc.col:
            owner = grid.rank(proc.row, owner_col)
            links[(owner, proc.rank)] += a_meta.tile_nbytes((i, k))
    return dict(links)


def _prefetching_fetcher(a_arena: TileArena, events: list, clock, rank: int):
    """A ``chunk_fetcher`` that double-buffers A chunks via a thread per block."""

    def fetcher(g: int, bi: int, block: Block):
        chunk_q: queue.Queue = queue.Queue(maxsize=1)
        link = f"gpu.{rank}.{g}.link"

        def produce() -> None:
            for ci, chunk in enumerate(block.chunks):
                t_start = clock()
                tiles = [
                    np.array(a_arena.get((i, k)))
                    for i, k in zip(chunk.a_rows.tolist(), chunk.a_cols.tolist())
                ]
                events.append((f"block{bi}.chunk{ci}.prefetch", link, t_start, clock()))
                chunk_q.put(tiles)

        threading.Thread(target=produce, daemon=True).start()

        def fetch(ci: int, chunk) -> list[np.ndarray]:
            return chunk_q.get()

        return fetch

    return fetcher


def run_rank(msg: ScatterMsg) -> WorkerReport:
    """Execute one scattered rank; returns the report (arena already written)."""
    attached: list[TileArena] = []
    try:
        a_arena = TileArena.attach(msg.a_meta)
        attached.append(a_arena)

        kind, payload = msg.b_spec
        if kind == "arena":
            b_arena = TileArena.attach(payload)
            attached.append(b_arena)
            b_source = ArenaBSource(b_arena)
        else:
            b_source = BService(payload, budget_bytes=msg.gpu_memory_bytes)

        c_arena = TileArena.attach(msg.c_meta) if msg.c_meta is not None else None
        if c_arena is not None:
            attached.append(c_arena)

        clock = lambda: time.time() - msg.t0  # noqa: E731 - shared wall clock
        events: list[tuple[str, str, float, float]] = []

        fault = msg.fault
        executed = 0

        def on_task() -> None:
            nonlocal executed
            executed += 1
            if fault is not None and executed == fault.at_task:
                if fault.kind == "kill":
                    os._exit(99)
                time.sleep(fault.delay_seconds)

        produced, stats = execute_proc_plan(
            msg.proc,
            lambda i, k: a_arena.get((i, k)),
            b_source,
            gpus_per_proc=msg.gpus_per_proc,
            gpu_memory_bytes=msg.gpu_memory_bytes,
            b_csr=msg.b_csr,
            tau=msg.tau,
            alpha=msg.alpha,
            chunk_fetcher=_prefetching_fetcher(a_arena, events, clock, msg.proc.rank),
            on_task=on_task if fault is not None else None,
            on_event=lambda task, res, s, e: events.append((task, res, s, e)),
            clock=clock,
        )
        stats.b_tiles_generated = b_source.generated_tiles()

        c_index: dict[tuple[int, int], tuple[int, int, int]] = {}
        t_wb = clock()
        for key, tile in produced.items():
            c_index[key] = c_arena.put(key, tile)
        events.append((f"writeback.{msg.proc.rank}", f"net.{msg.proc.rank}", t_wb, clock()))

        return WorkerReport(
            rank=msg.proc.rank,
            attempt=msg.attempt,
            stats=stats,
            c_index=c_index,
            events=events,
            link_bytes=modeled_a_link_bytes(msg.proc, msg.grid, msg.a_meta),
            b_max_instantiations=b_source.max_instantiations(),
            b_lru_evictions=getattr(b_source, "lru_evictions", 0),
        )
    finally:
        for arena in attached:
            arena.close()


def worker_main(rank: int, endpoint: Endpoint) -> None:
    """Process entry point: one scatter in, one report (or error) out."""
    try:
        _, msg, _ = endpoint.recv()
        report = run_rank(msg)
        endpoint.send(COORDINATOR, ("done", rank, report))
    except BaseException:  # noqa: BLE001 - ship the traceback to the coordinator
        try:
            endpoint.send(COORDINATOR, ("error", rank, traceback.format_exc()))
        except Exception:  # pragma: no cover - fabric itself broken
            pass
