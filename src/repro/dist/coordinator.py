"""The coordinator: scatter the plan, supervise workers, reduce C.

:func:`execute_plan_distributed` is the multi-process twin of
:func:`repro.runtime.numeric.execute_plan`: same signature semantics, same
result *bit for bit* (each rank runs the identical per-process body, and
the reduction applies the identical ``beta*C`` seeding and one-producer
accumulation).  The serial executor is therefore the crosscheck oracle for
this one.

Responsibilities:

* **scatter** — pack A (and a concrete B) into shared-memory arenas, ship
  each rank its :class:`~repro.dist.worker.ScatterMsg` through the
  :class:`~repro.dist.comm.CommLayer` (bytes counted per link);
* **supervise** — gather reports; a worker that exits without reporting
  (crash, kill fault) or reports an error is *retried once* in a fresh
  process, and if that attempt also fails its blocks are *reassigned* to a
  coordinator-local spare worker, so a single faulty rank cannot lose the
  contraction;
* **reduce** — seed ``beta*C``, copy every rank's C tiles out of its
  output arena enforcing the one-producer-per-tile invariant, and merge
  per-rank :class:`~repro.runtime.numeric.NumericStats` via
  :meth:`NumericStats.merge`;
* **observe** — merge every rank's monotonic
  :class:`~repro.runtime.tracing.SpanStream` (clock origins aligned via
  each recorder's single wall-clock sample) into one
  :class:`~repro.runtime.tracing.Trace`, so ``to_chrome_trace()`` and
  utilization queries work on real runs exactly as on simulated ones;
* **monitor** — drain worker heartbeats off the comm layer's telemetry
  channel into a live :class:`~repro.dist.health.RunHealth`: a rank
  silent for ``stall_after_beats`` heartbeat intervals is declared
  *stalled* and fed into the same recovery path a crashed worker takes
  (terminate, retry once, then reassign), slow-but-beating ranks are
  flagged as stragglers, and every life-cycle transition is appended to
  the ``events_path`` JSONL log (the attach point for ``repro monitor``);
* **rebalance** — with ``rebalance=True``, a flagged straggler is asked
  to relinquish its unstarted blocks; the acked positions are handed off
  to a finished worker rank (or the coordinator's inline spare) as a
  :class:`~repro.dist.comm.HandoffMsg`, executed through the same block
  body for bit parity, journaled under the origin's rank into sidecar
  journals, and folded into the reduction as their own producer — one
  owner per block at every instant, so the one-producer-per-tile
  invariant survives any steal x fault interleaving (rules M407/M408 in
  the protocol model);
* **clean up** — terminate stragglers and unlink every shared-memory
  segment in a ``finally``, success or not (the leak tests attach-probe
  every name afterwards).

Clock policy: every run-relative clock and deadline here is
``time.monotonic()`` — an NTP step can neither fire nor suppress the
fault-recovery deadline, and durations can never go negative.  The single
wall-clock stamp (``DistReport.started_at``, taken inside
:class:`SpanRecorder`) exists only to label reports and align per-rank
span streams.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.perf import Attribution, PerfModel, RooflineAudit

from repro.core.plan import ExecutionPlan
from repro.dist.bservice import ArenaBSource, BService, validate_b_budget
from repro.dist.comm import (
    COORDINATOR,
    BlockDoneMsg,
    CommLayer,
    CommStats,
    Empty,
    HandoffMsg,
    RelinquishMsg,
)
from repro.dist.faults import FaultPlan
from repro.dist.health import EventLog, RunHealth
from repro.dist.tile_store import TileArena
from repro.dist.worker import (
    ABORT_EXIT_CODE,
    ScatterMsg,
    WorkerReport,
    checkpoint_hooks,
    execute_handoff_blocks,
    modeled_a_link_bytes,
    worker_main,
)
from repro.runtime.data import GeneratedCollection, MatrixSource
from repro.runtime.metrics import MetricsRegistry, MetricsSnapshot
from repro.runtime.numeric import NumericStats, execute_proc_plan
from repro.runtime.tracing import SpanRecorder, Trace
from repro.sparse.matrix import BlockSparseMatrix
from repro.store import (
    TileStore,
    WritebackJournal,
    b_fingerprint,
    plan_fingerprint,
    read_snapshot,
    run_fingerprint,
    validated_completed_blocks,
    write_snapshot,
)
from repro.util.units import fmt_bytes, fmt_time
from repro.util.validation import require

#: Seconds a vanished worker gets to flush a late report before the
#: coordinator declares it dead.
_GRACE_SECONDS = 1.0

#: Upper bound between patrol passes: dead-worker/stall/straggler checks
#: must run on a monotonic cadence even when the message and telemetry
#: streams never go quiet (a busy inbox used to starve detection).
_PATROL_INTERVAL_SECONDS = 0.1

#: Seconds an outstanding handoff may run on a helper rank before the
#: coordinator gives up on it and re-executes the blocks inline.
_HANDOFF_TIMEOUT_SECONDS = 60.0


class DistExecutionError(RuntimeError):
    """The distributed run could not complete (even after recovery)."""


@dataclass
class DistReport:
    """Everything observed about one distributed run."""

    stats: NumericStats
    trace: Trace
    comm: CommStats
    attempts: dict[int, int]
    reassigned: list[int]
    segments: list[str]
    b_max_instantiations: int = 0
    nworkers: int = 0
    started_at: float = 0.0  # wall-clock stamp, labeling only
    b_hits: int = 0
    b_evictions: int = 0
    spans_dropped: int = 0
    shm_bytes: int = 0
    metrics: MetricsSnapshot | None = None
    health: RunHealth | None = None
    events_path: str | None = None
    stalled: list[int] = field(default_factory=list)
    checkpoint_dir: str | None = None
    run_hash: str = ""
    plan_hash: str = ""
    blocks_restored: int = 0
    tasks_skipped: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_puts: int = 0
    #: B tiles served from any cache tier (warm in-process or disk)
    #: instead of generated — nonzero on a warm pooled run's repeat job.
    b_store_hits: int = 0
    handoffs: int = 0
    blocks_rebalanced: int = 0
    tasks_rebalanced: int = 0
    #: Predicted-cost model of the executed plan (when tracing was on);
    #: feeds :meth:`audit` and ``repro explain``.
    model: "PerfModel | None" = None
    #: Merged recorder counters from every rank (dropped.<resource>
    #: seconds, bytes.* accumulators, B-service hit counts, ...).
    span_counters: dict[str, float] = field(default_factory=dict)
    #: Run identifier the caller scoped this run's artifacts under
    #: (``None`` for unscoped one-shot runs).
    run_id: str | None = None

    @property
    def span_dropped(self) -> int:
        """Deprecated alias for :attr:`spans_dropped` (pre-rename name)."""
        return self.spans_dropped

    def summary(self) -> str:
        retried = {r: a for r, a in self.attempts.items() if a > 1}
        return (
            f"{self.nworkers} workers, {self.stats.ntasks} tasks, "
            f"comm: {self.comm.summary()}"
            + (f", retried {sorted(retried)}" if retried else "")
            + (f", stalled {sorted(set(self.stalled))}" if self.stalled else "")
            + (f", reassigned {sorted(self.reassigned)}" if self.reassigned else "")
            + (
                f", resumed {self.blocks_restored} block(s) "
                f"({self.tasks_skipped} tasks skipped)"
                if self.blocks_restored else ""
            )
            + (
                f", rebalanced {self.blocks_rebalanced} block(s) "
                f"({self.tasks_rebalanced} tasks over {self.handoffs} "
                f"handoff(s))"
                if self.blocks_rebalanced else ""
            )
        )

    # -- derived observability metrics ---------------------------------------

    def rank_utilization(self) -> dict[int, float]:
        """Per-rank GPU busy fraction over the run.

        GEMM-span seconds on a rank's ``gpu.<rank>.<g>.comp`` resources,
        normalized by the makespan times the number of that rank's GPU
        streams that appear in the trace (so a fully busy multi-GPU rank
        reports 1.0, not the GPU count).  Empty when tracing was disabled.
        """
        span = self.trace.makespan
        if span <= 0:
            return {}
        busy: dict[int, float] = {}
        streams: dict[int, set[str]] = {}
        for e in self.trace.events:
            parts = e.resource.split(".")
            if parts[0] == "gpu" and parts[-1] == "comp":
                rank = int(parts[1])
                busy[rank] = busy.get(rank, 0.0) + e.duration
                streams.setdefault(rank, set()).add(e.resource)
        return {r: busy[r] / (span * len(streams[r])) for r in sorted(busy)}

    def queue_wait_seconds(self) -> dict[int, float]:
        """Per-rank seconds spent blocked on queues.

        Sums the prefetch hand-off waits (``*.qwait`` on the GPUs' ``.wait``
        resources) and the initial scatter inbox wait per rank.
        """
        waits: dict[int, float] = {}
        for e in self.trace.events:
            if e.resource.endswith(".wait") or e.task == "inbox.wait":
                rank = int(e.resource.split(".")[1])
                waits[rank] = waits.get(rank, 0.0) + e.duration
        return dict(sorted(waits.items()))

    def observability_summary(self) -> str:
        """A human-readable digest of the merged trace and counters."""
        lines = [f"makespan {fmt_time(self.trace.makespan)}; {self.summary()}"]
        util = self.rank_utilization()
        if util:
            lines.append(
                "per-rank GPU busy fraction: "
                + ", ".join(f"rank {r}: {u:.1%}" for r, u in util.items())
            )
        waits = self.queue_wait_seconds()
        if waits:
            lines.append(
                "per-rank queue wait: "
                + ", ".join(f"rank {r}: {fmt_time(w)}" for r, w in waits.items())
            )
        lines.append(
            f"B service: {self.stats.b_tiles_generated} generated, "
            f"{self.b_hits} hits, {self.b_evictions} LRU evictions"
        )
        lines.append(
            f"shared memory: {len(self.segments)} segments, "
            f"{fmt_bytes(self.shm_bytes)} of tiles"
        )
        if self.checkpoint_dir is not None or self.store_puts or self.store_hits:
            lines.append(
                f"tile store: {self.store_hits} hits, {self.store_misses} "
                f"misses, {self.store_puts} puts"
                + (
                    f"; checkpoint: {self.blocks_restored} block(s) restored, "
                    f"{self.tasks_skipped} tasks skipped"
                    if self.checkpoint_dir is not None else ""
                )
            )
        if self.health is not None and self.health.heartbeats:
            lines.append(
                f"telemetry: {self.health.heartbeats} heartbeats "
                f"({fmt_bytes(self.comm.telemetry_total())})"
            )
        if self.spans_dropped:
            lost = sum(
                v for k, v in self.span_counters.items()
                if k.startswith("dropped.")
            )
            lines.append(
                f"WARNING: {self.spans_dropped} spans dropped at the recorder "
                f"bound" + (f" ({fmt_time(lost)} of busy time lost)" if lost else "")
            )
        lines.append(self.comm.table())
        return "\n".join(lines)

    # -- performance attribution (repro.perf) --------------------------------

    def attribution(self) -> "Attribution":
        """Critical-path blame buckets of the merged trace (see
        :func:`repro.perf.attribute`)."""
        from repro.perf import attribute

        return attribute(self.trace)

    def audit(self, band: tuple[float, float] | None = None) -> "RooflineAudit":
        """Model-vs-measured audit of the run (see
        :func:`repro.perf.audit_run`).  Empty when the run was untraced."""
        from repro.perf import DEFAULT_BAND, audit_run

        return audit_run(
            self.trace,
            self.model,
            comm_link_bytes=dict(self.comm.link_bytes),
            band=band if band is not None else DEFAULT_BAND,
        )


def _start_method() -> str:
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def execute_plan_distributed(
    plan: ExecutionPlan,
    a: BlockSparseMatrix,
    b,
    c: BlockSparseMatrix | None = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    *,
    fault_plan: FaultPlan | None = None,
    max_retries: int = 1,
    allow_reassign: bool = True,
    timeout: float = 120.0,
    start_method: str | None = None,
    verify_plan: bool = False,
    trace: bool = True,
    trace_max_spans: int = 200_000,
    heartbeat_interval: float = 0.25,
    stall_after_beats: int = 8,
    straggler_fraction: float = 0.25,
    metrics: bool = True,
    events_path: str | None = None,
    checkpoint_dir: str | None = None,
    store_dir: str | None = None,
    store_budget_bytes: int | None = None,
    snapshot_interval: float = 1.0,
    rebalance: bool = False,
    pool=None,
    run_id: str | None = None,
) -> tuple[BlockSparseMatrix, DistReport]:
    """Run the plan across one real worker process per planned rank.

    Returns ``(C, report)`` with ``C`` bit-for-bit equal to the serial
    :func:`~repro.runtime.numeric.execute_plan` result for the same
    operands and seeds.  ``fault_plan`` sabotages workers for recovery
    testing; ``max_retries``/``allow_reassign`` tune the recovery policy
    (retry-once-then-reassign by default).  ``verify_plan=True`` runs the
    static plan verifier (:func:`repro.analysis.verify_plan`) first and
    raises :class:`repro.analysis.PlanVerificationError` on any finding —
    a corrupted plan is rejected before a single worker process spawns or
    a single shared-memory segment is created.  ``trace=False`` disables
    span recording end to end (no clock reads in the workers' hot loops);
    the numeric result is identical either way.

    Live telemetry: with a positive ``heartbeat_interval`` every worker
    beats on the out-of-band telemetry channel; a rank silent for
    ``stall_after_beats`` intervals (plus a startup grace before its
    first beat) is treated exactly like a crashed one — terminated,
    retried, then reassigned.  ``heartbeat_interval=0`` disables both
    heartbeats and stall detection.  ``metrics`` ships a cumulative
    :class:`~repro.runtime.metrics.MetricsSnapshot` with each beat and
    report; the merged run-wide snapshot lands in ``report.metrics``.
    ``events_path`` appends the run's life-cycle (``plan_accepted``,
    ``worker_up``, ``heartbeat``, ``stall``, ``reassign``, ``done``, ...)
    as JSONL — the file ``repro monitor`` tails.  A ``run_id`` scopes the
    log to a per-run file (``run-events.<run_id>.jsonl``) and stamps
    every record, so concurrent jobs sharing an events directory never
    clobber each other; ``report.events_path`` names the file written.

    Pooled execution: ``pool`` (a :class:`~repro.dist.pool.WorkerPool`
    with ``pool.nranks == plan.grid.nprocs``) lends this run its comm
    layer and warm worker processes — the coordinator spawns nothing it
    can reuse and, crucially, terminates nothing in its ``finally``, so
    the processes (and any warm B-tile caches inside them) survive for
    the next run.  The pool's owner is responsible for teardown
    (:meth:`~repro.dist.pool.WorkerPool.close`) and, after a run that
    raised, for resetting the pool (a worker may still be computing for
    the dead run; :mod:`repro.serve` recycles the processes and drains
    stale traffic).  ``start_method`` is ignored when a pool is given —
    the pool's context wins.

    Persistence: ``store_dir`` roots a :class:`~repro.store.TileStore`
    that backs every rank's B service as a second cache tier (tiles
    generated once are reused across runs and ranks).  ``checkpoint_dir``
    additionally turns on crash-consistent checkpointing: each rank
    journals every completed block (C tiles to the store first, then an
    fsynced journal line), the coordinator snapshots run identity and
    per-rank progress every ``snapshot_interval`` seconds, and *every*
    scatter — first attempt, retry, or a whole fresh run over the same
    directory — first restores the journaled blocks instead of
    recomputing them.  A run killed at any instant (including via the
    ``abort`` fault, which fails the whole job unrecoverably) therefore
    resumes bit-for-bit identical to an uninterrupted run.  A checkpoint
    directory whose snapshot records a *different plan* is refused up
    front (the P121 analysis rule makes the same check statically);
    ``store_budget_bytes`` bounds the store on disk via LRU GC.

    Rebalancing: ``rebalance=True`` turns straggler detection into
    action.  A flagged straggler is sent a cooperative relinquish
    request; at its next block boundary it acks the positions of its
    unstarted blocks, which the coordinator hands off to a finished
    worker rank (or executes inline) and reduces as their own producer.
    Relinquished positions are excluded from any later retry of the
    origin, and handoff journals land in per-handoff sidecar files under
    the origin's rank, so checkpoint/resume replays ownership transfers
    transparently.  The result stays bit-for-bit equal to the serial
    executor.

    Protocol:
        recv done: worker -> coordinator [data]
        recv error: worker -> coordinator [data]
        recv relinquished: worker -> coordinator [data]
        recv handoff_done: worker -> coordinator [data]

    Both reports carry the attempt number they belong to; the supervise
    loop discards any report from a superseded attempt (a retry raced
    the patrol's grace window) — acting on one would credit a
    half-written C arena or recover a rank twice.  The full protocol is
    declared as a checkable model in
    :mod:`repro.analysis.protocol.spec`; ``repro analyze --model-check``
    explores it exhaustively over small scopes.
    """
    if verify_plan:
        from repro.analysis import assert_plan_valid  # late import: avoid cycle

        assert_plan_valid(plan)
    if isinstance(b, MatrixSource):
        b = b.matrix
    require(a.rows == plan.a_shape.rows and a.cols == plan.a_shape.cols, "A tilings differ from plan")
    require(a.cols == plan.b_shape.rows, "A and B do not conform")
    if isinstance(b, GeneratedCollection):
        # Fail fast: a B tile larger than the per-rank LRU budget would
        # otherwise empty a worker's cache and kill it mid-run.
        validate_b_budget(b.shape, plan.gpu_memory_bytes)
    if fault_plan is not None:
        for inj in fault_plan.injections:
            require(
                inj.rank < plan.grid.nprocs,
                f"fault injection targets rank {inj.rank}, but the plan has "
                f"only {plan.grid.nprocs} rank(s)",
            )

    # ---- persistence / checkpoint identity --------------------------------
    persist = checkpoint_dir is not None or store_dir is not None
    plan_hash = b_hash = run_hash = ""
    coord_store: TileStore | None = None
    if persist or pool is not None:
        # A pooled run fingerprints its operands even without a disk
        # tier: the workers' process-lifetime warm caches are keyed by
        # the B fingerprint, and an empty namespace would alias operands.
        plan_hash = plan_fingerprint(plan)
        b_hash = b_fingerprint(b)
        run_hash = run_fingerprint(plan_hash, b_hash, alpha)
    if persist:
        store_root = store_dir or f"{checkpoint_dir}/store"
        if checkpoint_dir is not None:
            snap = read_snapshot(checkpoint_dir)
            if snap is not None and snap.get("plan") not in (None, plan_hash):
                raise DistExecutionError(
                    f"checkpoint directory {checkpoint_dir!r} belongs to a "
                    f"different plan (snapshot plan hash "
                    f"{str(snap.get('plan'))[:12]}..., this plan "
                    f"{plan_hash[:12]}...); resume with the original "
                    f"operands/grid or point checkpoint_dir at a fresh "
                    f"directory"
                )
        coord_store = TileStore(store_root, budget_bytes=store_budget_bytes)

    nranks = plan.grid.nprocs
    if pool is not None:
        require(not pool.closed, "worker pool is closed")
        require(
            pool.nranks == nranks,
            f"plan wants {nranks} rank(s) but the pool serves {pool.nranks}",
        )
        ctx = pool.ctx
        comm = pool.comm
    else:
        ctx = mp.get_context(start_method or _start_method())
        comm = CommLayer(nranks, ctx)
    coord = comm.endpoint(COORDINATOR)
    comm_stats = CommStats()
    # The coordinator's own recorder doubles as the run's monotonic clock
    # and the alignment anchor for every rank's span stream.
    rec = SpanRecorder(enabled=trace, max_spans=trace_max_spans)
    clock = rec.now

    registry = MetricsRegistry(enabled=metrics)
    m_heartbeats = registry.counter(
        "repro_heartbeats_total", "worker heartbeats received"
    )
    m_stalls = registry.counter(
        "repro_stalls_detected_total", "ranks declared stalled via missed heartbeats"
    )
    m_retries = registry.counter(
        "repro_worker_retries_total", "worker processes respawned after a failure"
    )
    m_reassigned = registry.counter(
        "repro_ranks_reassigned_total", "ranks reassigned to the coordinator"
    )
    m_rebalance_requests = registry.counter(
        "repro_rebalance_requests_total",
        "relinquish requests sent to flagged stragglers",
    )
    m_rebalance_blocks = registry.counter(
        "repro_rebalance_blocks_reclaimed_total",
        "blocks reclaimed from stragglers and handed off",
    )
    m_rebalance_tasks = registry.counter(
        "repro_rebalance_tasks_moved_total",
        "GEMM tasks moved off stragglers by the rebalancer",
    )
    m_rebalance_handoffs = registry.counter(
        "repro_rebalance_handoffs_total",
        "handoffs dispatched (to helper ranks or the inline spare)",
    )
    m_blocks_completed = registry.counter(
        "repro_blocks_completed_total",
        "per-block completion reports received on the telemetry channel",
    )
    health = RunHealth(
        heartbeat_interval=heartbeat_interval,
        stall_after_beats=stall_after_beats,
        straggler_fraction=straggler_fraction,
    )
    events = EventLog(events_path, run_id)
    events.emit(
        "plan_accepted",
        nranks=nranks,
        heartbeat_interval=heartbeat_interval,
        stall_after_beats=stall_after_beats,
        tasks_per_rank={r: plan.procs[r].ntasks for r in range(nranks)},
    )

    arenas: list[TileArena] = []
    workers: dict[int, mp.Process] = {}
    # clock() stamps bracketing each rank's life outside its own recorder:
    # ``spawn_clock`` at proc.start(), ``report_clock`` at done-report
    # receipt.  At merge time the windows they bound against the worker's
    # own span extent become measured ``spawn.<rank>`` / ``report.<rank>``
    # spans (process startup; report serialization + shipping) instead of
    # unattributable idle on the critical path.
    spawn_clock: dict[int, float] = {}
    report_clock: dict[int, float] = {}
    try:
        # ---- pack operands into shared memory -----------------------------
        with rec.span("pack.a", "net.-1"):
            a_arena = TileArena.pack("a", a.items())
            arenas.append(a_arena)
        a_meta = a_arena.meta()

        b_arena = None
        if isinstance(b, BlockSparseMatrix):
            with rec.span("pack.b", "net.-1"):
                b_arena = TileArena.pack("b", b.items())
                arenas.append(b_arena)
            b_spec = ("arena", b_arena.meta())
        elif isinstance(b, GeneratedCollection):
            b_spec = ("generated", b.empty_clone())
        else:
            raise TypeError(
                f"distributed execution needs a BlockSparseMatrix or "
                f"GeneratedCollection B, got {type(b).__name__}"
            )

        def make_c_arena(rank: int, attempt: int) -> TileArena:
            cap = sum(blk.c_bytes for blk in plan.procs[rank].blocks)
            arena = TileArena.allocate(f"c{rank}a{attempt}", cap)
            arenas.append(arena)
            return arena

        # ---- scatter ------------------------------------------------------
        attempts = {rank: 1 for rank in range(nranks)}
        c_arenas: dict[int, TileArena] = {}
        #: The freshest cumulative MetricsSnapshot per rank — heartbeats
        #: update it live, the rank's final report supersedes them.
        last_metrics: dict[int, MetricsSnapshot] = {}

        def completed_for(rank: int) -> tuple:
            """Journaled-and-validated blocks this scatter may skip.

            Re-read from disk on *every* scatter: a fresh run resumes a
            prior run's journal, and a retried rank resumes whatever its
            killed predecessor managed to journal this run.
            """
            if checkpoint_dir is None:
                return ()
            done = validated_completed_blocks(
                checkpoint_dir, rank, run_hash, coord_store
            )
            return tuple(
                (g, bi, rec_.tiles) for (g, bi), rec_ in sorted(done.items())
            )

        #: Block positions reclaimed from each rank, cumulative across its
        #: attempts: a retried origin must never re-execute a block the
        #: rebalancer already owns (that would double-produce its tiles).
        stolen_blocks: dict[int, set[tuple[int, int]]] = {}

        def stolen_tasks(rank: int) -> int:
            return sum(
                plan.procs[rank].gpu_blocks(g)[bi].ntasks
                for g, bi in stolen_blocks.get(rank, ())
            )

        def scatter(rank: int, attempt: int) -> None:
            """Ship one rank's plan, arenas, restore and exclusion lists.

            Protocol:
                send scatter: coordinator -> worker [data]
            """
            c_arenas[rank] = make_c_arena(rank, attempt)
            inj = fault_plan.for_rank(rank) if fault_plan is not None else None
            if inj is not None and not inj.armed(attempt):
                inj = None
            stolen = stolen_blocks.get(rank, set())
            # A journal may already hold stolen blocks (the handoff's
            # sidecar): they are the handoff's to produce, not this rank's
            # to restore.
            completed = tuple(
                t for t in completed_for(rank) if (t[0], t[1]) not in stolen
            )
            if completed:
                events.emit(
                    "resume", rank=rank, attempt=attempt,
                    blocks=len(completed),
                    tasks_skipped=sum(
                        plan.procs[rank].gpu_blocks(g)[bi].ntasks
                        for g, bi, _ in completed
                    ),
                )
            msg = ScatterMsg(
                proc=plan.procs[rank],
                grid=plan.grid,
                gpus_per_proc=plan.grid.gpus_per_proc,
                gpu_memory_bytes=plan.gpu_memory_bytes,
                b_csr=plan.b_shape.csr,
                tau=plan.options.screen_threshold,
                alpha=alpha,
                a_meta=a_meta,
                b_spec=b_spec,
                c_meta=c_arenas[rank].meta(),
                fault=inj,
                attempt=attempt,
                trace=trace,
                max_spans=trace_max_spans,
                heartbeat_interval=heartbeat_interval,
                metrics=metrics,
                store_dir=store_dir,
                store_budget=store_budget_bytes,
                b_hash=b_hash,
                ckpt_dir=checkpoint_dir,
                run_hash=run_hash,
                completed=completed,
                excluded=tuple(sorted(stolen)),
                rebalance=rebalance,
            )
            t_send = clock()
            sent = coord.send(rank, msg)
            rec.record(f"scatter.{rank}", f"net.{rank}", t_send, clock())
            rec.count("bytes.scatter", sent)
            health.on_scatter(
                rank, plan.procs[rank].ntasks - stolen_tasks(rank), attempt,
                time.monotonic(),
            )
            last_metrics.pop(rank, None)  # a fresh attempt restarts its counters
            events.emit(
                "scatter", rank=rank, attempt=attempt,
                tasks_total=plan.procs[rank].ntasks,
            )

        def spawn(rank: int) -> None:
            spawn_clock[rank] = clock()
            if pool is not None:
                # Borrowed process: alive from a previous run (warm) or
                # respawned by the pool after a failure.  The pool keeps
                # the canonical record; ``workers`` mirrors it so the
                # supervise loop's liveness checks read one dict.
                workers[rank] = pool.ensure(rank)
                return
            proc = ctx.Process(
                target=worker_main, args=(rank, comm.endpoint(rank)), daemon=True
            )
            proc.start()
            workers[rank] = proc

        for rank in range(nranks):
            spawn(rank)
            scatter(rank, attempt=0)

        # ---- supervise / gather -------------------------------------------
        reports: dict[int, WorkerReport] = {}
        local_results: dict[int, dict] = {}
        reassigned: list[int] = []
        stalled: list[int] = []
        pending = set(range(nranks))
        suspects: dict[int, float] = {}
        deadline = time.monotonic() + timeout

        # ---- rebalance state ---------------------------------------------
        #: rank -> attempt of the one relinquish request in flight to it.
        outstanding_relinquish: dict[int, int] = {}
        #: handoff id -> dispatch record (origin, helper, blocks, arena).
        pending_handoffs: dict[int, dict] = {}
        #: handoff id -> (origin, tile payload, stats) for the reduction.
        handoff_results: dict[int, tuple] = {}
        next_handoff = 0

        def run_inline(rank: int) -> None:
            """Reassign a twice-failed rank to a coordinator-local worker."""
            if b_arena is not None:
                b_local = ArenaBSource(b_arena)
            else:
                b_local = BService(
                    b.empty_clone(), budget_bytes=plan.gpu_memory_bytes, recorder=rec,
                    store=coord_store, store_ns=f"b:{b_hash}",
                )
            restore_block = on_block = None
            journal = None
            ckpt_counters = {"blocks_restored": 0, "tasks_skipped": 0}
            if checkpoint_dir is not None:
                # The inline worker journals and restores exactly like a
                # real rank, so a reassigned rank's progress survives too.
                journal = WritebackJournal(checkpoint_dir, rank)
                restore_block, on_block, ckpt_counters = checkpoint_hooks(
                    coord_store, journal, run_hash, rank,
                    {(g, bi): tiles for g, bi, tiles in completed_for(rank)},
                    registry,
                )
            try:
                produced, stats = execute_proc_plan(
                    plan.procs[rank],
                    a.get_tile,
                    b_local,
                    gpus_per_proc=plan.grid.gpus_per_proc,
                    gpu_memory_bytes=plan.gpu_memory_bytes,
                    b_csr=plan.b_shape.csr,
                    tau=plan.options.screen_threshold,
                    alpha=alpha,
                    on_event=rec.record if rec.enabled else None,
                    clock=clock,
                    restore_block=restore_block,
                    on_block=on_block,
                    # Blocks stolen from this rank belong to their handoffs
                    # now — the inline spare must not produce them twice.
                    skip_block=(
                        (lambda g, bi, blk: (g, bi) in stolen_blocks[rank])
                        if stolen_blocks.get(rank) else None
                    ),
                )
            finally:
                if journal is not None:
                    journal.close()
            stats.b_tiles_generated = b_local.generated_tiles()
            local_results[rank] = produced
            reports[rank] = WorkerReport(
                rank=rank,
                attempt=attempts[rank],
                stats=stats,
                c_index={},
                spans=None,  # recorded directly into the coordinator's stream
                link_bytes=modeled_a_link_bytes(plan.procs[rank], plan.grid, a_meta),
                b_max_instantiations=b_local.max_instantiations(),
                b_hits=b_local.hits,
                b_lru_evictions=b_local.lru_evictions,
                blocks_restored=ckpt_counters["blocks_restored"],
                tasks_skipped=ckpt_counters["tasks_skipped"],
            )
            reassigned.append(rank)
            m_reassigned.inc()
            health.mark(rank, "reassigned")
            events.emit("reassign", rank=rank, attempt=attempts[rank])

        def on_failure(rank: int, reason: str) -> None:
            suspects.pop(rank, None)
            # A retried or reassigned rank starts a fresh attempt: its
            # straggler flag must not outlive the attempt it measured (a
            # slow *second* attempt must be re-flaggable), and any
            # relinquish in flight to the dead attempt is superseded.
            flagged_stragglers.discard(rank)
            outstanding_relinquish.pop(rank, None)
            old = workers.pop(rank, None)
            if old is not None and old.is_alive():
                # Still breathing (a stalled or wedged worker): put it down
                # before its rank is re-executed anywhere else.
                old.terminate()
                old.join(timeout=1.0)
            if attempts[rank] <= max_retries:
                attempts[rank] += 1
                m_retries.inc()
                health.mark(rank, "retried")
                events.emit(
                    "retry", rank=rank, attempt=attempts[rank] - 1, reason=reason
                )
                spawn(rank)
                scatter(rank, attempt=attempts[rank] - 1)
            elif allow_reassign:
                attempts[rank] += 1
                run_inline(rank)
                pending.discard(rank)
            else:
                raise DistExecutionError(
                    f"rank {rank} failed after {attempts[rank]} attempt(s): {reason}"
                )

        def drain_telemetry() -> None:
            """Fold every queued heartbeat into the live health picture.

            Protocol:
                recv heartbeat: worker -> coordinator [telemetry]
                recv block_done: worker -> coordinator [telemetry]
            """
            while True:
                try:
                    src, hb, nbytes = coord.recv_telemetry()
                except Empty:
                    return
                comm_stats.absorb_telemetry({(src, COORDINATOR): nbytes})
                if isinstance(hb, BlockDoneMsg):
                    if hb.attempt == attempts.get(hb.rank, 0) - 1:
                        m_blocks_completed.inc()
                        events.emit(
                            "block_done", rank=hb.rank, attempt=hb.attempt,
                            gpu=hb.gpu, block=hb.block, tasks=hb.ntasks,
                        )
                    continue
                now = time.monotonic()
                first = (
                    health.ranks.get(hb.rank) is not None
                    and health.ranks[hb.rank].first_beat is None
                )
                if not health.on_heartbeat(hb, now):
                    continue  # late beat from a terminated attempt
                m_heartbeats.inc()
                if hb.metrics is not None:
                    last_metrics[hb.rank] = hb.metrics
                if first:
                    events.emit("worker_up", rank=hb.rank, attempt=hb.attempt)
                events.emit(
                    "heartbeat", rank=hb.rank, attempt=hb.attempt, seq=hb.seq,
                    tasks_done=hb.tasks_done, uptime=round(hb.uptime, 3),
                )

        flagged_stragglers: set[int] = set()

        def maybe_relinquish(rank: int) -> None:
            """Ask a flagged straggler to yield its unstarted blocks.

            At most one request per rank is in flight; the pin to the live
            attempt lets the worker (and the supervise loop) discard a
            request that raced a retry.

            Protocol:
                send relinquish: coordinator -> worker [data]
            """
            if not rebalance or rank in outstanding_relinquish or rank not in pending:
                return
            att = attempts[rank] - 1
            outstanding_relinquish[rank] = att
            coord.send(rank, RelinquishMsg(attempt=att))
            m_rebalance_requests.inc()
            events.emit("rebalance", rank=rank, attempt=att)

        def pick_helper() -> int | None:
            """A finished worker rank able to absorb a handoff, or ``None``.

            Only ranks that reported *through the comm layer* qualify: an
            inline-reassigned rank has no worker process to send to.
            """
            for r in sorted(reports):
                if r in pending or r in local_results:
                    continue
                proc = workers.get(r)
                if proc is not None and proc.is_alive():
                    return r
            return None

        def run_handoff_inline(hid: int) -> None:
            """Execute one handoff's blocks in the coordinator process.

            The fallback producer: used when no helper rank is free, when
            the chosen helper dies or reports failure mid-handoff, or when
            a handoff times out.  Re-executing after a partial helper run
            is safe — duplicate journal/store records are bit-identical
            and only this inline result enters the reduction.
            """
            h = pending_handoffs.pop(hid)
            origin = h["origin"]
            if b_arena is not None:
                b_local = ArenaBSource(b_arena)
            else:
                b_local = BService(
                    b.empty_clone(), budget_bytes=plan.gpu_memory_bytes,
                    recorder=rec, store=coord_store, store_ns=f"b:{b_hash}",
                )
            on_block = None
            journal = None
            if checkpoint_dir is not None:
                journal = WritebackJournal(
                    checkpoint_dir, origin, suffix=f".h{hid}"
                )
                _, on_block, _ = checkpoint_hooks(
                    coord_store, journal, run_hash, origin, {}, registry
                )
            try:
                produced, stats = execute_handoff_blocks(
                    h["blocks"],
                    a.get_tile,
                    b_local,
                    origin=origin,
                    gpu_memory_bytes=plan.gpu_memory_bytes,
                    b_csr=plan.b_shape.csr,
                    tau=plan.options.screen_threshold,
                    alpha=alpha,
                    on_block=on_block,
                )
            finally:
                if journal is not None:
                    journal.close()
            stats.b_tiles_generated = b_local.generated_tiles()
            handoff_results[hid] = (origin, dict(produced), stats)
            events.emit(
                "handoff_done", handoff=hid, origin=origin, helper=None,
                tasks=stats.ntasks,
            )

        def dispatch_handoff(origin: int, positions: tuple) -> None:
            """Ship reclaimed blocks to a helper rank (or run them inline).

            Protocol:
                send handoff: coordinator -> worker [data]
            """
            nonlocal next_handoff
            hid = next_handoff
            next_handoff += 1
            blocks_payload = tuple(
                (g, bi, plan.procs[origin].gpu_blocks(g)[bi])
                for g, bi in positions
            )
            moved = sum(blk.ntasks for _, _, blk in blocks_payload)
            helper = pick_helper()
            m_rebalance_handoffs.inc()
            m_rebalance_blocks.inc(len(blocks_payload))
            m_rebalance_tasks.inc(moved)
            events.emit(
                "handoff", handoff=hid, origin=origin, helper=helper,
                blocks=len(blocks_payload), tasks=moved,
            )
            if helper is None:
                pending_handoffs[hid] = {
                    "origin": origin, "helper": None,
                    "blocks": blocks_payload, "arena": None,
                    "started": time.monotonic(),
                }
                run_handoff_inline(hid)
                return
            cap = sum(blk.c_bytes for _, _, blk in blocks_payload)
            arena = TileArena.allocate(f"h{hid}", cap)
            arenas.append(arena)
            pending_handoffs[hid] = {
                "origin": origin, "helper": helper,
                "blocks": blocks_payload, "arena": arena,
                "started": time.monotonic(),
            }
            coord.send(helper, HandoffMsg(
                handoff_id=hid,
                origin=origin,
                blocks=blocks_payload,
                a_meta=a_meta,
                b_spec=b_spec,
                c_meta=arena.meta(),
                gpu_memory_bytes=plan.gpu_memory_bytes,
                b_csr=plan.b_shape.csr,
                tau=plan.options.screen_threshold,
                alpha=alpha,
                store_dir=store_dir,
                store_budget=store_budget_bytes,
                b_hash=b_hash,
                ckpt_dir=checkpoint_dir,
                run_hash=run_hash,
            ))

        def patrol() -> None:
            """Dead-worker, stall, and straggler checks between messages."""
            now = time.monotonic()
            for rank in sorted(pending):
                proc = workers.get(rank)
                if proc is not None and proc.exitcode == ABORT_EXIT_CODE:
                    # The abort fault: the whole job is lost, not one rank —
                    # no retry, no reassignment.  Whatever the journals
                    # captured is the resume point.
                    events.emit("abort", rank=rank, attempt=attempts[rank] - 1)
                    raise DistExecutionError(
                        f"rank {rank} aborted (unrecoverable kill)"
                        + (
                            f"; resume by re-running with "
                            f"checkpoint_dir={checkpoint_dir!r}"
                            if checkpoint_dir is not None else ""
                        )
                    )
                if proc is not None and proc.exitcode is not None:
                    first = suspects.setdefault(rank, now)
                    if now - first >= _GRACE_SECONDS:
                        on_failure(rank, f"worker exited with code {proc.exitcode}")
            for rank in health.stalled_ranks(time.monotonic(), pending):
                m_stalls.inc()
                stalled.append(rank)
                health.mark(rank, "stalled")
                silent = time.monotonic() - health.ranks[rank].last_signal
                events.emit(
                    "stall", rank=rank, attempt=attempts[rank] - 1,
                    silent_seconds=round(silent, 3),
                )
                on_failure(
                    rank,
                    f"stalled: no heartbeat for {silent:.2f} s "
                    f"(> {stall_after_beats} x {heartbeat_interval} s)",
                )
            current = set(health.straggler_ranks(time.monotonic()))
            for rank in sorted(current - flagged_stragglers):
                flagged_stragglers.add(rank)
                health.mark(rank, "straggler")
                events.emit("straggler", rank=rank)
                maybe_relinquish(rank)
            for rank in sorted(flagged_stragglers - current):
                # Recovery: the rank's windowed rate climbed back over the
                # threshold (or it finished).  Clear the flag so a later
                # slowdown re-flags it — a sticky flag would mute every
                # straggler after its first offense.
                flagged_stragglers.discard(rank)
                rh = health.ranks.get(rank)
                if rh is not None and rh.state == "straggler":
                    health.mark(rank, "running")
                    events.emit("straggler_recovered", rank=rank)
            for hid in sorted(pending_handoffs):
                h = pending_handoffs[hid]
                helper = h["helper"]
                if helper is None:
                    continue
                proc = workers.get(helper)
                helper_dead = proc is None or proc.exitcode is not None
                timed_out = now - h["started"] > _HANDOFF_TIMEOUT_SECONDS
                if helper_dead or timed_out:
                    events.emit(
                        "handoff_failed", handoff=hid, origin=h["origin"],
                        helper=helper,
                        reason="helper died" if helper_dead else "timeout",
                    )
                    run_handoff_inline(hid)

        def snapshot(state: str) -> None:
            """Atomically refresh ``coordinator.json`` with live progress."""
            if checkpoint_dir is None:
                return
            write_snapshot(checkpoint_dir, {
                "v": 1,
                "state": state,
                "plan": plan_hash,
                "b": b_hash,
                "run": run_hash,
                "alpha": float(alpha),
                "nranks": nranks,
                "attempts": {str(r): a for r, a in attempts.items()},
                "ranks": {
                    str(r): {
                        "state": rh.state,
                        "tasks_done": rh.tasks_done,
                        "tasks_total": rh.tasks_total,
                    }
                    for r, rh in health.ranks.items()
                },
            })

        # The first snapshot lands before any worker makes progress, so a
        # run killed at any later instant still records its identity (and a
        # later mismatched plan is refused).
        snapshot("running")
        last_snapshot = time.monotonic()
        last_patrol = time.monotonic()

        while pending or pending_handoffs:
            if time.monotonic() > deadline:
                raise DistExecutionError(
                    f"distributed run timed out after {timeout:.0f} s "
                    f"(pending ranks: {sorted(pending)})"
                )
            if time.monotonic() - last_snapshot >= snapshot_interval:
                snapshot("running")
                last_snapshot = time.monotonic()
            drain_telemetry()
            # Patrol on a bounded monotonic cadence, not only when the
            # inbox goes quiet: a steady message stream used to starve
            # dead-worker/stall/straggler detection entirely.
            if time.monotonic() - last_patrol >= _PATROL_INTERVAL_SECONDS:
                patrol()
                last_patrol = time.monotonic()
            try:
                src, msg, nbytes = coord.recv(timeout=0.1)
            except Empty:
                patrol()
                last_patrol = time.monotonic()
                continue
            kind, rank = msg[0], msg[1]
            comm_stats.absorb({(rank, COORDINATOR): nbytes}, {(rank, COORDINATOR): 1})
            if kind == "done":
                # Accept only the live attempt's report: a stale one from a
                # superseded attempt (its worker lost the race against the
                # patrol's grace window) points at a retired C arena — the
                # protocol model's recv:done:stale -> discard edge.
                if rank in pending and msg[2].attempt == attempts[rank] - 1:
                    reports[rank] = msg[2]
                    report_clock[rank] = clock()
                    pending.discard(rank)
                    suspects.pop(rank, None)
                    # A done report supersedes any relinquish in flight to
                    # this rank (M408) and retires its straggler flag.
                    outstanding_relinquish.pop(rank, None)
                    flagged_stragglers.discard(rank)
                    if msg[2].metrics is not None:
                        last_metrics[rank] = msg[2].metrics
                    health.on_done(rank, time.monotonic())
                    events.emit(
                        "rank_done", rank=rank, attempt=msg[2].attempt,
                        tasks=msg[2].stats.ntasks,
                    )
                else:
                    events.emit(
                        "stale_report", rank=rank, kind="done",
                        attempt=msg[2].attempt,
                    )
            elif kind == "error":
                # msg = ("error", rank, attempt, traceback); attempt -1
                # means the worker died before it even received a scatter.
                if rank in pending and msg[2] in (-1, attempts[rank] - 1):
                    on_failure(rank, msg[3])
                else:
                    events.emit(
                        "stale_report", rank=rank, kind="error",
                        attempt=msg[2],
                    )
            elif kind == "relinquished":
                # msg = ("relinquished", rank, attempt, positions): the
                # straggler's ack.  Accept only the ack for the request we
                # sent to the live attempt; anything else is stale (the
                # rank finished, died, or was retried in between).
                att, positions = msg[2], tuple(tuple(p) for p in msg[3])
                live = (
                    outstanding_relinquish.get(rank) == att
                    and rank in pending
                    and att == attempts[rank] - 1
                )
                if live:
                    outstanding_relinquish.pop(rank, None)
                    events.emit(
                        "relinquished", rank=rank, attempt=att,
                        blocks=len(positions),
                    )
                    if positions:
                        stolen_blocks.setdefault(rank, set()).update(positions)
                        moved = sum(
                            plan.procs[rank].gpu_blocks(g)[bi].ntasks
                            for g, bi in positions
                        )
                        rh = health.ranks.get(rank)
                        if rh is not None:
                            # The origin's denominator shrinks with its
                            # schedule, so progress fractions stay honest.
                            rh.tasks_total = max(0, rh.tasks_total - moved)
                        dispatch_handoff(rank, positions)
                else:
                    if outstanding_relinquish.get(rank) == att:
                        outstanding_relinquish.pop(rank, None)
                    events.emit(
                        "stale_report", rank=rank, kind="relinquished",
                        attempt=att,
                    )
            elif kind == "handoff_done":
                # msg = ("handoff_done", rank, hid, c_index, stats);
                # c_index None flags a helper-side failure -> redo inline.
                hid = msg[2]
                h = pending_handoffs.get(hid)
                if h is None:
                    # Already resolved (timed out and redone inline, or a
                    # duplicate): the late result is stale, not an error.
                    events.emit(
                        "stale_report", rank=rank, kind="handoff_done",
                        handoff=hid,
                    )
                elif msg[3] is None:
                    events.emit(
                        "handoff_failed", handoff=hid, origin=h["origin"],
                        helper=rank, reason="helper error",
                    )
                    run_handoff_inline(hid)
                else:
                    pending_handoffs.pop(hid)
                    handoff_results[hid] = (
                        h["origin"], ("arena", h["arena"], msg[3]), msg[4]
                    )
                    events.emit(
                        "handoff_done", handoff=hid, origin=h["origin"],
                        helper=rank, tasks=msg[4].ntasks,
                    )
            else:  # pragma: no cover - unknown message kind
                raise DistExecutionError(f"unexpected message {kind!r} from rank {rank}")
        drain_telemetry()  # beats raced against the final reports
        snapshot("done")

        # ---- reduce -------------------------------------------------------
        out = BlockSparseMatrix(a.rows, plan.b_shape.cols)
        if c is not None:
            require(
                c.rows == a.rows and c.cols == plan.b_shape.cols,
                "C tilings do not conform",
            )
            for (i, j), tile in c.items():
                out.set_tile(i, j, beta * tile)

        produced_by: dict[tuple[int, int], object] = {}
        t_reduce = clock()
        for rank in range(nranks):
            report = reports[rank]
            if rank in local_results:
                tiles = local_results[rank].items()
            else:
                arena = c_arenas[rank]
                tiles = (
                    ((i, j), arena.read(entry))
                    for (i, j), entry in report.c_index.items()
                )
            for (i, j), tile in tiles:
                prev = produced_by.setdefault((i, j), rank)
                require(
                    prev == rank,
                    f"C tile ({i},{j}) produced by two processes ({prev}, {rank})",
                )
                out.accumulate_tile(i, j, tile)
        # Handoff producers reduce exactly like ranks: blocks within one
        # process hold disjoint column sets, so a stolen block's tiles can
        # collide neither with the origin's remaining blocks nor with any
        # other rank — the one-producer check enforces it (M407).
        for hid in sorted(handoff_results):
            origin, payload, _ = handoff_results[hid]
            if isinstance(payload, dict):
                tiles = payload.items()
            else:
                _, arena, c_index = payload
                tiles = (
                    ((i, j), arena.read(entry))
                    for (i, j), entry in c_index.items()
                )
            for (i, j), tile in tiles:
                prev = produced_by.setdefault((i, j), ("handoff", hid))
                require(
                    prev == ("handoff", hid),
                    f"C tile ({i},{j}) produced by two processes "
                    f"({prev}, handoff {hid} of rank {origin})",
                )
                out.accumulate_tile(i, j, tile)
        rec.record("reduce", "net.-1", t_reduce, clock())

        # ---- merge stats / trace / comm / metrics -------------------------
        stats = NumericStats.merge(
            [reports[rank].stats for rank in range(nranks)]
            + [s for _, _, s in handoff_results.values()]
        )
        run_trace = Trace()
        run_trace.extend(rec.spans)
        spans_dropped = rec.dropped
        span_counters: dict[str, float] = dict(rec.counters)
        for rank in range(nranks):
            stream = reports[rank].spans
            if stream is not None:
                # Re-base the rank's monotonic clock onto the coordinator's
                # via the two recorders' wall-clock origin samples.
                offset = stream.wall_origin - rec.wall_origin
                run_trace.extend(stream.spans, offset=offset)
                spans_dropped += stream.dropped
                for key, val in stream.counters.items():
                    span_counters[key] = span_counters.get(key, 0.0) + val
                t_spawn = spawn_clock.get(rank)
                if stream.spans and t_spawn is not None and offset > t_spawn:
                    # The measured process-startup window: proc.start() on
                    # the coordinator's clock up to the worker recorder's
                    # origin (its own spans begin at ~0).
                    run_trace.add(f"spawn.{rank}", f"cpu.{rank}", t_spawn, offset)
                t_report = report_clock.get(rank)
                if stream.spans and t_report is not None:
                    # ... and the report-shipping window: the worker's last
                    # recorded span to the coordinator's receipt (report
                    # pickling + queue transfer).
                    last = max(e for _, _, _, e in stream.spans) + offset
                    if t_report > last:
                        run_trace.add(
                            f"report.{rank}", f"net.{rank}", last, t_report
                        )
            comm_stats.absorb(reports[rank].link_bytes)
        comm_stats.absorb(coord.link_bytes, coord.messages)
        registry.counter(
            "repro_spans_dropped_total",
            "trace spans discarded at the recorder bound",
        ).inc(rec.dropped)
        merged_metrics = MetricsSnapshot.merge(
            [last_metrics[r] for r in sorted(last_metrics)] + [registry.snapshot()]
        ) if metrics else None

        perf_model = None
        if trace:
            # The predicted-cost twin of the measured trace: cheap to build
            # (reads stored plan aggregates) and what `repro explain` audits
            # the run against.
            from repro.perf import PerfModel

            perf_model = PerfModel.from_plan(
                plan, plan_hash=plan_hash or plan_fingerprint(plan)
            )

        dist_report = DistReport(
            stats=stats,
            trace=run_trace,
            comm=comm_stats,
            attempts=attempts,
            reassigned=reassigned,
            segments=[arena.name for arena in arenas],
            b_max_instantiations=max(
                (reports[r].b_max_instantiations for r in range(nranks)), default=0
            ),
            nworkers=nranks,
            started_at=rec.wall_origin,
            b_hits=sum(reports[r].b_hits for r in range(nranks)),
            b_evictions=sum(reports[r].b_lru_evictions for r in range(nranks)),
            spans_dropped=spans_dropped,
            shm_bytes=sum(arena.used_bytes for arena in arenas),
            metrics=merged_metrics,
            health=health,
            events_path=events.path,
            stalled=stalled,
            checkpoint_dir=checkpoint_dir,
            run_hash=run_hash,
            plan_hash=plan_hash,
            blocks_restored=sum(reports[r].blocks_restored for r in range(nranks)),
            tasks_skipped=sum(reports[r].tasks_skipped for r in range(nranks)),
            store_hits=sum(reports[r].store_hits for r in range(nranks)),
            store_misses=sum(reports[r].store_misses for r in range(nranks)),
            store_puts=sum(reports[r].store_puts for r in range(nranks)),
            b_store_hits=sum(reports[r].b_store_hits for r in range(nranks)),
            handoffs=len(handoff_results),
            blocks_rebalanced=sum(len(s) for s in stolen_blocks.values()),
            tasks_rebalanced=sum(stolen_tasks(r) for r in stolen_blocks),
            model=perf_model,
            span_counters=span_counters,
            run_id=run_id,
        )
        events.emit(
            "done",
            ntasks=stats.ntasks,
            heartbeats=health.heartbeats,
            retried=sorted(r for r, a in attempts.items() if a > 1),
            stalled=sorted(set(stalled)),
            reassigned=sorted(reassigned),
            handoffs=len(handoff_results),
            blocks_rebalanced=sum(len(s) for s in stolen_blocks.values()),
        )
        return out, dist_report
    finally:
        events.close()
        if coord_store is not None:
            coord_store.close()
        if pool is None:
            # One-shot run: the coordinator owns the processes and the
            # comm layer, so it tears both down.  A borrowed pool stays
            # warm — its owner (the serving layer) decides when workers
            # die, and resets the pool itself after a failed run.
            for proc in workers.values():
                if proc.is_alive():
                    proc.terminate()
                proc.join(timeout=2.0)
        for arena in arenas:
            arena.unlink()
        if pool is None:
            try:
                comm.close()
            except Exception:  # pragma: no cover - queue teardown best-effort
                pass
