"""Message-based communication layer for the multi-process executor.

The fabric models the paper's ``p x q`` grid plus a coordinator: one inbox
queue per worker rank (the coordinator scatters plans into them) and one
shared gather queue back to the coordinator.  Every message is pickled by
the sending :class:`Endpoint`, which counts the bytes per directed link
``(src, dst)`` — the executor's observable analogue of the exact volumes
:mod:`repro.core.comm_model` derives from the plan.  Workers additionally
model the grid-row A broadcast: each A tile they need but do not own under
the 2D-cyclic placement is charged to the ``owner -> rank`` link, which
reproduces the inspector's ``a_recv_bytes`` per process exactly (the tests
assert this).

A third, out-of-band channel carries **telemetry**: periodic worker
heartbeats (:class:`repro.dist.health.HeartbeatMsg`) and per-block
completion reports (:class:`BlockDoneMsg`) flow through their own shared
queue so they can never reorder or delay the control-plane
``done``/``error`` messages, and their bytes are accounted in a separate
``telemetry_bytes`` counter so the plan-derived comm-volume crosschecks
stay byte-exact regardless of heartbeat cadence.

Dynamic rebalancing adds three control-plane messages: the coordinator
asks a flagged straggler to :class:`RelinquishMsg` its unstarted blocks
(the worker answers with a ``("relinquished", rank, attempt, positions)``
ack at its next block boundary), then ships the reclaimed blocks to a
finished helper rank as a :class:`HandoffMsg` (answered with
``("handoff_done", ...)``).  These ride the ordinary inbox/gather queues:
they only exist when ``rebalance=True``, and the comm-volume crosscheck
tests run without it.
"""

from __future__ import annotations

import pickle
import queue as _queue
from collections import Counter
from dataclasses import dataclass, field

from repro.util.units import fmt_bytes

#: The coordinator's rank in link keys (workers are ``0..nprocs-1``).
COORDINATOR = -1


@dataclass(frozen=True)
class RelinquishMsg:
    """Coordinator -> straggler: yield your unstarted blocks.

    ``attempt`` pins the request to one scatter generation; a worker that
    already finished (or was retried) sees a stale attempt and acks with
    an empty position list so the coordinator can retire the request.
    """

    attempt: int


@dataclass(frozen=True)
class BlockDoneMsg:
    """Worker -> coordinator (telemetry): one block finished writeback.

    Out-of-band like heartbeats — block completions are progress
    telemetry, not control flow, and must never delay ``done``/``error``.
    """

    rank: int
    attempt: int
    gpu: int
    block: int
    ntasks: int


@dataclass(frozen=True)
class HandoffMsg:
    """Coordinator -> helper rank: execute blocks reclaimed from a straggler.

    ``blocks`` are ``(gpu, position, block)`` triples in the *origin*
    rank's plan coordinates, so journals and store keys written during the
    handoff land under the origin's identity and resume stays coherent.
    ``arena`` names a dedicated shared-memory arena for the produced C
    tiles.  B-service parameters mirror the original ``ScatterMsg`` so the
    helper reproduces tiles bit-for-bit.
    """

    handoff_id: int
    origin: int
    blocks: tuple  # of (gpu, position, Block) in the origin's plan
    a_meta: object  # ArenaMeta of the shared A arena
    b_spec: tuple
    c_meta: object  # ArenaMeta of the handoff's dedicated C arena
    gpu_memory_bytes: int
    b_csr: object
    tau: float | None
    alpha: float
    store_dir: str | None = None
    store_budget: int | None = None
    b_hash: str = ""
    ckpt_dir: str | None = None
    run_hash: str = ""


@dataclass
class Endpoint:
    """One process's port into the fabric.

    Workers receive from their own inbox and send to the coordinator; the
    coordinator (rank :data:`COORDINATOR`) sends into any inbox and
    receives from the shared gather queue.  ``link_bytes`` counts pickled
    payload bytes per ``(src, dst)`` link on the *sending* side; receive
    sizes are returned so the coordinator can account worker->coordinator
    links (a worker cannot count a report that contains its own counters).
    """

    rank: int
    inboxes: list
    gather: object
    telemetry: object = None
    link_bytes: Counter = field(default_factory=Counter)
    messages: Counter = field(default_factory=Counter)
    telemetry_bytes: Counter = field(default_factory=Counter)

    def send(self, dst: int, msg) -> int:
        blob = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        self.link_bytes[(self.rank, dst)] += len(blob)
        self.messages[(self.rank, dst)] += 1
        target = self.gather if dst == COORDINATOR else self.inboxes[dst]
        target.put((self.rank, blob))
        return len(blob)

    def recv(self, timeout: float | None = None):
        """Blocking receive; returns ``(src, msg, nbytes)``.

        Raises :class:`queue.Empty` on timeout.
        """
        source = self.gather if self.rank == COORDINATOR else self.inboxes[self.rank]
        src, blob = source.get(timeout=timeout)
        return src, pickle.loads(blob), len(blob)

    def recv_nowait(self):
        """Non-blocking receive; raises :class:`Empty` when the inbox is
        drained.  Workers poll this at block boundaries so a coordinator
        :class:`RelinquishMsg` is noticed without ever blocking compute.
        """
        source = self.gather if self.rank == COORDINATOR else self.inboxes[self.rank]
        src, blob = source.get_nowait()
        return src, pickle.loads(blob), len(blob)

    def send_telemetry(self, msg) -> int:
        """Ship a heartbeat to the coordinator on the out-of-band channel.

        Byte-counted separately from ``link_bytes`` so telemetry cadence
        never perturbs the plan-derived comm-volume crosschecks.  Safe to
        call from a worker's heartbeat thread while the main thread uses
        :meth:`send` — the two paths touch disjoint queues and counters.
        """
        blob = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        self.telemetry_bytes[(self.rank, COORDINATOR)] += len(blob)
        self.telemetry.put((self.rank, blob))
        return len(blob)

    def recv_telemetry(self):
        """Non-blocking telemetry receive; raises :class:`Empty` when drained."""
        src, blob = self.telemetry.get_nowait()
        return src, pickle.loads(blob), len(blob)


class CommLayer:
    """The queue fabric for one distributed run (created by the coordinator)."""

    def __init__(self, nranks: int, ctx):
        self.nranks = nranks
        self._inboxes = [ctx.Queue() for _ in range(nranks)]
        self._gather = ctx.Queue()
        self._telemetry = ctx.Queue()

    def endpoint(self, rank: int) -> Endpoint:
        return Endpoint(
            rank=rank,
            inboxes=self._inboxes,
            gather=self._gather,
            telemetry=self._telemetry,
        )

    def close(self) -> None:
        for q in [*self._inboxes, self._gather, self._telemetry]:
            q.close()
            q.join_thread()


Empty = _queue.Empty


@dataclass
class CommStats:
    """Merged per-link traffic of one run (bytes and message counts).

    ``link_bytes`` keys are ``(src, dst)`` ranks with :data:`COORDINATOR`
    for the coordinator; worker->worker keys carry the *modeled* grid-row A
    broadcast, coordinator links carry actual pickled queue traffic.
    """

    link_bytes: Counter = field(default_factory=Counter)
    messages: Counter = field(default_factory=Counter)
    telemetry_bytes: Counter = field(default_factory=Counter)

    def absorb(self, link_bytes, messages=None) -> None:
        self.link_bytes.update(link_bytes)
        if messages:
            self.messages.update(messages)

    def absorb_telemetry(self, telemetry_bytes) -> None:
        """Fold in out-of-band heartbeat traffic (kept off ``link_bytes``)."""
        self.telemetry_bytes.update(telemetry_bytes)

    def telemetry_total(self) -> int:
        """Heartbeat bytes shipped worker -> coordinator, all ranks."""
        return sum(self.telemetry_bytes.values())

    def scatter_bytes(self) -> int:
        """Coordinator -> workers (plan scatter) bytes."""
        return sum(v for (s, _), v in self.link_bytes.items() if s == COORDINATOR)

    def gather_bytes(self) -> int:
        """Workers -> coordinator (C index + stats reports) bytes."""
        return sum(v for (_, d), v in self.link_bytes.items() if d == COORDINATOR)

    def a_broadcast_bytes(self) -> int:
        """Modeled worker<->worker A traffic (grid-row broadcast)."""
        return sum(
            v for (s, d), v in self.link_bytes.items()
            if s != COORDINATOR and d != COORDINATOR
        )

    def summary(self) -> str:
        text = (
            f"scatter {fmt_bytes(self.scatter_bytes())}, "
            f"gather {fmt_bytes(self.gather_bytes())}, "
            f"A broadcast {fmt_bytes(self.a_broadcast_bytes())} "
            f"over {len(self.link_bytes)} links"
        )
        telemetry = self.telemetry_total()
        if telemetry:
            text += f" (+{fmt_bytes(telemetry)} telemetry)"
        return text

    def table(self) -> str:
        """Per-link traffic rendered as text, heaviest links first."""

        def who(rank: int) -> str:
            return "coord" if rank == COORDINATOR else f"rank {rank}"

        lines = ["per-link traffic:"]
        for (s, d), v in sorted(self.link_bytes.items(), key=lambda kv: -kv[1]):
            n = self.messages.get((s, d), 0)
            lines.append(
                f"  {who(s):>7s} -> {who(d):<7s} {fmt_bytes(v):>10s}"
                + (f"  ({n} msg)" if n else "")
            )
        return "\n".join(lines)
